//! Star Schema Benchmark (§5.3): generate a mini-scale SSB instance, run
//! the four flight-representative queries on TCUDB, YDB and the CPU engine
//! and print the relative runtimes (the Figure 9 experiment).
//!
//! ```text
//! cargo run --release --example ssb
//! ```

use tcudb::datagen::ssb;
use tcudb::prelude::*;

fn main() -> TcuResult<()> {
    let sf = 1;
    let catalog = ssb::gen_catalog(sf, 0x55B);
    println!(
        "SSB mini scale factor {sf}: lineorder has {} rows",
        catalog.table("lineorder")?.num_rows()
    );

    let mut tcudb = TcuDb::default();
    tcudb.config_mut().count_only = false;
    tcudb.set_catalog(catalog.clone());
    let ydb = YdbEngine::default();
    ydb.set_catalog(catalog.clone());
    let monet = MonetEngine::default();
    monet.set_catalog(catalog);

    println!(
        "{:<6} {:>8} {:>14} {:>14} {:>14} {:>10}",
        "query", "rows", "MonetDB (ms)", "YDB (ms)", "TCUDB (ms)", "vs YDB"
    );
    for (name, sql) in ssb::figure9_queries() {
        let t = tcudb.execute(&sql)?;
        let y = ydb.execute(&sql)?;
        let m = monet.execute(&sql)?;
        println!(
            "{:<6} {:>8} {:>14.3} {:>14.3} {:>14.3} {:>9.2}x",
            name,
            t.table.num_rows(),
            m.timeline.total_seconds() * 1e3,
            y.timeline.total_seconds() * 1e3,
            t.timeline.total_seconds() * 1e3,
            y.timeline.total_seconds() / t.timeline.total_seconds()
        );
    }
    Ok(())
}
