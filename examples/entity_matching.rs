//! Entity-matching blocking (§5.4.2): run the Figure 11 blocking queries on
//! the synthetic BeerAdvo-RateBeer dataset with TCUDB and the YDB baseline
//! and print the speedups per blocking attribute.
//!
//! ```text
//! cargo run --release --example entity_matching
//! ```

use tcudb::datagen::em;
use tcudb::prelude::*;

fn main() -> TcuResult<()> {
    let dataset = em::beer_advo_ratebeer();
    println!(
        "dataset {}: {} + {} rows",
        dataset.name, dataset.rows_a, dataset.rows_b
    );
    let catalog = em::gen_catalog(&dataset, 23);

    let tcudb = TcuDb::default();
    tcudb.set_catalog(catalog.clone());
    let ydb = YdbEngine::default();
    ydb.set_catalog(catalog);

    println!(
        "{:<12} {:>10} {:>14} {:>14} {:>10}",
        "attribute", "#distinct", "YDB (ms)", "TCUDB (ms)", "speedup"
    );
    for (attr, distinct) in &dataset.attributes {
        let sql = em::blocking_query(attr);
        let t = tcudb.execute(&sql)?;
        let y = ydb.execute(&sql)?;
        println!(
            "{:<12} {:>10} {:>14.3} {:>14.3} {:>9.2}x",
            attr,
            distinct,
            y.timeline.total_seconds() * 1e3,
            t.timeline.total_seconds() * 1e3,
            y.timeline.total_seconds() / t.timeline.total_seconds()
        );
    }
    Ok(())
}
