//! Quickstart: register two tables, run the paper's Q1/Q3/Q4 patterns and
//! print the result tables, the chosen plans and the simulated timing
//! breakdowns.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tcudb::prelude::*;

fn main() -> TcuResult<()> {
    // Build a tiny catalog: A(id, val) and B(id, val).
    let db = TcuDb::default();
    db.register_table(Table::from_int_columns(
        "A",
        &[
            ("id", vec![1, 1, 2, 3, 3]),
            ("val", vec![10, 11, 20, 30, 31]),
        ],
    )?);
    db.register_table(Table::from_int_columns(
        "B",
        &[("id", vec![1, 2, 2, 4]), ("val", vec![5, 6, 7, 8])],
    )?);

    for (name, sql) in [
        (
            "Q1: two-way natural join",
            "SELECT A.val, B.val FROM A, B WHERE A.id = B.id",
        ),
        (
            "Q3: group-by aggregate over join",
            "SELECT SUM(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val",
        ),
        (
            "Q4: aggregate over join",
            "SELECT SUM(A.val * B.val) FROM A, B WHERE A.id = B.id",
        ),
        (
            "Q5: non-equi join",
            "SELECT A.val, B.val FROM A, B WHERE A.id < B.id",
        ),
    ] {
        println!("=== {name} ===");
        println!("{sql}");
        let out = db.execute(sql)?;
        println!("-- plan --\n{}", out.plan.format());
        println!("-- result ({} rows) --", out.table.num_rows());
        println!("{}", out.table.format_preview(10));
        println!(
            "-- simulated timing --\n{}",
            out.timeline.format_breakdown()
        );
    }
    Ok(())
}
