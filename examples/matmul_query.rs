//! Matrix multiplication as SQL (§5.4.1, Figure 5/10 and Table 1): run the
//! matrix-multiplication query on coordinate-form tables, compare TCUDB and
//! YDB, and report the fp16 accuracy (MAPE) per value range.
//!
//! ```text
//! cargo run --release --example matmul_query
//! ```

use tcudb::datagen::matmul;
use tcudb::prelude::*;
use tcudb::tensor::{gemm, DenseMatrix, GemmPrecision};

fn main() -> TcuResult<()> {
    // Figure 10 (mini dims): run the query end to end on both engines.
    let dim = 64;
    let catalog = matmul::gen_catalog(dim, 1.0, matmul::ValueRange::Int7, 17);
    let tcudb = TcuDb::default();
    tcudb.set_catalog(catalog.clone());
    let ydb = YdbEngine::default();
    ydb.set_catalog(catalog);

    let t = tcudb.execute(matmul::MATMUL_QUERY)?;
    let y = ydb.execute(matmul::MATMUL_QUERY)?;
    println!(
        "matrix multiplication query on {dim}x{dim} matrices: TCUDB {:.3} ms, YDB {:.3} ms ({:.2}x)",
        t.timeline.total_seconds() * 1e3,
        y.timeline.total_seconds() * 1e3,
        y.timeline.total_seconds() / t.timeline.total_seconds()
    );
    println!("{}", t.plan.format());

    // Table 1: MAPE of fp16-input GEMM per value range.
    println!("Table 1 (MAPE of fp16 matrix multiplication, {dim}x{dim}):");
    let mut rng = tcudb::datagen::Xorshift::new(7);
    for range in matmul::ValueRange::all() {
        let mut a = DenseMatrix::zeros(dim, dim);
        let mut b = DenseMatrix::zeros(dim, dim);
        for i in 0..dim {
            for j in 0..dim {
                a.set(i, j, range.sample(&mut rng) as f32);
                b.set(i, j, range.sample(&mut rng) as f32);
            }
        }
        let exact = gemm::gemm_exact_f64(&a, &b)?;
        let (approx, _) = gemm::gemm(&a, &b, GemmPrecision::Half)?;
        println!(
            "  {:<22} MAPE = {:.5}%",
            range.label(),
            gemm::mape(&approx, &exact)
        );
    }
    Ok(())
}
