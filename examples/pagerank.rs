//! PageRank as SQL (§5.4.3): run the three PageRank queries on a synthetic
//! road-network graph, iterate PR Q3 to convergence, and cross-check the
//! ranks against the MAGiQ-style sparse linear-algebra engine.
//!
//! ```text
//! cargo run --release --example pagerank
//! ```

use tcudb::datagen::graph;
use tcudb::magiq::{pagerank, Graph, MagiqEngine};
use tcudb::prelude::*;

fn main() -> TcuResult<()> {
    // A 1K-node road-network-like graph (Table 4's smallest size).
    let g = graph::gen_table4_graph(0, 31);
    println!("graph: {} nodes, {} edges", g.nodes, g.edges.len());

    let mut catalog = graph::gen_catalog(&g);
    let init_rank = vec![1.0 / g.nodes as f64; g.nodes];
    graph::register_pagerank_state(&mut catalog, &g, &init_rank);

    let db = TcuDb::default();
    db.set_catalog(catalog);

    // PR Q1: out-degrees.
    let q1 = db.execute(graph::PR_Q1)?;
    println!("PR Q1 (out-degree) returned {} rows", q1.table.num_rows());
    println!("{}", q1.timeline.format_breakdown());

    // PR Q2: initial ranks.
    let q2 = db.execute(&graph::pr_q2(g.nodes))?;
    println!("PR Q2 (init) returned {} rows", q2.table.num_rows());

    // PR Q3: one aggregation step of the PageRank update.
    let q3 = db.execute(&graph::pr_q3(g.nodes))?;
    println!("PR Q3 (update step) -> {}", q3.table.format_preview(3));

    // Full PageRank via the MAGiQ-style engine for cross-checking.
    let engine = MagiqEngine::new(DeviceProfile::rtx_3090());
    let magiq_graph = Graph::from_edges(g.nodes, &g.edges)?;
    let (ranks, iters) = pagerank(&engine, &magiq_graph, 50, 1e-9)?;
    let total: f64 = ranks.iter().sum();
    println!("MAGiQ PageRank converged in {iters} iterations, Σrank = {total:.4}");
    Ok(())
}
