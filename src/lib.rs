#![forbid(unsafe_code)]
//! # tcudb
//!
//! Umbrella crate for **TCUDB-RS**, a pure-Rust reproduction of
//! *"TCUDB: Accelerating Database with Tensor Processors"* (SIGMOD 2022).
//!
//! This crate re-exports the public API of every workspace member so that
//! examples, integration tests and downstream users can depend on a single
//! crate:
//!
//! * [`core`] — the TCUDB engine (analyzer, optimizer, TCU operators,
//!   executor, plan/statement cache),
//! * [`serve`] — concurrent query serving: sessions, a worker-pool
//!   scheduler with admission control and statement coalescing,
//! * [`net`] — the TCUP wire protocol and the epoll-based TCP server
//!   (`tcudb-server` binary) plus a blocking client,
//! * [`tensor`] — dense/sparse/blocked tensor kernels with emulated
//!   tensor-core precisions,
//! * [`device`] — the simulated GPU device and cost model,
//! * [`storage`] — columnar tables, statistics, catalog and epoch-tagged
//!   catalog snapshots,
//! * [`sql`] — the SQL front-end,
//! * [`ydb`], [`monet`], [`magiq`] — the baseline engines of the paper's
//!   evaluation,
//! * [`datagen`] — workload generators for every experiment.
//!
//! See `ARCHITECTURE.md` at the repository root for the end-to-end query
//! data path and the serving layer, and `BENCHMARKS.md` for the committed
//! benchmark artifacts.
//!
//! ## Quickstart
//!
//! ```
//! use tcudb::prelude::*;
//!
//! let db = TcuDb::default();
//! db.register_table(
//!     Table::from_int_columns("A", &[("id", vec![1, 2, 3]), ("val", vec![10, 20, 30])]).unwrap(),
//! );
//! db.register_table(
//!     Table::from_int_columns("B", &[("id", vec![2, 3]), ("val", vec![5, 6])]).unwrap(),
//! );
//! let out = db
//!     .execute("SELECT SUM(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val")
//!     .unwrap();
//! assert_eq!(out.table.num_rows(), 2);
//! println!("{}", out.timeline.format_breakdown());
//! ```

pub use tcudb_core as core;
pub use tcudb_datagen as datagen;
pub use tcudb_device as device;
pub use tcudb_magiq as magiq;
pub use tcudb_monet as monet;
pub use tcudb_net as net;
pub use tcudb_serve as serve;
pub use tcudb_sql as sql;
pub use tcudb_storage as storage;
pub use tcudb_tensor as tensor;
pub use tcudb_types as types;
pub use tcudb_ydb as ydb;

/// Commonly used types, importable with `use tcudb::prelude::*`.
pub mod prelude {
    pub use tcudb_core::{EngineConfig, PlanKind, QueryOutput, TcuDb};
    pub use tcudb_device::{DeviceProfile, ExecutionTimeline, Phase};
    pub use tcudb_monet::MonetEngine;
    pub use tcudb_net::{Client, NetConfig, NetServer};
    pub use tcudb_serve::{ServeConfig, Server, Session};
    pub use tcudb_sql::parse;
    pub use tcudb_storage::{
        Catalog, CatalogSnapshot, Column, ColumnDef, Schema, SharedCatalog, Table,
    };
    pub use tcudb_types::{DataType, Precision, TcuError, TcuResult, Value};
    pub use tcudb_ydb::YdbEngine;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_engine() {
        let db = TcuDb::default();
        assert!(db.catalog().is_empty());
        assert_eq!(DeviceProfile::default().name, "RTX 3090");
    }
}
