//! Shape-level checks of the paper's headline claims, evaluated on the
//! simulated device: who wins, where the advantage grows/shrinks, and where
//! plans switch.  Absolute numbers are not asserted (our substrate is a
//! simulator, not the authors' testbed).

use tcudb::datagen::{em, micro};
use tcudb::prelude::*;
use tcudb_bench as bench;

fn device() -> DeviceProfile {
    DeviceProfile::rtx_3090()
}

#[test]
fn tcus_beat_cuda_cores_on_gemm_by_a_factor_of_a_few() {
    // Figure 3: up to ~5x in the paper.
    let rows = bench::fig3_gemm(&[4096, 8192, 16384], &device());
    for r in rows {
        let speedup = r.cuda_seconds / r.tcu_seconds;
        assert!(speedup > 1.5, "dim {}: speedup {speedup}", r.dim);
        assert!(speedup < 8.0, "dim {}: speedup {speedup}", r.dim);
    }
}

#[test]
fn tcudb_advantage_grows_with_record_count() {
    // Figure 7 shape: the Q1 speedup at 32 distinct values grows as the
    // number of records grows.
    let results = bench::fig7_micro_records(&[1024, 4096], 32, &device()).unwrap();
    let (_, q1) = &results[0];
    assert!(q1[1].speedup_vs_ydb() >= q1[0].speedup_vs_ydb() * 0.8);
    assert!(q1[1].speedup_vs_ydb() > 1.0);
}

#[test]
fn tcudb_advantage_shrinks_with_distinct_values() {
    // Figure 8 shape: larger key domains erode the dense-GEMM advantage.
    let results = bench::fig8_micro_distinct(1024, &[16, 512], &device()).unwrap();
    for (query, rows) in &results {
        assert!(
            rows[0].speedup_vs_ydb() > rows[1].speedup_vs_ydb() * 0.9,
            "{query}: {} vs {}",
            rows[0].speedup_vs_ydb(),
            rows[1].speedup_vs_ydb()
        );
    }
}

#[test]
fn q3_gains_more_than_q1_because_aggregation_is_fused() {
    // Figure 7(b) vs 7(a): YDB pays an extra group-by kernel that TCUDB
    // fuses into the GEMM, so Q3's speedup exceeds Q1's.
    let results = bench::fig7_micro_records(&[2048], 32, &device()).unwrap();
    let q1 = &results[0].1[0];
    let q3 = &results[1].1[0];
    assert!(q3.speedup_vs_ydb() >= q1.speedup_vs_ydb() * 0.9);
}

#[test]
fn entity_matching_speedup_is_largest_for_low_cardinality_attributes() {
    // Figure 11 shape: ABV (20 distinct) gains more than BEER_NAME (6228).
    let dataset = em::EmDataset {
        name: "mini-beer",
        rows_a: 800,
        rows_b: 600,
        attributes: vec![("ABV", 20), ("BEER_NAME", 1200)],
    };
    let rows = bench::fig11_entity_matching(&dataset, &device()).unwrap();
    assert!(rows[0].speedup_vs_ydb() > rows[1].speedup_vs_ydb());
    assert!(rows[0].speedup_vs_ydb() > 1.0);
}

#[test]
fn blocked_plan_takes_over_beyond_device_memory() {
    // Figure 10 / §4.2.3: at 32768² and beyond, the dense working set
    // exceeds 24 GB and the optimizer switches to MSplitGEMM-style blocked
    // execution while still beating the GPU hash-join plan.
    let proj = bench::fig10_projection(&[8192, 65536], &device());
    assert!(!proj[0].plan.contains("blocked"));
    assert!(proj[1].plan.contains("blocked"));
    assert!(proj[1].tcudb_seconds < proj[1].ydb_seconds);
}

#[test]
fn fp16_error_never_affects_join_only_queries() {
    // Table 1, first row: 0/1 matrices multiply exactly.
    let rows = bench::table1_mape(&[64], 11);
    assert_eq!(rows[0].mape_by_dim[0].1, 0.0);
    // Wider ranges have small but non-zero error, well under 1%.
    for row in &rows[1..] {
        for (_, mape) in &row.mape_by_dim {
            assert!(*mape < 1.0, "{}: {mape}", row.range);
        }
    }
}

#[test]
fn newer_gpu_generation_helps_tcudb_more_than_ydb() {
    // Figure 14: TCUDB scales better from RTX 2080 to RTX 3090 than YDB.
    let rows = bench::fig14_gpu_scaling(&[4096], 32).unwrap();
    let avg_tcu: f64 = rows.iter().map(|r| r.tcudb_speedup).sum::<f64>() / rows.len() as f64;
    let avg_ydb: f64 = rows.iter().map(|r| r.ydb_speedup).sum::<f64>() / rows.len() as f64;
    assert!(avg_tcu > avg_ydb, "tcu {avg_tcu} vs ydb {avg_ydb}");
    assert!(avg_tcu > 1.0);
    assert!(avg_ydb >= 1.0);
}

#[test]
fn graph_engine_ranking_matches_figure_13() {
    // Figure 13: MonetDB slowest, then YDB, MAGiQ beats YDB, TCUDB fastest.
    let rows = bench::fig13_graph_engines(&[1], &device()).unwrap();
    let r = &rows[0];
    assert!(r.monet > r.ydb, "CPU should be slowest");
    assert!(
        r.magiq < r.ydb,
        "MAGiQ should beat the relational GPU engine"
    );
    assert!(
        r.tcudb < r.magiq * 1.5,
        "TCUDB should be competitive with MAGiQ"
    );
}

#[test]
fn optimizer_falls_back_when_values_exceed_tcu_range() {
    // §4.2.1: values beyond the fp16 range make the feasibility test fail.
    let db = TcuDb::default();
    db.register_table(
        Table::from_int_columns(
            "A",
            &[("id", vec![1, 2, 3]), ("val", vec![1_000_000_000, 2, 3])],
        )
        .unwrap(),
    );
    db.register_table(
        Table::from_int_columns("B", &[("id", vec![1, 2]), ("val", vec![1, 2])]).unwrap(),
    );
    // The join key domain is fine but the SUM payload overflows fp16: the
    // answer must still be exact because the engine falls back.
    let out = db
        .execute("SELECT SUM(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val")
        .unwrap();
    assert_eq!(out.table.row(0)[0].as_f64().unwrap(), 1_000_000_000.0);
}

#[test]
fn micro_queries_run_on_both_device_profiles() {
    let catalog = micro::gen_catalog(&micro::MicroConfig::new(512, 16));
    for device in [DeviceProfile::rtx_3090(), DeviceProfile::rtx_2080()] {
        let cmp = bench::compare_engines(&catalog, "x", micro::Q1, &device, true).unwrap();
        assert!(cmp.tcudb > 0.0 && cmp.ydb > 0.0 && cmp.monet > 0.0);
    }
}
