//! Property-based integration tests of the core TCU rewrites: the fused
//! matrix operators must agree with scalar SQL semantics on arbitrary data.

use proptest::prelude::*;
use std::collections::HashMap;
use tcudb::core::executor::{tcu_group_aggregate, tcu_matmul_query};
use tcudb::prelude::*;
use tcudb::tensor::GemmPrecision;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lemma 3.1: the fused group-by SUM equals the scalar join+aggregate.
    #[test]
    fn fused_group_aggregate_equals_scalar_reference(
        a in prop::collection::vec((0i64..12, 1i64..50), 1..60),
        b in prop::collection::vec((0i64..12, 0i64..6), 1..40),
    ) {
        let a_keys: Vec<Value> = a.iter().map(|(k, _)| Value::Int(*k)).collect();
        let a_vals: Vec<f64> = a.iter().map(|(_, v)| *v as f64).collect();
        let b_keys: Vec<Value> = b.iter().map(|(k, _)| Value::Int(*k)).collect();
        let b_groups: Vec<Value> = b.iter().map(|(_, g)| Value::Int(*g)).collect();

        let result = tcu_group_aggregate(&a_keys, &a_vals, &b_keys, &b_groups, GemmPrecision::Fp32)
            .expect("fused aggregate runs");

        let mut expected: HashMap<i64, f64> = HashMap::new();
        for ((ak, av), _) in a.iter().zip(a.iter()) {
            for (bk, bg) in &b {
                if ak == bk {
                    *expected.entry(*bg).or_default() += *av as f64;
                }
            }
        }
        for (group, sum) in result {
            let g = group.as_i64().unwrap();
            let want = expected.get(&g).copied().unwrap_or(0.0);
            prop_assert!((want - sum).abs() < 1e-6, "group {g}: {sum} vs {want}");
        }
    }

    /// The Figure 5 matrix-multiplication query equals a direct computation.
    #[test]
    fn matmul_query_equals_direct_product(dim in 1usize..6, seed in 0u64..500) {
        let mut state = seed.wrapping_add(3);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 9) as f64 - 4.0
        };
        let mut a = vec![vec![0.0f64; dim]; dim];
        let mut b = vec![vec![0.0f64; dim]; dim];
        let mut a_rows = Vec::new();
        let mut a_cols = Vec::new();
        let mut a_vals = Vec::new();
        let mut b_rows = Vec::new();
        let mut b_cols = Vec::new();
        let mut b_vals = Vec::new();
        for i in 0..dim {
            for j in 0..dim {
                a[i][j] = next();
                b[i][j] = next();
                a_rows.push(Value::Int(i as i64));
                a_cols.push(Value::Int(j as i64));
                a_vals.push(a[i][j]);
                b_rows.push(Value::Int(i as i64));
                b_cols.push(Value::Int(j as i64));
                b_vals.push(b[i][j]);
            }
        }
        let result = tcu_matmul_query(
            &a_rows, &a_cols, &a_vals, &b_rows, &b_cols, &b_vals, GemmPrecision::Fp32,
        ).expect("matmul query runs");
        // result[(col, row)] = Σ_key A[key][col] · B[row][key]
        for (c, r, v) in result {
            let (c, r) = (c.as_i64().unwrap() as usize, r.as_i64().unwrap() as usize);
            let mut want = 0.0;
            for key in 0..dim {
                want += a[key][c] * b[r][key];
            }
            prop_assert!((want - v).abs() < 1e-4, "({c},{r}): {v} vs {want}");
        }
    }

    /// End-to-end engine equivalence on random two-table instances.
    #[test]
    fn tcudb_and_ydb_agree_on_random_joins(
        a in prop::collection::vec((0i64..8, 1i64..100), 1..40),
        b in prop::collection::vec((0i64..8, 1i64..100), 1..40),
    ) {
        let table_a = Table::from_int_columns(
            "A",
            &[("id", a.iter().map(|(k, _)| *k).collect()),
              ("val", a.iter().map(|(_, v)| *v).collect())],
        ).unwrap();
        let table_b = Table::from_int_columns(
            "B",
            &[("id", b.iter().map(|(k, _)| *k).collect()),
              ("val", b.iter().map(|(_, v)| *v).collect())],
        ).unwrap();
        let tcudb = TcuDb::default();
        tcudb.register_table(table_a.clone());
        tcudb.register_table(table_b.clone());
        let ydb = YdbEngine::default();
        ydb.register_table(table_a);
        ydb.register_table(table_b);

        let sql = "SELECT SUM(A.val * B.val), COUNT(*) FROM A, B WHERE A.id = B.id";
        let t = tcudb.execute(sql).unwrap();
        let y = ydb.execute(sql).unwrap();
        prop_assert_eq!(t.table.row(0)[1].as_i64().unwrap(), y.table.row(0)[1].as_i64().unwrap());
        let ts = t.table.row(0)[0].as_f64().unwrap();
        let ys = y.table.row(0)[0].as_f64().unwrap();
        prop_assert!((ts - ys).abs() < 1e-6);
    }
}
