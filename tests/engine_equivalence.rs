//! Cross-engine integration tests: TCUDB, the YDB baseline and the CPU
//! baseline must return identical answers for every workload family of the
//! paper's evaluation.  (Timings differ — that is the point of the paper —
//! but answers never do.)

use tcudb::datagen::{em, graph, matmul, micro, ssb, Xorshift};
use tcudb::prelude::*;

/// Run one query on all three engines and assert the result tables match
/// row for row (after sorting rows textually, since row order is only
/// defined when the query has an ORDER BY).
fn assert_engines_agree(catalog: &Catalog, sql: &str) {
    let tcudb = TcuDb::default();
    tcudb.set_catalog(catalog.clone());
    let ydb = YdbEngine::default();
    ydb.set_catalog(catalog.clone());
    let monet = MonetEngine::default();
    monet.set_catalog(catalog.clone());

    let t = tcudb.execute(sql).expect("tcudb executes");
    let y = ydb.execute(sql).expect("ydb executes");
    let m = monet.execute(sql).expect("monet executes");

    let normalize = |table: &Table| -> Vec<String> {
        let mut rows: Vec<String> = (0..table.num_rows())
            .map(|i| {
                table
                    .row(i)
                    .iter()
                    .map(|v| match v {
                        Value::Float(f) => format!("{:.6}", f),
                        other => other.to_string(),
                    })
                    .collect::<Vec<_>>()
                    .join("|")
            })
            .collect();
        rows.sort();
        rows
    };

    assert_eq!(
        normalize(&t.table),
        normalize(&y.table),
        "TCUDB vs YDB on {sql}"
    );
    assert_eq!(
        normalize(&t.table),
        normalize(&m.table),
        "TCUDB vs CPU on {sql}"
    );
}

#[test]
fn microbenchmark_queries_agree_across_engines() {
    let catalog = micro::gen_catalog(&micro::MicroConfig::new(512, 16));
    for (_, sql) in micro::queries() {
        assert_engines_agree(&catalog, sql);
    }
    assert_engines_agree(&catalog, micro::Q5);
}

#[test]
fn microbenchmark_agreement_across_distinct_counts() {
    for distinct in [4, 64, 256] {
        let catalog = micro::gen_catalog(&micro::MicroConfig::new(256, distinct));
        assert_engines_agree(&catalog, micro::Q1);
        assert_engines_agree(&catalog, micro::Q3);
    }
}

#[test]
fn matrix_multiplication_query_agrees_across_engines() {
    let catalog = matmul::gen_catalog(24, 1.0, matmul::ValueRange::Int7, 3);
    assert_engines_agree(&catalog, matmul::MATMUL_QUERY);
    // Sparse matrices exercise the TCU-SpMM path.
    let sparse = matmul::gen_catalog(48, 0.05, matmul::ValueRange::Binary, 5);
    assert_engines_agree(&sparse, matmul::MATMUL_QUERY);
}

#[test]
fn entity_matching_blocking_agrees_across_engines() {
    // A shrunken BeerAdvo-style dataset keeps the debug-mode runtime low
    // while exercising every blocking attribute.
    let dataset = em::EmDataset {
        name: "mini-beer",
        rows_a: 400,
        rows_b: 300,
        attributes: vec![
            ("ABV", 20),
            ("STYLE", 71),
            ("FACTORY", 368),
            ("BEER_NAME", 623),
        ],
    };
    let catalog = em::gen_catalog(&dataset, 23);
    for (attr, _) in &dataset.attributes {
        assert_engines_agree(&catalog, &em::blocking_query(attr));
    }
}

#[test]
fn ssb_flight_representatives_agree_across_engines() {
    // A hand-shrunk SSB instance (the mini generator's smallest scale is
    // still 60 000 fact rows, too slow for a debug-mode test).
    let mut rng = Xorshift::new(9);
    let date = ssb::gen_date();
    let customer = ssb::gen_customer(60, &mut rng);
    let supplier = ssb::gen_supplier(10, &mut rng);
    let part = ssb::gen_part(80, &mut rng);
    let scale = ssb::SsbScale {
        sf: 1,
        lineorder: 2_000,
        customer: 60,
        supplier: 10,
        part: 80,
        date: 2_556,
    };
    let lineorder = ssb::gen_lineorder(&scale, &date, &mut rng);
    let mut catalog = Catalog::new();
    catalog.register(date);
    catalog.register(customer);
    catalog.register(supplier);
    catalog.register(part);
    catalog.register(lineorder);

    for (_, sql) in ssb::figure9_queries() {
        assert_engines_agree(&catalog, &sql);
    }
}

#[test]
fn pagerank_queries_agree_across_engines() {
    let g = graph::gen_road_graph(256, 520, 7);
    let mut catalog = graph::gen_catalog(&g);
    graph::register_pagerank_state(&mut catalog, &g, &vec![1.0 / 256.0; 256]);
    assert_engines_agree(&catalog, graph::PR_Q1);
    assert_engines_agree(&catalog, &graph::pr_q2(g.nodes));
    assert_engines_agree(&catalog, &graph::pr_q3(g.nodes));
}

#[test]
fn forced_plans_do_not_change_answers() {
    let catalog = micro::gen_catalog(&micro::MicroConfig::new(300, 8));
    let sql = micro::Q3;
    let normalize = |table: &Table| -> Vec<String> {
        let mut rows: Vec<String> = (0..table.num_rows())
            .map(|i| {
                table
                    .row(i)
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("|")
            })
            .collect();
        rows.sort();
        rows
    };
    let reference = {
        let db = TcuDb::default();
        db.set_catalog(catalog.clone());
        normalize(&db.execute(sql).unwrap().table)
    };
    for plan in [
        PlanKind::TcuDense,
        PlanKind::TcuSparse,
        PlanKind::GpuFallback,
    ] {
        let db = TcuDb::new(EngineConfig::default().with_forced_plan(plan));
        db.set_catalog(catalog.clone());
        let out = db.execute(sql).unwrap();
        assert_eq!(normalize(&out.table), reference, "plan {plan:?}");
    }
}
