//! Smoke tests for the workspace wiring itself: every crate the umbrella
//! re-exports is reachable, and the `prelude` exposes a working type from
//! each layer.  (The companion check that every `examples/*.rs` target
//! still builds runs as `cargo build --examples` in CI.)

use tcudb::prelude::*;

/// One type or function from each of the ten re-exported member crates,
/// addressed through the umbrella module paths.
#[test]
fn every_reexported_crate_is_reachable() {
    // types
    let v: tcudb::types::Value = Value::Int(7);
    assert_eq!(v.as_i64().unwrap(), 7);

    // tensor
    let m = tcudb::tensor::DenseMatrix::zeros(2, 2);
    assert_eq!((m.rows(), m.cols()), (2, 2));

    // storage
    let t = Table::from_int_columns("T", &[("id", vec![1, 2, 3])]).unwrap();
    assert_eq!(t.num_rows(), 3);

    // device
    let profile = tcudb::device::DeviceProfile::rtx_3090();
    assert_eq!(profile.name, "RTX 3090");

    // sql
    let stmt = parse("SELECT COUNT(*) FROM T").unwrap();
    assert!(!format!("{stmt:?}").is_empty());

    // core
    let db = TcuDb::default();
    assert!(db.catalog().is_empty());

    // datagen
    let cfg = tcudb::datagen::micro::MicroConfig::new(64, 8);
    let table = tcudb::datagen::micro::gen_table("M", &cfg);
    assert_eq!(table.num_rows(), 64);

    // ydb
    let ydb = YdbEngine::default();
    assert!(format!("{ydb:?}").contains("Ydb"));

    // monet
    let monet = MonetEngine::default();
    assert!(format!("{monet:?}").contains("Monet"));

    // magiq
    let g = tcudb::magiq::Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
    assert_eq!(g.num_edges(), 2);
}

/// The prelude alone is enough to run a query end-to-end through every
/// layer (sql -> core -> storage -> tensor -> device).
#[test]
fn prelude_supports_end_to_end_query() {
    let db = TcuDb::default();
    db.register_table(
        Table::from_int_columns("A", &[("id", vec![1, 2, 3]), ("val", vec![10, 20, 30])]).unwrap(),
    );
    db.register_table(Table::from_int_columns("B", &[("id", vec![2, 3])]).unwrap());
    let out = db
        .execute("SELECT SUM(A.val), COUNT(*) FROM A, B WHERE A.id = B.id")
        .unwrap();
    assert_eq!(out.table.row(0)[0].as_f64().unwrap(), 50.0);
    assert_eq!(out.table.row(0)[1].as_i64().unwrap(), 2);
    assert!(out.timeline.total_seconds() > 0.0);
}
