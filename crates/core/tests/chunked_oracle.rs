//! Oracle suite for partitioned storage + morsel-driven execution: a
//! chunked, zone-map-pruned, morsel-parallel engine must produce results
//! **byte-identical** to the single-chunk single-thread engine across
//! random schemas, chunk sizes (including 1-row chunks and chunks far
//! larger than the table) and thread counts — and the encoded and
//! interpreter paths must keep emitting identical plans (including the
//! zone-prune steps) while chunked.

use proptest::prelude::*;
use tcudb_core::{EngineConfig, TcuDb};
use tcudb_storage::{Column, ColumnDef, Schema, Table};
use tcudb_types::DataType;

/// Chunk sizes under test: degenerate 1-row chunks (every row is its own
/// zone), small odd sizes that straddle table boundaries, and a chunk far
/// larger than any generated table (the unpartitioned layout).
const CHUNK_SIZES: [usize; 4] = [1, 3, 7, 1 << 20];

/// Queries mixing prunable atoms (comparisons, BETWEEN), unprunable text
/// predicates, equi joins (exercising semi-join key-range pushdown onto
/// the partner table), grouping and ordering.
const QUERIES: [&str; 8] = [
    "SELECT A.val FROM A WHERE A.val BETWEEN 2 AND 9",
    "SELECT A.val, B.val FROM A, B WHERE A.id = B.id",
    "SELECT A.val, B.val FROM A, B WHERE A.id = B.id AND A.val >= 5",
    "SELECT A.val, B.val FROM A, B WHERE A.id = B.id AND A.val < 4 AND B.tag = 's1'",
    "SELECT SUM(A.val), B.tag FROM A, B WHERE A.id = B.id AND B.val > 2 GROUP BY B.tag",
    "SELECT SUM(A.val * B.val) FROM A, B WHERE A.id = B.id AND A.id BETWEEN 1 AND 6",
    "SELECT A.id, SUM(B.val) FROM A, B WHERE A.id = B.id GROUP BY A.id ORDER BY A.id LIMIT 5",
    "SELECT A.val FROM A, B WHERE A.id = B.id AND A.val + 1 > 3 AND B.tag <> 's2'",
];

fn build_tables(
    a_rows: &[(i64, i64)],
    b_rows: &[(i64, i64, i64)],
    chunk_rows: usize,
) -> (Table, Table) {
    let mut a = Table::from_columns(
        "A",
        Schema::from_pairs(&[("id", DataType::Int64), ("val", DataType::Int64)]),
        vec![
            Column::Int64(a_rows.iter().map(|&(i, _)| i).collect()),
            Column::Int64(a_rows.iter().map(|&(_, v)| v).collect()),
        ],
    )
    .unwrap();
    let mut b = Table::from_columns(
        "B",
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int64),
            ColumnDef::new("val", DataType::Float64),
            ColumnDef::new("tag", DataType::Text),
        ]),
        vec![
            Column::Int64(b_rows.iter().map(|&(i, _, _)| i).collect()),
            Column::Float64(b_rows.iter().map(|&(_, v, _)| v as f64 * 0.5).collect()),
            Column::Text(b_rows.iter().map(|&(_, _, t)| format!("s{t}")).collect()),
        ],
    )
    .unwrap();
    a.set_chunk_rows(chunk_rows);
    b.set_chunk_rows(chunk_rows);
    (a, b)
}

fn engine(encoded: bool, prune: bool, threads: usize, a: &Table, b: &Table) -> TcuDb {
    let db = TcuDb::new(
        EngineConfig::default()
            .with_encoded_path(encoded)
            .with_zone_prune(prune)
            .with_morsel_threads(Some(threads)),
    );
    db.register_table(a.clone());
    db.register_table(b.clone());
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full grid: every query must return the same table from
    /// (a) the unchunked single-thread no-prune reference,
    /// (b) the chunked pruned morsel-parallel encoded engine, and
    /// (c) the chunked pruned interpreter engine — with (b) and (c)
    /// agreeing on the plan text, zone-prune steps included.
    #[test]
    fn chunked_morsel_execution_matches_serial_unchunked(
        a_rows in prop::collection::vec((0i64..12, -20i64..40), 0..70),
        b_rows in prop::collection::vec((0i64..12, 0i64..30, 0i64..4), 0..50),
        chunk_sel in 0usize..4,
        threads in 1usize..4,
        query_idx in 0usize..8,
    ) {
        let sql = QUERIES[query_idx];
        let chunk_rows = CHUNK_SIZES[chunk_sel];

        // Reference: default (unpartitioned-size) chunks, pruning off,
        // one morsel thread — the pre-partitioning engine.
        let (ra, rb) = build_tables(&a_rows, &b_rows, 1 << 20);
        let reference = engine(true, false, 1, &ra, &rb).execute(sql).unwrap();

        let (a, b) = build_tables(&a_rows, &b_rows, chunk_rows);
        // Chunks of every table the query actually scans (query 0 is the
        // single-table case).
        let total_chunks = (a.chunk_count()
            + if sql.contains("B.") { b.chunk_count() } else { 0 }) as u64;
        let enc = engine(true, true, threads, &a, &b).execute(sql).unwrap();
        let interp = engine(false, true, threads, &a, &b).execute(sql).unwrap();

        prop_assert_eq!(&enc.table, &reference.table, "encoded {} chunk={}", sql, chunk_rows);
        prop_assert_eq!(&interp.table, &reference.table, "interp {} chunk={}", sql, chunk_rows);
        // Pruning decisions are path-independent, so the plans still match.
        prop_assert_eq!(&enc.plan.steps, &interp.plan.steps, "{} chunk={}", sql, chunk_rows);

        // Chunk accounting: every chunk of every scanned table is either
        // scanned or pruned, never dropped on the floor.
        prop_assert_eq!(
            enc.host.chunks_scanned + enc.host.chunks_pruned,
            total_chunks,
            "{} chunk={}",
            sql,
            chunk_rows
        );
    }

    /// Zone-map pruning itself is invisible: the same chunked engine with
    /// pruning toggled must agree byte-for-byte (the pruned chunks could
    /// never have contributed rows).
    #[test]
    fn zone_pruning_never_changes_results(
        a_rows in prop::collection::vec((0i64..12, -20i64..40), 0..70),
        b_rows in prop::collection::vec((0i64..12, 0i64..30, 0i64..4), 0..50),
        chunk_sel in 0usize..4,
        query_idx in 0usize..8,
    ) {
        let sql = QUERIES[query_idx];
        let (a, b) = build_tables(&a_rows, &b_rows, CHUNK_SIZES[chunk_sel]);
        let pruned = engine(true, true, 1, &a, &b).execute(sql).unwrap();
        let unpruned = engine(true, false, 1, &a, &b).execute(sql).unwrap();
        prop_assert_eq!(&pruned.table, &unpruned.table, "{}", sql);
        prop_assert_eq!(unpruned.host.chunks_pruned, 0);
    }
}

/// Deterministic spot check: a filter that excludes whole chunks must
/// report them pruned, and a 1-row-chunk table must prune at row
/// granularity.
#[test]
fn pruning_stats_reflect_zone_maps() {
    let rows: Vec<(i64, i64)> = (0..30).map(|i| (i, i)).collect();
    let (a, b) = build_tables(&rows, &[], 10);
    // val >= 20 lives entirely in the last of A's three 10-row chunks.
    let db = engine(true, true, 1, &a, &b);
    let out = db.execute("SELECT A.val FROM A WHERE A.val >= 20").unwrap();
    assert_eq!(out.table.num_rows(), 10);
    assert_eq!(out.host.chunks_pruned, 2);
    assert_eq!(out.host.chunks_scanned, 1);
    assert!(out
        .plan
        .steps
        .iter()
        .any(|s| s.contains("zone-prune") && s.contains("2/3")));

    let (a1, b1) = build_tables(&rows, &[], 1);
    let db1 = engine(true, true, 2, &a1, &b1);
    let out1 = db1.execute("SELECT A.val FROM A WHERE A.val = 7").unwrap();
    assert_eq!(out1.table.num_rows(), 1);
    assert_eq!(out1.host.chunks_pruned, 29);
    assert_eq!(out1.host.chunks_scanned, 1);
}
