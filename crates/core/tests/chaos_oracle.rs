//! Chaos oracle: cooperative cancellation swept across EVERY probe
//! index, composed with transient storage faults and concurrent
//! readers.
//!
//! The contract being checked:
//!
//! * a query cancelled at *any* cooperative checkpoint returns a typed
//!   [`TcuError::Cancelled`] — never a panic, a poisoned lock, or a
//!   partial result — and the engine keeps answering correctly
//!   afterwards;
//! * an expired deadline returns [`TcuError::DeadlineExceeded`] the
//!   same way;
//! * transient backend blips during ingest are absorbed by the
//!   durability retry policy: every acknowledged write survives reboot
//!   and recovery, and the recovered catalog matches the serial shadow
//!   oracle;
//! * probe schedules are deterministic (small inputs stay on the
//!   single-threaded kernels), so the sweep is exhaustive, not sampled.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use tcudb_core::{EngineConfig, TcuDb};
use tcudb_storage::{Catalog, DurabilityOptions, MemBackend, Table};
use tcudb_types::sync::{CancellationToken, Deadline, QueryContext};
use tcudb_types::{TcuError, Value};

/// Statements covering the engine's pattern space: plain joins, grouped
/// and fused aggregates, non-equi joins, single-table filters, and a
/// three-way join — each exercises a different probe schedule.
const QUERIES: [&str; 7] = [
    "SELECT A.val, B.val FROM A, B WHERE A.id = B.id",
    "SELECT SUM(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val",
    "SELECT SUM(A.val * B.val) FROM A, B WHERE A.id = B.id",
    "SELECT A.val, B.val FROM A, B WHERE A.id < B.id",
    "SELECT A.val FROM A WHERE A.val >= 20 ORDER BY A.val DESC",
    "SELECT COUNT(*), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val ORDER BY B.val",
    "SELECT A.val, B.val, C.w FROM A, B, C WHERE A.id = B.id AND B.id = C.id",
];

fn base_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.register(
        Table::from_int_columns(
            "A",
            &[
                ("id", vec![1, 1, 2, 3, 5, 5]),
                ("val", vec![10, 11, 12, 13, 14, 15]),
            ],
        )
        .unwrap(),
    );
    cat.register(
        Table::from_int_columns(
            "B",
            &[("id", vec![1, 2, 2, 4, 5]), ("val", vec![5, 6, 7, 8, 9])],
        )
        .unwrap(),
    );
    cat.register(
        Table::from_int_columns("C", &[("id", vec![1, 2, 4]), ("w", vec![100, 200, 400])]).unwrap(),
    );
    cat
}

/// Run `sql` under a fresh counting context; returns the output and the
/// number of cooperative probes the query hit.
fn run_counted(db: &TcuDb, sql: &str) -> (Table, u64) {
    let token = CancellationToken::new();
    let ctx = QueryContext::with_token(token.clone());
    let snap = db.snapshot();
    let entry = db.prepare(sql, &snap).unwrap();
    let out = db
        .execute_prepared_ctx(&entry, &ctx)
        .expect("uncancelled run succeeds");
    (out.table, token.checks())
}

/// Cancel `sql` at probe `k` and require a typed `Cancelled` error.
fn run_cancelled_at(db: &TcuDb, sql: &str, k: u64) {
    let token = CancellationToken::new();
    token.cancel_at_check(k);
    let ctx = QueryContext::with_token(token);
    let snap = db.snapshot();
    let entry = db.prepare(sql, &snap).unwrap();
    match db.execute_prepared_ctx(&entry, &ctx) {
        Err(TcuError::Cancelled(_)) => {}
        Ok(_) => panic!("{sql}: cancel at probe {k} still returned a result"),
        Err(e) => panic!("{sql}: cancel at probe {k} returned wrong error: {e}"),
    }
}

/// Sweep cancellation across every cooperative probe index of every
/// query shape, checking the engine answers correctly after each abort.
#[test]
fn cancellation_sweep_covers_every_probe_index() {
    let db = TcuDb::default();
    db.set_catalog(base_catalog());

    for sql in QUERIES {
        let expected = db.execute(sql).expect("baseline executes").table;
        let (counted, probes) = run_counted(&db, sql);
        assert_eq!(counted, expected, "{sql}: context-threaded run diverged");
        assert!(probes > 0, "{sql}: query hit no cooperative probes");
        // The probe schedule must be deterministic or the sweep is moot.
        let (_, probes2) = run_counted(&db, sql);
        assert_eq!(probes, probes2, "{sql}: probe schedule is nondeterministic");

        for k in 0..probes {
            run_cancelled_at(&db, sql, k);
            // The abort left no poisoned lock and no stale state: the
            // very next run still matches the baseline bitwise.
            let again = db.execute(sql).expect("engine live after cancel").table;
            assert_eq!(
                again, expected,
                "{sql}: result diverged after cancel at probe {k}"
            );
        }
    }
}

/// An already-expired deadline aborts at the first probe with the typed
/// error, and the engine stays live.
#[test]
fn expired_deadline_is_typed_and_engine_stays_live() {
    let db = TcuDb::default();
    db.set_catalog(base_catalog());
    let sql = QUERIES[1];
    let expected = db.execute(sql).unwrap().table;

    let ctx = QueryContext::unbounded().deadline(Deadline::after(std::time::Duration::ZERO));
    let snap = db.snapshot();
    let entry = db.prepare(sql, &snap).unwrap();
    match db.execute_prepared_ctx(&entry, &ctx) {
        Err(TcuError::DeadlineExceeded(_)) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(db.execute(sql).unwrap().table, expected);
}

/// Chunked tables turn scans into many-morsel pipelines; every morsel is
/// a cooperative checkpoint, and cancellation at each of them must stay
/// typed — serially and with parallel morsel workers.
#[test]
fn cancellation_sweep_hits_per_morsel_checkpoints() {
    let mut cat = base_catalog();
    for name in ["A", "B", "C"] {
        let mut t = (*cat.table(name).unwrap()).clone();
        t.set_chunk_rows(2);
        cat.register(t);
    }
    let db = TcuDb::new(EngineConfig::default().with_morsel_threads(Some(1)));
    db.set_catalog(cat.clone());
    let unchunked = TcuDb::default();
    unchunked.set_catalog(base_catalog());

    // A filtered scan over 2-row chunks probes once per surviving morsel:
    // strictly more checkpoints than the same scan over one big chunk.
    let filtered = "SELECT A.val FROM A WHERE A.val >= 12";
    let (_, chunked_probes) = run_counted(&db, filtered);
    let (_, flat_probes) = run_counted(&unchunked, filtered);
    assert!(
        chunked_probes > flat_probes,
        "chunking added no per-morsel checkpoints ({chunked_probes} vs {flat_probes})"
    );

    for sql in QUERIES {
        let expected = unchunked.execute(sql).unwrap().table;
        let (counted, probes) = run_counted(&db, sql);
        assert_eq!(counted, expected, "{sql}: chunked run diverged");
        let (_, probes2) = run_counted(&db, sql);
        assert_eq!(
            probes, probes2,
            "{sql}: chunked probe schedule nondeterministic"
        );
        for k in 0..probes {
            run_cancelled_at(&db, sql, k);
        }
        assert_eq!(
            db.execute(sql).unwrap().table,
            expected,
            "{sql}: diverged after the abort sweep"
        );
    }

    // With two morsel workers the schedule interleaves, but an abort at
    // any reachable probe index is still a typed `Cancelled` and the
    // engine stays live and correct afterwards.
    let par = TcuDb::new(EngineConfig::default().with_morsel_threads(Some(2)));
    par.set_catalog(cat);
    for sql in QUERIES {
        let expected = unchunked.execute(sql).unwrap().table;
        let (tbl, probes) = run_counted(&par, sql);
        assert_eq!(tbl, expected, "{sql}: parallel chunked run diverged");
        for k in [0, probes / 2, probes.saturating_sub(1)] {
            run_cancelled_at(&par, sql, k);
        }
        assert_eq!(
            par.execute(sql).unwrap().table,
            expected,
            "{sql}: diverged after parallel aborts"
        );
    }
}

/// The composition test: concurrent readers cancelling at rotating probe
/// indices race a durable writer whose backend suffers transient blips,
/// then the machine reboots and recovery is checked against the shadow
/// oracle.
#[test]
fn chaos_readers_cancellation_and_transient_faults_compose() {
    const APPENDS: usize = 24;
    let join = "SELECT SUM(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val";

    // Shadow oracle: the serial interpreter's answer after 0..=k appends.
    // Any reader snapshot pinned one of these states.
    let mut valid: Vec<Table> = Vec::new();
    {
        let mut cat = base_catalog();
        let oracle = |cat: &Catalog| {
            let o = TcuDb::new(EngineConfig::default().with_encoded_path(false));
            o.set_catalog(cat.clone());
            o.execute(join).expect("oracle executes").table
        };
        valid.push(oracle(&cat));
        let mut b = (*cat.table("B").unwrap()).clone();
        for i in 0..APPENDS {
            b.push_row(vec![
                Value::Int((i % 6) as i64),
                Value::Int(3000 + i as i64),
            ])
            .unwrap();
            cat.register(b.clone());
            valid.push(oracle(&cat));
        }
    }

    let be = MemBackend::new();
    let db = TcuDb::open_with_backend(
        Arc::new(be.clone()),
        EngineConfig::default(),
        DurabilityOptions::strict_manual(),
    )
    .expect("open durable engine");
    db.try_set_catalog(base_catalog()).unwrap();
    let db = Arc::new(db);

    let stop = AtomicBool::new(false);
    let cancelled_seen = AtomicU64::new(0);
    let completed_seen = AtomicU64::new(0);
    let mut acked: Vec<(i64, u64)> = Vec::new();
    std::thread::scope(|s| {
        let stop = &stop;
        let cancelled_seen = &cancelled_seen;
        let completed_seen = &completed_seen;
        // Readers: rotate the cancel index through 0..32 so aborts land
        // on every probe the query schedule reaches, interleaved with
        // snapshot publishes from the writer.
        for r in 0..3usize {
            let db = Arc::clone(&db);
            let valid = &valid;
            s.spawn(move || {
                let mut k = r as u64; // stagger the sweep across readers
                while !stop.load(Ordering::Relaxed) {
                    let token = CancellationToken::new();
                    token.cancel_at_check(k % 32);
                    k += 1;
                    let ctx = QueryContext::with_token(token);
                    let snap = db.snapshot();
                    let entry = db.prepare(join, &snap).unwrap();
                    match db.execute_prepared_ctx(&entry, &ctx) {
                        Ok(out) => {
                            completed_seen.fetch_add(1, Ordering::Relaxed);
                            assert!(
                                valid.contains(&out.table),
                                "reader saw a state no published snapshot had"
                            );
                        }
                        Err(TcuError::Cancelled(_)) => {
                            cancelled_seen.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("reader got non-cancellation error: {e}"),
                    }
                }
            });
        }
        // Writer: every third commit fires through injected transient
        // blips; all of them must be acknowledged (the retry absorbs the
        // blips — strict_manual budgets 4 attempts).
        for i in 0..APPENDS {
            if i % 3 == 0 {
                be.inject_transient_failures(1 + (i as u64 % 3));
            }
            db.append_rows(
                "B",
                vec![vec![
                    Value::Int((i % 6) as i64),
                    Value::Int(3000 + i as i64),
                ]],
            )
            .expect("acked write despite transient blips");
            acked.push((3000 + i as i64, db.epoch()));
        }
        // Keep the chaos window open until both reader outcomes the
        // assertions below require have actually happened: on a
        // single-core box the readers may barely get scheduled while the
        // writer loop runs, and closing the window immediately makes the
        // test a race against the OS scheduler.
        let window = std::time::Instant::now();
        while (cancelled_seen.load(Ordering::Relaxed) == 0
            || completed_seen.load(Ordering::Relaxed) == 0)
            && window.elapsed() < std::time::Duration::from_secs(30)
        {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert!(be.transient_trips() > 0, "fault injection never fired");
    assert!(
        cancelled_seen.load(Ordering::Relaxed) > 0,
        "cancellation sweep never fired"
    );
    assert!(
        completed_seen.load(Ordering::Relaxed) > 0,
        "no reader ever ran to completion"
    );
    // Quiesced: the live engine sits at the fully-ingested oracle state.
    assert_eq!(&db.execute(join).unwrap().table, valid.last().unwrap());

    // Reboot and recover: every acknowledged write is present, and the
    // recovered engine answers like the serial interpreter.
    let last_epoch = acked.last().unwrap().1;
    drop(db);
    be.reboot();
    let db = TcuDb::open_with_backend(
        Arc::new(be.clone()),
        EngineConfig::default(),
        DurabilityOptions::strict_manual(),
    )
    .expect("recovery after reboot");
    let report = db.recovery_report().unwrap().clone();
    assert!(
        report.recovered_epoch >= last_epoch,
        "lost acked epoch {last_epoch}, recovered {}",
        report.recovered_epoch
    );
    let snap = db.snapshot();
    let vals = snap
        .table("B")
        .unwrap()
        .column_by_name("val")
        .unwrap()
        .as_i64()
        .unwrap()
        .to_vec();
    for (val, epoch) in &acked {
        assert!(
            vals.contains(val),
            "acked row val={val} (epoch {epoch}) missing after recovery"
        );
    }
    assert_eq!(&db.execute(join).unwrap().table, valid.last().unwrap());

    // The recovered engine still honours cancellation.
    let (_, probes) = run_counted(&db, join);
    assert!(probes > 0);
    run_cancelled_at(&db, join, probes / 2);
    assert_eq!(&db.execute(join).unwrap().table, valid.last().unwrap());
}
