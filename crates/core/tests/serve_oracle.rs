//! Concurrency oracle: N threads hammering one shared `TcuDb` — with
//! overlapping identical and distinct statements, plan-cache hits, and
//! interleaved ingest publishing new snapshots — must produce results
//! **byte-identical** to what a serial run of the row-at-a-time `Value`
//! interpreter produces for the corresponding catalog state.
//!
//! The serial interpreter engine (`encoded_path = false`, cold engine per
//! check, no plan cache reuse across epochs) is the oracle; the shared
//! engine under test runs the full serving configuration: encoded data
//! path, shared dictionary caches, snapshot pinning and the plan cache.

use proptest::prelude::*;
use std::sync::Arc;
use tcudb_core::{EngineConfig, TcuDb};
use tcudb_storage::{Catalog, Table};
use tcudb_types::Value;

/// Statements chosen to cover the engine's pattern space: plain joins,
/// grouped/fused aggregates, non-equi joins, single-table filters, and a
/// three-way join.
const QUERIES: [&str; 7] = [
    "SELECT A.val, B.val FROM A, B WHERE A.id = B.id",
    "SELECT SUM(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val",
    "SELECT SUM(A.val * B.val) FROM A, B WHERE A.id = B.id",
    "SELECT A.val, B.val FROM A, B WHERE A.id < B.id",
    "SELECT A.val FROM A WHERE A.val >= 20 ORDER BY A.val DESC",
    "SELECT COUNT(*), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val ORDER BY B.val",
    "SELECT A.val, B.val, C.w FROM A, B, C WHERE A.id = B.id AND B.id = C.id",
];

fn base_catalog(a_ids: &[i64], b_ids: &[i64]) -> Catalog {
    let mut cat = Catalog::new();
    let a_vals: Vec<i64> = (0..a_ids.len() as i64).map(|i| 10 + i).collect();
    let b_vals: Vec<i64> = (0..b_ids.len() as i64).map(|i| 5 + i).collect();
    cat.register(Table::from_int_columns("A", &[("id", a_ids.to_vec()), ("val", a_vals)]).unwrap());
    cat.register(Table::from_int_columns("B", &[("id", b_ids.to_vec()), ("val", b_vals)]).unwrap());
    cat.register(
        Table::from_int_columns("C", &[("id", vec![1, 2, 4]), ("w", vec![100, 200, 400])]).unwrap(),
    );
    cat
}

/// Serial interpreter oracle: a fresh engine on the `Value` path.
fn oracle_results(catalog: &Catalog, queries: &[&str]) -> Vec<Table> {
    let oracle = TcuDb::new(EngineConfig::default().with_encoded_path(false));
    oracle.set_catalog(catalog.clone());
    queries
        .iter()
        .map(|sql| oracle.execute(sql).expect("oracle executes").table)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Read-only phase: every thread sees exactly the serial answers, and
    /// repeat statements are served from the plan cache.
    #[test]
    fn concurrent_reads_match_serial_interpreter(
        a_ids in prop::collection::vec(0i64..6, 1..24),
        b_ids in prop::collection::vec(0i64..6, 1..16),
        threads in 2usize..6,
        reps in 1usize..4,
    ) {
        let catalog = base_catalog(&a_ids, &b_ids);
        let expected = oracle_results(&catalog, &QUERIES);

        let db = Arc::new(TcuDb::default());
        db.set_catalog(catalog);
        std::thread::scope(|s| {
            for t in 0..threads {
                let db = Arc::clone(&db);
                let expected = &expected;
                s.spawn(move || {
                    for r in 0..reps {
                        // Identical and distinct statements overlap across
                        // threads: each thread walks the query list from a
                        // different offset.
                        for q in 0..QUERIES.len() {
                            let i = (q + t + r) % QUERIES.len();
                            let out = db.execute(QUERIES[i]).expect("query executes");
                            assert_eq!(
                                out.table, expected[i],
                                "thread {t} rep {r} diverged on {}",
                                QUERIES[i]
                            );
                        }
                    }
                });
            }
        });

        // Each execution performs exactly one cache lookup.  A statement
        // misses once — plus at most once per extra thread racing the
        // same first lookup — and every other execution hits.
        let stats = db.plan_cache_stats();
        let total = (threads * reps * QUERIES.len()) as u64;
        let q = QUERIES.len() as u64;
        prop_assert_eq!(stats.hits + stats.misses, total);
        prop_assert!(stats.misses >= q, "stats: {:?}", stats);
        prop_assert!(stats.misses <= q * threads as u64, "stats: {:?}", stats);
    }

    /// Ingest phase: reader threads race a writer that appends rows and
    /// registers tables (publishing new snapshots).  Every observed result
    /// must equal the serial interpreter's answer for *some* published
    /// catalog state, and the post-ingest state must equal the oracle's.
    #[test]
    fn concurrent_reads_with_interleaved_ingest_match_some_snapshot(
        a_ids in prop::collection::vec(0i64..6, 1..16),
        b_ids in prop::collection::vec(0i64..6, 1..12),
        ingest_ids in prop::collection::vec(0i64..6, 1..8),
        readers in 2usize..5,
    ) {
        let catalog = base_catalog(&a_ids, &b_ids);
        // The writer appends one row to B per step.  Pre-compute the
        // oracle answer for every intermediate catalog state (0..=k rows
        // appended): any in-flight reader pinned one of these snapshots.
        let join = "SELECT SUM(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val";
        let mut valid: Vec<Table> = Vec::new();
        {
            let mut cat = catalog.clone();
            valid.push(oracle_results(&cat, &[join]).remove(0));
            let mut b = (*cat.table("B").unwrap()).clone();
            for (i, &id) in ingest_ids.iter().enumerate() {
                b.push_row(vec![Value::Int(id), Value::Int(1000 + i as i64)]).unwrap();
                cat.register(b.clone());
                valid.push(oracle_results(&cat, &[join]).remove(0));
            }
        }

        let db = Arc::new(TcuDb::default());
        db.set_catalog(catalog);
        std::thread::scope(|s| {
            for _ in 0..readers {
                let db = Arc::clone(&db);
                let valid = &valid;
                s.spawn(move || {
                    for _ in 0..2 * valid.len() {
                        let out = db.execute(join).expect("query executes");
                        assert!(
                            valid.contains(&out.table),
                            "result does not match any published snapshot state"
                        );
                    }
                });
            }
            let writer = Arc::clone(&db);
            let ingest = ingest_ids.clone();
            s.spawn(move || {
                for (i, id) in ingest.into_iter().enumerate() {
                    writer
                        .append_rows("B", vec![vec![Value::Int(id), Value::Int(1000 + i as i64)]])
                        .expect("ingest succeeds");
                }
            });
        });

        // Quiesced: the final snapshot equals the fully ingested oracle.
        let final_out = db.execute(join).expect("query executes");
        prop_assert_eq!(&final_out.table, valid.last().unwrap());
    }

    /// Kill-and-recover under concurrent load: readers hammer a durable
    /// engine while a writer ingests one commit at a time until an
    /// injected crash kills the backend mid-stream.  After reboot and
    /// recovery, every acknowledged write must be present at (or before)
    /// its acknowledged epoch, and queries must match the serial
    /// interpreter for the recovered catalog.
    #[test]
    fn kill_and_recover_keeps_every_acked_write_visible(
        a_ids in prop::collection::vec(0i64..6, 1..12),
        b_ids in prop::collection::vec(0i64..6, 1..8),
        readers in 2usize..4,
        crash_at in 5usize..80,
    ) {
        use tcudb_storage::{DurabilityOptions, FaultSpec, MemBackend};

        let backend = MemBackend::with_faults(FaultSpec {
            crash_at_op: Some(crash_at as u64),
            torn_seed: crash_at as u64 * 97 + 11,
            ..FaultSpec::default()
        });
        let open = |be: MemBackend| {
            TcuDb::open_with_backend(
                std::sync::Arc::new(be),
                EngineConfig::default(),
                DurabilityOptions::strict_manual(),
            )
        };

        let catalog = base_catalog(&a_ids, &b_ids);
        let join = "SELECT SUM(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val";
        let mut acked: Vec<(i64, u64)> = Vec::new();
        if let Ok(db) = open(backend.clone()) {
            if db.try_set_catalog(catalog).is_ok() {
                let db = Arc::new(db);
                let stop = std::sync::atomic::AtomicBool::new(false);
                std::thread::scope(|s| {
                    let stop = &stop;
                    for _ in 0..readers {
                        let db = Arc::clone(&db);
                        s.spawn(move || {
                            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                                // Reads never touch the backend: they must
                                // keep succeeding even after the crash.
                                db.execute(join).expect("reads survive the crash");
                            }
                        });
                    }
                    for id in 0..64i64 {
                        match db.append_rows(
                            "B",
                            vec![vec![Value::Int(id % 6), Value::Int(2000 + id)]],
                        ) {
                            Ok(()) => acked.push((2000 + id, db.epoch())),
                            Err(_) => break, // the injected crash
                        }
                    }
                    stop.store(true, std::sync::atomic::Ordering::Relaxed);
                });
            }
        }

        backend.reboot();
        let db = open(backend).expect("recovery after reboot");
        let report = db.recovery_report().unwrap().clone();
        if let Some(&(_, last_epoch)) = acked.last() {
            prop_assert!(
                report.recovered_epoch >= last_epoch,
                "lost acked epoch {last_epoch}, recovered {}", report.recovered_epoch
            );
            let snap = db.snapshot();
            let vals = snap.table("B").unwrap()
                .column_by_name("val").unwrap()
                .as_i64().unwrap().to_vec();
            for (val, epoch) in &acked {
                prop_assert!(
                    vals.contains(val),
                    "acked row val={val} (epoch {epoch}) missing after recovery"
                );
            }
            // The recovered catalog answers queries exactly like the
            // serial interpreter run on the recovered state.
            let expected = oracle_results(snap.catalog(), &[join]).remove(0);
            prop_assert_eq!(db.execute(join).expect("query executes").table, expected);
        }
    }
}

/// Deterministic (non-proptest) smoke: mixed identical/distinct statements
/// under maximal thread interleaving, asserting the cache-hit accounting
/// and bitwise result stability across 1 vs N threads.
#[test]
fn eight_threads_agree_with_one_thread_bitwise() {
    let catalog = base_catalog(&[1, 1, 2, 3, 5, 5], &[1, 2, 2, 4, 5]);
    let expected = oracle_results(&catalog, &QUERIES);

    let db = Arc::new(TcuDb::default());
    db.set_catalog(catalog);
    // Warm pass, single thread.
    for (i, sql) in QUERIES.iter().enumerate() {
        assert_eq!(db.execute(sql).unwrap().table, expected[i]);
    }
    // Hammer pass, 8 threads.
    std::thread::scope(|s| {
        for t in 0..8 {
            let db = Arc::clone(&db);
            let expected = &expected;
            s.spawn(move || {
                for r in 0..4 {
                    for q in 0..QUERIES.len() {
                        let i = (q + t + r) % QUERIES.len();
                        let out = db.execute(QUERIES[i]).unwrap();
                        assert_eq!(out.table, expected[i]);
                    }
                }
            });
        }
    });
    let stats = db.plan_cache_stats();
    assert_eq!(stats.misses, QUERIES.len() as u64);
    assert!(stats.hit_rate() > 0.9, "stats: {stats:?}");
}
