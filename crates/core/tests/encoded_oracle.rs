//! Oracle suite: the encoded columnar data path (dictionary codes, remap
//! tables, typed filter kernels, code-bucket joins) must produce results
//! **identical** to the `Value`-based reference path across random
//! schemas, row subsets (with duplicates), NULLs and empty tables — from
//! the individual building blocks all the way through `TcuDb::execute`.

use proptest::prelude::*;
use tcudb_core::analyzer::analyze;
use tcudb_core::batch::TupleBatch;
use tcudb_core::relops::{self, apply_filters_with, FinalizeOptions};
use tcudb_core::translate::{
    adjacency_matrix, adjacency_matrix_encoded, comparison_matrix, comparison_matrix_encoded,
    one_hot_csr, one_hot_csr_encoded, one_hot_matrix, one_hot_matrix_encoded, valued_csr,
    valued_csr_encoded, valued_matrix, valued_matrix_encoded, Domain, EncodedSource,
};
use tcudb_core::{EngineConfig, TcuDb};
use tcudb_sql::AggFunc;
use tcudb_sql::{parse, BinOp};
use tcudb_storage::{Catalog, Column, ColumnDef, DictColumn, Schema, Table};
use tcudb_types::{DataType, Value};

/// Build a column of one of the three storage types from raw draws, with
/// small value domains so joins and filters actually collide.
fn column_from(mode: i64, data: &[i64]) -> Column {
    match mode.rem_euclid(3) {
        0 => Column::Int64(data.iter().map(|&x| x % 7).collect()),
        // Half-steps: a mix of integral floats (which must unify with Int
        // keys) and genuinely fractional ones.
        1 => Column::Float64(data.iter().map(|&x| (x % 9) as f64 * 0.5).collect()),
        _ => Column::Text(data.iter().map(|&x| format!("k{}", x % 5)).collect()),
    }
}

/// Map raw index draws into a valid (possibly duplicated) row subset.
fn subset(idx: &[usize], len: usize) -> Vec<usize> {
    if len == 0 {
        Vec::new()
    } else {
        idx.iter().map(|&i| i % len).collect()
    }
}

const OPS: [BinOp; 6] = [
    BinOp::Lt,
    BinOp::LtEq,
    BinOp::Gt,
    BinOp::GtEq,
    BinOp::Eq,
    BinOp::NotEq,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn domain_union_matches_value_path(
        a_mode in 0i64..3,
        a_data in prop::collection::vec(0i64..60, 0..24),
        b_mode in 0i64..3,
        b_data in prop::collection::vec(0i64..60, 0..24),
        asub_raw in prop::collection::vec(0usize..64, 0..16),
        use_asub in 0i64..2,
    ) {
        let a = column_from(a_mode, &a_data);
        let b = column_from(b_mode, &b_data);
        let asub = subset(&asub_raw, a.len());
        let arows = (use_asub == 1).then_some(&asub[..]);

        let expected = Domain::build(&[(&a, arows), (&b, None)]);
        let da = DictColumn::build(&a);
        let db = DictColumn::build(&b);
        let asrc = EncodedSource { dict: &da, codes: da.codes(), rows: arows };
        let (dom, maps) = Domain::build_encoded(&[asrc, EncodedSource::whole(&db)]);

        prop_assert_eq!(dom.values(), expected.values());
        // Every remap entry agrees with index_of on the shared domain.
        for (src, map) in [(&da, &maps[0]), (&db, &maps[1])] {
            for (code, v) in src.values().iter().enumerate() {
                if map[code] != tcudb_core::translate::NO_INDEX {
                    prop_assert_eq!(dom.index_of(v), Some(map[code] as usize));
                }
            }
        }
    }

    #[test]
    fn matrix_builders_match_value_path(
        mode in 0i64..3,
        data in prop::collection::vec(0i64..60, 0..24),
        sub_raw in prop::collection::vec(0usize..64, 0..16),
        use_sub in 0i64..2,
        op_idx in 0usize..6,
        extra in prop::collection::vec(0i64..60, 0..10),
    ) {
        let col = column_from(mode, &data);
        let sub = subset(&sub_raw, col.len());
        let rows = (use_sub == 1).then_some(&sub[..]);
        // Domain over the column plus a disjoint-ish second source so some
        // keys miss (exercising the NO_INDEX sentinel on both sides).
        let other = column_from(mode, &extra);
        let dom = Domain::build(&[(&col, rows), (&other, None)]);
        let dict = DictColumn::build(&col);
        let src = EncodedSource { dict: &dict, codes: dict.codes(), rows };
        let odict = DictColumn::build(&other);
        let (edom, maps) = Domain::build_encoded(&[src, EncodedSource::whole(&odict)]);
        prop_assert_eq!(edom.values(), dom.values());
        let remap = &maps[0];

        let n = rows.map_or(col.len(), <[usize]>::len);
        let payload: Vec<f64> = (0..n).map(|i| (i % 13) as f64 - 3.5).collect();

        prop_assert_eq!(
            one_hot_matrix_encoded(&src, remap, dom.len()),
            one_hot_matrix(&col, rows, &dom)
        );
        prop_assert_eq!(
            valued_matrix_encoded(&src, &payload, remap, dom.len()),
            valued_matrix(&col, &payload, rows, &dom)
        );
        prop_assert_eq!(
            one_hot_csr_encoded(&src, remap, dom.len()).unwrap(),
            one_hot_csr(&col, rows, &dom).unwrap()
        );
        prop_assert_eq!(
            valued_csr_encoded(&src, &payload, remap, dom.len()).unwrap(),
            valued_csr(&col, &payload, rows, &dom).unwrap()
        );
        let op = OPS[op_idx];
        prop_assert_eq!(
            comparison_matrix_encoded(&src, &dom, op).unwrap(),
            comparison_matrix(&col, rows, &dom, op).unwrap()
        );
    }

    #[test]
    fn adjacency_matches_value_path(
        gmode in 0i64..3,
        kmode in 0i64..3,
        rows_data in prop::collection::vec((0i64..60, 0i64..60), 0..24),
        sub_raw in prop::collection::vec(0usize..64, 0..16),
        use_sub in 0i64..2,
        with_payload in 0i64..2,
    ) {
        let gdata: Vec<i64> = rows_data.iter().map(|&(g, _)| g).collect();
        let kdata: Vec<i64> = rows_data.iter().map(|&(_, k)| k).collect();
        let gcol = column_from(gmode, &gdata);
        let kcol = column_from(kmode, &kdata);
        let sub = subset(&sub_raw, kcol.len());
        let rows = (use_sub == 1).then_some(&sub[..]);

        let gdom = Domain::build(&[(&gcol, rows)]);
        let kdom = Domain::build(&[(&kcol, rows)]);
        let n = rows.map_or(kcol.len(), <[usize]>::len);
        let payload: Vec<f64> = (0..n).map(|i| (i % 11) as f64 * 0.25).collect();
        let pay = (with_payload == 1).then_some(&payload[..]);
        let want = adjacency_matrix(&gcol, &kcol, pay, rows, &gdom, &kdom);

        let gd = DictColumn::build(&gcol);
        let kd = DictColumn::build(&kcol);
        let gsrc = EncodedSource { dict: &gd, codes: gd.codes(), rows };
        let ksrc = EncodedSource { dict: &kd, codes: kd.codes(), rows };
        let (egdom, gmaps) = Domain::build_encoded(&[gsrc]);
        let (ekdom, kmaps) = Domain::build_encoded(&[ksrc]);
        prop_assert_eq!(egdom.values(), gdom.values());
        prop_assert_eq!(ekdom.values(), kdom.values());
        let got = adjacency_matrix_encoded(
            &gsrc, &gmaps[0], gdom.len(),
            &ksrc, &kmaps[0], kdom.len(),
            pay,
        );
        prop_assert_eq!(got, want);
    }

    #[test]
    fn code_join_matches_hash_join(
        lmode in 0i64..3,
        ldata in prop::collection::vec(0i64..60, 0..28),
        rdata in prop::collection::vec(0i64..60, 0..28),
        lsub_raw in prop::collection::vec(0usize..64, 0..20),
        rsub_raw in prop::collection::vec(0usize..64, 0..20),
    ) {
        // Same mode on both sides plus the Int/Float mixed case.
        for rmode in [lmode, (lmode + 1).min(1)] {
            let left = column_from(lmode, &ldata);
            let right = column_from(rmode, &rdata);
            if lmode.rem_euclid(3).min(1) != rmode.rem_euclid(3).min(1) {
                continue; // text never joins numeric in these queries
            }
            let lsub = subset(&lsub_raw, left.len());
            let rsub = subset(&rsub_raw, right.len());

            let ld = DictColumn::build(&left);
            let rd = DictColumn::build(&right);
            let lsrc = EncodedSource::subset(&ld, &lsub);
            let rsrc = EncodedSource::subset(&rd, &rsub);
            let (dom, maps) = Domain::build_encoded(&[lsrc, rsrc]);
            let got = relops::join_pairs_by_code(&lsrc, &maps[0], &rsrc, &maps[1], dom.len());

            // Reference: positional hash join over the gathered columns.
            let lcol = left.gather(&lsub);
            let rcol = right.gather(&rsub);
            let lpos: Vec<usize> = (0..lsub.len()).collect();
            let rpos: Vec<usize> = (0..rsub.len()).collect();
            let want = relops::hash_join_pairs(&lcol, &lpos, &rcol, &rpos);
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn nonequi_join_matches_reference_order(
        lmode in 0i64..3,
        ldata in prop::collection::vec(0i64..60, 0..20),
        rdata in prop::collection::vec(0i64..60, 0..20),
        op_idx in 0usize..6,
    ) {
        let left = column_from(lmode, &ldata);
        let right = column_from(lmode, &rdata);
        let lrows: Vec<usize> = (0..left.len()).collect();
        let rrows: Vec<usize> = (0..right.len()).collect();
        let op = OPS[op_idx];
        let got = relops::nonequi_join_pairs(&left, &lrows, &right, &rrows, op).unwrap();
        // Reference: the original nested loop over materialised Values.
        let mut want = Vec::new();
        for &l in &lrows {
            let lv = left.value(l);
            for &r in &rrows {
                let rv = right.value(r);
                let ord = lv.sql_cmp(&rv);
                let hit = match op {
                    BinOp::Eq => lv.sql_eq(&rv),
                    BinOp::NotEq => !lv.sql_eq(&rv),
                    BinOp::Lt => ord == std::cmp::Ordering::Less,
                    BinOp::LtEq => ord != std::cmp::Ordering::Greater,
                    BinOp::Gt => ord == std::cmp::Ordering::Greater,
                    BinOp::GtEq => ord != std::cmp::Ordering::Less,
                    _ => unreachable!(),
                };
                if hit {
                    want.push((l, r));
                }
            }
        }
        prop_assert_eq!(got, want);
    }
}

// ---------------------------------------------------------------------
// Vectorized filters and full end-to-end queries.
// ---------------------------------------------------------------------

fn filter_table(rows: &[(i64, i64, i64)]) -> Table {
    let schema = Schema::new(vec![
        ColumnDef::new("i", DataType::Int64),
        ColumnDef::new("f", DataType::Float64),
        ColumnDef::new("s", DataType::Text),
    ]);
    Table::from_columns(
        "T",
        schema,
        vec![
            Column::Int64(rows.iter().map(|&(a, _, _)| a % 10).collect()),
            Column::Float64(
                rows.iter()
                    .map(|&(_, b, _)| (b % 12) as f64 * 0.5)
                    .collect(),
            ),
            Column::Text(
                rows.iter()
                    .map(|&(_, _, c)| format!("s{}", c % 4))
                    .collect(),
            ),
        ],
    )
    .unwrap()
}

/// One random conjunct of the WHERE clause; mixes vectorizable atoms with
/// expressions that must fall back to the interpreter.
fn conjunct(kind: i64, lit: i64) -> String {
    let ops = [">", ">=", "<", "<=", "=", "<>"];
    let op = ops[(lit.unsigned_abs() as usize) % ops.len()];
    match kind.rem_euclid(9) {
        0 => format!("T.i {op} {}", lit % 10),
        1 => format!("T.f {op} {}.5", lit % 6),
        2 => format!("T.s {op} 's{}'", lit.rem_euclid(5)), // sometimes absent
        3 => format!("{} {op} T.i", lit % 10),             // literal first
        4 => format!("T.i BETWEEN {} AND {}", lit % 5, lit % 5 + 4),
        5 => format!("T.f BETWEEN {} AND {}.5", lit % 4, lit % 4 + 2),
        6 => format!("T.i + 1 {op} {}", lit % 10), // interpreter
        7 => format!("T.s = 's1' OR T.s = 's{}'", lit.rem_euclid(4)), // interpreter
        _ => format!("T.f {op} {}", lit % 6),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn vectorized_filters_match_interpreter(
        rows in prop::collection::vec((0i64..40, 0i64..40, 0i64..40), 0..40),
        conjs in prop::collection::vec((0i64..9, -12i64..12), 1..4),
    ) {
        let mut cat = Catalog::new();
        cat.register(filter_table(&rows));
        let preds: Vec<String> = conjs.iter().map(|&(k, l)| conjunct(k, l)).collect();
        let sql = format!("SELECT T.i FROM T WHERE {}", preds.join(" AND "));
        let q = analyze(&parse(&sql).unwrap(), &cat).unwrap();
        let fast = apply_filters_with(&q, true);
        let slow = apply_filters_with(&q, false);
        match (fast, slow) {
            (Ok(f), Ok(s)) => prop_assert_eq!(f, s, "{}", sql),
            (f, s) => prop_assert_eq!(f.is_err(), s.is_err(), "{}", sql),
        }
    }

    #[test]
    fn execute_encoded_matches_interpreter(
        a_rows in prop::collection::vec((0i64..12, 0i64..30), 0..40),
        b_rows in prop::collection::vec((0i64..12, 0i64..30, 0i64..4), 0..30),
        c_rows in prop::collection::vec((0i64..12, 0i64..30), 0..20),
        query_idx in 0usize..8,
    ) {
        let a = Table::from_columns(
            "A",
            Schema::from_pairs(&[("id", DataType::Int64), ("val", DataType::Int64)]),
            vec![
                Column::Int64(a_rows.iter().map(|&(i, _)| i).collect()),
                Column::Int64(a_rows.iter().map(|&(_, v)| v).collect()),
            ],
        ).unwrap();
        let b = Table::from_columns(
            "B",
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int64),
                ColumnDef::new("val", DataType::Float64),
                ColumnDef::new("tag", DataType::Text),
            ]),
            vec![
                Column::Int64(b_rows.iter().map(|&(i, _, _)| i).collect()),
                Column::Float64(b_rows.iter().map(|&(_, v, _)| v as f64 * 0.5).collect()),
                Column::Text(b_rows.iter().map(|&(_, _, t)| format!("s{t}")).collect()),
            ],
        ).unwrap();
        let c = Table::from_int_columns(
            "C",
            &[
                ("id", c_rows.iter().map(|&(i, _)| i).collect()),
                ("w", c_rows.iter().map(|&(_, w)| w).collect()),
            ],
        ).unwrap();

        let queries = [
            "SELECT A.val, B.val FROM A, B WHERE A.id = B.id",
            "SELECT SUM(A.val), B.tag FROM A, B WHERE A.id = B.id GROUP BY B.tag",
            "SELECT SUM(A.val * B.val) FROM A, B WHERE A.id = B.id",
            "SELECT A.val, B.val FROM A, B WHERE A.id = B.id AND A.val >= 5 AND B.tag = 's1'",
            "SELECT A.val, B.val FROM A, B WHERE A.id < B.id LIMIT 7",
            "SELECT A.val, C.w FROM A, B, C WHERE A.id = B.id AND B.id = C.id",
            "SELECT COUNT(A.val), B.tag FROM A, B WHERE A.id = B.id AND B.val > 2 GROUP BY B.tag",
            "SELECT A.id, B.id, SUM(A.val * B.val) AS res FROM A, B WHERE A.id = B.id GROUP BY A.id, B.id",
        ];
        let sql = queries[query_idx];

        let mut encoded = TcuDb::new(EngineConfig::default().with_encoded_path(true));
        let mut interp = TcuDb::new(EngineConfig::default().with_encoded_path(false));
        for db in [&mut encoded, &mut interp] {
            db.register_table(a.clone());
            db.register_table(b.clone());
            db.register_table(c.clone());
        }
        let e = encoded.execute(sql).unwrap();
        let i = interp.execute(sql).unwrap();
        prop_assert_eq!(&e.table, &i.table, "{}", sql);
        prop_assert_eq!(&e.plan.steps, &i.plan.steps, "{}", sql);
        // A second encoded run hits the warm dictionary cache and must be
        // byte-identical too.
        let e2 = encoded.execute(sql).unwrap();
        prop_assert_eq!(&e2.table, &i.table, "warm {}", sql);
    }
}

// ---------------------------------------------------------------------
// Grouped aggregation: the vectorized output pipeline (group-id
// composition, segmented and one-hot-GEMM reduction, ORDER BY/LIMIT)
// against the row-at-a-time `Value` oracle.
// ---------------------------------------------------------------------

/// A three-column table whose group keys collide heavily: an integer key,
/// a text key and a numeric value column (int or float by `vmode`).
fn agg_table(rows: &[(i64, i64, i64)], vmode: i64) -> Table {
    let vals: Vec<i64> = rows.iter().map(|&(_, _, v)| v % 50 - 10).collect();
    let (vdef, vcol) = if vmode.rem_euclid(2) == 0 {
        (
            ColumnDef::new("v", DataType::Int64),
            Column::Int64(vals.clone()),
        )
    } else {
        (
            ColumnDef::new("v", DataType::Float64),
            Column::Float64(vals.iter().map(|&v| v as f64 * 0.5).collect()),
        )
    };
    Table::from_columns(
        "G",
        Schema::new(vec![
            ColumnDef::new("k", DataType::Int64),
            ColumnDef::new("tag", DataType::Text),
            vdef,
        ]),
        vec![
            Column::Int64(rows.iter().map(|&(k, _, _)| k % 5).collect()),
            Column::Text(
                rows.iter()
                    .map(|&(_, t, _)| format!("t{}", t % 3))
                    .collect(),
            ),
            vcol,
        ],
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All five aggregate functions × single/multi group keys × ORDER BY
    /// direction × LIMIT × empty inputs: the encoded pipeline (segmented
    /// or GEMM) must match the `Value` interpreter end to end, twice
    /// (cold and warm dictionary caches).
    #[test]
    fn grouped_aggregation_matches_value_oracle(
        g_rows in prop::collection::vec((0i64..8, 0i64..8, 0i64..80), 0..48),
        j_rows in prop::collection::vec(0i64..8, 0..12),
        vmode in 0i64..2,
        query_idx in 0usize..10,
    ) {
        let g = agg_table(&g_rows, vmode);
        let j = Table::from_int_columns(
            "J",
            &[("k", j_rows.clone()), ("w", j_rows.iter().map(|&k| k * 3 + 1).collect())],
        ).unwrap();

        let queries = [
            "SELECT SUM(G.v), G.k FROM G, J WHERE G.k = J.k GROUP BY G.k",
            "SELECT COUNT(G.v), G.tag FROM G, J WHERE G.k = J.k GROUP BY G.tag",
            "SELECT AVG(G.v), G.k, G.tag FROM G, J WHERE G.k = J.k GROUP BY G.k, G.tag",
            "SELECT MIN(G.v), MAX(G.v), G.k FROM G, J WHERE G.k = J.k GROUP BY G.k",
            "SELECT MIN(G.tag), MAX(G.tag), G.k FROM G, J WHERE G.k = J.k GROUP BY G.k",
            "SELECT SUM(G.v), G.tag FROM G, J WHERE G.k = J.k GROUP BY G.tag ORDER BY G.tag DESC",
            "SELECT COUNT(*), AVG(G.v * J.w), G.k FROM G, J WHERE G.k = J.k GROUP BY G.k ORDER BY G.k LIMIT 3",
            "SELECT SUM(G.v - J.w), COUNT(*) FROM G, J WHERE G.k = J.k",
            "SELECT MAX(G.v) FROM G, J WHERE G.k = J.k",
            "SELECT SUM(G.v), G.k FROM G, J WHERE G.k = J.k AND G.v > 1000 GROUP BY G.k",
        ];
        let sql = queries[query_idx];

        let mut encoded = TcuDb::new(EngineConfig::default().with_encoded_path(true));
        let mut interp = TcuDb::new(EngineConfig::default().with_encoded_path(false));
        for db in [&mut encoded, &mut interp] {
            db.register_table(g.clone());
            db.register_table(j.clone());
        }
        let e = encoded.execute(sql).unwrap();
        let i = interp.execute(sql).unwrap();
        prop_assert_eq!(&e.table, &i.table, "{}", sql);
        prop_assert_eq!(&e.plan.steps, &i.plan.steps, "{}", sql);
        let warm = encoded.execute(sql).unwrap();
        prop_assert_eq!(&warm.table, &i.table, "warm {}", sql);
    }

    /// The segmented and the §3.3 fused one-hot-GEMM reductions must
    /// produce bit-identical tables whenever the GEMM is admitted, both
    /// matching the `Value` oracle over the same tuple batch.
    #[test]
    fn segmented_and_gemm_finalize_agree(
        g_rows in prop::collection::vec((0i64..8, 0i64..8, 0i64..80), 1..40),
        tuple_raw in prop::collection::vec((0usize..64, 0usize..64), 0..48),
        vmode in 0i64..2,
        query_idx in 0usize..5,
    ) {
        let g = agg_table(&g_rows, vmode);
        let j = Table::from_int_columns("J", &[("k", vec![0, 1, 2, 3])]).unwrap();
        let mut cat = Catalog::new();
        cat.register(g);
        cat.register(j);

        let queries = [
            "SELECT SUM(G.v), G.k FROM G, J WHERE G.k = J.k GROUP BY G.k",
            "SELECT COUNT(G.v), G.k, G.tag FROM G, J WHERE G.k = J.k GROUP BY G.k, G.tag",
            "SELECT AVG(G.v), G.tag FROM G, J WHERE G.k = J.k GROUP BY G.tag ORDER BY G.tag",
            "SELECT SUM(G.v), COUNT(*) FROM G, J WHERE G.k = J.k",
            "SELECT SUM(G.v), G.k FROM G, J WHERE G.k = J.k GROUP BY G.k ORDER BY SUM(G.v) LIMIT 2",
        ];
        let q = analyze(&parse(queries[query_idx]).unwrap(), &cat).unwrap();

        let grows = cat.table("G").unwrap().num_rows();
        let jrows = cat.table("J").unwrap().num_rows();
        let tuples: Vec<Vec<usize>> = tuple_raw
            .iter()
            .map(|&(a, b)| vec![a % grows.max(1), b % jrows])
            .collect();
        let oracle = relops::finalize_output(&q, &tuples);
        let batch = TupleBatch::from_tuples(&tuples, 2).unwrap();
        let segmented = relops::finalize_output_columnar(&q, &batch, &FinalizeOptions::baseline());
        let gemm = relops::finalize_output_columnar(&q, &batch, &FinalizeOptions::tensor(1 << 24));
        match (oracle, segmented, gemm) {
            (Ok(want), Ok((seg, _)), Ok((via_gemm, _))) => {
                prop_assert_eq!(&seg, &want, "segmented {}", queries[query_idx]);
                prop_assert_eq!(&via_gemm, &want, "gemm {}", queries[query_idx]);
            }
            (o, s, g2) => {
                // ORDER BY SUM(...) is unresolvable on every path alike.
                prop_assert!(o.is_err() && s.is_err() && g2.is_err());
            }
        }
    }

    /// NULL-density sweep over the scalar aggregation oracle: NULLs are
    /// skipped by every function, SUM/AVG over zero non-NULL inputs are
    /// NULL, COUNT counts only non-NULL, MIN/MAX preserve types.
    #[test]
    fn aggregate_null_semantics(
        raw in prop::collection::vec((0i64..100, 0i64..4), 0..40),
        vmode in 0i64..3,
    ) {
        // NULL density ~25%; value type by vmode (int / float / text).
        let vals: Vec<Value> = raw
            .iter()
            .map(|&(x, null)| {
                if null == 0 {
                    Value::Null
                } else {
                    match vmode {
                        0 => Value::Int(x - 50),
                        1 => Value::Float((x - 50) as f64 * 0.25),
                        _ => Value::Text(format!("s{:02}", x % 20)),
                    }
                }
            })
            .collect();
        let live: Vec<&Value> = vals.iter().filter(|v| !v.is_null()).collect();

        prop_assert_eq!(
            relops::aggregate_values(AggFunc::Count, &vals),
            Value::Int(live.len() as i64)
        );
        let sum: f64 = live.iter().map(|v| v.as_f64().unwrap_or(0.0)).sum();
        let want_sum = if live.is_empty() { Value::Null } else { Value::Float(sum) };
        prop_assert_eq!(relops::aggregate_values(AggFunc::Sum, &vals), want_sum);
        let want_avg = if live.is_empty() {
            Value::Null
        } else {
            Value::Float(sum / live.len() as f64)
        };
        prop_assert_eq!(relops::aggregate_values(AggFunc::Avg, &vals), want_avg);
        // MIN/MAX: first-seen extreme under sql_cmp, type preserved.
        let mut want_min: Option<&Value> = None;
        let mut want_max: Option<&Value> = None;
        for v in &live {
            if want_min.is_none_or(|b| v.sql_cmp(b) == std::cmp::Ordering::Less) {
                want_min = Some(v);
            }
            if want_max.is_none_or(|b| v.sql_cmp(b) == std::cmp::Ordering::Greater) {
                want_max = Some(v);
            }
        }
        prop_assert_eq!(
            relops::aggregate_values(AggFunc::Min, &vals),
            want_min.cloned().unwrap_or(Value::Null)
        );
        prop_assert_eq!(
            relops::aggregate_values(AggFunc::Max, &vals),
            want_max.cloned().unwrap_or(Value::Null)
        );
    }
}

/// NULL keys (only producible through intermediate value vectors, never
/// base columns) follow the same group_key semantics on both paths.
#[test]
fn null_keys_encode_like_domain_inserts() {
    let vals = [
        Value::Int(1),
        Value::Null,
        Value::Float(1.0),
        Value::Null,
        Value::Text("x".into()),
    ];
    let dict = DictColumn::from_values(&vals);
    let mut dom = Domain::default();
    for v in &vals {
        dom.insert(v.clone());
    }
    let src = EncodedSource::whole(&dict);
    let (edom, maps) = Domain::build_encoded(&[src]);
    assert_eq!(edom.values(), dom.values());
    // Int(1) and Float(1.0) share a code; Nulls share another.
    assert_eq!(dict.codes(), &[0, 1, 0, 1, 2]);
    let m = one_hot_matrix_encoded(&src, &maps[0], edom.len());
    assert_eq!(m.rows(), 5);
    for (i, v) in vals.iter().enumerate() {
        let j = dom.index_of(v).unwrap();
        assert_eq!(m.get(i, j), 1.0, "row {i}");
    }
}
