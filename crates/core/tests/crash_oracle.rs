//! Crash-recovery oracle: kill the database at a scripted disk
//! operation in the middle of a random workload, recover, and assert the
//! recovered state equals a serial in-memory oracle at the recovered
//! epoch.
//!
//! The contract being checked:
//!
//! * recovery never loses an acknowledged write — the recovered epoch is
//!   at least the last epoch whose commit was acknowledged before the
//!   crash;
//! * recovery may at most additionally surface the one commit that was
//!   in flight when the crash hit (its log frames can have reached
//!   durable storage even though the acknowledgement never made it out);
//! * whatever epoch recovery lands on, the catalog equals the shadow
//!   oracle's state at exactly that epoch — never a partial commit;
//! * the recovered database is live (it accepts new writes) and a second
//!   recovery is idempotent.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use tcudb_core::{EngineConfig, TcuDb};
use tcudb_storage::{DurabilityOptions, FaultSpec, MemBackend, Table};
use tcudb_types::{TcuError, Value};

/// One workload step, applied identically to the durable engine under
/// test and to the in-memory shadow engine.
#[derive(Debug, Clone)]
enum Op {
    Create(String),
    Append(String, Vec<Vec<Value>>),
    Drop(String),
    Checkpoint,
}

fn empty_table(name: &str) -> Table {
    Table::from_int_columns(name, &[("id", vec![]), ("val", vec![])]).unwrap()
}

/// Whether a successful application of `op` publishes a new epoch.
fn publishes(op: &Op) -> bool {
    !matches!(op, Op::Checkpoint)
}

/// Apply one op.  Validation rejections (append to a missing table) are
/// part of the workload and return `Ok(())` like any other non-crash
/// outcome; only backend I/O errors — the injected crash — surface.
fn apply(db: &TcuDb, op: &Op) -> Result<(), TcuError> {
    let res = match op {
        Op::Create(name) => db.try_register_table(empty_table(name)),
        Op::Append(name, rows) => db.append_rows(name, rows.clone()),
        Op::Drop(name) => db.try_drop_table(name).map(|_| ()),
        Op::Checkpoint => db.checkpoint().map(|_| ()),
    };
    match res {
        Err(e @ TcuError::Io(_)) => Err(e),
        _ => Ok(()),
    }
}

/// Run the workload until completion or the injected crash.  Returns the
/// last acknowledged epoch and whether the op that hit the crash would
/// have published (recovery may then legitimately land one epoch ahead).
fn run_until_crash(db: &TcuDb, ops: &[Op]) -> (u64, bool) {
    for op in ops {
        if apply(db, op).is_err() {
            return (db.epoch(), publishes(op));
        }
    }
    (db.epoch(), false)
}

type State = BTreeMap<String, Vec<Vec<Value>>>;

fn state_of(db: &TcuDb) -> State {
    let snap = db.snapshot();
    let cat = snap.catalog();
    cat.table_names()
        .into_iter()
        .map(|n| {
            let t = cat.table(&n).unwrap();
            (n, t.rows_iter().collect())
        })
        .collect()
}

/// Serial shadow oracle: the same workload on a plain in-memory engine,
/// recording the catalog state at every published epoch.  `history[e]`
/// is the state at epoch `e`; epochs are contiguous because every
/// publish bumps by exactly one.
fn shadow_history(ops: &[Op]) -> Vec<State> {
    let shadow = TcuDb::default();
    let mut history = vec![state_of(&shadow)];
    let mut last = shadow.epoch();
    for op in ops {
        apply(&shadow, op).expect("shadow run cannot crash");
        if shadow.epoch() > last {
            last = shadow.epoch();
            history.push(state_of(&shadow));
        }
    }
    history
}

fn open_on(backend: MemBackend) -> Result<TcuDb, TcuError> {
    TcuDb::open_with_backend(
        Arc::new(backend),
        EngineConfig::default(),
        DurabilityOptions::strict_manual(),
    )
}

/// Crash the workload at mutating disk op `crash_at`, recover, and check
/// the recovered state against the shadow history.
fn check_crash_point(ops: &[Op], history: &[State], crash_at: u64, torn_seed: u64, flip: bool) {
    let be = MemBackend::with_faults(FaultSpec {
        crash_at_op: Some(crash_at),
        torn_seed,
        flip_bit_in_torn_tail: flip,
        ..FaultSpec::default()
    });
    // Phase 1: run until the crash.  The crash can even hit while the
    // database is being opened; then nothing was ever acknowledged.
    let (acked, in_flight) = match open_on(be.clone()) {
        Ok(db) => run_until_crash(&db, ops),
        Err(_) => (0, false),
    };

    // Phase 2: reboot (unsynced tails tear deterministically) + recover.
    be.reboot();
    let db = open_on(be.clone()).expect("recovery after reboot");
    let report = db.recovery_report().unwrap().clone();
    let e = report.recovered_epoch;
    assert!(
        e >= acked,
        "crash_at={crash_at}: lost acknowledged epoch {acked}, recovered only {e}"
    );
    assert!(
        e <= acked + u64::from(in_flight),
        "crash_at={crash_at}: recovered {e}, but only epoch {acked} (+ one in-flight) existed"
    );
    assert_eq!(
        state_of(&db),
        history[e as usize],
        "crash_at={crash_at}: recovered catalog diverges from the oracle at epoch {e} ({report:?})"
    );

    // Phase 3: the recovered database is live, and recovery is idempotent.
    db.try_register_table(empty_table("probe")).unwrap();
    db.append_rows("probe", vec![vec![Value::Int(1), Value::Int(2)]])
        .unwrap();
    drop(db);
    let db = open_on(be).expect("second recovery");
    assert_eq!(db.recovery_report().unwrap().recovered_epoch, e + 2);
    assert_eq!(
        db.snapshot().table("probe").unwrap().num_rows(),
        1,
        "post-recovery write lost"
    );
}

/// A fixed workload covering create / append / replace / drop /
/// checkpoint, including a checkpoint mid-stream so crash points sweep
/// through segment sealing and WAL rotation too.
fn fixed_workload() -> Vec<Op> {
    let row = |id: i64, val: i64| vec![Value::Int(id), Value::Int(val)];
    vec![
        Op::Create("t0".into()),
        Op::Append("t0".into(), vec![row(1, 10), row(2, 20)]),
        Op::Create("t1".into()),
        Op::Append("t1".into(), vec![row(7, 70)]),
        Op::Checkpoint,
        Op::Append("t0".into(), vec![row(3, 30)]),
        Op::Drop("t1".into()),
        Op::Append("ghost".into(), vec![row(0, 0)]), // validation no-op
        Op::Create("t0".into()),                     // replace wipes t0
        Op::Append("t0".into(), vec![row(4, 40), row(5, 50)]),
        Op::Checkpoint,
        Op::Append("t0".into(), vec![row(6, 60)]),
    ]
}

/// Sweep the crash point across EVERY mutating disk operation of the
/// fixed workload — append, fsync, file create, truncate, remove — and
/// require a clean recovery at each.
#[test]
fn crash_oracle_covers_every_fault_point() {
    let ops = fixed_workload();
    let history = shadow_history(&ops);

    // Fault-free run to count the workload's mutating disk ops.
    let be = MemBackend::new();
    {
        let db = open_on(be.clone()).unwrap();
        let (acked, _) = run_until_crash(&db, &ops);
        assert_eq!(state_of(&db), history[acked as usize]);
    }
    let total = be.mutating_ops();
    assert!(total > 20, "workload too small to be interesting: {total}");

    for crash_at in 1..=total {
        check_crash_point(
            &ops,
            &history,
            crash_at,
            crash_at * 2654435761 + 13,
            crash_at % 3 == 0,
        );
    }
}

fn decode_ops(raw: &[(i64, i64, i64)]) -> Vec<Op> {
    let mut ops = vec![Op::Create("t0".into())];
    for &(kind, t, v) in raw {
        let name = format!("t{t}");
        let row = |id: i64| vec![Value::Int(id), Value::Int(kind * 10 + id)];
        ops.push(match kind {
            0 => Op::Create(name),
            1..=5 => Op::Append(name, vec![row(v)]),
            6 | 7 => Op::Append(name, (0..=v).map(row).collect()),
            8 => Op::Drop(name),
            _ => Op::Checkpoint,
        });
    }
    ops
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random workload, random kill point, randomized torn-tail seed:
    /// recovery must land on a real epoch with the oracle's exact state.
    #[test]
    fn random_workload_survives_random_kill(
        raw in prop::collection::vec((0i64..10, 0i64..3, 0i64..6), 3..16),
        crash_at in 1usize..60,
        torn_seed in 0i64..1_000_000,
        flip in 0i64..2,
    ) {
        let ops = decode_ops(&raw);
        let history = shadow_history(&ops);
        check_crash_point(
            &ops,
            &history,
            crash_at as u64,
            torn_seed as u64,
            flip == 1,
        );
    }
}
