//! The public TCUDB engine facade.
//!
//! [`TcuDb`] is built for concurrent serving: every method that queries
//! takes `&self`, so one engine wrapped in an [`Arc`] can be hammered by
//! any number of threads.  Reads pin an immutable
//! [`CatalogSnapshot`] for their whole
//! lifetime; writes (also `&self`) publish a *new* snapshot with a bumped
//! epoch and never disturb in-flight queries.  Statements are cached per
//! `(normalized SQL, epoch)` in a [`PlanCache`], so repeat executions of
//! identical SQL skip parse, analysis and optimizer costing entirely.

use crate::analyzer;
use crate::executor::{self, HostBreakdown, PlanDescription};
use crate::optimizer::{Optimizer, OptimizerConfig, PlanKind};
use crate::plancache::{self, PlanCache, PlanCacheStats};
use std::cell::RefCell;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tcudb_device::{DeviceProfile, ExecutionTimeline};
use tcudb_sql::parse;
use tcudb_storage::{
    spawn_flusher, Catalog, CatalogSnapshot, DurabilityOptions, DurableStore, Flusher, FsBackend,
    MemBackend, RecoveryReport, SharedCatalog, StorageBackend, Table, WalRecord,
};
use tcudb_types::sync::locked;
use tcudb_types::{TcuError, TcuResult, Value};

/// Rows per `AppendRows` WAL record: large ingests are chunked so no
/// single log frame grows unbounded.
const APPEND_CHUNK_ROWS: usize = tcudb_storage::DEFAULT_CHUNK_ROWS;

/// Engine-wide configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The simulated device the engine targets.
    pub device: DeviceProfile,
    /// Optimizer tunables (density threshold, forced plans, lossy fp16).
    pub optimizer: OptimizerConfig,
    /// Largest number of matrix elements per operand (and per result) that
    /// the engine will physically materialise and run through the real
    /// tensor kernels; larger shapes execute through the hash-equivalent
    /// path while still being costed with the tensor-kernel formulas.
    pub materialize_limit: usize,
    /// Largest `m·n·k` multiply-accumulate count the engine will actually
    /// execute on the emulated tensor kernels.  Dense-GEMM operation
    /// statistics are shape-derived, so beyond this budget the engine
    /// computes the identical answer through the hash-equivalent path and
    /// charges the identical simulated kernel cost — running the emulated
    /// kernel would only burn host time validating what the oracle tests
    /// already prove.
    pub kernel_mac_limit: u128,
    /// When set, queries return only the matched-tuple count instead of the
    /// fully materialised result rows — used by the large benchmark
    /// configurations where materialising hundreds of millions of result
    /// rows on the host would dominate harness time without affecting the
    /// simulated device timings being measured.
    pub count_only: bool,
    /// Route filters, domain builds, matrix builds and equi-joins through
    /// the encoded columnar data path (dictionary codes + remap tables)
    /// instead of the row-at-a-time `Value` interpreter.  Successful
    /// queries return bit-identical results either way (the `perfqueries`
    /// harness and the `encoded_oracle` proptests enforce it).  The one
    /// observable difference is *error ordering*: vectorized filter atoms
    /// run before complex predicates, so a row rejected by an atom can no
    /// longer raise an evaluation error (e.g. division by zero) from a
    /// complex predicate that textually precedes it — see
    /// `relops::apply_filters_with`.  Disabling this selects the
    /// interpreter for harness baselines and debugging.
    pub encoded_path: bool,
    /// Prune column chunks through their zone maps during scans: both a
    /// table's own filter atoms and semi-join key ranges pushed from
    /// already-filtered join partners.  Final query results are identical
    /// either way; disabling it selects the scan-everything baseline the
    /// benchmark speedup gates compare against.
    pub zone_prune: bool,
    /// Thread cap for one morsel run (scan chunks, join probe ranges).
    /// `None` sizes each run from the shared
    /// [`WorkerPool`](tcudb_types::WorkerPool)'s currently idle share;
    /// `Some(1)` forces chunk-serial execution (the single-thread
    /// baseline).
    pub morsel_threads: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            device: DeviceProfile::rtx_3090(),
            optimizer: OptimizerConfig::default(),
            materialize_limit: 1 << 24,
            kernel_mac_limit: 1 << 27,
            count_only: false,
            encoded_path: true,
            zone_prune: true,
            morsel_threads: None,
        }
    }
}

impl EngineConfig {
    /// Configuration targeting a specific device profile.
    pub fn for_device(device: DeviceProfile) -> EngineConfig {
        EngineConfig {
            device,
            ..EngineConfig::default()
        }
    }

    /// Force every join step onto a specific plan kind (ablation studies).
    pub fn with_forced_plan(mut self, plan: PlanKind) -> EngineConfig {
        self.optimizer.force_plan = Some(plan);
        self
    }

    /// Toggle the encoded columnar data path (on by default); `false`
    /// selects the row-at-a-time `Value` interpreter baseline.
    pub fn with_encoded_path(mut self, enabled: bool) -> EngineConfig {
        self.encoded_path = enabled;
        self
    }

    /// Toggle zone-map chunk pruning (on by default); `false` selects the
    /// scan-everything baseline.
    pub fn with_zone_prune(mut self, enabled: bool) -> EngineConfig {
        self.zone_prune = enabled;
        self
    }

    /// Fix the morsel thread cap (`None` = size from the shared pool).
    pub fn with_morsel_threads(mut self, threads: Option<usize>) -> EngineConfig {
        self.morsel_threads = threads;
        self
    }

    /// Threads one morsel run may use under this configuration: the
    /// explicit cap when set, else the shared worker pool's currently
    /// idle share.
    pub fn effective_morsel_threads(&self) -> usize {
        self.morsel_threads
            .unwrap_or_else(|| tcudb_types::WorkerPool::shared().scoped_parallelism())
            .max(1)
    }
}

/// The result of executing one SQL query.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The result rows.
    pub table: Table,
    /// Per-phase simulated timing breakdown.
    pub timeline: ExecutionTimeline,
    /// Description of the physical plan that ran.
    pub plan: PlanDescription,
    /// Host-measured wall-clock attribution (filter / join / finalize),
    /// independent of the simulated device timeline.
    pub host: HostBreakdown,
}

impl QueryOutput {
    /// Total simulated execution time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.timeline.total_seconds()
    }
}

/// The TCUDB engine: a shared, versioned catalog of tables plus the
/// TCU-aware optimizer, executor and plan/statement cache.
///
/// Queries and writes both take `&self`: wrap the engine in an
/// [`Arc`] and share it freely across threads.  Each `execute` pins the
/// catalog snapshot current at its start; concurrent
/// [`register_table`](TcuDb::register_table) /
/// [`append_rows`](TcuDb::append_rows) calls publish new snapshots that
/// only later queries observe.
///
/// ```
/// use tcudb_core::TcuDb;
/// use tcudb_storage::Table;
///
/// let db = TcuDb::default();
/// db.register_table(
///     Table::from_int_columns("A", &[("id", vec![1, 2]), ("val", vec![10, 20])]).unwrap(),
/// );
/// db.register_table(
///     Table::from_int_columns("B", &[("id", vec![2]), ("val", vec![7])]).unwrap(),
/// );
/// let out = db.execute("SELECT A.val, B.val FROM A, B WHERE A.id = B.id").unwrap();
/// assert_eq!(out.table.num_rows(), 1);
/// // The second execution of the identical statement hits the plan cache.
/// db.execute("SELECT A.val, B.val FROM A, B WHERE A.id = B.id").unwrap();
/// assert_eq!(db.plan_cache_stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct TcuDb {
    shared: Arc<SharedCatalog>,
    config: EngineConfig,
    plan_cache: PlanCache,
    durability: Option<Durability>,
}

/// Everything a durable engine carries beyond the in-memory state.
#[derive(Debug)]
struct Durability {
    store: Arc<DurableStore>,
    report: RecoveryReport,
    /// Dropping the handle stops and joins the background flusher.
    _flusher: Option<Flusher>,
    /// Last error swallowed by an infallible write wrapper.
    last_error: Mutex<Option<String>>,
    error_count: AtomicU64,
}

impl Default for TcuDb {
    fn default() -> Self {
        TcuDb::new(EngineConfig::default())
    }
}

impl Clone for TcuDb {
    /// Cloning forks the engine: the clone starts from this engine's
    /// current catalog snapshot (sharing table storage by `Arc`) with the
    /// same configuration and a cold plan cache, then evolves
    /// independently.  The fork is always in-memory — it does not share
    /// (or reopen) the original's write-ahead log.
    fn clone(&self) -> Self {
        TcuDb {
            shared: Arc::new((*self.shared).clone()),
            config: self.config.clone(),
            plan_cache: PlanCache::default(),
            durability: None,
        }
    }
}

impl TcuDb {
    /// Create an in-memory engine (no durability) with the given
    /// configuration.
    pub fn new(config: EngineConfig) -> TcuDb {
        TcuDb {
            shared: Arc::new(SharedCatalog::default()),
            config,
            plan_cache: PlanCache::default(),
            durability: None,
        }
    }

    /// Create an engine for a specific device with default settings.
    pub fn for_device(device: DeviceProfile) -> TcuDb {
        TcuDb::new(EngineConfig::for_device(device))
    }

    /// Open (or create) a durable database in `dir`: recover to the last
    /// published epoch, truncate any torn WAL tail, and start logging
    /// writes.  Uses the default engine configuration and
    /// [`DurabilityOptions`]; see [`TcuDb::open_with`] to tune either.
    pub fn open(dir: impl AsRef<Path>) -> TcuResult<TcuDb> {
        TcuDb::open_with(dir, EngineConfig::default(), DurabilityOptions::default())
    }

    /// [`TcuDb::open`] with explicit engine and durability configuration.
    pub fn open_with(
        dir: impl AsRef<Path>,
        config: EngineConfig,
        options: DurabilityOptions,
    ) -> TcuResult<TcuDb> {
        let backend = Arc::new(FsBackend::open(dir.as_ref())?);
        TcuDb::open_with_backend(backend, config, options)
    }

    /// A durable engine over an in-memory backend: full WAL + checkpoint
    /// machinery, no filesystem.  The state lives only as long as the
    /// process; mainly useful for tests and experiments.
    pub fn open_in_memory() -> TcuResult<TcuDb> {
        TcuDb::open_with_backend(
            Arc::new(MemBackend::new()),
            EngineConfig::default(),
            DurabilityOptions::default(),
        )
    }

    /// Open a durable engine over any [`StorageBackend`] — the fault
    /// injection harness passes a `MemBackend` with a scripted crash
    /// point here.
    pub fn open_with_backend(
        backend: Arc<dyn StorageBackend>,
        config: EngineConfig,
        options: DurabilityOptions,
    ) -> TcuResult<TcuDb> {
        let background = options.background_flusher;
        let interval = options.flusher_interval;
        let (store, recovered) = DurableStore::open(backend, options)?;
        let shared = Arc::new(SharedCatalog::at_epoch(recovered.epoch, recovered.catalog));
        let store = Arc::new(store);
        let flusher = if background {
            Some(spawn_flusher(
                Arc::clone(&store),
                Arc::clone(&shared),
                interval,
            )?)
        } else {
            None
        };
        Ok(TcuDb {
            shared,
            config,
            plan_cache: PlanCache::default(),
            durability: Some(Durability {
                store,
                report: recovered.report,
                _flusher: flusher,
                last_error: Mutex::new(None),
                error_count: AtomicU64::new(0),
            }),
        })
    }

    /// True when writes are logged to a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// What recovery found when this engine was opened (durable engines
    /// only).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.durability.as_ref().map(|d| &d.report)
    }

    /// Seal the current epoch into segment files and rotate the WAL.
    /// Returns the sealed epoch, `Ok(None)` when nothing new was
    /// published (or the engine is in-memory).
    pub fn checkpoint(&self) -> TcuResult<Option<u64>> {
        match &self.durability {
            Some(d) => d.store.checkpoint(&self.shared),
            None => Ok(None),
        }
    }

    /// Errors swallowed by the infallible write wrappers
    /// ([`register_table`](TcuDb::register_table) and friends) since
    /// open.  Durable deployments that must not lose writes should call
    /// the `try_` variants instead.
    pub fn write_error_count(&self) -> u64 {
        match &self.durability {
            Some(d) => d.error_count.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// The most recent swallowed write error, if any.
    pub fn last_write_error(&self) -> Option<String> {
        self.durability
            .as_ref()
            .and_then(|d| locked(&d.last_error).clone())
    }

    fn note_write_error(&self, err: &TcuError) {
        if let Some(d) = &self.durability {
            d.error_count.fetch_add(1, Ordering::Relaxed);
            *locked(&d.last_error) = Some(err.to_string());
        }
    }

    /// Register (or replace) a table, publishing a new catalog snapshot.
    ///
    /// Infallible wrapper around [`TcuDb::try_register_table`]: a WAL
    /// failure on a durable engine is recorded (see
    /// [`TcuDb::write_error_count`]) and the write is NOT published.
    pub fn register_table(&self, table: Table) {
        if let Err(e) = self.try_register_table(table) {
            self.note_write_error(&e);
        }
    }

    /// Register (or replace) a table, publishing a new catalog snapshot;
    /// on a durable engine the write is in the log before it is visible.
    pub fn try_register_table(&self, table: Table) -> TcuResult<()> {
        let durable = self.is_durable();
        self.publish_records(|c, records| {
            if durable {
                records_for_register(c, &table, records);
            }
            c.register(table);
            Ok(())
        })
    }

    /// Register a table under an explicit name (new snapshot).  Same
    /// error handling as [`TcuDb::register_table`].
    pub fn register_table_as(&self, name: &str, table: Table) {
        let mut table = table;
        table.set_name(name);
        self.register_table(table);
    }

    /// Append rows to a registered table, publishing a new snapshot.
    ///
    /// The write is copy-on-write: the current version of the table is
    /// cloned (its warm dictionary encodings carry over and are extended
    /// incrementally, see `Table::append_rows`), the rows are appended,
    /// the statistics are recomputed and the result replaces the table in
    /// the next snapshot.  Queries pinned to older snapshots are
    /// unaffected.  The batch is validated up front and rejected
    /// atomically; on a durable engine a successful append is in the WAL
    /// before it becomes visible.
    pub fn append_rows(&self, name: &str, rows: Vec<Vec<Value>>) -> TcuResult<()> {
        // A rejected write publishes nothing: the epoch is unchanged and
        // every cached plan stays warm.
        let durable = self.is_durable();
        self.publish_records(|c, records| {
            let mut table = (*c.table(name)?).clone();
            if durable {
                for chunk in rows.chunks(APPEND_CHUNK_ROWS) {
                    records.push(WalRecord::AppendRows {
                        name: table.name().to_string(),
                        rows: chunk.to_vec(),
                    });
                }
            }
            table.append_rows(rows)?;
            c.register(table);
            Ok(())
        })
    }

    /// Drop a table (new snapshot), returning whether it existed.
    ///
    /// Infallible wrapper around [`TcuDb::try_drop_table`]: a WAL failure
    /// is recorded and reported as `false`.
    pub fn drop_table(&self, name: &str) -> bool {
        match self.try_drop_table(name) {
            Ok(existed) => existed,
            Err(e) => {
                self.note_write_error(&e);
                false
            }
        }
    }

    /// Drop a table (new snapshot), returning whether it existed; on a
    /// durable engine the drop is in the log before it takes effect.
    pub fn try_drop_table(&self, name: &str) -> TcuResult<bool> {
        let durable = self.is_durable();
        self.publish_records(|c, records| {
            if durable && c.contains(name) {
                records.push(WalRecord::DropTable { name: name.into() });
            }
            Ok(c.drop_table(name))
        })
    }

    /// Replace the whole catalog, e.g. to share one with a baseline
    /// engine (new snapshot).  Same error handling as
    /// [`TcuDb::register_table`].
    pub fn set_catalog(&self, catalog: Catalog) {
        if let Err(e) = self.try_set_catalog(catalog) {
            self.note_write_error(&e);
        }
    }

    /// Replace the whole catalog (new snapshot); on a durable engine the
    /// replacement is logged as drops of every old table followed by
    /// creates of every new one.
    pub fn try_set_catalog(&self, catalog: Catalog) -> TcuResult<()> {
        let durable = self.is_durable();
        self.publish_records(move |c, records| {
            if durable {
                for name in c.table_names() {
                    records.push(WalRecord::DropTable { name });
                }
                for name in catalog.table_names() {
                    let table = catalog.table(&name)?;
                    records_for_register(c, &table, records);
                }
            }
            *c = catalog;
            Ok(())
        })
    }

    /// Apply a catalog write transactionally: `f` mutates a staged copy
    /// and appends the WAL records describing the change; the commit is
    /// logged (durable engines) strictly before the snapshot is
    /// published.  A failure anywhere publishes nothing.
    fn publish_records<R>(
        &self,
        f: impl FnOnce(&mut Catalog, &mut Vec<WalRecord>) -> TcuResult<R>,
    ) -> TcuResult<R> {
        let records: RefCell<Vec<WalRecord>> = RefCell::new(Vec::new());
        let (snapshot, out) = self.shared.try_update_with(
            |c| f(c, &mut records.borrow_mut()),
            |epoch| match &self.durability {
                Some(d) => d.store.log_commit(&records.borrow(), epoch),
                None => Ok(()),
            },
        )?;
        self.plan_cache.retire_epochs_before(snapshot.epoch());
        // Without a background flusher, size-triggered checkpoints run
        // inline on the writing thread.
        if let Some(d) = &self.durability {
            if d._flusher.is_none() && d.store.needs_checkpoint() {
                if let Err(e) = d.store.checkpoint(&self.shared) {
                    self.note_write_error(&e);
                }
            }
        }
        Ok(out)
    }

    /// Pin the current catalog snapshot (shared with baseline engines in
    /// comparisons; dereferences to [`Catalog`]).
    pub fn catalog(&self) -> Arc<CatalogSnapshot> {
        self.shared.snapshot()
    }

    /// Pin the current catalog snapshot — alias of [`TcuDb::catalog`]
    /// that reads better at serving call sites.
    pub fn snapshot(&self) -> Arc<CatalogSnapshot> {
        self.shared.snapshot()
    }

    /// The current catalog epoch (bumped by every published write).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Mutable access to the engine configuration.  Clears the plan cache:
    /// recorded plan choices embed decisions made under the old
    /// configuration (device profile, forced plans, thresholds).
    pub fn config_mut(&mut self) -> &mut EngineConfig {
        self.plan_cache.clear();
        &mut self.config
    }

    /// The optimizer derived from the current configuration.
    pub fn optimizer(&self) -> Optimizer {
        Optimizer::with_config(self.config.device.clone(), self.config.optimizer.clone())
    }

    /// Hit/miss counters of the plan/statement cache.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Number of statements currently held by the plan cache.
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.len()
    }

    /// Parse, analyze, optimize and execute a SQL query against the
    /// current catalog snapshot.
    ///
    /// The snapshot is pinned once at entry: a concurrent write published
    /// mid-execution is invisible to this query.  Repeat executions of a
    /// statement that normalizes identically (see
    /// [`plancache::normalize_sql`]) against an unchanged catalog skip
    /// parse, analysis and per-join-step optimizer costing via the plan
    /// cache.
    pub fn execute(&self, sql: &str) -> TcuResult<QueryOutput> {
        let snapshot = self.shared.snapshot();
        self.execute_at(sql, &snapshot)
    }

    /// Execute against an explicitly pinned snapshot (must originate from
    /// this engine — the plan cache keys on its epoch).  Lets a session
    /// run several statements against one consistent catalog state.
    pub fn execute_at(&self, sql: &str, snapshot: &CatalogSnapshot) -> TcuResult<QueryOutput> {
        let entry = self.prepare(sql, snapshot)?;
        self.execute_prepared(&entry)
    }

    /// Resolve a statement to its plan-cache entry for a pinned snapshot,
    /// parsing and analyzing on a miss.  One cache lookup (hit or miss) is
    /// counted per call.  The serving layer prepares at admission time —
    /// the analyzed query feeds
    /// [`executor::estimate_working_set_bytes`] — and executes the same
    /// entry later without a second lookup.
    pub fn prepare(
        &self,
        sql: &str,
        snapshot: &CatalogSnapshot,
    ) -> TcuResult<Arc<plancache::CachedStatement>> {
        let key = (plancache::normalize_sql(sql), snapshot.epoch());
        match self.plan_cache.lookup(&key) {
            Some(entry) => Ok(entry),
            None => {
                let stmt = Arc::new(parse(sql)?);
                let analyzed = Arc::new(analyzer::analyze(&stmt, snapshot.catalog())?);
                Ok(self
                    .plan_cache
                    .insert(key.0, snapshot.epoch(), stmt, analyzed))
            }
        }
    }

    /// Execute a prepared statement (its bound tables pin the snapshot it
    /// was prepared against), recording the plan choices into the entry if
    /// this is its first execution.
    pub fn execute_prepared(&self, entry: &plancache::CachedStatement) -> TcuResult<QueryOutput> {
        self.execute_prepared_ctx(entry, &tcudb_types::sync::QueryContext::unbounded())
    }

    /// [`TcuDb::execute_prepared`] under a cancellation/deadline context.
    /// The context is probed at every pipeline chunk boundary (filters,
    /// join steps, tensor k-blocks, finalize chunks); a cancelled or
    /// past-deadline query returns [`tcudb_types::TcuError::Cancelled`] /
    /// [`tcudb_types::TcuError::DeadlineExceeded`] without recording plan
    /// choices for the aborted run.
    pub fn execute_prepared_ctx(
        &self,
        entry: &plancache::CachedStatement,
        ctx: &tcudb_types::sync::QueryContext,
    ) -> TcuResult<QueryOutput> {
        let optimizer = self.optimizer();
        let replay = entry.choices();
        let exec = executor::execute_ctx(
            &entry.analyzed,
            &optimizer,
            &self.config,
            replay.as_deref().map(Vec::as_slice),
            ctx,
        )?;
        if replay.is_none() {
            entry.record_choices(exec.choices);
        }
        Ok(QueryOutput {
            table: exec.table,
            timeline: exec.timeline,
            plan: exec.plan,
            host: exec.host,
        })
    }

    /// Analyze a query without executing it (exposed for tools, tests and
    /// the serving layer's admission control).  Bypasses the plan cache.
    pub fn explain(&self, sql: &str) -> TcuResult<crate::analyzer::AnalyzedQuery> {
        let stmt = parse(sql)?;
        analyzer::analyze(&stmt, self.shared.snapshot().catalog())
    }
}

/// WAL records for registering `table` into the staged catalog `c`: a
/// drop when the name is being replaced, the create, and the existing
/// rows in chunks.
fn records_for_register(c: &Catalog, table: &Table, records: &mut Vec<WalRecord>) {
    let name = table.name().to_string();
    if c.contains(&name) {
        records.push(WalRecord::DropTable { name: name.clone() });
    }
    records.push(WalRecord::CreateTable {
        name: name.clone(),
        schema: table.schema().clone(),
    });
    let mut rows = Vec::new();
    for row in table.rows_iter() {
        rows.push(row);
        if rows.len() == APPEND_CHUNK_ROWS {
            records.push(WalRecord::AppendRows {
                name: name.clone(),
                rows: std::mem::take(&mut rows),
            });
        }
    }
    if !rows.is_empty() {
        records.push(WalRecord::AppendRows { name, rows });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::QueryPattern;
    use tcudb_types::Value;

    fn db() -> TcuDb {
        let db = TcuDb::default();
        db.register_table(
            Table::from_int_columns(
                "A",
                &[("id", vec![1, 1, 2, 3]), ("val", vec![10, 11, 20, 30])],
            )
            .unwrap(),
        );
        db.register_table(
            Table::from_int_columns("B", &[("id", vec![1, 2, 2]), ("val", vec![5, 6, 7])]).unwrap(),
        );
        db
    }

    #[test]
    fn q1_join_returns_matching_pairs() {
        let out = db()
            .execute("SELECT A.val, B.val FROM A, B WHERE A.id = B.id")
            .unwrap();
        assert_eq!(out.table.num_rows(), 4);
        // With only a handful of rows the cost-based optimizer is free to
        // pick either side; correctness and a non-empty plan is what counts.
        assert!(!out.plan.steps.is_empty());
        assert!(out.total_seconds() > 0.0);
        assert!(out.plan.format().contains("join"));
    }

    #[test]
    fn q3_group_by_aggregate() {
        let out = db()
            .execute("SELECT SUM(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val")
            .unwrap();
        assert_eq!(out.table.num_rows(), 3);
        // Group with B.val = 5 joins A ids 1,1 → 21.
        assert_eq!(out.table.row(0)[0].as_f64().unwrap(), 21.0);
    }

    #[test]
    fn q4_global_aggregate() {
        let out = db()
            .execute("SELECT SUM(A.val * B.val) FROM A, B WHERE A.id = B.id")
            .unwrap();
        assert_eq!(out.table.num_rows(), 1);
        // 10*5 + 11*5 + 20*6 + 20*7 = 365
        assert_eq!(out.table.row(0)[0].as_f64().unwrap(), 365.0);
    }

    #[test]
    fn q5_non_equi_join() {
        let out = db()
            .execute("SELECT A.val, B.val FROM A, B WHERE A.id < B.id")
            .unwrap();
        // A.id=1 (<2 twice) x2 rows of A with id 1 → 4, plus A.id=2 < nothing... B ids are 1,2,2.
        // Pairs: A rows with id 1 (2 rows) match B rows with id 2 (2 rows) = 4.
        assert_eq!(out.table.num_rows(), 4);
    }

    #[test]
    fn single_table_filter() {
        let out = db()
            .execute("SELECT A.val FROM A WHERE A.val >= 20 ORDER BY A.val DESC")
            .unwrap();
        assert_eq!(out.table.num_rows(), 2);
        assert_eq!(out.table.row(0)[0], Value::Int(30));
    }

    #[test]
    fn explain_reports_pattern() {
        let analyzed = db()
            .explain("SELECT SUM(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val")
            .unwrap();
        assert_eq!(analyzed.pattern, QueryPattern::JoinGroupByAggregate);
    }

    #[test]
    fn count_only_mode_returns_count() {
        let mut engine = db();
        engine.config_mut().count_only = true;
        let out = engine
            .execute("SELECT A.val, B.val FROM A, B WHERE A.id = B.id")
            .unwrap();
        assert_eq!(out.table.num_rows(), 1);
        assert_eq!(out.table.row(0)[0], Value::Int(4));
    }

    #[test]
    fn forced_gpu_plan_still_correct() {
        let config = EngineConfig::default().with_forced_plan(PlanKind::GpuFallback);
        let engine = TcuDb::new(config);
        engine.set_catalog(db().catalog().catalog().clone());
        let out = engine
            .execute("SELECT A.val, B.val FROM A, B WHERE A.id = B.id")
            .unwrap();
        assert_eq!(out.table.num_rows(), 4);
        assert!(out.timeline.seconds_in(tcudb_device::Phase::HashJoin) > 0.0);
    }

    #[test]
    fn three_way_join_chains_gemm_steps() {
        let engine = db();
        engine.register_table(
            Table::from_int_columns("C", &[("id", vec![2, 3]), ("w", vec![100, 200])]).unwrap(),
        );
        let out = engine
            .execute("SELECT A.val, B.val, C.w FROM A, B, C WHERE A.id = B.id AND B.id = C.id")
            .unwrap();
        // A⋈B on id: (1,1),(1,1),(2,2),(2,2) → ids 1,1,2,2; C has ids 2,3 → only id=2 rows survive.
        assert_eq!(out.table.num_rows(), 2);
        assert!(out.plan.steps.iter().filter(|s| s.contains("join")).count() >= 2);
    }

    #[test]
    fn order_preserved_results_match_reference_engine_semantics() {
        let out = db()
            .execute("SELECT A.val, B.val FROM A, B WHERE A.id = B.id ORDER BY A.val ASC LIMIT 2")
            .unwrap();
        assert_eq!(out.table.num_rows(), 2);
        assert_eq!(out.table.row(0)[0], Value::Int(10));
    }

    #[test]
    fn repeat_statements_hit_the_plan_cache_with_identical_results() {
        let engine = db();
        let sql = "SELECT SUM(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val";
        let first = engine.execute(sql).unwrap();
        let stats = engine.plan_cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));

        // Different whitespace, same normalized statement: a hit that
        // skips parse/analyze and replays the recorded plan choices.
        let second = engine
            .execute("SELECT  SUM(A.val),  B.val\nFROM A, B  WHERE A.id = B.id GROUP BY B.val")
            .unwrap();
        let stats = engine.plan_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(first.table, second.table);
        assert_eq!(first.plan.steps, second.plan.steps);
        // The replayed run charges the identical simulated timeline.
        assert_eq!(
            first.timeline.total_seconds(),
            second.timeline.total_seconds()
        );
        assert_eq!(engine.plan_cache_len(), 1);
    }

    #[test]
    fn writes_bump_the_epoch_and_retire_cached_plans() {
        let engine = db();
        let sql = "SELECT A.val, B.val FROM A, B WHERE A.id = B.id";
        engine.execute(sql).unwrap();
        engine.execute(sql).unwrap();
        assert_eq!(engine.plan_cache_stats().hits, 1);

        let epoch_before = engine.epoch();
        engine
            .append_rows("B", vec![vec![Value::Int(3), Value::Int(8)]])
            .unwrap();
        assert_eq!(engine.epoch(), epoch_before + 1);

        // The post-ingest execution must miss (stale plans were retired)
        // and must see the new row: A.id=3 now matches.
        let out = engine.execute(sql).unwrap();
        let stats = engine.plan_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        assert!(stats.stale_evictions >= 1);
        assert_eq!(out.table.num_rows(), 5);
    }

    #[test]
    fn pinned_snapshots_isolate_queries_from_concurrent_writes() {
        let engine = db();
        let sql = "SELECT A.val, B.val FROM A, B WHERE A.id = B.id";
        let pinned = engine.snapshot();
        engine
            .append_rows("B", vec![vec![Value::Int(3), Value::Int(8)]])
            .unwrap();
        // Against the pinned snapshot the ingest is invisible...
        let old = engine.execute_at(sql, &pinned).unwrap();
        assert_eq!(old.table.num_rows(), 4);
        // ...while the current snapshot sees it.
        assert_eq!(engine.execute(sql).unwrap().table.num_rows(), 5);
    }

    #[test]
    fn append_rows_keeps_warm_dictionaries_and_stays_correct() {
        let engine = db();
        let sql = "SELECT SUM(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val";
        engine.execute(sql).unwrap(); // warms A.id / B.id dictionaries
        let warm = engine.snapshot().table("a").unwrap().encoded_column_count();
        assert!(warm >= 1);
        engine
            .append_rows("A", vec![vec![Value::Int(2), Value::Int(5)]])
            .unwrap();
        // The new table version still has its warm (extended) encodings.
        assert_eq!(
            engine.snapshot().table("a").unwrap().encoded_column_count(),
            warm
        );
        let out = engine.execute(sql).unwrap();
        // Group B.val=6 and B.val=7 each gain the appended A row (val 5).
        assert_eq!(out.table.num_rows(), 3);
        assert_eq!(out.table.row(0)[0].as_f64().unwrap(), 21.0);
    }

    #[test]
    fn append_rows_to_missing_table_errors_without_publishing() {
        let engine = db();
        engine
            .execute("SELECT A.val FROM A WHERE A.val >= 20")
            .unwrap();
        let epoch = engine.epoch();
        assert!(engine.append_rows("ghost", vec![]).is_err());
        // The rejected write publishes nothing: the epoch is unchanged
        // and cached plans stay warm.
        assert_eq!(engine.epoch(), epoch);
        assert_eq!(engine.plan_cache_len(), 1);
        assert!(!engine.snapshot().contains("ghost"));
    }

    fn durable_on(backend: tcudb_storage::MemBackend) -> TcuDb {
        TcuDb::open_with_backend(
            std::sync::Arc::new(backend),
            EngineConfig::default(),
            tcudb_storage::DurabilityOptions::strict_manual(),
        )
        .unwrap()
    }

    #[test]
    fn durable_engine_round_trips_through_reopen() {
        let backend = tcudb_storage::MemBackend::new();
        {
            let engine = durable_on(backend.clone());
            assert!(engine.is_durable());
            engine.register_table(
                Table::from_int_columns("A", &[("id", vec![1, 2]), ("val", vec![10, 20])]).unwrap(),
            );
            engine
                .append_rows("A", vec![vec![Value::Int(3), Value::Int(30)]])
                .unwrap();
            engine.register_table(
                Table::from_int_columns("B", &[("id", vec![2]), ("val", vec![7])]).unwrap(),
            );
            assert!(engine.drop_table("B"));
            assert_eq!(engine.write_error_count(), 0);
        }
        let engine = durable_on(backend);
        let report = engine.recovery_report().unwrap();
        assert_eq!(report.recovered_epoch, 4);
        assert_eq!(report.replayed_commits, 4);
        assert!(!engine.snapshot().contains("B"));
        let out = engine
            .execute("SELECT A.val FROM A ORDER BY A.val DESC")
            .unwrap();
        assert_eq!(out.table.num_rows(), 3);
        assert_eq!(out.table.row(0)[0], Value::Int(30));
    }

    #[test]
    fn checkpoint_then_reopen_skips_replay() {
        let backend = tcudb_storage::MemBackend::new();
        {
            let engine = durable_on(backend.clone());
            engine.register_table(
                Table::from_int_columns("A", &[("id", vec![1, 2]), ("val", vec![10, 20])]).unwrap(),
            );
            assert_eq!(engine.checkpoint().unwrap(), Some(1));
            // Nothing new: checkpoint is idempotent per epoch.
            assert_eq!(engine.checkpoint().unwrap(), None);
        }
        let engine = durable_on(backend);
        let report = engine.recovery_report().unwrap();
        assert_eq!(report.manifest_epoch, 1);
        assert_eq!(report.replayed_commits, 0);
        assert_eq!(engine.snapshot().table("a").unwrap().num_rows(), 2);
    }

    #[test]
    fn clone_forks_a_durable_engine_in_memory() {
        let engine = durable_on(tcudb_storage::MemBackend::new());
        engine.register_table(Table::from_int_columns("A", &[("id", vec![1])]).unwrap());
        let fork = engine.clone();
        assert!(!fork.is_durable());
        fork.register_table(Table::from_int_columns("C", &[("id", vec![9])]).unwrap());
        // The fork sees the original's tables; the original never sees
        // the fork's writes.
        assert!(fork.snapshot().contains("A"));
        assert!(!engine.snapshot().contains("C"));
    }

    #[test]
    fn in_memory_engine_reports_no_durability() {
        let engine = db();
        assert!(!engine.is_durable());
        assert!(engine.recovery_report().is_none());
        assert_eq!(engine.checkpoint().unwrap(), None);
        assert_eq!(engine.write_error_count(), 0);
        assert!(engine.last_write_error().is_none());
    }

    #[test]
    fn config_mut_clears_cached_plans() {
        let mut engine = db();
        let sql = "SELECT A.val, B.val FROM A, B WHERE A.id = B.id";
        engine.execute(sql).unwrap();
        assert_eq!(engine.plan_cache_len(), 1);
        engine.config_mut().count_only = true;
        assert_eq!(engine.plan_cache_len(), 0);
        let out = engine.execute(sql).unwrap();
        assert_eq!(out.table.row(0)[0], Value::Int(4));
    }
}
