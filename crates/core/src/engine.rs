//! The public TCUDB engine facade.

use crate::analyzer;
use crate::executor::{self, HostBreakdown, PlanDescription};
use crate::optimizer::{Optimizer, OptimizerConfig, PlanKind};
use tcudb_device::{DeviceProfile, ExecutionTimeline};
use tcudb_sql::parse;
use tcudb_storage::{Catalog, Table};
use tcudb_types::TcuResult;

/// Engine-wide configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The simulated device the engine targets.
    pub device: DeviceProfile,
    /// Optimizer tunables (density threshold, forced plans, lossy fp16).
    pub optimizer: OptimizerConfig,
    /// Largest number of matrix elements per operand (and per result) that
    /// the engine will physically materialise and run through the real
    /// tensor kernels; larger shapes execute through the hash-equivalent
    /// path while still being costed with the tensor-kernel formulas.
    pub materialize_limit: usize,
    /// Largest `m·n·k` multiply-accumulate count the engine will actually
    /// execute on the emulated tensor kernels.  Dense-GEMM operation
    /// statistics are shape-derived, so beyond this budget the engine
    /// computes the identical answer through the hash-equivalent path and
    /// charges the identical simulated kernel cost — running the emulated
    /// kernel would only burn host time validating what the oracle tests
    /// already prove.
    pub kernel_mac_limit: u128,
    /// When set, queries return only the matched-tuple count instead of the
    /// fully materialised result rows — used by the large benchmark
    /// configurations where materialising hundreds of millions of result
    /// rows on the host would dominate harness time without affecting the
    /// simulated device timings being measured.
    pub count_only: bool,
    /// Route filters, domain builds, matrix builds and equi-joins through
    /// the encoded columnar data path (dictionary codes + remap tables)
    /// instead of the row-at-a-time `Value` interpreter.  Successful
    /// queries return bit-identical results either way (the `perfqueries`
    /// harness and the `encoded_oracle` proptests enforce it).  The one
    /// observable difference is *error ordering*: vectorized filter atoms
    /// run before complex predicates, so a row rejected by an atom can no
    /// longer raise an evaluation error (e.g. division by zero) from a
    /// complex predicate that textually precedes it — see
    /// `relops::apply_filters_with`.  Disabling this selects the
    /// interpreter for harness baselines and debugging.
    pub encoded_path: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            device: DeviceProfile::rtx_3090(),
            optimizer: OptimizerConfig::default(),
            materialize_limit: 1 << 24,
            kernel_mac_limit: 1 << 27,
            count_only: false,
            encoded_path: true,
        }
    }
}

impl EngineConfig {
    /// Configuration targeting a specific device profile.
    pub fn for_device(device: DeviceProfile) -> EngineConfig {
        EngineConfig {
            device,
            ..EngineConfig::default()
        }
    }

    /// Force every join step onto a specific plan kind (ablation studies).
    pub fn with_forced_plan(mut self, plan: PlanKind) -> EngineConfig {
        self.optimizer.force_plan = Some(plan);
        self
    }

    /// Toggle the encoded columnar data path (on by default); `false`
    /// selects the row-at-a-time `Value` interpreter baseline.
    pub fn with_encoded_path(mut self, enabled: bool) -> EngineConfig {
        self.encoded_path = enabled;
        self
    }
}

/// The result of executing one SQL query.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The result rows.
    pub table: Table,
    /// Per-phase simulated timing breakdown.
    pub timeline: ExecutionTimeline,
    /// Description of the physical plan that ran.
    pub plan: PlanDescription,
    /// Host-measured wall-clock attribution (filter / join / finalize),
    /// independent of the simulated device timeline.
    pub host: HostBreakdown,
}

impl QueryOutput {
    /// Total simulated execution time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.timeline.total_seconds()
    }
}

/// The TCUDB engine: a catalog of tables plus the TCU-aware optimizer and
/// executor.
///
/// ```
/// use tcudb_core::TcuDb;
/// use tcudb_storage::Table;
///
/// let mut db = TcuDb::default();
/// db.register_table(
///     Table::from_int_columns("A", &[("id", vec![1, 2]), ("val", vec![10, 20])]).unwrap(),
/// );
/// db.register_table(
///     Table::from_int_columns("B", &[("id", vec![2]), ("val", vec![7])]).unwrap(),
/// );
/// let out = db.execute("SELECT A.val, B.val FROM A, B WHERE A.id = B.id").unwrap();
/// assert_eq!(out.table.num_rows(), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct TcuDb {
    catalog: Catalog,
    config: EngineConfig,
    optimizer: Optimizer,
}

impl TcuDb {
    /// Create an engine with the given configuration.
    pub fn new(config: EngineConfig) -> TcuDb {
        let optimizer = Optimizer::with_config(config.device.clone(), config.optimizer.clone());
        TcuDb {
            catalog: Catalog::new(),
            config,
            optimizer,
        }
    }

    /// Create an engine for a specific device with default settings.
    pub fn for_device(device: DeviceProfile) -> TcuDb {
        TcuDb::new(EngineConfig::for_device(device))
    }

    /// Register (or replace) a table.
    pub fn register_table(&mut self, table: Table) {
        self.catalog.register(table);
    }

    /// Register a table under an explicit name.
    pub fn register_table_as(&mut self, name: &str, table: Table) {
        self.catalog.register_as(name, table);
    }

    /// Access the catalog (shared with baseline engines in comparisons).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Replace the whole catalog (e.g. to share one with a baseline engine).
    pub fn set_catalog(&mut self, catalog: Catalog) {
        self.catalog = catalog;
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Mutable access to the engine configuration (re-derives the
    /// optimizer on the next query).
    pub fn config_mut(&mut self) -> &mut EngineConfig {
        &mut self.config
    }

    /// Parse, analyze, optimize and execute a SQL query.
    pub fn execute(&self, sql: &str) -> TcuResult<QueryOutput> {
        let stmt = parse(sql)?;
        let analyzed = analyzer::analyze(&stmt, &self.catalog)?;
        let optimizer =
            Optimizer::with_config(self.config.device.clone(), self.config.optimizer.clone());
        let _ = &self.optimizer; // kept for future plan caching
        let exec = executor::execute(&analyzed, &optimizer, &self.config)?;
        Ok(QueryOutput {
            table: exec.table,
            timeline: exec.timeline,
            plan: exec.plan,
            host: exec.host,
        })
    }

    /// Analyze a query without executing it (exposed for tools and tests).
    pub fn explain(&self, sql: &str) -> TcuResult<crate::analyzer::AnalyzedQuery> {
        let stmt = parse(sql)?;
        analyzer::analyze(&stmt, &self.catalog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::QueryPattern;
    use tcudb_types::Value;

    fn db() -> TcuDb {
        let mut db = TcuDb::default();
        db.register_table(
            Table::from_int_columns(
                "A",
                &[("id", vec![1, 1, 2, 3]), ("val", vec![10, 11, 20, 30])],
            )
            .unwrap(),
        );
        db.register_table(
            Table::from_int_columns("B", &[("id", vec![1, 2, 2]), ("val", vec![5, 6, 7])]).unwrap(),
        );
        db
    }

    #[test]
    fn q1_join_returns_matching_pairs() {
        let out = db()
            .execute("SELECT A.val, B.val FROM A, B WHERE A.id = B.id")
            .unwrap();
        assert_eq!(out.table.num_rows(), 4);
        // With only a handful of rows the cost-based optimizer is free to
        // pick either side; correctness and a non-empty plan is what counts.
        assert!(!out.plan.steps.is_empty());
        assert!(out.total_seconds() > 0.0);
        assert!(out.plan.format().contains("join"));
    }

    #[test]
    fn q3_group_by_aggregate() {
        let out = db()
            .execute("SELECT SUM(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val")
            .unwrap();
        assert_eq!(out.table.num_rows(), 3);
        // Group with B.val = 5 joins A ids 1,1 → 21.
        assert_eq!(out.table.row(0)[0].as_f64().unwrap(), 21.0);
    }

    #[test]
    fn q4_global_aggregate() {
        let out = db()
            .execute("SELECT SUM(A.val * B.val) FROM A, B WHERE A.id = B.id")
            .unwrap();
        assert_eq!(out.table.num_rows(), 1);
        // 10*5 + 11*5 + 20*6 + 20*7 = 365
        assert_eq!(out.table.row(0)[0].as_f64().unwrap(), 365.0);
    }

    #[test]
    fn q5_non_equi_join() {
        let out = db()
            .execute("SELECT A.val, B.val FROM A, B WHERE A.id < B.id")
            .unwrap();
        // A.id=1 (<2 twice) x2 rows of A with id 1 → 4, plus A.id=2 < nothing... B ids are 1,2,2.
        // Pairs: A rows with id 1 (2 rows) match B rows with id 2 (2 rows) = 4.
        assert_eq!(out.table.num_rows(), 4);
    }

    #[test]
    fn single_table_filter() {
        let out = db()
            .execute("SELECT A.val FROM A WHERE A.val >= 20 ORDER BY A.val DESC")
            .unwrap();
        assert_eq!(out.table.num_rows(), 2);
        assert_eq!(out.table.row(0)[0], Value::Int(30));
    }

    #[test]
    fn explain_reports_pattern() {
        let analyzed = db()
            .explain("SELECT SUM(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val")
            .unwrap();
        assert_eq!(analyzed.pattern, QueryPattern::JoinGroupByAggregate);
    }

    #[test]
    fn count_only_mode_returns_count() {
        let mut engine = db();
        engine.config_mut().count_only = true;
        let out = engine
            .execute("SELECT A.val, B.val FROM A, B WHERE A.id = B.id")
            .unwrap();
        assert_eq!(out.table.num_rows(), 1);
        assert_eq!(out.table.row(0)[0], Value::Int(4));
    }

    #[test]
    fn forced_gpu_plan_still_correct() {
        let config = EngineConfig::default().with_forced_plan(PlanKind::GpuFallback);
        let mut engine = TcuDb::new(config);
        engine.set_catalog(db().catalog().clone());
        let out = engine
            .execute("SELECT A.val, B.val FROM A, B WHERE A.id = B.id")
            .unwrap();
        assert_eq!(out.table.num_rows(), 4);
        assert!(out.timeline.seconds_in(tcudb_device::Phase::HashJoin) > 0.0);
    }

    #[test]
    fn three_way_join_chains_gemm_steps() {
        let mut engine = db();
        engine.register_table(
            Table::from_int_columns("C", &[("id", vec![2, 3]), ("w", vec![100, 200])]).unwrap(),
        );
        let out = engine
            .execute("SELECT A.val, B.val, C.w FROM A, B, C WHERE A.id = B.id AND B.id = C.id")
            .unwrap();
        // A⋈B on id: (1,1),(1,1),(2,2),(2,2) → ids 1,1,2,2; C has ids 2,3 → only id=2 rows survive.
        assert_eq!(out.table.num_rows(), 2);
        assert!(out.plan.steps.iter().filter(|s| s.contains("join")).count() >= 2);
    }

    #[test]
    fn order_preserved_results_match_reference_engine_semantics() {
        let out = db()
            .execute("SELECT A.val, B.val FROM A, B WHERE A.id = B.id ORDER BY A.val ASC LIMIT 2")
            .unwrap();
        assert_eq!(out.table.num_rows(), 2);
        assert_eq!(out.table.row(0)[0], Value::Int(10));
    }
}
