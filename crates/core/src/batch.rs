//! Late-materialized tuple batches.
//!
//! The executors used to carry join intermediates as `Vec<Vec<usize>>` —
//! one heap-allocated row-index vector per joined tuple, cloned and grown
//! at every join step and walked row-by-row by `finalize_output`.  A
//! [`TupleBatch`] is the struct-of-arrays form: one flat `Vec<u32>` row-
//! index column per bound table, so a join step is a columnar gather, the
//! final remap to bound-table order is a column permutation (O(tables)
//! instead of O(tuples·tables)), and the output pipeline can gather typed
//! columns directly with zero per-row allocation.
//!
//! Row indices are `u32`: the storage layer addresses at most `u32::MAX`
//! rows per table (the SSB mini-scale generator tops out around 10⁶), and
//! halving the index width doubles the rows per cache line during the
//! gather-heavy finalize stage.

use tcudb_types::{TcuError, TcuResult};

/// Sentinel for "not yet assigned" slots in dense-id remap tables.
pub const NO_GROUP: u32 = u32::MAX;

/// A batch of joined tuples in struct-of-arrays layout: `cols[p][i]` is
/// the row index of slot `p`'s table for tuple `i`.  Which bound table a
/// slot refers to is tracked by the executor's join order until
/// [`TupleBatch::remap_slots`] rearranges the columns into bound-table
/// order.
#[derive(Debug, Clone, Default)]
pub struct TupleBatch {
    cols: Vec<Vec<u32>>,
    len: usize,
}

impl TupleBatch {
    /// A single-slot batch over the given row indices.
    pub fn from_rows(rows: &[usize]) -> TcuResult<TupleBatch> {
        let col = rows
            .iter()
            .map(|&r| {
                u32::try_from(r).map_err(|_| {
                    TcuError::Execution(format!("row index {r} exceeds the u32 batch index width"))
                })
            })
            .collect::<TcuResult<Vec<u32>>>()?;
        Ok(TupleBatch {
            len: col.len(),
            cols: vec![col],
        })
    }

    /// Build from row-oriented tuples (the reference representation).
    pub fn from_tuples(tuples: &[Vec<usize>], slots: usize) -> TcuResult<TupleBatch> {
        let mut cols = vec![Vec::with_capacity(tuples.len()); slots];
        for t in tuples {
            debug_assert_eq!(t.len(), slots);
            for (p, &r) in t.iter().enumerate() {
                cols[p].push(u32::try_from(r).map_err(|_| {
                    TcuError::Execution(format!("row index {r} exceeds the u32 batch index width"))
                })?);
            }
        }
        Ok(TupleBatch {
            cols,
            len: tuples.len(),
        })
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of table slots.
    pub fn num_slots(&self) -> usize {
        self.cols.len()
    }

    /// The row-index column of slot `p`.
    pub fn col(&self, p: usize) -> &[u32] {
        &self.cols[p]
    }

    /// Extend the batch through one join step: tuple `i` of the result is
    /// `self`'s tuple `pairs[i].0` plus row `right_rows[pairs[i].1]` in a
    /// new slot.  Pure columnar gathers — no per-tuple allocation.
    pub fn extend_join(
        &self,
        pairs: &[(usize, usize)],
        right_rows: &[usize],
    ) -> TcuResult<TupleBatch> {
        let mut cols = Vec::with_capacity(self.cols.len() + 1);
        for col in &self.cols {
            cols.push(pairs.iter().map(|&(li, _)| col[li]).collect());
        }
        let new_col = pairs
            .iter()
            .map(|&(_, rj)| {
                let r = right_rows[rj];
                u32::try_from(r).map_err(|_| {
                    TcuError::Execution(format!("row index {r} exceeds the u32 batch index width"))
                })
            })
            .collect::<TcuResult<Vec<u32>>>()?;
        cols.push(new_col);
        Ok(TupleBatch {
            cols,
            len: pairs.len(),
        })
    }

    /// Keep only the tuples at positions `keep` (in that order).
    pub fn select(&self, keep: &[u32]) -> TupleBatch {
        TupleBatch {
            cols: self
                .cols
                .iter()
                .map(|col| keep.iter().map(|&i| col[i as usize]).collect())
                .collect(),
            len: keep.len(),
        }
    }

    /// Permute the slot columns into bound-table order: slot `p` currently
    /// holds the table `slot_tables[p]`; afterwards column `t` holds table
    /// `t` (slots for tables absent from `slot_tables` are zero-filled,
    /// matching the old row remap).  O(slots) column moves, no per-tuple
    /// work.
    pub fn remap_slots(self, slot_tables: &[usize], num_tables: usize) -> TupleBatch {
        debug_assert_eq!(slot_tables.len(), self.cols.len());
        let len = self.len;
        let mut out: Vec<Vec<u32>> = (0..num_tables).map(|_| Vec::new()).collect();
        for (col, &t) in self.cols.into_iter().zip(slot_tables) {
            out[t] = col;
        }
        for col in &mut out {
            if col.is_empty() && len > 0 {
                *col = vec![0; len];
            }
        }
        TupleBatch { cols: out, len }
    }

    /// Materialise tuple `i` as row indices into `buf` (one per slot) —
    /// the bridge to the row-at-a-time expression interpreter.
    pub fn write_row(&self, i: usize, buf: &mut [usize]) {
        debug_assert_eq!(buf.len(), self.cols.len());
        for (slot, col) in buf.iter_mut().zip(&self.cols) {
            *slot = col[i] as usize;
        }
    }

    /// Convert back to row-oriented tuples (oracle paths and tests).
    pub fn to_tuples(&self) -> Vec<Vec<usize>> {
        (0..self.len)
            .map(|i| self.cols.iter().map(|c| c[i] as usize).collect())
            .collect()
    }
}

/// Incremental dense group-id assignment in first-seen order.
///
/// Starts with every tuple in group 0 and folds key columns in one at a
/// time: after each [`GroupIds::compose`] call, two tuples share an id iff
/// they agreed on every key folded so far, and ids count up in order of
/// first appearance — exactly the group order the row-at-a-time
/// aggregation produces with its first-seen `HashMap` bookkeeping, but
/// computed with array lookups (hashing at most once per *distinct*
/// combination, and only on the wide-key fallback).
#[derive(Debug, Clone)]
pub struct GroupIds {
    ids: Vec<u32>,
    groups: usize,
    /// First-seen tuple index per group (the representative whose key
    /// values the output row reports).
    representatives: Vec<u32>,
}

/// Absolute cap on the dense composition table (`current_groups ×
/// code_space` slots); beyond it — or when the table would dwarf the
/// batch itself (see [`GroupIds::compose`]) — fall back to hashing the
/// (id, code) pair: still one lookup per row, one insert per distinct
/// combination.
const DENSE_COMPOSE_LIMIT: usize = 1 << 24;

impl GroupIds {
    /// Every tuple starts in one implicit group (id 0).
    pub fn new(len: usize) -> GroupIds {
        GroupIds {
            ids: vec![0; len],
            groups: usize::from(len > 0),
            representatives: if len > 0 { vec![0] } else { Vec::new() },
        }
    }

    /// Fold one key column in: `codes[i]` is tuple `i`'s dictionary code,
    /// `code_space` the exclusive upper bound on codes.
    pub fn compose(&mut self, codes: &[u32], code_space: usize) {
        debug_assert_eq!(codes.len(), self.ids.len());
        let code_space = code_space.max(1);
        let mut next = 0u32;
        let mut reps = Vec::new();
        // Dense only when the remap table is proportionate to the batch:
        // `code_space` is the base column's full dictionary, so a small
        // filtered batch grouping on a high-cardinality key would
        // otherwise allocate and zero a table far larger than the data.
        let dense_budget = DENSE_COMPOSE_LIMIT.min(self.ids.len().saturating_mul(16) + 1024);
        if let Some(table_len) = self
            .groups
            .checked_mul(code_space)
            .filter(|&n| n <= dense_budget)
        {
            let mut table = vec![NO_GROUP; table_len];
            for (i, id) in self.ids.iter_mut().enumerate() {
                let slot = &mut table[*id as usize * code_space + codes[i] as usize];
                if *slot == NO_GROUP {
                    *slot = next;
                    reps.push(i as u32);
                    next += 1;
                }
                *id = *slot;
            }
        } else {
            let mut table: std::collections::HashMap<(u32, u32), u32> =
                std::collections::HashMap::new();
            for (i, id) in self.ids.iter_mut().enumerate() {
                let slot = table.entry((*id, codes[i])).or_insert_with(|| {
                    reps.push(i as u32);
                    let id = next;
                    next += 1;
                    id
                });
                *id = *slot;
            }
        }
        self.groups = next as usize;
        self.representatives = reps;
    }

    /// Dense group id per tuple.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Number of distinct groups seen.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// First-seen tuple index of each group, in id order.
    pub fn representatives(&self) -> &[u32] {
        &self.representatives
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_tuples_round_trips() {
        let tuples = vec![vec![1, 5], vec![2, 6], vec![3, 7]];
        let b = TupleBatch::from_tuples(&tuples, 2).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b.num_slots(), 2);
        assert_eq!(b.col(1), &[5, 6, 7]);
        assert_eq!(b.to_tuples(), tuples);
        assert!(!b.is_empty());
    }

    #[test]
    fn extend_join_gathers_columns() {
        let b = TupleBatch::from_rows(&[10, 11, 12]).unwrap();
        let pairs = vec![(0, 1), (2, 0), (2, 1)];
        let right_rows = vec![100, 200];
        let j = b.extend_join(&pairs, &right_rows).unwrap();
        assert_eq!(
            j.to_tuples(),
            vec![vec![10, 200], vec![12, 100], vec![12, 200]]
        );
    }

    #[test]
    fn select_and_remap() {
        let b = TupleBatch::from_tuples(&[vec![1, 5], vec![2, 6], vec![3, 7]], 2).unwrap();
        let s = b.select(&[2, 0]);
        assert_eq!(s.to_tuples(), vec![vec![3, 7], vec![1, 5]]);
        // Slot 0 holds table 1, slot 1 holds table 0.
        let r = s.remap_slots(&[1, 0], 3);
        assert_eq!(r.to_tuples(), vec![vec![7, 3, 0], vec![5, 1, 0]]);
        let mut buf = [0usize; 3];
        r.write_row(1, &mut buf);
        assert_eq!(buf, [5, 1, 0]);
    }

    #[test]
    fn group_ids_first_seen_order() {
        // Keys: (a, x) (b, x) (a, y) (b, x) (a, x)
        let k1 = [0u32, 1, 0, 1, 0];
        let k2 = [0u32, 0, 1, 0, 0];
        let mut g = GroupIds::new(5);
        assert_eq!(g.groups(), 1);
        g.compose(&k1, 2);
        assert_eq!(g.ids(), &[0, 1, 0, 1, 0]);
        g.compose(&k2, 2);
        assert_eq!(g.ids(), &[0, 1, 2, 1, 0]);
        assert_eq!(g.groups(), 3);
        assert_eq!(g.representatives(), &[0, 1, 2]);
    }

    #[test]
    fn group_ids_hash_fallback_matches_dense() {
        let codes: Vec<u32> = (0..500).map(|i| (i * 37) % 91).collect();
        let mut dense = GroupIds::new(codes.len());
        dense.compose(&codes, 91);
        let mut sparse = GroupIds::new(codes.len());
        // Force the HashMap path with an absurd code space.
        sparse.compose(&codes, DENSE_COMPOSE_LIMIT + 1);
        assert_eq!(dense.ids(), sparse.ids());
        assert_eq!(dense.groups(), sparse.groups());
        assert_eq!(dense.representatives(), sparse.representatives());
    }

    #[test]
    fn empty_batches_and_groups() {
        let b = TupleBatch::from_rows(&[]).unwrap();
        assert!(b.is_empty());
        let g = GroupIds::new(0);
        assert_eq!(g.groups(), 0);
        assert!(g.representatives().is_empty());
    }
}
