//! The TCUDB query optimizer (Figure 6 of the paper).
//!
//! For every join step of a query the optimizer runs, in order:
//!
//! 1. the **pattern check** (was this recognised as a TCU-accelerable
//!    pattern at analysis time?),
//! 2. the **data-range feasibility test** (§4.2.1): pick the most compact
//!    TCU input precision (int4 → int8 → fp16) that represents the operand
//!    values, and conservatively bound the result magnitude by
//!    `m1 · m2 · n`,
//! 3. the **working-set test** (§4.2.3): if the dense operand matrices do
//!    not fit in device memory, switch to the blocked MSplitGEMM plan,
//! 4. the **density test** (§4.2.4): if the operands are sparser than the
//!    architecture-dependent threshold Θ, switch to the TCU-SpMM plan,
//! 5. the **cost test** (§4.2.2): estimate `DT_op + DM_op + CT_op` of the
//!    chosen TCU plan and compare it against the estimated cost of the
//!    conventional GPU hash-join plan; execute whichever is cheaper.

use tcudb_device::{CostModel, DeviceProfile};
use tcudb_tensor::{GemmStats, SpmmStats, TILE_DIM};
use tcudb_types::{Precision, F16};

/// Which physical strategy a join step should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// Dense GEMM on the tensor cores (TCUJoin).
    TcuDense,
    /// Tiled sparse GEMM on the tensor cores (TCU-SpMM).
    TcuSparse,
    /// Blocked / pipelined GEMM (MSplitGEMM) for working sets larger than
    /// device memory.
    TcuBlocked,
    /// Conventional GPU hash-join + aggregation (the YDB operators).
    GpuFallback,
}

impl PlanKind {
    /// Does this plan run on the tensor cores?
    pub fn is_tcu(&self) -> bool {
        !matches!(self, PlanKind::GpuFallback)
    }
}

impl std::fmt::Display for PlanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PlanKind::TcuDense => "TCU dense GEMM",
            PlanKind::TcuSparse => "TCU-SpMM",
            PlanKind::TcuBlocked => "TCU blocked GEMM (MSplitGEMM)",
            PlanKind::GpuFallback => "GPU hash join",
        };
        f.write_str(s)
    }
}

/// Everything the optimizer needs to know about one join (or fused
/// join+aggregate) step.
///
/// The matrix dimensions (`m`, `n`, `k`) describe the GEMM the TCU plan
/// would run; the relational row counts describe the work the competing GPU
/// hash-join plan would do.  For a plain two-way join `m` and `n` equal the
/// two tables' (filtered) row counts and `k` is the join-key domain; for a
/// fused group-by aggregate `n` is the group domain; for the Figure 5
/// matrix-multiplication query `m`, `n`, `k` are the matrix dimensions
/// while the tables hold `m·k` and `k·n` rows.
#[derive(Debug, Clone)]
pub struct JoinShape {
    /// Rows of mat(A).
    pub m: usize,
    /// Rows of mat(B) (columns of the result).
    pub n: usize,
    /// Shared key-domain size (columns of both operand matrices).
    pub k: usize,
    /// Density of the operand matrices (≈ 1/k for one-hot join encodings,
    /// up to 1.0 for the dense value matrices of matrix-multiplication
    /// queries).
    pub density: f64,
    /// Largest |value| placed in mat(A) (1.0 for pure one-hot joins).
    pub left_abs_max: f64,
    /// Largest |value| placed in mat(B) (1.0 for pure one-hot joins).
    pub right_abs_max: f64,
    /// Rows of the left relation after filters (GPU hash-join build side).
    pub left_table_rows: usize,
    /// Rows of the right relation after filters (GPU hash-join probe side).
    pub right_table_rows: usize,
    /// Estimated number of join output tuples (what the GPU plan has to
    /// materialise row by row).
    pub estimated_output: usize,
    /// Bytes of raw column data that must reach the device for the
    /// GPU-assisted transform (Equation 2).
    pub raw_bytes: usize,
    /// True when the group-by/aggregation is fused into the GEMM (§3.3),
    /// in which case the competing GPU plan must also pay for a separate
    /// group-by/aggregation pass.
    pub fused_aggregate: bool,
    /// Number of output groups of the (fused) aggregation, if any.
    pub groups: usize,
}

impl JoinShape {
    /// A plain two-way equi-join shape with one-hot operand matrices.
    pub fn equi_join(left_rows: usize, right_rows: usize, key_domain: usize) -> JoinShape {
        let k = key_domain.max(1);
        JoinShape {
            m: left_rows,
            n: right_rows,
            k,
            density: 1.0 / k as f64,
            left_abs_max: 1.0,
            right_abs_max: 1.0,
            left_table_rows: left_rows,
            right_table_rows: right_rows,
            estimated_output: (left_rows as u128 * right_rows as u128 / k as u128)
                .min(usize::MAX as u128) as usize,
            raw_bytes: (left_rows + right_rows) * 8,
            fused_aggregate: false,
            groups: 0,
        }
    }

    /// Bytes of the dense operand matrices plus the result at the given
    /// precision — the working set the device must hold.
    pub fn dense_working_set_bytes(&self, precision: Precision) -> f64 {
        let elem = precision.size_bytes();
        (self.m as f64 * self.k as f64 + self.n as f64 * self.k as f64) * elem
            + self.m as f64 * self.n as f64 * 4.0
    }

    /// Synthesized GEMM statistics for the dense plan (used for cost
    /// estimation before execution).
    pub fn dense_gemm_stats(&self, precision: Precision) -> GemmStats {
        let (m, n, k) = (self.m, self.n, self.k);
        GemmStats {
            m,
            n,
            k,
            flops: 2.0 * m as f64 * n as f64 * k as f64,
            bytes_touched: (m as f64 * k as f64 + n as f64 * k as f64) * precision.size_bytes()
                + m as f64 * n as f64 * 4.0,
            precision,
        }
    }

    /// Device-memory working set of a given plan kind: the dense plan must
    /// hold both dense operands plus the dense result, the sparse plan only
    /// the CSR operands plus the (sparse) result, and the blocked plan only
    /// its streaming buffers.
    pub fn plan_working_set_bytes(&self, kind: PlanKind, precision: Precision) -> f64 {
        match kind {
            PlanKind::TcuDense => self.dense_working_set_bytes(precision),
            PlanKind::TcuSparse => {
                // ~12 bytes per CSR non-zero (value + column index + share
                // of the row pointer), one non-zero per table row.
                (self.left_table_rows + self.right_table_rows) as f64 * 12.0
                    + self.estimated_output as f64 * 12.0
            }
            PlanKind::TcuBlocked => {
                let block = tcudb_tensor::blocked::choose_block_size(usize::MAX / 4) as f64;
                3.0 * block * block * 4.0
            }
            PlanKind::GpuFallback => (self.left_table_rows + self.right_table_rows) as f64 * 8.0,
        }
    }

    /// Estimated TCU-SpMM statistics: the expected number of occupied tile
    /// pairs given the operand densities.
    pub fn estimated_spmm_stats(&self) -> SpmmStats {
        let (m, n, k) = (self.m, self.n, self.k);
        let tiles_m = m.div_ceil(TILE_DIM).max(1);
        let tiles_n = n.div_ceil(TILE_DIM).max(1);
        let tiles_k = k.div_ceil(TILE_DIM).max(1);
        let total = tiles_m as f64 * tiles_n as f64 * tiles_k as f64;
        // Probability that a 16×16 operand tile contains at least one
        // non-zero, assuming uniformly scattered non-zeros.
        let p_tile =
            |density: f64| -> f64 { 1.0 - (1.0 - density).powi((TILE_DIM * TILE_DIM) as i32) };
        let p = p_tile(self.density);
        let expected = (total * p * p).round().clamp(0.0, total);
        let processed = expected as usize;
        SpmmStats {
            m,
            n,
            k,
            tiles_processed: processed,
            tiles_skipped: (total as usize).saturating_sub(processed),
            density_a: self.density,
            density_b: self.density,
            flops: processed as f64 * 2.0 * (TILE_DIM * TILE_DIM * TILE_DIM) as f64,
            dense_equivalent_flops: 2.0 * m as f64 * n as f64 * k as f64,
            bytes_touched: (self.left_table_rows + self.right_table_rows) as f64 * 12.0
                + processed as f64 * (TILE_DIM * TILE_DIM) as f64 * 4.0,
        }
    }
}

/// The optimizer's decision for one join step.
#[derive(Debug, Clone)]
pub struct PlanChoice {
    /// The chosen physical strategy.
    pub kind: PlanKind,
    /// The chosen TCU input precision (meaningless for the GPU fallback).
    pub precision: Precision,
    /// Whether the table→matrix transformation runs on the GPU (§4.2.2,
    /// "GPU-assisted data transformation").
    pub transform_on_gpu: bool,
    /// Whether the result is guaranteed bit-exact (inputs and the
    /// conservative result bound stay within the exactly-representable
    /// integer range of the chosen precision).
    pub exact_guaranteed: bool,
    /// Estimated end-to-end cost of the chosen TCU plan in seconds.
    pub estimated_tcu_seconds: f64,
    /// Estimated cost of the competing GPU hash-join plan in seconds.
    pub estimated_gpu_seconds: f64,
    /// Human-readable explanation of the decision path through Figure 6.
    pub reason: String,
}

/// Tunable optimizer parameters.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Density threshold Θ below which the sparse TCU-SpMM plan is used
    /// (the paper derives ≈0.04% = 4·10⁻⁴ on its testbed).
    pub density_threshold: f64,
    /// Force a specific plan kind (used by the ablation benchmarks).
    pub force_plan: Option<PlanKind>,
    /// Allow lossy fp16 representation of values that exceed the exact
    /// integer range but still fit in binary16 (Table 1 explores the
    /// resulting MAPE).
    pub allow_lossy_half: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            density_threshold: 4e-4,
            force_plan: None,
            allow_lossy_half: true,
        }
    }
}

/// The TCUDB query optimizer.
#[derive(Debug, Clone, Default)]
pub struct Optimizer {
    cost: CostModel,
    config: OptimizerConfig,
}

impl Optimizer {
    /// Create an optimizer for a device with default configuration.
    pub fn new(profile: DeviceProfile) -> Optimizer {
        Optimizer {
            cost: CostModel::new(profile),
            config: OptimizerConfig::default(),
        }
    }

    /// Create an optimizer with an explicit configuration.
    pub fn with_config(profile: DeviceProfile, config: OptimizerConfig) -> Optimizer {
        Optimizer {
            cost: CostModel::new(profile),
            config,
        }
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The configuration in use.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Decide how to execute one join step (the Figure 6 workflow).
    pub fn choose_join_plan(&self, shape: &JoinShape) -> PlanChoice {
        let mut reason = Vec::new();

        // ---- Feasibility / precision selection (§4.2.1) ----
        let m1 = shape.left_abs_max.max(1.0);
        let m2 = shape.right_abs_max.max(1.0);
        let input_mag = m1.max(m2);
        let result_bound = m1 * m2 * shape.k.max(1) as f64;
        // Most compact precision whose *exact* integer range covers both the
        // inputs and the conservative result bound.
        let exact_precision = Precision::tcu_candidates()
            .into_iter()
            .find(|p| input_mag <= p.exact_int_limit() && result_bound <= p.exact_int_limit());
        let input_precision = Precision::most_compact_for_range(-input_mag, input_mag);
        let precision = match (exact_precision, input_precision) {
            (Some(p), _) => {
                reason.push(format!(
                    "feasibility: exact in {p} (result bound {result_bound:.0})"
                ));
                Some((p, true))
            }
            (None, Some(p)) => {
                reason.push(format!(
                    "feasibility: inputs fit {p}, result bound {result_bound:.0} may round"
                ));
                Some((Precision::Half.max(p), false))
            }
            (None, None)
                if self.config.allow_lossy_half
                    && F16::representable(m1)
                    && F16::representable(m2) =>
            {
                reason.push(
                    "feasibility: values exceed exact fp16 integers, accepting lossy half".into(),
                );
                Some((Precision::Half, false))
            }
            _ => None,
        };

        let (precision, exact) = match precision {
            Some(pe) => pe,
            None => {
                let gpu = self.gpu_plan_seconds(shape);
                return PlanChoice {
                    kind: PlanKind::GpuFallback,
                    precision: Precision::Fp32,
                    transform_on_gpu: false,
                    exact_guaranteed: true,
                    estimated_tcu_seconds: f64::INFINITY,
                    estimated_gpu_seconds: gpu,
                    reason: "feasibility test failed: values exceed every TCU-compatible range"
                        .to_string(),
                };
            }
        };

        // ---- Density test (§4.2.4) then working-set test (§4.2.3) ----
        let working_set = shape.dense_working_set_bytes(precision);
        let device = self.cost.profile();
        let fits = device.fits_in_device(working_set as usize);
        let sparse = shape.density < self.config.density_threshold;

        let mut kind = if sparse {
            reason.push(format!(
                "density {:.6} < Θ={} → TCU-SpMM",
                shape.density, self.config.density_threshold
            ));
            PlanKind::TcuSparse
        } else if !fits {
            reason.push(format!(
                "working set {:.1} MiB exceeds device memory → blocked GEMM",
                working_set / (1024.0 * 1024.0)
            ));
            PlanKind::TcuBlocked
        } else {
            reason.push(format!(
                "dense plan fits in device memory ({:.1} MiB)",
                working_set / (1024.0 * 1024.0)
            ));
            PlanKind::TcuDense
        };

        // ---- Transform placement ----
        // GPU-assisted transformation requires the raw columns plus the
        // chosen plan's working set to fit on the device (§4.2.2).
        let plan_ws = shape.plan_working_set_bytes(kind, precision);
        let transform_on_gpu = device.fits_in_device(plan_ws as usize + shape.raw_bytes)
            && kind != PlanKind::TcuBlocked;

        // ---- Cost estimation and comparison (§4.2.2) ----
        let tcu_seconds = self.tcu_plan_seconds(shape, kind, precision, transform_on_gpu);
        let gpu_seconds = self.gpu_plan_seconds(shape);

        if let Some(forced) = self.config.force_plan {
            reason.push(format!("plan forced to {forced}"));
            kind = forced;
        } else if gpu_seconds < tcu_seconds {
            reason.push(format!(
                "cost test: GPU plan {:.3} ms < TCU plan {:.3} ms → fallback",
                gpu_seconds * 1e3,
                tcu_seconds * 1e3
            ));
            kind = PlanKind::GpuFallback;
        } else {
            reason.push(format!(
                "cost test: TCU plan {:.3} ms ≤ GPU plan {:.3} ms",
                tcu_seconds * 1e3,
                gpu_seconds * 1e3
            ));
        }

        PlanChoice {
            kind,
            precision,
            transform_on_gpu,
            exact_guaranteed: exact,
            estimated_tcu_seconds: tcu_seconds,
            estimated_gpu_seconds: gpu_seconds,
            reason: reason.join("; "),
        }
    }

    /// Estimated end-to-end cost of a TCU plan for this shape.
    pub fn tcu_plan_seconds(
        &self,
        shape: &JoinShape,
        kind: PlanKind,
        precision: Precision,
        transform_on_gpu: bool,
    ) -> f64 {
        let rows = shape.left_table_rows + shape.right_table_rows;
        // DT_op + DM_op
        let (dt, dm_in) = if transform_on_gpu {
            (
                self.cost.transform_gpu_seconds(rows)
                    + self
                        .cost
                        .device_mem_seconds(shape.plan_working_set_bytes(kind, precision)),
                self.cost.h2d_seconds(shape.raw_bytes as f64),
            )
        } else {
            (
                self.cost.transform_cpu_seconds(rows),
                self.cost
                    .h2d_seconds(shape.plan_working_set_bytes(kind, precision)),
            )
        };
        // CT_op
        let ct = match kind {
            PlanKind::TcuDense => self
                .cost
                .tcu_gemm_seconds(&shape.dense_gemm_stats(precision)),
            PlanKind::TcuSparse => self
                .cost
                .tcu_spmm_seconds(&shape.estimated_spmm_stats(), precision),
            PlanKind::TcuBlocked => {
                let stats = shape.dense_gemm_stats(precision);
                let block =
                    tcudb_tensor::blocked::choose_block_size(self.cost.profile().device_mem_bytes);
                let bm = stats.m.div_ceil(block).max(1);
                let bn = stats.n.div_ceil(block).max(1);
                let bk = stats.k.div_ceil(block).max(1);
                let blocked = tcudb_tensor::BlockedGemmStats {
                    m: stats.m,
                    n: stats.n,
                    k: stats.k,
                    block_size: block,
                    block_multiplications: bm * bn * bk,
                    flops: stats.flops,
                    bytes_streamed_in: (bm * bn * bk) as f64 * 2.0 * (block * block) as f64 * 4.0,
                    bytes_streamed_out: stats.m as f64 * stats.n as f64 * 4.0,
                    pipeline_stages: bm * bn,
                };
                self.cost.blocked_gemm_seconds(&blocked, precision)
            }
            PlanKind::GpuFallback => return self.gpu_plan_seconds(shape),
        };
        // Result extraction + copy back.
        let extract = if shape.fused_aggregate {
            // Fused aggregate results are one row per group.
            self.cost.d2h_seconds(shape.groups.max(1) as f64 * 8.0)
        } else {
            let scan = match kind {
                PlanKind::TcuSparse => self.cost.nonzero_sparse_seconds(
                    shape.estimated_spmm_stats().tiles_processed,
                    shape.estimated_output,
                ),
                _ => self
                    .cost
                    .nonzero_seconds(shape.m, shape.n, shape.estimated_output),
            };
            // Results stay in device memory; only a result handle returns.
            scan + self.cost.d2h_seconds(4096.0)
        };
        dt + dm_in + ct + extract
    }

    /// Estimated cost of the conventional GPU hash-join plan for this
    /// shape (the YDB cost model the paper compares against).
    pub fn gpu_plan_seconds(&self, shape: &JoinShape) -> f64 {
        let dm = self.cost.h2d_seconds(shape.raw_bytes as f64);
        let join = self.cost.gpu_hash_join_seconds(
            shape.left_table_rows,
            shape.right_table_rows,
            shape.estimated_output,
        );
        let agg = if shape.fused_aggregate {
            self.cost
                .gpu_groupby_agg_seconds(shape.estimated_output, shape.groups.max(1))
        } else {
            0.0
        };
        let out = self.cost.d2h_seconds(if shape.fused_aggregate {
            shape.groups.max(1) as f64 * 8.0
        } else {
            // Results stay in device memory; only a result handle returns.
            4096.0
        });
        dm + join + agg + out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt() -> Optimizer {
        Optimizer::new(DeviceProfile::rtx_3090())
    }

    #[test]
    fn small_distinct_count_picks_dense_tcu() {
        // The Figure 7 regime: many records, few distinct values.
        let choice = opt().choose_join_plan(&JoinShape::equi_join(32768, 32768, 32));
        assert_eq!(choice.kind, PlanKind::TcuDense);
        assert!(choice.exact_guaranteed);
        assert!(choice.estimated_tcu_seconds < choice.estimated_gpu_seconds);
    }

    #[test]
    fn very_sparse_matrices_pick_spmm() {
        // Density 1/k far below Θ = 4e-4 → TCU-SpMM.
        let choice = opt().choose_join_plan(&JoinShape::equi_join(100_000, 100_000, 50_000));
        assert_eq!(choice.kind, PlanKind::TcuSparse);
    }

    #[test]
    fn huge_dense_working_set_picks_blocked() {
        // A Figure-10-style matrix multiplication query: dense 65536²
        // operand matrices exceed 24 GB of device memory, and the GPU
        // hash-join alternative would materialise m·n·k pairs.
        let dim = 65_536usize;
        let shape = JoinShape {
            m: dim,
            n: dim,
            k: dim,
            density: 1.0,
            left_abs_max: 1.0,
            right_abs_max: 1.0,
            left_table_rows: dim * 64, // dim² rows is unrepresentable here; any large count works
            right_table_rows: dim * 64,
            estimated_output: usize::MAX / 2,
            raw_bytes: dim * 64 * 24,
            fused_aggregate: true,
            groups: dim * 64,
        };
        let choice = opt().choose_join_plan(&shape);
        assert_eq!(choice.kind, PlanKind::TcuBlocked);
        assert!(!choice.transform_on_gpu);
    }

    #[test]
    fn out_of_range_values_fall_back_to_gpu() {
        let mut s = JoinShape::equi_join(4096, 4096, 32);
        s.left_abs_max = 1e9; // not representable in fp16
        let choice = opt().choose_join_plan(&s);
        assert_eq!(choice.kind, PlanKind::GpuFallback);
        assert!(choice.reason.contains("feasibility"));
    }

    #[test]
    fn lossy_half_accepted_for_large_but_representable_values() {
        let mut s = JoinShape::equi_join(4096, 4096, 32);
        s.left_abs_max = 30000.0;
        s.right_abs_max = 30000.0;
        let choice = opt().choose_join_plan(&s);
        assert!(choice.kind.is_tcu());
        assert_eq!(choice.precision, Precision::Half);
        assert!(!choice.exact_guaranteed);
    }

    #[test]
    fn force_plan_overrides_choice() {
        let config = OptimizerConfig {
            force_plan: Some(PlanKind::GpuFallback),
            ..OptimizerConfig::default()
        };
        let o = Optimizer::with_config(DeviceProfile::rtx_3090(), config);
        let choice = o.choose_join_plan(&JoinShape::equi_join(4096, 4096, 32));
        assert_eq!(choice.kind, PlanKind::GpuFallback);
        assert!(choice.reason.contains("forced"));
    }

    #[test]
    fn crossover_with_many_distinct_values() {
        // Figure 8: at 4096 records the TCU advantage shrinks as the
        // distinct count grows.
        let o = opt();
        let few = o.choose_join_plan(&JoinShape::equi_join(4096, 4096, 32));
        let many = o.choose_join_plan(&JoinShape::equi_join(4096, 4096, 4096));
        let few_ratio = few.estimated_gpu_seconds / few.estimated_tcu_seconds;
        let many_ratio = many.estimated_gpu_seconds / many.estimated_tcu_seconds;
        assert!(few_ratio > many_ratio, "{few_ratio} vs {many_ratio}");
        assert!(few_ratio > 2.0);
    }

    #[test]
    fn fused_aggregate_makes_gpu_plan_more_expensive() {
        let mut s = JoinShape::equi_join(8192, 8192, 32);
        s.fused_aggregate = true;
        s.groups = 32;
        s.n = 32;
        let with_agg = opt().gpu_plan_seconds(&s);
        let mut s2 = s.clone();
        s2.fused_aggregate = false;
        let without = opt().gpu_plan_seconds(&s2);
        assert!(with_agg > without);
    }

    #[test]
    fn q3_fused_plan_is_cheaper_than_q1_plan() {
        // The paper's Q3 runs in about the same time as Q1 on TCUDB because
        // the group-by collapses the n dimension of the GEMM.
        let o = opt();
        let q1 = JoinShape::equi_join(32768, 32768, 32);
        let mut q3 = JoinShape::equi_join(32768, 32768, 32);
        q3.n = 32; // group domain
        q3.fused_aggregate = true;
        q3.groups = 32;
        let t1 = o.tcu_plan_seconds(&q1, PlanKind::TcuDense, Precision::Half, true);
        let t3 = o.tcu_plan_seconds(&q3, PlanKind::TcuDense, Precision::Half, true);
        assert!(t3 <= t1);
    }

    #[test]
    fn shape_helpers() {
        let s = JoinShape::equi_join(100, 200, 50);
        assert!((s.density - 0.02).abs() < 1e-12);
        assert_eq!(s.estimated_output, 400);
        let ws = s.dense_working_set_bytes(Precision::Half);
        assert!(ws > 0.0);
        let spmm = s.estimated_spmm_stats();
        assert!(spmm.tiles_processed + spmm.tiles_skipped > 0);
        let gemm = s.dense_gemm_stats(Precision::Half);
        assert_eq!(gemm.flops, 2.0 * 100.0 * 200.0 * 50.0);
        assert!(PlanKind::TcuDense.is_tcu());
        assert!(!PlanKind::GpuFallback.is_tcu());
        assert_eq!(PlanKind::TcuSparse.to_string(), "TCU-SpMM");
    }
}
