//! Row contexts and scalar expression evaluation.
//!
//! Both the TCUDB executor and the baseline engines need to evaluate
//! scalar expressions (filters, aggregate arguments, projection
//! expressions) against a "joined row" that spans one or more base tables.
//! [`RowContext`] names each participating table by its binding (alias) and
//! holds a current row index per table; [`eval`] walks an expression tree
//! against it.

use std::sync::Arc;
use tcudb_sql::{BinOp, ColumnRef, Expr};
use tcudb_storage::Table;
use tcudb_types::{TcuError, TcuResult, Value};

/// A set of bound tables with a current row index for each.
#[derive(Debug, Clone)]
pub struct RowContext {
    bindings: Vec<(String, Arc<Table>)>,
    rows: Vec<usize>,
}

impl RowContext {
    /// Create a context over the given `(binding, table)` pairs.
    pub fn new(bindings: Vec<(String, Arc<Table>)>) -> RowContext {
        let n = bindings.len();
        RowContext {
            bindings,
            rows: vec![0; n],
        }
    }

    /// Number of bound tables.
    pub fn arity(&self) -> usize {
        self.bindings.len()
    }

    /// Set the current row index of table `idx`.
    pub fn set_row(&mut self, idx: usize, row: usize) {
        self.rows[idx] = row;
    }

    /// Set all current row indices at once.
    pub fn set_rows(&mut self, rows: &[usize]) {
        self.rows.copy_from_slice(rows);
    }

    /// Index of the table that binds `name` (alias or table name).
    pub fn binding_index(&self, name: &str) -> Option<usize> {
        self.bindings
            .iter()
            .position(|(b, t)| b.eq_ignore_ascii_case(name) || t.name().eq_ignore_ascii_case(name))
    }

    /// Resolve a column reference to `(table index, column index)`.
    ///
    /// Unqualified references are resolved against all bound tables and
    /// must be unambiguous.
    pub fn resolve(&self, col: &ColumnRef) -> TcuResult<(usize, usize)> {
        match &col.table {
            Some(t) => {
                let ti = self.binding_index(t).ok_or_else(|| {
                    TcuError::Analysis(format!("unknown table or alias '{t}' in '{col}'"))
                })?;
                let ci = self.bindings[ti].1.schema().require(&col.column)?;
                Ok((ti, ci))
            }
            None => {
                let mut found = None;
                for (ti, (_, table)) in self.bindings.iter().enumerate() {
                    if let Some(ci) = table.schema().index_of(&col.column) {
                        if found.is_some() {
                            return Err(TcuError::Analysis(format!(
                                "ambiguous column reference '{}'",
                                col.column
                            )));
                        }
                        found = Some((ti, ci));
                    }
                }
                found.ok_or_else(|| {
                    TcuError::Analysis(format!("column '{}' not found in any table", col.column))
                })
            }
        }
    }

    /// Read the value of a resolved column at the current row.
    pub fn value_at(&self, table_idx: usize, col_idx: usize) -> Value {
        let (_, table) = &self.bindings[table_idx];
        table.column(col_idx).value(self.rows[table_idx])
    }

    /// The bound table at `idx`.
    pub fn table(&self, idx: usize) -> &Arc<Table> {
        &self.bindings[idx].1
    }

    /// The binding name at `idx`.
    pub fn binding(&self, idx: usize) -> &str {
        &self.bindings[idx].0
    }
}

/// Evaluate a scalar (non-aggregate) expression against the current row of
/// a context.
pub fn eval(expr: &Expr, ctx: &RowContext) -> TcuResult<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column(c) => {
            let (ti, ci) = ctx.resolve(c)?;
            Ok(ctx.value_at(ti, ci))
        }
        Expr::Aggregate { .. } => Err(TcuError::Execution(
            "aggregate expression evaluated in scalar context".into(),
        )),
        Expr::Between { expr, low, high } => {
            let v = eval(expr, ctx)?.as_f64()?;
            let lo = eval(low, ctx)?.as_f64()?;
            let hi = eval(high, ctx)?.as_f64()?;
            Ok(Value::Int((v >= lo && v <= hi) as i64))
        }
        Expr::Binary { left, op, right } => {
            let l = eval(left, ctx)?;
            let r = eval(right, ctx)?;
            eval_binary(&l, *op, &r)
        }
    }
}

/// Evaluate a binary operation over two values.  Boolean results are
/// returned as `Int(0)` / `Int(1)`.
pub fn eval_binary(l: &Value, op: BinOp, r: &Value) -> TcuResult<Value> {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div => {
            let a = l.as_f64()?;
            let b = r.as_f64()?;
            let out = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return Err(TcuError::Execution("division by zero".into()));
                    }
                    a / b
                }
                _ => unreachable!(),
            };
            Ok(Value::Float(out))
        }
        Eq => Ok(Value::Int(l.sql_eq(r) as i64)),
        NotEq => Ok(Value::Int(
            (!l.is_null() && !r.is_null() && !l.sql_eq(r)) as i64,
        )),
        Lt | LtEq | Gt | GtEq => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Int(0));
            }
            let ord = l.sql_cmp(r);
            let out = match op {
                Lt => ord == std::cmp::Ordering::Less,
                LtEq => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                GtEq => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Int(out as i64))
        }
        And => Ok(Value::Int((truthy(l) && truthy(r)) as i64)),
        Or => Ok(Value::Int((truthy(l) || truthy(r)) as i64)),
    }
}

/// SQL truthiness of a value (non-zero numerics are true).
pub fn truthy(v: &Value) -> bool {
    match v {
        Value::Null => false,
        Value::Int(x) => *x != 0,
        Value::Float(x) => *x != 0.0,
        Value::Text(s) => !s.is_empty(),
    }
}

/// Evaluate a predicate expression to a boolean.
pub fn eval_predicate(expr: &Expr, ctx: &RowContext) -> TcuResult<bool> {
    Ok(truthy(&eval(expr, ctx)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcudb_sql::parse;
    use tcudb_storage::Table;

    fn ctx() -> RowContext {
        let a = Table::from_int_columns("A", &[("id", vec![1, 2, 3]), ("val", vec![10, 20, 30])])
            .unwrap();
        let b =
            Table::from_int_columns("B", &[("id", vec![2, 3]), ("val", vec![200, 300])]).unwrap();
        RowContext::new(vec![
            ("a".to_string(), Arc::new(a)),
            ("b".to_string(), Arc::new(b)),
        ])
    }

    #[test]
    fn resolve_qualified_and_unqualified() {
        let c = ctx();
        let q = ColumnRef::qualified("A", "val");
        assert_eq!(c.resolve(&q).unwrap(), (0, 1));
        // Unqualified "val" is ambiguous (both tables have it).
        assert!(c.resolve(&ColumnRef::new("val")).is_err());
        assert!(c.resolve(&ColumnRef::qualified("zzz", "val")).is_err());
        assert!(c.resolve(&ColumnRef::qualified("a", "missing")).is_err());
    }

    #[test]
    fn eval_join_predicate_rows() {
        let mut c = ctx();
        let stmt = parse("SELECT A.val FROM A, B WHERE A.id = B.id").unwrap();
        let pred = stmt.where_clause.unwrap();
        c.set_rows(&[1, 0]); // A.id=2, B.id=2
        assert!(eval_predicate(&pred, &c).unwrap());
        c.set_rows(&[0, 0]); // A.id=1, B.id=2
        assert!(!eval_predicate(&pred, &c).unwrap());
    }

    #[test]
    fn eval_arithmetic_and_between() {
        let mut c = ctx();
        c.set_rows(&[2, 1]); // A.val=30, B.val=300
        let stmt =
            parse("SELECT A.val FROM A, B WHERE A.val * B.val >= 9000 AND A.val BETWEEN 10 AND 30")
                .unwrap();
        assert!(eval_predicate(&stmt.where_clause.unwrap(), &c).unwrap());
        let div = parse("SELECT A.val FROM A WHERE A.val / 0 > 1").unwrap();
        assert!(eval(&div.where_clause.unwrap(), &c).is_err());
    }

    #[test]
    fn eval_or_and_comparisons() {
        let mut c = ctx();
        c.set_rows(&[0, 0]);
        let stmt = parse("SELECT A.val FROM A, B WHERE A.id = 99 OR B.val > 100").unwrap();
        assert!(eval_predicate(&stmt.where_clause.unwrap(), &c).unwrap());
        let stmt2 = parse("SELECT A.val FROM A, B WHERE A.id <> 1 OR B.val < 100").unwrap();
        assert!(!eval_predicate(&stmt2.where_clause.unwrap(), &c).unwrap());
    }

    #[test]
    fn aggregates_rejected_in_scalar_context() {
        let c = ctx();
        let stmt = parse("SELECT SUM(A.val) FROM A").unwrap();
        assert!(eval(&stmt.items[0].expr, &c).is_err());
    }

    #[test]
    fn truthiness() {
        assert!(truthy(&Value::Int(5)));
        assert!(!truthy(&Value::Int(0)));
        assert!(truthy(&Value::Float(0.1)));
        assert!(!truthy(&Value::Null));
        assert!(truthy(&Value::Text("x".into())));
        assert!(!truthy(&Value::Text("".into())));
    }

    #[test]
    fn binary_null_semantics() {
        assert_eq!(
            eval_binary(&Value::Null, BinOp::Lt, &Value::Int(1)).unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            eval_binary(&Value::Int(1), BinOp::NotEq, &Value::Null).unwrap(),
            Value::Int(0)
        );
    }
}
