#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # tcudb-core
//!
//! The TCUDB engine itself: the paper's primary contribution.
//!
//! The crate is organised exactly along the components of Figure 1:
//!
//! * [`analyzer`] — the **query analyzer**: binds a parsed SQL statement to
//!   the catalog, separates join predicates from per-table filters and
//!   recognises the TCU-accelerable query patterns of §3 (two-way joins,
//!   multi-way joins, group-by aggregates over joins, non-equi joins and
//!   the matrix-multiplication query of Figure 5).
//! * [`optimizer`] — the **query optimizer** of Figure 6: the data-range
//!   feasibility test with mixed-precision selection (§4.2.1), the
//!   working-set test that triggers blocked execution (§4.2.3), the matrix
//!   density test that triggers TCU-SpMM (§4.2.4), and the cost comparison
//!   against the conventional GPU hash-join plan (§4.2.2).
//! * [`translate`] — the **code generator**'s data-layout half: mapping
//!   relational columns onto one-hot / valued / adjacency matrices over a
//!   shared key domain (§3.1–3.3).
//! * [`executor`] — the **program driver**: physical TCU operators
//!   (`TcuJoin`, `TcuJoinAggregate`, `TcuSpmmJoin`, blocked variants) and
//!   the fallback GPU operators, all reporting a per-phase
//!   [`ExecutionTimeline`](tcudb_device::ExecutionTimeline).
//! * [`engine`] — the public [`TcuDb`] facade: register tables, run SQL,
//!   get back a result table, the chosen plan and the timing breakdown.
//!   Built for concurrent serving: queries and writes take `&self`,
//!   reads pin epoch-tagged catalog snapshots, writes publish new ones.
//! * [`plancache`] — the plan/statement cache keyed on
//!   `(normalized SQL, catalog epoch)`: repeat executions of identical
//!   statements skip parse, analysis and per-join-step optimizer costing
//!   (the `tcudb-serve` crate builds its scheduler on top of this).
//!
//! Shared building blocks used by the baseline engines (`tcudb-ydb`,
//! `tcudb-monet`) live in [`context`] (expression evaluation), [`batch`]
//! (late-materialized struct-of-arrays tuple batches) and [`relops`]
//! (reference hash join / aggregation plus the vectorized output
//! pipeline).

pub mod analyzer;
pub mod batch;
pub mod context;
pub mod engine;
pub mod executor;
pub mod optimizer;
pub mod plancache;
pub mod relops;
pub mod translate;

pub use analyzer::{AnalyzedQuery, JoinPredicate, QueryPattern};
pub use batch::TupleBatch;
pub use engine::{EngineConfig, QueryOutput, TcuDb};
pub use executor::{HostBreakdown, PlanDescription};
pub use optimizer::{Optimizer, PlanChoice, PlanKind};
pub use plancache::{PlanCache, PlanCacheStats};
pub use relops::{FinalizeOptions, FinalizeReport};
