//! Table → matrix translation (§3.1–§3.4).
//!
//! The paper's code generator maps relational columns onto matrices over a
//! shared key domain:
//!
//! * a **one-hot matrix** `mat(A)` with `mat(A)[i][j] = 1` iff row `i`'s
//!   join key equals the `j`-th domain value (the natural-join encoding of
//!   §3.1),
//! * a **valued matrix** that stores the aggregated payload instead of a 1
//!   (the SUM/COUNT encodings of §3.3),
//! * an **adjacency matrix** over `(attribute domain × key domain)` (the
//!   alternative encoding of §3.1 and the group-by side `mat(B)` of §3.3),
//! * a **comparison matrix** with `mat(A)[i][j] = 1` iff
//!   `key_i <op> domain_j` (the non-equi joins of §3.4).

use std::borrow::Cow;
use std::collections::HashMap;
use tcudb_sql::BinOp;
use tcudb_storage::{Column, DictColumn};
use tcudb_tensor::{CsrMatrix, DenseMatrix};
use tcudb_types::value::ValueKey;
use tcudb_types::{TcuResult, Value};

/// Sentinel in a code-remap table for a dictionary code that never occurs
/// in the selected rows (and therefore has no domain index).
pub const NO_INDEX: u32 = u32::MAX;

/// One side of an encoded domain build: a dictionary, the per-row codes in
/// that dictionary's space (usually [`DictColumn::codes`], but joins pass
/// gathered intermediate code vectors), and an optional row subset.
#[derive(Clone, Copy)]
pub struct EncodedSource<'a> {
    /// The dictionary the codes index into.
    pub dict: &'a DictColumn,
    /// Per-row codes.
    pub codes: &'a [u32],
    /// Row subset (`None` = every row), indices into `codes`.
    pub rows: Option<&'a [usize]>,
}

impl<'a> EncodedSource<'a> {
    /// A source covering a whole encoded column.
    pub fn whole(dict: &'a DictColumn) -> EncodedSource<'a> {
        EncodedSource {
            dict,
            codes: dict.codes(),
            rows: None,
        }
    }

    /// A source over a row subset of an encoded column.
    pub fn subset(dict: &'a DictColumn, rows: &'a [usize]) -> EncodedSource<'a> {
        EncodedSource {
            dict,
            codes: dict.codes(),
            rows: Some(rows),
        }
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        self.rows.map_or(self.codes.len(), <[usize]>::len)
    }

    /// True if no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn for_each_code(&self, mut f: impl FnMut(u32)) {
        match self.rows {
            Some(rows) => {
                for &r in rows {
                    f(self.codes[r]);
                }
            }
            None => {
                for &c in self.codes {
                    f(c);
                }
            }
        }
    }
}

/// A dictionary over the distinct values of one or more join-key columns:
/// `dom(A.ID) ∪ dom(B.ID)` in the paper's notation.
#[derive(Debug, Clone, Default)]
pub struct Domain {
    index: HashMap<ValueKey, usize>,
    values: Vec<Value>,
}

impl Domain {
    /// Build the union domain over the given `(column, row subset)` pairs.
    /// Passing `None` as the row subset uses every row.  Values are indexed
    /// in first-seen order, which also preserves any pre-sorted input order
    /// (the ORDER BY trick of §3.4).
    pub fn build(sources: &[(&Column, Option<&[usize]>)]) -> Domain {
        let mut dom = Domain::default();
        for (col, rows) in sources {
            match rows {
                Some(rows) => {
                    for &r in rows.iter() {
                        dom.insert(col.value(r));
                    }
                }
                None => {
                    for r in 0..col.len() {
                        dom.insert(col.value(r));
                    }
                }
            }
        }
        dom
    }

    /// Build the union domain from dictionary-encoded sources, returning
    /// the domain plus one code-remap table per source
    /// (`remap[dict code] → domain index`, [`NO_INDEX`] for codes that
    /// never occur in the selected rows).
    ///
    /// This is the fast path of the encoded data path: rows cost one array
    /// read and branch each; hashing happens only once per *distinct*
    /// value per source.  Domain order is identical to [`Domain::build`]
    /// over the same rows (first-seen order under `group_key`
    /// normalisation), so downstream matrix layouts — and therefore result
    /// row order — match the `Value`-based path exactly.
    pub fn build_encoded(sources: &[EncodedSource<'_>]) -> (Domain, Vec<Vec<u32>>) {
        let mut dom = Domain::default();
        let mut maps = Vec::with_capacity(sources.len());
        for src in sources {
            let mut map = vec![NO_INDEX; src.dict.dict_len()];
            src.for_each_code(|code| {
                let slot = &mut map[code as usize];
                if *slot == NO_INDEX {
                    let idx = dom.insert(src.dict.value(code).clone());
                    debug_assert!(idx < NO_INDEX as usize, "domain exceeds u32 code space");
                    *slot = idx as u32;
                }
            });
            maps.push(map);
        }
        (dom, maps)
    }

    /// Insert a value, returning its index.
    pub fn insert(&mut self, value: Value) -> usize {
        let key = value.group_key();
        if let Some(&idx) = self.index.get(&key) {
            return idx;
        }
        let idx = self.values.len();
        self.index.insert(key, idx);
        self.values.push(value);
        idx
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Index of a value, if present.
    pub fn index_of(&self, value: &Value) -> Option<usize> {
        self.index.get(&value.group_key()).copied()
    }

    /// The value at a given index.
    pub fn value_at(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// All values in index order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

/// Row selection helper: the row indices to visit.  An explicit subset is
/// borrowed as-is (zero-copy); only the "all rows" case materialises the
/// identity vector.
fn selected_rows<'a>(col: &Column, rows: Option<&'a [usize]>) -> Cow<'a, [usize]> {
    match rows {
        Some(r) => Cow::Borrowed(r),
        None => Cow::Owned((0..col.len()).collect()),
    }
}

/// Build the one-hot join matrix of §3.1: one row per (selected) table row,
/// one column per domain value, 1 where the key matches.
pub fn one_hot_matrix(key_col: &Column, rows: Option<&[usize]>, domain: &Domain) -> DenseMatrix {
    let rows = selected_rows(key_col, rows);
    let mut m = DenseMatrix::zeros(rows.len(), domain.len());
    for (i, &r) in rows.iter().enumerate() {
        if let Some(j) = domain.index_of(&key_col.value(r)) {
            m.set(i, j, 1.0);
        }
    }
    m
}

/// Build the valued matrix of §3.3: like [`one_hot_matrix`] but the
/// non-zero entry carries the row's payload value (`a_i.Val` for SUM, 1 for
/// COUNT).
pub fn valued_matrix(
    key_col: &Column,
    payload: &[f64],
    rows: Option<&[usize]>,
    domain: &Domain,
) -> DenseMatrix {
    let rows = selected_rows(key_col, rows);
    let mut m = DenseMatrix::zeros(rows.len(), domain.len());
    for (i, &r) in rows.iter().enumerate() {
        if let Some(j) = domain.index_of(&key_col.value(r)) {
            m.set(i, j, payload[i] as f32);
        }
    }
    m
}

/// Build the adjacency matrix of §3.1/§3.3: one row per distinct value of
/// `row_col` (its domain is given by `row_domain`), one column per key
/// domain value; entry `(i, j)` is the payload (or 1) when some selected
/// table row has `row_col = row_domain[i]` and `key_col = domain[j]`.
/// Multiple matching rows accumulate, which is exactly the behaviour needed
/// for aggregates.
pub fn adjacency_matrix(
    row_col: &Column,
    key_col: &Column,
    payload: Option<&[f64]>,
    rows: Option<&[usize]>,
    row_domain: &Domain,
    key_domain: &Domain,
) -> DenseMatrix {
    let rows = selected_rows(key_col, rows);
    let mut m = DenseMatrix::zeros(row_domain.len(), key_domain.len());
    for (pos, &r) in rows.iter().enumerate() {
        let ri = row_domain.index_of(&row_col.value(r));
        let kj = key_domain.index_of(&key_col.value(r));
        if let (Some(i), Some(j)) = (ri, kj) {
            let v = payload.map(|p| p[pos]).unwrap_or(1.0);
            m.add_to(i, j, v as f32);
        }
    }
    m
}

/// Does `ord` (of `key <cmp> domain value`) satisfy the comparison `op`?
fn cmp_hit(ord: std::cmp::Ordering, op: BinOp) -> TcuResult<bool> {
    Ok(match op {
        BinOp::Lt => ord == std::cmp::Ordering::Less,
        BinOp::LtEq => ord != std::cmp::Ordering::Greater,
        BinOp::Gt => ord == std::cmp::Ordering::Greater,
        BinOp::GtEq => ord != std::cmp::Ordering::Less,
        BinOp::NotEq => ord != std::cmp::Ordering::Equal,
        BinOp::Eq => ord == std::cmp::Ordering::Equal,
        other => {
            return Err(tcudb_types::TcuError::Plan(format!(
                "operator {other} is not a comparison"
            )))
        }
    })
}

/// Build the comparison matrix of §3.4 for non-equi joins: entry `(i, j)`
/// is 1 when `key_i <op> domain_j` holds.
pub fn comparison_matrix(
    key_col: &Column,
    rows: Option<&[usize]>,
    domain: &Domain,
    op: BinOp,
) -> TcuResult<DenseMatrix> {
    let rows = selected_rows(key_col, rows);
    let mut m = DenseMatrix::zeros(rows.len(), domain.len());
    for (i, &r) in rows.iter().enumerate() {
        let key = key_col.value(r);
        for j in 0..domain.len() {
            if cmp_hit(key.sql_cmp(domain.value_at(j)), op)? {
                m.set(i, j, 1.0);
            }
        }
    }
    Ok(m)
}

/// Sparse (CSR) version of the one-hot join matrix, used by the TCU-SpMM
/// plan so the dense matrix never has to be materialised.
pub fn one_hot_csr(
    key_col: &Column,
    rows: Option<&[usize]>,
    domain: &Domain,
) -> TcuResult<CsrMatrix> {
    let rows = selected_rows(key_col, rows);
    let mut triplets = Vec::with_capacity(rows.len());
    for (i, &r) in rows.iter().enumerate() {
        if let Some(j) = domain.index_of(&key_col.value(r)) {
            triplets.push((i, j, 1.0f32));
        }
    }
    CsrMatrix::from_triplets(rows.len(), domain.len(), &triplets)
}

/// Sparse (CSR) version of [`valued_matrix`].
pub fn valued_csr(
    key_col: &Column,
    payload: &[f64],
    rows: Option<&[usize]>,
    domain: &Domain,
) -> TcuResult<CsrMatrix> {
    let rows = selected_rows(key_col, rows);
    let mut triplets = Vec::with_capacity(rows.len());
    for (i, &r) in rows.iter().enumerate() {
        if let Some(j) = domain.index_of(&key_col.value(r)) {
            triplets.push((i, j, payload[i] as f32));
        }
    }
    CsrMatrix::from_triplets(rows.len(), domain.len(), &triplets)
}

// ---------------------------------------------------------------------
// Encoded builders: scatter dictionary codes through a remap table with
// no `Value` materialisation and no per-element hash lookup.
// ---------------------------------------------------------------------

impl EncodedSource<'_> {
    /// The dictionary code of the `pos`-th selected row.
    #[inline]
    pub fn code_at(&self, pos: usize) -> u32 {
        match self.rows {
            Some(rows) => self.codes[rows[pos]],
            None => self.codes[pos],
        }
    }
}

/// Encoded [`one_hot_matrix`]: one array read and one store per row.
pub fn one_hot_matrix_encoded(
    src: &EncodedSource<'_>,
    remap: &[u32],
    domain_len: usize,
) -> DenseMatrix {
    let n = src.len();
    let mut m = DenseMatrix::zeros(n, domain_len);
    for i in 0..n {
        let j = remap[src.code_at(i) as usize];
        if j != NO_INDEX {
            m.row_mut(i)[j as usize] = 1.0;
        }
    }
    m
}

/// Encoded [`valued_matrix`].
pub fn valued_matrix_encoded(
    src: &EncodedSource<'_>,
    payload: &[f64],
    remap: &[u32],
    domain_len: usize,
) -> DenseMatrix {
    let n = src.len();
    let mut m = DenseMatrix::zeros(n, domain_len);
    for i in 0..n {
        let j = remap[src.code_at(i) as usize];
        if j != NO_INDEX {
            m.row_mut(i)[j as usize] = payload[i] as f32;
        }
    }
    m
}

/// Encoded [`adjacency_matrix`].  `row_src` and `key_src` must select the
/// same rows (they come from the same table).
pub fn adjacency_matrix_encoded(
    row_src: &EncodedSource<'_>,
    row_remap: &[u32],
    row_domain_len: usize,
    key_src: &EncodedSource<'_>,
    key_remap: &[u32],
    key_domain_len: usize,
    payload: Option<&[f64]>,
) -> DenseMatrix {
    debug_assert_eq!(row_src.len(), key_src.len());
    let n = key_src.len();
    let mut m = DenseMatrix::zeros(row_domain_len, key_domain_len);
    for pos in 0..n {
        let i = row_remap[row_src.code_at(pos) as usize];
        let j = key_remap[key_src.code_at(pos) as usize];
        if i != NO_INDEX && j != NO_INDEX {
            let v = payload.map(|p| p[pos]).unwrap_or(1.0);
            m.add_to(i as usize, j as usize, v as f32);
        }
    }
    m
}

/// Encoded [`comparison_matrix`]: the comparison row of each *distinct*
/// key is computed once against the domain and then copied per row, so
/// duplicated keys cost a `memcpy` instead of `len(domain)` comparisons.
pub fn comparison_matrix_encoded(
    src: &EncodedSource<'_>,
    domain: &Domain,
    op: BinOp,
) -> TcuResult<DenseMatrix> {
    let n = src.len();
    let mut m = DenseMatrix::zeros(n, domain.len());
    let mut patterns: Vec<Option<Box<[f32]>>> = vec![None; src.dict.dict_len()];
    for i in 0..n {
        let code = src.code_at(i) as usize;
        if patterns[code].is_none() {
            let key = src.dict.value(code as u32);
            let mut row = vec![0.0f32; domain.len()];
            for (j, slot) in row.iter_mut().enumerate() {
                if cmp_hit(key.sql_cmp(domain.value_at(j)), op)? {
                    *slot = 1.0;
                }
            }
            patterns[code] = Some(row.into_boxed_slice());
        }
        m.row_mut(i)
            .copy_from_slice(patterns[code].as_deref().expect("pattern just built"));
    }
    Ok(m)
}

/// Encoded [`one_hot_csr`].
pub fn one_hot_csr_encoded(
    src: &EncodedSource<'_>,
    remap: &[u32],
    domain_len: usize,
) -> TcuResult<CsrMatrix> {
    let n = src.len();
    let mut triplets = Vec::with_capacity(n);
    for i in 0..n {
        let j = remap[src.code_at(i) as usize];
        if j != NO_INDEX {
            triplets.push((i, j as usize, 1.0f32));
        }
    }
    CsrMatrix::from_triplets(n, domain_len, &triplets)
}

/// Encoded [`valued_csr`].
pub fn valued_csr_encoded(
    src: &EncodedSource<'_>,
    payload: &[f64],
    remap: &[u32],
    domain_len: usize,
) -> TcuResult<CsrMatrix> {
    let n = src.len();
    let mut triplets = Vec::with_capacity(n);
    for i in 0..n {
        let j = remap[src.code_at(i) as usize];
        if j != NO_INDEX {
            triplets.push((i, j as usize, payload[i] as f32));
        }
    }
    CsrMatrix::from_triplets(n, domain_len, &triplets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_col() -> Column {
        Column::Int64(vec![10, 20, 10, 30])
    }

    #[test]
    fn domain_union_and_lookup() {
        let a = Column::Int64(vec![1, 2, 2]);
        let b = Column::Int64(vec![2, 3]);
        let dom = Domain::build(&[(&a, None), (&b, None)]);
        assert_eq!(dom.len(), 3);
        assert_eq!(dom.index_of(&Value::Int(3)), Some(2));
        assert_eq!(dom.index_of(&Value::Int(9)), None);
        assert_eq!(dom.value_at(0), &Value::Int(1));
        assert!(!dom.is_empty());
        assert_eq!(dom.values().len(), 3);
    }

    #[test]
    fn domain_respects_row_subsets() {
        let a = Column::Int64(vec![1, 2, 3, 4]);
        let dom = Domain::build(&[(&a, Some(&[0, 2]))]);
        assert_eq!(dom.len(), 2);
        assert!(dom.index_of(&Value::Int(2)).is_none());
    }

    #[test]
    fn one_hot_has_single_one_per_row() {
        let col = key_col();
        let dom = Domain::build(&[(&col, None)]);
        let m = one_hot_matrix(&col, None, &dom);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 3);
        for i in 0..4 {
            let ones: f32 = m.row(i).iter().sum();
            assert_eq!(ones, 1.0);
        }
        // Row 0 and row 2 share key 10 → same column set.
        assert_eq!(m.row(0), m.row(2));
    }

    #[test]
    fn valued_matrix_carries_payload() {
        let col = key_col();
        let dom = Domain::build(&[(&col, None)]);
        let m = valued_matrix(&col, &[1.5, 2.5, 3.5, 4.5], None, &dom);
        assert_eq!(m.row(0).iter().sum::<f32>(), 1.5);
        assert_eq!(m.row(3).iter().sum::<f32>(), 4.5);
    }

    #[test]
    fn adjacency_accumulates_duplicates() {
        // B(Val, ID): Val is the group attribute, ID the join key.
        let group = Column::Int64(vec![7, 7, 8]);
        let key = Column::Int64(vec![1, 1, 2]);
        let gdom = Domain::build(&[(&group, None)]);
        let kdom = Domain::build(&[(&key, None)]);
        let m = adjacency_matrix(&group, &key, None, None, &gdom, &kdom);
        // group 7 / key 1 appears twice.
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(1, 1), 1.0);
        let valued = adjacency_matrix(&group, &key, Some(&[5.0, 6.0, 7.0]), None, &gdom, &kdom);
        assert_eq!(valued.get(0, 0), 11.0);
    }

    #[test]
    fn comparison_matrix_lt() {
        let col = Column::Int64(vec![1, 2]);
        let dom = Domain::build(&[(&Column::Int64(vec![1, 2, 3]), None)]);
        let m = comparison_matrix(&col, None, &dom, BinOp::Lt).unwrap();
        // key 1 < {2,3}; key 2 < {3}.
        assert_eq!(m.row(0), &[0.0, 1.0, 1.0]);
        assert_eq!(m.row(1), &[0.0, 0.0, 1.0]);
        let ne = comparison_matrix(&col, None, &dom, BinOp::NotEq).unwrap();
        assert_eq!(ne.row(0), &[0.0, 1.0, 1.0]);
        assert!(comparison_matrix(&col, None, &dom, BinOp::Add).is_err());
    }

    #[test]
    fn csr_builders_match_dense() {
        let col = key_col();
        let dom = Domain::build(&[(&col, None)]);
        let dense = one_hot_matrix(&col, None, &dom);
        let sparse = one_hot_csr(&col, None, &dom).unwrap();
        assert_eq!(sparse.to_dense(), dense);

        let payload = [1.0, 2.0, 3.0, 4.0];
        let vd = valued_matrix(&col, &payload, None, &dom);
        let vs = valued_csr(&col, &payload, None, &dom).unwrap();
        assert_eq!(vs.to_dense(), vd);
    }

    #[test]
    fn encoded_domain_matches_value_domain() {
        let a = Column::Int64(vec![1, 2, 2, 5]);
        let b = Column::Float64(vec![2.0, 3.5, 1.0]);
        let expected = Domain::build(&[(&a, Some(&[0, 1, 2])), (&b, None)]);
        let da = DictColumn::build(&a);
        let db = DictColumn::build(&b);
        let rows = [0usize, 1, 2];
        let (dom, maps) =
            Domain::build_encoded(&[EncodedSource::subset(&da, &rows), EncodedSource::whole(&db)]);
        assert_eq!(dom.values(), expected.values());
        // Remap tables agree with index_of; unseen codes stay NO_INDEX.
        for (code, v) in da.values().iter().enumerate() {
            let want = if v == &Value::Int(5) {
                NO_INDEX
            } else {
                dom.index_of(v).unwrap() as u32
            };
            assert_eq!(maps[0][code], want);
        }
        for (code, v) in db.values().iter().enumerate() {
            assert_eq!(maps[1][code], dom.index_of(v).unwrap() as u32);
        }
    }

    #[test]
    fn encoded_builders_match_value_builders() {
        let col = key_col();
        let dict = DictColumn::build(&col);
        let rows = [3usize, 0, 2];
        for subset in [None, Some(&rows[..])] {
            let dom_sources: Vec<(&Column, Option<&[usize]>)> = vec![(&col, subset)];
            let dom = Domain::build(&dom_sources);
            let src = EncodedSource {
                dict: &dict,
                codes: dict.codes(),
                rows: subset,
            };
            let (edom, maps) = Domain::build_encoded(&[src]);
            assert_eq!(edom.values(), dom.values());
            let remap = &maps[0];

            assert_eq!(
                one_hot_matrix_encoded(&src, remap, dom.len()),
                one_hot_matrix(&col, subset, &dom)
            );
            let payload: Vec<f64> = (0..src.len()).map(|i| i as f64 + 0.5).collect();
            assert_eq!(
                valued_matrix_encoded(&src, &payload, remap, dom.len()),
                valued_matrix(&col, &payload, subset, &dom)
            );
            assert_eq!(
                one_hot_csr_encoded(&src, remap, dom.len()).unwrap(),
                one_hot_csr(&col, subset, &dom).unwrap()
            );
            assert_eq!(
                valued_csr_encoded(&src, &payload, remap, dom.len()).unwrap(),
                valued_csr(&col, &payload, subset, &dom).unwrap()
            );
            for op in [BinOp::Lt, BinOp::GtEq, BinOp::NotEq] {
                assert_eq!(
                    comparison_matrix_encoded(&src, &dom, op).unwrap(),
                    comparison_matrix(&col, subset, &dom, op).unwrap()
                );
            }
            assert!(comparison_matrix_encoded(&src, &dom, BinOp::Add).is_err());
        }
    }

    #[test]
    fn encoded_adjacency_matches() {
        let group = Column::Int64(vec![7, 7, 8]);
        let key = Column::Int64(vec![1, 1, 2]);
        let gdom = Domain::build(&[(&group, None)]);
        let kdom = Domain::build(&[(&key, None)]);
        let gd = DictColumn::build(&group);
        let kd = DictColumn::build(&key);
        let (egdom, gmaps) = Domain::build_encoded(&[EncodedSource::whole(&gd)]);
        let (ekdom, kmaps) = Domain::build_encoded(&[EncodedSource::whole(&kd)]);
        assert_eq!(egdom.values(), gdom.values());
        assert_eq!(ekdom.values(), kdom.values());
        let got = adjacency_matrix_encoded(
            &EncodedSource::whole(&gd),
            &gmaps[0],
            gdom.len(),
            &EncodedSource::whole(&kd),
            &kmaps[0],
            kdom.len(),
            Some(&[5.0, 6.0, 7.0]),
        );
        let want = adjacency_matrix(&group, &key, Some(&[5.0, 6.0, 7.0]), None, &gdom, &kdom);
        assert_eq!(got, want);
    }

    #[test]
    fn text_keys_work() {
        let col = Column::Text(vec!["x".into(), "y".into(), "x".into()]);
        let dom = Domain::build(&[(&col, None)]);
        assert_eq!(dom.len(), 2);
        let m = one_hot_matrix(&col, None, &dom);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(2, 0), 1.0);
        assert_eq!(m.get(1, 1), 1.0);
    }
}
