//! Table → matrix translation (§3.1–§3.4).
//!
//! The paper's code generator maps relational columns onto matrices over a
//! shared key domain:
//!
//! * a **one-hot matrix** `mat(A)` with `mat(A)[i][j] = 1` iff row `i`'s
//!   join key equals the `j`-th domain value (the natural-join encoding of
//!   §3.1),
//! * a **valued matrix** that stores the aggregated payload instead of a 1
//!   (the SUM/COUNT encodings of §3.3),
//! * an **adjacency matrix** over `(attribute domain × key domain)` (the
//!   alternative encoding of §3.1 and the group-by side `mat(B)` of §3.3),
//! * a **comparison matrix** with `mat(A)[i][j] = 1` iff
//!   `key_i <op> domain_j` (the non-equi joins of §3.4).

use std::collections::HashMap;
use tcudb_sql::BinOp;
use tcudb_storage::Column;
use tcudb_tensor::{CsrMatrix, DenseMatrix};
use tcudb_types::value::ValueKey;
use tcudb_types::{TcuResult, Value};

/// A dictionary over the distinct values of one or more join-key columns:
/// `dom(A.ID) ∪ dom(B.ID)` in the paper's notation.
#[derive(Debug, Clone, Default)]
pub struct Domain {
    index: HashMap<ValueKey, usize>,
    values: Vec<Value>,
}

impl Domain {
    /// Build the union domain over the given `(column, row subset)` pairs.
    /// Passing `None` as the row subset uses every row.  Values are indexed
    /// in first-seen order, which also preserves any pre-sorted input order
    /// (the ORDER BY trick of §3.4).
    pub fn build(sources: &[(&Column, Option<&[usize]>)]) -> Domain {
        let mut dom = Domain::default();
        for (col, rows) in sources {
            match rows {
                Some(rows) => {
                    for &r in rows.iter() {
                        dom.insert(col.value(r));
                    }
                }
                None => {
                    for r in 0..col.len() {
                        dom.insert(col.value(r));
                    }
                }
            }
        }
        dom
    }

    /// Insert a value, returning its index.
    pub fn insert(&mut self, value: Value) -> usize {
        let key = value.group_key();
        if let Some(&idx) = self.index.get(&key) {
            return idx;
        }
        let idx = self.values.len();
        self.index.insert(key, idx);
        self.values.push(value);
        idx
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Index of a value, if present.
    pub fn index_of(&self, value: &Value) -> Option<usize> {
        self.index.get(&value.group_key()).copied()
    }

    /// The value at a given index.
    pub fn value_at(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// All values in index order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

/// Row selection helper: `rows` as a vector of indices (identity when
/// `None`).
fn selected_rows(col: &Column, rows: Option<&[usize]>) -> Vec<usize> {
    match rows {
        Some(r) => r.to_vec(),
        None => (0..col.len()).collect(),
    }
}

/// Build the one-hot join matrix of §3.1: one row per (selected) table row,
/// one column per domain value, 1 where the key matches.
pub fn one_hot_matrix(key_col: &Column, rows: Option<&[usize]>, domain: &Domain) -> DenseMatrix {
    let rows = selected_rows(key_col, rows);
    let mut m = DenseMatrix::zeros(rows.len(), domain.len());
    for (i, &r) in rows.iter().enumerate() {
        if let Some(j) = domain.index_of(&key_col.value(r)) {
            m.set(i, j, 1.0);
        }
    }
    m
}

/// Build the valued matrix of §3.3: like [`one_hot_matrix`] but the
/// non-zero entry carries the row's payload value (`a_i.Val` for SUM, 1 for
/// COUNT).
pub fn valued_matrix(
    key_col: &Column,
    payload: &[f64],
    rows: Option<&[usize]>,
    domain: &Domain,
) -> DenseMatrix {
    let rows = selected_rows(key_col, rows);
    let mut m = DenseMatrix::zeros(rows.len(), domain.len());
    for (i, &r) in rows.iter().enumerate() {
        if let Some(j) = domain.index_of(&key_col.value(r)) {
            m.set(i, j, payload[i] as f32);
        }
    }
    m
}

/// Build the adjacency matrix of §3.1/§3.3: one row per distinct value of
/// `row_col` (its domain is given by `row_domain`), one column per key
/// domain value; entry `(i, j)` is the payload (or 1) when some selected
/// table row has `row_col = row_domain[i]` and `key_col = domain[j]`.
/// Multiple matching rows accumulate, which is exactly the behaviour needed
/// for aggregates.
pub fn adjacency_matrix(
    row_col: &Column,
    key_col: &Column,
    payload: Option<&[f64]>,
    rows: Option<&[usize]>,
    row_domain: &Domain,
    key_domain: &Domain,
) -> DenseMatrix {
    let rows = selected_rows(key_col, rows);
    let mut m = DenseMatrix::zeros(row_domain.len(), key_domain.len());
    for (pos, &r) in rows.iter().enumerate() {
        let ri = row_domain.index_of(&row_col.value(r));
        let kj = key_domain.index_of(&key_col.value(r));
        if let (Some(i), Some(j)) = (ri, kj) {
            let v = payload.map(|p| p[pos]).unwrap_or(1.0);
            m.add_to(i, j, v as f32);
        }
    }
    m
}

/// Build the comparison matrix of §3.4 for non-equi joins: entry `(i, j)`
/// is 1 when `key_i <op> domain_j` holds.
pub fn comparison_matrix(
    key_col: &Column,
    rows: Option<&[usize]>,
    domain: &Domain,
    op: BinOp,
) -> TcuResult<DenseMatrix> {
    let rows = selected_rows(key_col, rows);
    let mut m = DenseMatrix::zeros(rows.len(), domain.len());
    for (i, &r) in rows.iter().enumerate() {
        let key = key_col.value(r);
        for j in 0..domain.len() {
            let dv = domain.value_at(j);
            let ord = key.sql_cmp(dv);
            let hit = match op {
                BinOp::Lt => ord == std::cmp::Ordering::Less,
                BinOp::LtEq => ord != std::cmp::Ordering::Greater,
                BinOp::Gt => ord == std::cmp::Ordering::Greater,
                BinOp::GtEq => ord != std::cmp::Ordering::Less,
                BinOp::NotEq => ord != std::cmp::Ordering::Equal,
                BinOp::Eq => ord == std::cmp::Ordering::Equal,
                other => {
                    return Err(tcudb_types::TcuError::Plan(format!(
                        "operator {other} is not a comparison"
                    )))
                }
            };
            if hit {
                m.set(i, j, 1.0);
            }
        }
    }
    Ok(m)
}

/// Sparse (CSR) version of the one-hot join matrix, used by the TCU-SpMM
/// plan so the dense matrix never has to be materialised.
pub fn one_hot_csr(
    key_col: &Column,
    rows: Option<&[usize]>,
    domain: &Domain,
) -> TcuResult<CsrMatrix> {
    let rows = selected_rows(key_col, rows);
    let mut triplets = Vec::with_capacity(rows.len());
    for (i, &r) in rows.iter().enumerate() {
        if let Some(j) = domain.index_of(&key_col.value(r)) {
            triplets.push((i, j, 1.0f32));
        }
    }
    CsrMatrix::from_triplets(rows.len(), domain.len(), &triplets)
}

/// Sparse (CSR) version of [`valued_matrix`].
pub fn valued_csr(
    key_col: &Column,
    payload: &[f64],
    rows: Option<&[usize]>,
    domain: &Domain,
) -> TcuResult<CsrMatrix> {
    let rows = selected_rows(key_col, rows);
    let mut triplets = Vec::with_capacity(rows.len());
    for (i, &r) in rows.iter().enumerate() {
        if let Some(j) = domain.index_of(&key_col.value(r)) {
            triplets.push((i, j, payload[i] as f32));
        }
    }
    CsrMatrix::from_triplets(rows.len(), domain.len(), &triplets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_col() -> Column {
        Column::Int64(vec![10, 20, 10, 30])
    }

    #[test]
    fn domain_union_and_lookup() {
        let a = Column::Int64(vec![1, 2, 2]);
        let b = Column::Int64(vec![2, 3]);
        let dom = Domain::build(&[(&a, None), (&b, None)]);
        assert_eq!(dom.len(), 3);
        assert_eq!(dom.index_of(&Value::Int(3)), Some(2));
        assert_eq!(dom.index_of(&Value::Int(9)), None);
        assert_eq!(dom.value_at(0), &Value::Int(1));
        assert!(!dom.is_empty());
        assert_eq!(dom.values().len(), 3);
    }

    #[test]
    fn domain_respects_row_subsets() {
        let a = Column::Int64(vec![1, 2, 3, 4]);
        let dom = Domain::build(&[(&a, Some(&[0, 2]))]);
        assert_eq!(dom.len(), 2);
        assert!(dom.index_of(&Value::Int(2)).is_none());
    }

    #[test]
    fn one_hot_has_single_one_per_row() {
        let col = key_col();
        let dom = Domain::build(&[(&col, None)]);
        let m = one_hot_matrix(&col, None, &dom);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 3);
        for i in 0..4 {
            let ones: f32 = m.row(i).iter().sum();
            assert_eq!(ones, 1.0);
        }
        // Row 0 and row 2 share key 10 → same column set.
        assert_eq!(m.row(0), m.row(2));
    }

    #[test]
    fn valued_matrix_carries_payload() {
        let col = key_col();
        let dom = Domain::build(&[(&col, None)]);
        let m = valued_matrix(&col, &[1.5, 2.5, 3.5, 4.5], None, &dom);
        assert_eq!(m.row(0).iter().sum::<f32>(), 1.5);
        assert_eq!(m.row(3).iter().sum::<f32>(), 4.5);
    }

    #[test]
    fn adjacency_accumulates_duplicates() {
        // B(Val, ID): Val is the group attribute, ID the join key.
        let group = Column::Int64(vec![7, 7, 8]);
        let key = Column::Int64(vec![1, 1, 2]);
        let gdom = Domain::build(&[(&group, None)]);
        let kdom = Domain::build(&[(&key, None)]);
        let m = adjacency_matrix(&group, &key, None, None, &gdom, &kdom);
        // group 7 / key 1 appears twice.
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(1, 1), 1.0);
        let valued = adjacency_matrix(&group, &key, Some(&[5.0, 6.0, 7.0]), None, &gdom, &kdom);
        assert_eq!(valued.get(0, 0), 11.0);
    }

    #[test]
    fn comparison_matrix_lt() {
        let col = Column::Int64(vec![1, 2]);
        let dom = Domain::build(&[(&Column::Int64(vec![1, 2, 3]), None)]);
        let m = comparison_matrix(&col, None, &dom, BinOp::Lt).unwrap();
        // key 1 < {2,3}; key 2 < {3}.
        assert_eq!(m.row(0), &[0.0, 1.0, 1.0]);
        assert_eq!(m.row(1), &[0.0, 0.0, 1.0]);
        let ne = comparison_matrix(&col, None, &dom, BinOp::NotEq).unwrap();
        assert_eq!(ne.row(0), &[0.0, 1.0, 1.0]);
        assert!(comparison_matrix(&col, None, &dom, BinOp::Add).is_err());
    }

    #[test]
    fn csr_builders_match_dense() {
        let col = key_col();
        let dom = Domain::build(&[(&col, None)]);
        let dense = one_hot_matrix(&col, None, &dom);
        let sparse = one_hot_csr(&col, None, &dom).unwrap();
        assert_eq!(sparse.to_dense(), dense);

        let payload = [1.0, 2.0, 3.0, 4.0];
        let vd = valued_matrix(&col, &payload, None, &dom);
        let vs = valued_csr(&col, &payload, None, &dom).unwrap();
        assert_eq!(vs.to_dense(), vd);
    }

    #[test]
    fn text_keys_work() {
        let col = Column::Text(vec!["x".into(), "y".into(), "x".into()]);
        let dom = Domain::build(&[(&col, None)]);
        assert_eq!(dom.len(), 2);
        let m = one_hot_matrix(&col, None, &dom);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(2, 0), 1.0);
        assert_eq!(m.get(1, 1), 1.0);
    }
}
