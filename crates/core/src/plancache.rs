//! The plan/statement cache: pay parse → analyze → cost **once** per
//! distinct statement per catalog epoch.
//!
//! TCUDB's cost-model-driven planning (the Figure 6 workflow: feasibility,
//! density, working-set and cost tests per join step) is exactly the kind
//! of per-query work a serving layer should amortize: a dashboard or an
//! application replays the same statements thousands of times against a
//! catalog that changes rarely.  A [`PlanCache`] entry stores everything
//! execution needs that does **not** depend on runtime state:
//!
//! * the parsed AST ([`SelectStatement`]),
//! * the analyzer output ([`AnalyzedQuery`] — bindings, classified
//!   predicates, recognised pattern, with tables pinned by `Arc`),
//! * the optimizer's per-join-step [`PlanChoice`]s, recorded on the first
//!   execution and replayed verbatim afterwards (legal because identical
//!   SQL against an identical snapshot produces identical filtered
//!   cardinalities, hence identical [`JoinShape`]s — the inputs the cost
//!   model decides on).
//!
//! Per-execution observables (the simulated
//! [`ExecutionTimeline`](tcudb_device::ExecutionTimeline), the
//! host-measured `HostBreakdown`) are **not** cached — they are produced
//! fresh by every execution.
//!
//! Entries are keyed on `(normalized SQL, catalog epoch)`.  The epoch
//! comes from [`tcudb_storage::SharedCatalog`]: every published write
//! bumps it, so a cached plan can never be replayed against data it was
//! not planned for.  Stale epochs are evicted eagerly on write
//! publication and lazily by the FIFO capacity bound.
//!
//! [`JoinShape`]: crate::optimizer::JoinShape

use crate::analyzer::AnalyzedQuery;
use crate::optimizer::PlanChoice;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use tcudb_sql::SelectStatement;
use tcudb_types::sync::locked;

/// Everything cached for one `(statement, epoch)` pair.
///
/// Entries are deduplicated by the cache: all executions of one statement
/// against one epoch share a single `Arc<CachedStatement>`, so pointer
/// identity (`Arc::ptr_eq`) is a valid equality test for "same statement,
/// same snapshot" — the serving layer coalesces on it.
#[derive(Debug)]
pub struct CachedStatement {
    /// The normalized statement text this entry is keyed on.
    normalized: String,
    /// The catalog epoch this entry was analyzed against.
    epoch: u64,
    /// The parsed AST.
    pub stmt: Arc<SelectStatement>,
    /// The analyzer output, with bound tables pinned to the snapshot the
    /// statement was analyzed against.
    pub analyzed: Arc<AnalyzedQuery>,
    /// The optimizer's decisions, one per executed join step, recorded by
    /// the first execution.  Empty until that execution finishes; single
    /// assignment so racing first executions agree.
    choices: OnceLock<Arc<Vec<PlanChoice>>>,
    /// Memoized admission-control estimate (see
    /// [`CachedStatement::working_set_bytes`]).
    working_set: OnceLock<f64>,
}

impl CachedStatement {
    /// The normalized statement text this entry is keyed on.
    pub fn normalized_sql(&self) -> &str {
        &self.normalized
    }

    /// The catalog epoch this entry was analyzed against.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The recorded per-join-step plan choices, if an execution has
    /// completed and recorded them.
    pub fn choices(&self) -> Option<Arc<Vec<PlanChoice>>> {
        self.choices.get().cloned()
    }

    /// Record the plan choices of a completed execution (first writer
    /// wins; racing recordings of the same statement are identical).
    pub fn record_choices(&self, choices: Vec<PlanChoice>) {
        let _ = self.choices.set(Arc::new(choices));
    }

    /// The statement's estimated working-set bytes, computed once by
    /// `compute` on first request and memoized (the estimate is a pure
    /// function of the analyzed query and the snapshot this entry pins,
    /// so the serving layer's admission control asks once per statement
    /// per epoch, not once per submission).
    pub fn working_set_bytes(&self, compute: impl FnOnce() -> f64) -> f64 {
        *self.working_set.get_or_init(compute)
    }
}

/// Monotonic hit/miss counters, cheap enough to read in hot paths and in
/// tests ("repeat executions hit the plan cache" is asserted on these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache (no parse, no analyze, no costing).
    pub hits: u64,
    /// Lookups that had to parse + analyze (and later record choices).
    pub misses: u64,
    /// Entries evicted because their epoch was retired by a write.
    pub stale_evictions: u64,
}

impl PlanCacheStats {
    /// Hit rate in `[0, 1]` (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded, thread-safe statement cache keyed on
/// `(normalized SQL, catalog epoch)`.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<CacheMap>,
    hits: AtomicU64,
    misses: AtomicU64,
    stale_evictions: AtomicU64,
    capacity: usize,
}

#[derive(Debug, Default)]
struct CacheMap {
    entries: HashMap<(String, u64), Arc<CachedStatement>>,
    /// Insertion order for FIFO eviction once `capacity` is exceeded.
    order: VecDeque<(String, u64)>,
}

/// Default maximum number of cached statements per engine.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::with_capacity(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl PlanCache {
    /// A cache bounded to `capacity` statements (FIFO eviction).
    pub fn with_capacity(capacity: usize) -> PlanCache {
        PlanCache {
            inner: Mutex::new(CacheMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale_evictions: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    /// Look up a statement by its prebuilt `(normalized SQL, epoch)` key,
    /// counting a hit or a miss.  Taking the key by reference keeps the
    /// per-query hot path allocation-free inside the cache lock (callers
    /// build the key once and reuse it for the insert on a miss).
    pub fn lookup(&self, key: &(String, u64)) -> Option<Arc<CachedStatement>> {
        let map = locked(&self.inner);
        let found = map.entries.get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert a freshly analyzed statement.  If another thread raced the
    /// same key in, the earlier entry wins and is returned (so racing
    /// threads converge on one `CachedStatement` and one choice
    /// recording).
    pub fn insert(
        &self,
        normalized_sql: String,
        epoch: u64,
        stmt: Arc<SelectStatement>,
        analyzed: Arc<AnalyzedQuery>,
    ) -> Arc<CachedStatement> {
        let mut map = locked(&self.inner);
        let key = (normalized_sql, epoch);
        if let Some(existing) = map.entries.get(&key) {
            return Arc::clone(existing);
        }
        let entry = Arc::new(CachedStatement {
            normalized: key.0.clone(),
            epoch,
            stmt,
            analyzed,
            choices: OnceLock::new(),
            working_set: OnceLock::new(),
        });
        map.order.push_back(key.clone());
        map.entries.insert(key, Arc::clone(&entry));
        while map.entries.len() > self.capacity {
            if let Some(old) = map.order.pop_front() {
                map.entries.remove(&old);
            } else {
                break;
            }
        }
        entry
    }

    /// Drop every entry whose epoch is older than `current_epoch` (called
    /// when a write publishes a new snapshot).
    ///
    /// Trade-off, chosen deliberately: entries pin `Arc<Table>`s, so
    /// keeping old-epoch plans alive would retain entire pre-ingest table
    /// versions in memory for as long as they sat in the cache.  Eager
    /// retirement bounds that retention at the cost of sessions pinned to
    /// an old snapshot (`TcuDb::execute_at`) re-analyzing their
    /// statements after each concurrent write — correct either way, since
    /// lookups at retired epochs simply miss.
    pub fn retire_epochs_before(&self, current_epoch: u64) {
        let mut map = locked(&self.inner);
        let before = map.entries.len();
        map.entries.retain(|&(_, e), _| e >= current_epoch);
        let evicted = before - map.entries.len();
        if evicted > 0 {
            self.stale_evictions
                .fetch_add(evicted as u64, Ordering::Relaxed);
            let CacheMap { entries, order } = &mut *map;
            order.retain(|k| entries.contains_key(k));
        }
    }

    /// Remove every entry and reset nothing else (used when the engine
    /// configuration changes under the cache: recorded choices may embed
    /// decisions from the old optimizer config).
    pub fn clear(&self) {
        let mut map = locked(&self.inner);
        map.entries.clear();
        map.order.clear();
    }

    /// Number of cached statements.
    pub fn len(&self) -> usize {
        locked(&self.inner).entries.len()
    }

    /// True if the cache holds no statements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stale_evictions: self.stale_evictions.load(Ordering::Relaxed),
        }
    }
}

/// Normalize SQL for cache keying: collapse runs of ASCII whitespace into
/// one space and trim the ends, leaving single-quoted string literals
/// byte-for-byte intact (their whitespace is data, not formatting).
///
/// Two spellings that normalize equal are guaranteed to parse equal; the
/// converse is not attempted (`select` vs `SELECT` key separately — a
/// cache miss, never a wrong answer).
pub fn normalize_sql(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut in_string = false;
    let mut pending_space = false;
    for ch in sql.chars() {
        if in_string {
            out.push(ch);
            if ch == '\'' {
                in_string = false;
            }
            continue;
        }
        if ch.is_ascii_whitespace() {
            pending_space = true;
            continue;
        }
        if pending_space {
            if !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
        }
        out.push(ch);
        if ch == '\'' {
            in_string = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcudb_sql::parse;
    use tcudb_storage::{Catalog, Table};

    fn entry_for(cache: &PlanCache, sql: &str, epoch: u64) -> Arc<CachedStatement> {
        let mut cat = Catalog::new();
        cat.register(Table::from_int_columns("a", &[("id", vec![1])]).unwrap());
        let stmt = Arc::new(parse(sql).unwrap());
        let analyzed = Arc::new(crate::analyzer::analyze(&stmt, &cat).unwrap());
        cache.insert(normalize_sql(sql), epoch, stmt, analyzed)
    }

    #[test]
    fn normalization_collapses_whitespace_outside_strings() {
        assert_eq!(
            normalize_sql("  SELECT   a.id\n\tFROM a  "),
            "SELECT a.id FROM a"
        );
        assert_eq!(
            normalize_sql("SELECT 'two  spaces'   FROM a"),
            "SELECT 'two  spaces' FROM a"
        );
        assert_eq!(normalize_sql("x  =  'a''b'"), "x = 'a''b'");
    }

    #[test]
    fn lookup_counts_hits_and_misses_per_epoch() {
        let cache = PlanCache::default();
        let sql = "SELECT a.id FROM a";
        assert!(cache.lookup(&(normalize_sql(sql), 0)).is_none());
        entry_for(&cache, sql, 0);
        assert!(cache.lookup(&(normalize_sql(sql), 0)).is_some());
        // Same SQL at a newer epoch is a different plan.
        assert!(cache.lookup(&(normalize_sql(sql), 1)).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 2));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn retire_evicts_only_older_epochs() {
        let cache = PlanCache::default();
        entry_for(&cache, "SELECT a.id FROM a", 0);
        entry_for(&cache, "SELECT a.id FROM a", 1);
        cache.retire_epochs_before(1);
        assert_eq!(cache.len(), 1);
        assert!(cache
            .lookup(&("SELECT a.id FROM a".to_string(), 1))
            .is_some());
        assert_eq!(cache.stats().stale_evictions, 1);
    }

    #[test]
    fn capacity_bound_evicts_fifo() {
        let cache = PlanCache::with_capacity(2);
        entry_for(&cache, "SELECT a.id FROM a", 0);
        entry_for(&cache, "SELECT a.id , a.id FROM a", 0);
        entry_for(&cache, "SELECT a.id , a.id , a.id FROM a", 0);
        assert_eq!(cache.len(), 2);
        assert!(cache
            .lookup(&("SELECT a.id FROM a".to_string(), 0))
            .is_none());
    }

    #[test]
    fn choices_record_once() {
        let cache = PlanCache::default();
        let e = entry_for(&cache, "SELECT a.id FROM a", 0);
        assert!(e.choices().is_none());
        e.record_choices(vec![]);
        e.record_choices(vec![]);
        assert!(e.choices().is_some());
    }
}
