//! The query analyzer: binding, predicate classification and TCU pattern
//! recognition (§3 of the paper).

use crate::context::RowContext;
use std::sync::Arc;
use tcudb_sql::{AggFunc, BinOp, ColumnRef, Expr, SelectStatement};
use tcudb_storage::{Catalog, Table, TableStats};
use tcudb_types::{TcuError, TcuResult};

/// A table bound from the FROM clause.
#[derive(Debug, Clone)]
pub struct BoundTable {
    /// Binding name (alias if given, else the table name).
    pub binding: String,
    /// The table data.
    pub table: Arc<Table>,
    /// Pre-computed statistics (min/max/ndv per column).
    pub stats: Arc<TableStats>,
}

/// A join predicate `left.column <op> right.column` between two bound
/// tables.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPredicate {
    /// Index of the left table and its join column name.
    pub left: (usize, String),
    /// Index of the right table and its join column name.
    pub right: (usize, String),
    /// Comparison operator (equality for natural joins, the full set for
    /// the non-equi pattern Q5).
    pub op: BinOp,
}

impl JoinPredicate {
    /// Is this an equality join?
    pub fn is_equi(&self) -> bool {
        self.op == BinOp::Eq
    }
}

/// The TCU-accelerable query patterns of §3 (plus the cases that are not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryPattern {
    /// Single table scan / filter / aggregate — no join to accelerate.
    SingleTable,
    /// Q1: two-way natural join (§3.1).
    TwoWayJoin,
    /// Q5: two-way non-equi join (§3.4).
    NonEquiJoin,
    /// Q3: group-by aggregate over a two-way join (§3.3).
    JoinGroupByAggregate,
    /// Q4: aggregate over a two-way join without GROUP BY (§3.3).
    JoinAggregate,
    /// Figure 5: the matrix-multiplication query — group by one key from
    /// each side, SUM over a product of both value columns.
    MatMul,
    /// Q2 / star queries: joins over three or more tables (§3.2),
    /// optionally with aggregation.
    MultiWayJoin,
    /// Recognised SQL, but not expressible on the TCU (e.g. MIN/MAX
    /// aggregates); the optimizer must fall back to CPU/GPU operators.
    NotTcuExpressible(String),
}

impl QueryPattern {
    /// Can a TCU plan be generated for this pattern at all?
    pub fn tcu_supported(&self) -> bool {
        !matches!(
            self,
            QueryPattern::SingleTable | QueryPattern::NotTcuExpressible(_)
        )
    }
}

/// The fully analyzed query: bound tables, classified predicates and the
/// recognised pattern.
#[derive(Debug, Clone)]
pub struct AnalyzedQuery {
    /// The original statement.
    pub stmt: SelectStatement,
    /// Bound FROM tables in statement order.
    pub tables: Vec<BoundTable>,
    /// Join predicates between tables.
    pub joins: Vec<JoinPredicate>,
    /// Single-table filter predicates, tagged with the table index.
    pub filters: Vec<(usize, Expr)>,
    /// Predicates touching several tables that are not simple column-to-
    /// column joins; evaluated after the joins.
    pub residual: Vec<Expr>,
    /// The recognised query pattern.
    pub pattern: QueryPattern,
}

impl AnalyzedQuery {
    /// A row context over all bound tables (used by executors).
    pub fn row_context(&self) -> RowContext {
        RowContext::new(
            self.tables
                .iter()
                .map(|b| (b.binding.clone(), Arc::clone(&b.table)))
                .collect(),
        )
    }

    /// All join predicates that involve table `idx`.
    pub fn joins_for_table(&self, idx: usize) -> Vec<&JoinPredicate> {
        self.joins
            .iter()
            .filter(|j| j.left.0 == idx || j.right.0 == idx)
            .collect()
    }

    /// Filters that apply to table `idx`.
    pub fn filters_for_table(&self, idx: usize) -> Vec<&Expr> {
        self.filters
            .iter()
            .filter(|(i, _)| *i == idx)
            .map(|(_, e)| e)
            .collect()
    }
}

/// Analyze a parsed statement against a catalog.
pub fn analyze(stmt: &SelectStatement, catalog: &Catalog) -> TcuResult<AnalyzedQuery> {
    if stmt.from.is_empty() {
        return Err(TcuError::Analysis("query has no FROM clause".into()));
    }
    if stmt.items.is_empty() {
        return Err(TcuError::Analysis("query has an empty SELECT list".into()));
    }

    // Bind tables.
    let mut tables = Vec::with_capacity(stmt.from.len());
    for tref in &stmt.from {
        let table = catalog.table(&tref.name)?;
        let stats = catalog.stats(&tref.name)?;
        tables.push(BoundTable {
            binding: tref.binding().to_string(),
            table,
            stats,
        });
    }

    let ctx = RowContext::new(
        tables
            .iter()
            .map(|b| (b.binding.clone(), Arc::clone(&b.table)))
            .collect(),
    );

    // Validate that every referenced column resolves.
    for item in &stmt.items {
        for col in item.expr.column_refs() {
            ctx.resolve(col)?;
        }
    }
    for g in &stmt.group_by {
        for col in g.column_refs() {
            ctx.resolve(col)?;
        }
    }

    // Classify WHERE conjuncts.
    let mut joins = Vec::new();
    let mut filters = Vec::new();
    let mut residual = Vec::new();
    for conjunct in stmt.where_conjuncts() {
        match classify_conjunct(conjunct, &ctx)? {
            Classified::Join(j) => joins.push(j),
            Classified::Filter(idx, expr) => filters.push((idx, expr)),
            Classified::Residual(expr) => residual.push(expr),
        }
    }

    let pattern = recognise_pattern(stmt, &tables, &joins);

    Ok(AnalyzedQuery {
        stmt: stmt.clone(),
        tables,
        joins,
        filters,
        residual,
        pattern,
    })
}

enum Classified {
    Join(JoinPredicate),
    Filter(usize, Expr),
    Residual(Expr),
}

/// Classify one conjunct as a join predicate, a single-table filter or a
/// residual predicate.
fn classify_conjunct(expr: &Expr, ctx: &RowContext) -> TcuResult<Classified> {
    // Which tables does it touch?
    let mut table_indices: Vec<usize> = Vec::new();
    for col in expr.column_refs() {
        let (ti, _) = ctx.resolve(col)?;
        if !table_indices.contains(&ti) {
            table_indices.push(ti);
        }
    }

    // A simple `col <cmp> col` between two distinct tables is a join.
    if let Expr::Binary { left, op, right } = expr {
        if op.is_comparison() {
            if let (Expr::Column(lc), Expr::Column(rc)) = (left.as_ref(), right.as_ref()) {
                let (lt, _) = ctx.resolve(lc)?;
                let (rt, _) = ctx.resolve(rc)?;
                if lt != rt {
                    return Ok(Classified::Join(JoinPredicate {
                        left: (lt, lc.column.clone()),
                        right: (rt, rc.column.clone()),
                        op: *op,
                    }));
                }
            }
        }
    }

    match table_indices.len() {
        0 | 1 => Ok(Classified::Filter(
            table_indices.first().copied().unwrap_or(0),
            expr.clone(),
        )),
        _ => Ok(Classified::Residual(expr.clone())),
    }
}

/// Recognise which §3 pattern (if any) the query matches.
fn recognise_pattern(
    stmt: &SelectStatement,
    tables: &[BoundTable],
    joins: &[JoinPredicate],
) -> QueryPattern {
    // MIN/MAX aggregates are beyond the TCU interface (§3.4, "Beyond the
    // supported patterns").
    for item in &stmt.items {
        if let Some((func, _)) = item.expr.first_aggregate() {
            if !func.tcu_expressible() {
                return QueryPattern::NotTcuExpressible(format!(
                    "aggregate {func} is not expressible as matrix multiply-accumulate"
                ));
            }
        }
    }

    if tables.len() == 1 {
        return QueryPattern::SingleTable;
    }
    if joins.is_empty() {
        return QueryPattern::NotTcuExpressible("cross join without a join predicate".to_string());
    }
    if tables.len() > 2 {
        return QueryPattern::MultiWayJoin;
    }

    // Exactly two tables with at least one join predicate.
    let equi = joins.iter().any(|j| j.is_equi());
    if stmt.has_aggregates() {
        if !equi {
            return QueryPattern::NotTcuExpressible(
                "aggregation over a non-equi join is not a supported TCU pattern".to_string(),
            );
        }
        if stmt.group_by.is_empty() {
            return QueryPattern::JoinAggregate;
        }
        if is_matmul_pattern(stmt, tables) {
            return QueryPattern::MatMul;
        }
        return QueryPattern::JoinGroupByAggregate;
    }
    if equi {
        QueryPattern::TwoWayJoin
    } else {
        QueryPattern::NonEquiJoin
    }
}

/// Detect the Figure 5 matrix-multiplication query shape: GROUP BY one key
/// column from each side and a SUM over a product of one value column from
/// each side.
fn is_matmul_pattern(stmt: &SelectStatement, tables: &[BoundTable]) -> bool {
    if stmt.group_by.len() != 2 || tables.len() != 2 {
        return false;
    }
    let group_tables: Vec<Option<String>> = stmt
        .group_by
        .iter()
        .map(|g| match g {
            Expr::Column(c) => c.table.clone(),
            _ => None,
        })
        .collect();
    let distinct_group_tables = group_tables
        .iter()
        .flatten()
        .map(|t| t.to_ascii_lowercase())
        .collect::<std::collections::HashSet<_>>();
    if distinct_group_tables.len() != 2 {
        return false;
    }
    // Find a SUM over a product of two columns from different tables.
    stmt.items.iter().any(|item| {
        matches!(
            item.expr.first_aggregate(),
            Some((AggFunc::Sum, Expr::Binary { op: BinOp::Mul, left, right }))
                if matches!((left.as_ref(), right.as_ref()),
                    (Expr::Column(a), Expr::Column(b))
                        if a.table.is_some() && b.table.is_some() && a.table != b.table)
        )
    })
}

/// Convenience: resolve a column reference inside an analyzed query without
/// building a context (used by translators).
pub fn resolve_column(analyzed: &AnalyzedQuery, col: &ColumnRef) -> TcuResult<(usize, usize)> {
    analyzed.row_context().resolve(col)
}

/// A single-table predicate simple enough for the typed columnar filter
/// kernels of `relops`: the column is always on the left (literal-first
/// comparisons are normalised by flipping the operator).
#[derive(Debug, Clone, PartialEq)]
pub enum FilterAtom {
    /// `col <op> literal` where op is a comparison.
    Cmp {
        /// Column index within the filtered table.
        col: usize,
        /// Comparison operator (column on the left).
        op: BinOp,
        /// The literal operand.
        lit: tcudb_types::Value,
    },
    /// `col BETWEEN low AND high` over numeric literals.
    Between {
        /// Column index within the filtered table.
        col: usize,
        /// Inclusive lower bound.
        low: f64,
        /// Inclusive upper bound.
        high: f64,
    },
}

/// Classify one single-table filter of `table` as a vectorizable atom.
///
/// Returns `None` for anything the typed kernels cannot reproduce
/// bit-for-bit (arithmetic, OR, cross-type text/numeric comparisons,
/// nested expressions …); those run through the row interpreter.
pub fn vectorizable_atom(expr: &Expr, ctx: &RowContext, table: usize) -> Option<FilterAtom> {
    use tcudb_sql::Expr::*;
    use tcudb_types::{DataType, Value};

    // The column's type and the literal's type must agree on which
    // `sql_cmp` branch the interpreter would take.
    let compatible = |col_ty: DataType, lit: &Value| match lit {
        Value::Int(_) | Value::Float(_) => col_ty.is_numeric(),
        Value::Text(_) => col_ty == DataType::Text,
        Value::Null => false,
    };
    let resolve = |c: &ColumnRef| -> Option<(usize, DataType)> {
        let (ti, ci) = ctx.resolve(c).ok()?;
        (ti == table).then(|| (ci, ctx.table(ti).schema().column(ci).data_type))
    };

    match expr {
        Binary { left, op, right } if op.is_comparison() => {
            let (col_expr, lit_expr, op) = match (left.as_ref(), right.as_ref()) {
                (Column(_), Literal(_)) => (left.as_ref(), right.as_ref(), *op),
                (Literal(_), Column(_)) => (right.as_ref(), left.as_ref(), op.flip()),
                _ => return None,
            };
            let (Column(c), Literal(lit)) = (col_expr, lit_expr) else {
                return None;
            };
            let (ci, ty) = resolve(c)?;
            compatible(ty, lit).then(|| FilterAtom::Cmp {
                col: ci,
                op,
                lit: lit.clone(),
            })
        }
        Between { expr, low, high } => {
            let (Column(c), Literal(lo), Literal(hi)) =
                (expr.as_ref(), low.as_ref(), high.as_ref())
            else {
                return None;
            };
            let (ci, ty) = resolve(c)?;
            if !ty.is_numeric() {
                return None;
            }
            // The interpreter evaluates BETWEEN entirely in f64.
            let (lo, hi) = (lo.as_f64().ok()?, hi.as_f64().ok()?);
            Some(FilterAtom::Between {
                col: ci,
                low: lo,
                high: hi,
            })
        }
        _ => None,
    }
}

/// A scalar expression the vectorized output pipeline can evaluate
/// column-at-a-time over a tuple batch: numeric columns, numeric literals
/// and the four arithmetic operators, mirroring `context::eval` /
/// `eval_binary` (which compute all arithmetic in f64 and yield `Float`).
#[derive(Debug, Clone, PartialEq)]
pub enum BatchExpr {
    /// A numeric column: `(table index, column index)`.
    Column(usize, usize),
    /// A numeric literal, widened to f64 like `Value::as_f64` does.
    Literal(f64),
    /// An arithmetic operation over two batch expressions.
    Binary {
        /// Left operand.
        left: Box<BatchExpr>,
        /// Arithmetic operator (`+ - * /`).
        op: BinOp,
        /// Right operand.
        right: Box<BatchExpr>,
    },
}

/// Classify an expression as a [`BatchExpr`], or `None` when it needs the
/// row interpreter (text operands, comparisons, BETWEEN, aggregates —
/// anything whose `eval` result is not plain f64 arithmetic).
pub fn batch_expr(expr: &Expr, ctx: &RowContext) -> Option<BatchExpr> {
    match expr {
        Expr::Column(c) => {
            let (ti, ci) = ctx.resolve(c).ok()?;
            ctx.table(ti)
                .schema()
                .column(ci)
                .data_type
                .is_numeric()
                .then_some(BatchExpr::Column(ti, ci))
        }
        Expr::Literal(v) => v.as_f64().ok().map(BatchExpr::Literal),
        Expr::Binary { left, op, right } if op.is_arithmetic() => Some(BatchExpr::Binary {
            left: Box::new(batch_expr(left, ctx)?),
            op: *op,
            right: Box::new(batch_expr(right, ctx)?),
        }),
        _ => None,
    }
}

/// Resolve an expression to a plain base-table column, when it is one.
pub fn simple_column(expr: &Expr, ctx: &RowContext) -> Option<(usize, usize)> {
    match expr {
        Expr::Column(c) => ctx.resolve(c).ok(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcudb_sql::parse;
    use tcudb_storage::Table;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.register(
            Table::from_int_columns("A", &[("id", vec![1, 2, 3]), ("val", vec![1, 2, 3])]).unwrap(),
        );
        cat.register(
            Table::from_int_columns("B", &[("id", vec![2, 3]), ("val", vec![5, 6])]).unwrap(),
        );
        cat.register(
            Table::from_int_columns("C", &[("id_2", vec![1, 2]), ("val", vec![7, 8])]).unwrap(),
        );
        cat
    }

    fn analyze_sql(sql: &str) -> AnalyzedQuery {
        analyze(&parse(sql).unwrap(), &catalog()).unwrap()
    }

    #[test]
    fn q1_is_two_way_join() {
        let a = analyze_sql("SELECT A.val, B.val FROM A, B WHERE A.id = B.id");
        assert_eq!(a.pattern, QueryPattern::TwoWayJoin);
        assert_eq!(a.joins.len(), 1);
        assert!(a.joins[0].is_equi());
        assert!(a.pattern.tcu_supported());
    }

    #[test]
    fn q3_is_join_groupby_aggregate() {
        let a = analyze_sql("SELECT SUM(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val");
        assert_eq!(a.pattern, QueryPattern::JoinGroupByAggregate);
    }

    #[test]
    fn q4_is_join_aggregate() {
        let a = analyze_sql("SELECT SUM(A.val * B.val) FROM A, B WHERE A.id = B.id");
        assert_eq!(a.pattern, QueryPattern::JoinAggregate);
    }

    #[test]
    fn q5_is_non_equi_join() {
        let a = analyze_sql("SELECT A.val, B.val FROM A, B WHERE A.id < B.id");
        assert_eq!(a.pattern, QueryPattern::NonEquiJoin);
    }

    #[test]
    fn figure5_is_matmul() {
        let a = analyze_sql(
            "SELECT A.id, B.id, SUM(A.val * B.val) as res FROM A, B \
             WHERE A.id = B.id GROUP BY A.id, B.id",
        );
        assert_eq!(a.pattern, QueryPattern::MatMul);
    }

    #[test]
    fn three_tables_is_multiway() {
        let a = analyze_sql("SELECT A.val, C.val FROM A, B, C WHERE A.id = B.id AND B.id = C.id_2");
        assert_eq!(a.pattern, QueryPattern::MultiWayJoin);
        assert_eq!(a.joins.len(), 2);
    }

    #[test]
    fn single_table_and_min_max_are_not_tcu() {
        let a = analyze_sql("SELECT A.val FROM A WHERE A.id > 1");
        assert_eq!(a.pattern, QueryPattern::SingleTable);
        assert!(!a.pattern.tcu_supported());
        let b = analyze_sql("SELECT MAX(A.val) FROM A, B WHERE A.id = B.id");
        assert!(matches!(b.pattern, QueryPattern::NotTcuExpressible(_)));
    }

    #[test]
    fn cross_join_is_not_supported() {
        let a = analyze_sql("SELECT A.val, B.val FROM A, B");
        assert!(matches!(a.pattern, QueryPattern::NotTcuExpressible(_)));
    }

    #[test]
    fn filters_and_joins_are_separated() {
        let a = analyze_sql(
            "SELECT A.val, B.val FROM A, B WHERE A.id = B.id AND A.val > 1 AND B.val = 5",
        );
        assert_eq!(a.joins.len(), 1);
        assert_eq!(a.filters.len(), 2);
        assert_eq!(a.filters_for_table(0).len(), 1);
        assert_eq!(a.filters_for_table(1).len(), 1);
        assert!(a.residual.is_empty());
        assert_eq!(a.joins_for_table(0).len(), 1);
    }

    #[test]
    fn residual_predicates_detected() {
        let a =
            analyze_sql("SELECT A.val, B.val FROM A, B WHERE A.id = B.id AND A.val + B.val > 4");
        assert_eq!(a.residual.len(), 1);
    }

    #[test]
    fn batch_expr_classification() {
        let cat = catalog();
        let a = analyze(
            &parse(
                "SELECT SUM(A.val - B.val), SUM(A.val * 2), COUNT(*) FROM A, B WHERE A.id = B.id",
            )
            .unwrap(),
            &cat,
        )
        .unwrap();
        let ctx = a.row_context();
        let (_, arg0) = a.stmt.items[0].expr.first_aggregate().unwrap();
        assert!(matches!(
            batch_expr(arg0, &ctx),
            Some(BatchExpr::Binary { op: BinOp::Sub, .. })
        ));
        let (_, arg1) = a.stmt.items[1].expr.first_aggregate().unwrap();
        assert!(batch_expr(arg1, &ctx).is_some());
        // COUNT(*) argument is a literal 1.
        let (_, arg2) = a.stmt.items[2].expr.first_aggregate().unwrap();
        assert_eq!(batch_expr(arg2, &ctx), Some(BatchExpr::Literal(1.0)));
        // Comparisons and text columns are not batchable.
        let b = analyze(&parse("SELECT A.val FROM A WHERE A.val > 1").unwrap(), &cat).unwrap();
        let bctx = b.row_context();
        assert!(batch_expr(&b.filters[0].1, &bctx).is_none());
        assert_eq!(simple_column(&b.stmt.items[0].expr, &bctx), Some((0, 1)));
        assert!(simple_column(&b.filters[0].1, &bctx).is_none());
    }

    #[test]
    fn unknown_tables_and_columns_error() {
        let cat = catalog();
        assert!(analyze(&parse("SELECT X.v FROM X").unwrap(), &cat).is_err());
        assert!(analyze(&parse("SELECT A.nope FROM A").unwrap(), &cat).is_err());
        assert!(analyze(&parse("SELECT A.val FROM A GROUP BY A.nope").unwrap(), &cat).is_err());
    }
}
