//! Reference relational operators shared by every engine.
//!
//! These operators compute *what* a query returns; each engine charges its
//! own simulated cost for *how* it would have computed it (TCU GEMM,
//! GPU hash join, CPU hash join).  Keeping a single result path guarantees
//! that TCUDB, the YDB baseline and the CPU baseline always agree on
//! answers, which the integration tests assert.

use crate::analyzer::AnalyzedQuery;
use crate::context::{eval, eval_predicate, RowContext};
use std::collections::HashMap;
use tcudb_sql::{AggFunc, BinOp, Expr};
use tcudb_storage::{Column, ColumnDef, Schema, Table};
use tcudb_types::value::ValueKey;
use tcudb_types::{DataType, TcuError, TcuResult, Value};

/// Equality hash join over two key columns restricted to row subsets.
/// Returns pairs of *original* row indices `(left_row, right_row)`.
pub fn hash_join_pairs(
    left: &Column,
    left_rows: &[usize],
    right: &Column,
    right_rows: &[usize],
) -> Vec<(usize, usize)> {
    // Build on the smaller side.
    if right_rows.len() < left_rows.len() {
        return hash_join_pairs(right, right_rows, left, left_rows)
            .into_iter()
            .map(|(r, l)| (l, r))
            .collect();
    }
    let mut table: HashMap<ValueKey, Vec<usize>> = HashMap::with_capacity(left_rows.len());
    for &r in left_rows {
        table.entry(left.value(r).group_key()).or_default().push(r);
    }
    let mut out = Vec::new();
    for &r in right_rows {
        if let Some(matches) = table.get(&right.value(r).group_key()) {
            for &l in matches {
                out.push((l, r));
            }
        }
    }
    out
}

/// Non-equi join (nested loop) over two key columns restricted to row
/// subsets, for the comparison operators of §3.4.
pub fn nonequi_join_pairs(
    left: &Column,
    left_rows: &[usize],
    right: &Column,
    right_rows: &[usize],
    op: BinOp,
) -> TcuResult<Vec<(usize, usize)>> {
    if !op.is_comparison() {
        return Err(TcuError::Plan(format!("{op} is not a join comparison")));
    }
    let mut out = Vec::new();
    for &l in left_rows {
        let lv = left.value(l);
        for &r in right_rows {
            let rv = right.value(r);
            let ord = lv.sql_cmp(&rv);
            let hit = match op {
                BinOp::Eq => lv.sql_eq(&rv),
                BinOp::NotEq => !lv.is_null() && !rv.is_null() && !lv.sql_eq(&rv),
                BinOp::Lt => ord == std::cmp::Ordering::Less,
                BinOp::LtEq => ord != std::cmp::Ordering::Greater,
                BinOp::Gt => ord == std::cmp::Ordering::Greater,
                BinOp::GtEq => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            if hit {
                out.push((l, r));
            }
        }
    }
    Ok(out)
}

/// Evaluate the single-table filters of an analyzed query, returning the
/// surviving row indices per table.
pub fn apply_filters(analyzed: &AnalyzedQuery) -> TcuResult<Vec<Vec<usize>>> {
    let mut ctx = analyzed.row_context();
    let mut surviving = Vec::with_capacity(analyzed.tables.len());
    for (ti, bound) in analyzed.tables.iter().enumerate() {
        let filters = analyzed.filters_for_table(ti);
        let nrows = bound.table.num_rows();
        if filters.is_empty() {
            surviving.push((0..nrows).collect());
            continue;
        }
        let mut keep = Vec::new();
        'rows: for r in 0..nrows {
            ctx.set_row(ti, r);
            for f in &filters {
                if !eval_predicate(f, &ctx)? {
                    continue 'rows;
                }
            }
            keep.push(r);
        }
        surviving.push(keep);
    }
    Ok(surviving)
}

/// One accumulating aggregate state.
#[derive(Debug, Clone)]
struct AggState {
    func: AggFunc,
    sum: f64,
    count: u64,
    min: Option<f64>,
    max: Option<f64>,
}

impl AggState {
    fn new(func: AggFunc) -> AggState {
        AggState {
            func,
            sum: 0.0,
            count: 0,
            min: None,
            max: None,
        }
    }

    fn update(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    fn finish(&self) -> Value {
        match self.func {
            AggFunc::Sum => Value::Float(self.sum),
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.map(Value::Float).unwrap_or(Value::Null),
            AggFunc::Max => self.max.map(Value::Float).unwrap_or(Value::Null),
        }
    }
}

/// Materialise the final output table of a query from the joined row
/// tuples (one row index per bound table, in table order).
///
/// Handles residual predicates, projection, grouped and ungrouped
/// aggregation, ORDER BY and LIMIT.
pub fn finalize_output(analyzed: &AnalyzedQuery, tuples: &[Vec<usize>]) -> TcuResult<Table> {
    let mut ctx = analyzed.row_context();
    let stmt = &analyzed.stmt;
    let col_names: Vec<String> = stmt.items.iter().map(|i| i.output_name()).collect();

    let mut rows: Vec<Vec<Value>> = Vec::new();

    if stmt.has_aggregates() || !stmt.group_by.is_empty() {
        // Grouped (or global) aggregation.
        #[allow(clippy::type_complexity)]
        let mut groups: HashMap<Vec<ValueKey>, (Vec<Value>, Vec<AggState>)> = HashMap::new();
        let mut group_order: Vec<Vec<ValueKey>> = Vec::new();

        for tuple in tuples {
            ctx.set_rows(tuple);
            if !residuals_pass(analyzed, &ctx)? {
                continue;
            }
            let mut key_vals = Vec::with_capacity(stmt.group_by.len());
            let mut key = Vec::with_capacity(stmt.group_by.len());
            for g in &stmt.group_by {
                let v = eval(g, &ctx)?;
                key.push(v.group_key());
                key_vals.push(v);
            }
            let entry = groups.entry(key.clone()).or_insert_with(|| {
                group_order.push(key.clone());
                let states = stmt
                    .items
                    .iter()
                    .map(|item| {
                        item.expr
                            .first_aggregate()
                            .map(|(f, _)| AggState::new(*f))
                            .unwrap_or_else(|| AggState::new(AggFunc::Count))
                    })
                    .collect();
                (key_vals.clone(), states)
            });
            for (item, state) in stmt.items.iter().zip(entry.1.iter_mut()) {
                if let Some((func, arg)) = item.expr.first_aggregate() {
                    let v = match (func, arg) {
                        // COUNT(*) counts rows regardless of the argument.
                        (AggFunc::Count, Expr::Literal(_)) => 1.0,
                        _ => eval(arg, &ctx)?.as_f64().unwrap_or(0.0),
                    };
                    state.update(v);
                }
            }
        }

        // Global aggregation over zero groups still yields one row.
        if stmt.group_by.is_empty() && groups.is_empty() {
            let states: Vec<AggState> = stmt
                .items
                .iter()
                .map(|item| {
                    item.expr
                        .first_aggregate()
                        .map(|(f, _)| AggState::new(*f))
                        .unwrap_or_else(|| AggState::new(AggFunc::Count))
                })
                .collect();
            groups.insert(Vec::new(), (Vec::new(), states));
            group_order.push(Vec::new());
        }

        for key in &group_order {
            let (key_vals, states) = &groups[key];
            let mut row = Vec::with_capacity(stmt.items.len());
            for (idx, item) in stmt.items.iter().enumerate() {
                if item.expr.contains_aggregate() {
                    row.push(finish_aggregate_item(&item.expr, &states[idx])?);
                } else {
                    // Non-aggregate item must be a group key: find it.
                    let pos = stmt
                        .group_by
                        .iter()
                        .position(|g| g == &item.expr)
                        .ok_or_else(|| {
                            TcuError::Analysis(format!(
                                "non-aggregate SELECT item '{}' is not in GROUP BY",
                                item.expr
                            ))
                        })?;
                    row.push(key_vals[pos].clone());
                }
            }
            rows.push(row);
        }
    } else {
        // Plain projection.
        for tuple in tuples {
            ctx.set_rows(tuple);
            if !residuals_pass(analyzed, &ctx)? {
                continue;
            }
            let mut row = Vec::with_capacity(stmt.items.len());
            for item in &stmt.items {
                row.push(eval(&item.expr, &ctx)?);
            }
            rows.push(row);
        }
    }

    // ORDER BY against output columns.
    if !stmt.order_by.is_empty() {
        let mut keys: Vec<(usize, bool)> = Vec::new();
        for ob in &stmt.order_by {
            let name = match &ob.expr {
                Expr::Column(c) => c.column.clone(),
                other => other.to_string(),
            };
            let idx = col_names
                .iter()
                .position(|n| n.eq_ignore_ascii_case(&name))
                .or_else(|| {
                    // Fall back to matching the rendered expression of each
                    // SELECT item (e.g. ORDER BY d_year when the item has no
                    // alias).
                    stmt.items.iter().position(|i| i.expr == ob.expr)
                })
                .ok_or_else(|| {
                    TcuError::Analysis(format!("ORDER BY key '{}' is not in the SELECT list", name))
                })?;
            keys.push((idx, ob.ascending));
        }
        rows.sort_by(|a, b| {
            for (idx, asc) in &keys {
                let ord = a[*idx].sql_cmp(&b[*idx]);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    if let Some(limit) = stmt.limit {
        rows.truncate(limit);
    }

    table_from_rows("result", &col_names, rows)
}

/// Apply the residual (multi-table, non-join) predicates to the current row.
fn residuals_pass(analyzed: &AnalyzedQuery, ctx: &RowContext) -> TcuResult<bool> {
    for pred in &analyzed.residual {
        if !eval_predicate(pred, ctx)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// When the SELECT item is an expression *around* an aggregate
/// (e.g. `SUM(x) / 100`), evaluate the surrounding arithmetic with the
/// aggregate replaced by its final value.
fn finish_aggregate_item(expr: &Expr, state: &AggState) -> TcuResult<Value> {
    fn substitute(expr: &Expr, agg_value: &Value) -> TcuResult<Value> {
        match expr {
            Expr::Aggregate { .. } => Ok(agg_value.clone()),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Column(c) => Err(TcuError::Analysis(format!(
                "column '{c}' mixed with aggregates must appear in GROUP BY"
            ))),
            Expr::Binary { left, op, right } => {
                let l = substitute(left, agg_value)?;
                let r = substitute(right, agg_value)?;
                crate::context::eval_binary(&l, *op, &r)
            }
            Expr::Between { .. } => Err(TcuError::Analysis(
                "BETWEEN is not valid in an aggregate SELECT item".into(),
            )),
        }
    }
    substitute(expr, &state.finish())
}

/// Build a table from value rows, inferring each column's type.
pub fn table_from_rows(
    name: &str,
    col_names: &[String],
    rows: Vec<Vec<Value>>,
) -> TcuResult<Table> {
    let ncols = col_names.len();
    let mut types = vec![DataType::Int64; ncols];
    for row in &rows {
        for (c, v) in row.iter().enumerate() {
            match v {
                Value::Text(_) => types[c] = DataType::Text,
                Value::Float(_) if types[c] == DataType::Int64 => types[c] = DataType::Float64,
                _ => {}
            }
        }
    }
    let schema = Schema::new(
        col_names
            .iter()
            .zip(&types)
            .map(|(n, t)| ColumnDef::new(n.clone(), *t))
            .collect(),
    );
    let mut table = Table::new(name, schema);
    for row in rows {
        let coerced: Vec<Value> = row
            .into_iter()
            .zip(&types)
            .map(|(v, t)| match (v, t) {
                (Value::Int(x), DataType::Float64) => Value::Float(x as f64),
                (Value::Null, DataType::Float64) => Value::Float(f64::NAN),
                (Value::Null, DataType::Int64) => Value::Int(0),
                (Value::Null, DataType::Text) => Value::Text(String::new()),
                (v, _) => v,
            })
            .collect();
        table.push_row(coerced)?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use tcudb_sql::parse;
    use tcudb_storage::Catalog;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.register(
            Table::from_int_columns(
                "A",
                &[("id", vec![1, 1, 2, 3]), ("val", vec![10, 11, 20, 30])],
            )
            .unwrap(),
        );
        cat.register(
            Table::from_int_columns("B", &[("id", vec![1, 2, 2]), ("val", vec![5, 6, 7])]).unwrap(),
        );
        cat
    }

    #[test]
    fn hash_join_produces_all_pairs() {
        let left = Column::Int64(vec![1, 1, 2, 3]);
        let right = Column::Int64(vec![1, 2, 2]);
        let all_left: Vec<usize> = (0..4).collect();
        let all_right: Vec<usize> = (0..3).collect();
        let mut pairs = hash_join_pairs(&left, &all_left, &right, &all_right);
        pairs.sort();
        assert_eq!(pairs, vec![(0, 0), (1, 0), (2, 1), (2, 2)]);
        // Restricting rows restricts matches.
        let restricted = hash_join_pairs(&left, &[0], &right, &all_right);
        assert_eq!(restricted, vec![(0, 0)]);
    }

    #[test]
    fn nonequi_join_lt() {
        let left = Column::Int64(vec![1, 2]);
        let right = Column::Int64(vec![1, 2, 3]);
        let pairs = nonequi_join_pairs(&left, &[0, 1], &right, &[0, 1, 2], BinOp::Lt).unwrap();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 2)]);
        assert!(nonequi_join_pairs(&left, &[0], &right, &[0], BinOp::Add).is_err());
    }

    #[test]
    fn filters_reduce_row_sets() {
        let cat = catalog();
        let q = analyze(
            &parse("SELECT A.val FROM A, B WHERE A.id = B.id AND A.val >= 20 AND B.val = 6")
                .unwrap(),
            &cat,
        )
        .unwrap();
        let surviving = apply_filters(&q).unwrap();
        assert_eq!(surviving[0], vec![2, 3]);
        assert_eq!(surviving[1], vec![1]);
    }

    #[test]
    fn finalize_projection_and_order() {
        let cat = catalog();
        let q = analyze(
            &parse("SELECT A.val, B.val FROM A, B WHERE A.id = B.id ORDER BY A.val DESC").unwrap(),
            &cat,
        )
        .unwrap();
        // Matching tuples computed by hand: A rows {0,1} join B row 0; A row 2 joins B rows 1,2.
        let tuples = vec![vec![0, 0], vec![1, 0], vec![2, 1], vec![2, 2]];
        let out = finalize_output(&q, &tuples).unwrap();
        assert_eq!(out.num_rows(), 4);
        assert_eq!(out.row(0)[0], Value::Int(20));
        assert_eq!(out.schema().names(), vec!["val", "val"]);
    }

    #[test]
    fn finalize_group_by_aggregate() {
        let cat = catalog();
        let q = analyze(
            &parse("SELECT SUM(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val").unwrap(),
            &cat,
        )
        .unwrap();
        let tuples = vec![vec![0, 0], vec![1, 0], vec![2, 1], vec![2, 2]];
        let out = finalize_output(&q, &tuples).unwrap();
        assert_eq!(out.num_rows(), 3);
        // Group B.val=5 sums A.val 10+11=21.
        let sums = out.column_by_name("SUM(A.val)");
        assert!(sums.is_ok() || out.num_columns() == 2);
        assert_eq!(out.row(0)[0].as_f64().unwrap(), 21.0);
        assert_eq!(out.row(0)[1], Value::Int(5));
    }

    #[test]
    fn finalize_global_aggregate_and_count() {
        let cat = catalog();
        let q = analyze(
            &parse("SELECT SUM(A.val * B.val), COUNT(*) FROM A, B WHERE A.id = B.id").unwrap(),
            &cat,
        )
        .unwrap();
        let tuples = vec![vec![0, 0], vec![1, 0], vec![2, 1], vec![2, 2]];
        let out = finalize_output(&q, &tuples).unwrap();
        assert_eq!(out.num_rows(), 1);
        // 10*5 + 11*5 + 20*6 + 20*7 = 50+55+120+140 = 365
        assert_eq!(out.row(0)[0].as_f64().unwrap(), 365.0);
        assert_eq!(out.row(0)[1], Value::Int(4));
        // Zero tuples still produce one aggregate row.
        let empty = finalize_output(&q, &[]).unwrap();
        assert_eq!(empty.num_rows(), 1);
        assert_eq!(empty.row(0)[1], Value::Int(0));
    }

    #[test]
    fn finalize_avg_min_max() {
        let cat = catalog();
        let q = analyze(
            &parse("SELECT AVG(A.val), MIN(A.val), MAX(A.val) FROM A, B WHERE A.id = B.id")
                .unwrap(),
            &cat,
        )
        .unwrap();
        let tuples = vec![vec![0, 0], vec![2, 1]];
        let out = finalize_output(&q, &tuples).unwrap();
        assert_eq!(out.row(0)[0].as_f64().unwrap(), 15.0);
        assert_eq!(out.row(0)[1].as_f64().unwrap(), 10.0);
        assert_eq!(out.row(0)[2].as_f64().unwrap(), 20.0);
    }

    #[test]
    fn limit_and_residuals() {
        let cat = catalog();
        let q = analyze(
            &parse(
                "SELECT A.val, B.val FROM A, B WHERE A.id = B.id AND A.val + B.val > 20 LIMIT 1",
            )
            .unwrap(),
            &cat,
        )
        .unwrap();
        let tuples = vec![vec![0, 0], vec![1, 0], vec![2, 1], vec![2, 2]];
        let out = finalize_output(&q, &tuples).unwrap();
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn table_from_rows_infers_types() {
        let rows = vec![
            vec![Value::Int(1), Value::Float(1.5), Value::from("a")],
            vec![Value::Int(2), Value::Int(3), Value::from("b")],
        ];
        let t = table_from_rows(
            "t",
            &["i".to_string(), "f".to_string(), "s".to_string()],
            rows,
        )
        .unwrap();
        assert_eq!(t.schema().column(0).data_type, DataType::Int64);
        assert_eq!(t.schema().column(1).data_type, DataType::Float64);
        assert_eq!(t.schema().column(2).data_type, DataType::Text);
        assert_eq!(t.row(1)[1], Value::Float(3.0));
    }
}
