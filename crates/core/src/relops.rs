//! Reference relational operators shared by every engine.
//!
//! These operators compute *what* a query returns; each engine charges its
//! own simulated cost for *how* it would have computed it (TCU GEMM,
//! GPU hash join, CPU hash join).  Keeping a single result path guarantees
//! that TCUDB, the YDB baseline and the CPU baseline always agree on
//! answers, which the integration tests assert.
//!
//! # Output pipeline
//!
//! Two interchangeable implementations materialise a query's result:
//!
//! * [`finalize_output`] — the row-at-a-time `Value` interpreter, kept as
//!   the semantic oracle (`EngineConfig::encoded_path = false`),
//! * [`finalize_output_columnar`] — the vectorized, late-materialized
//!   pipeline over a [`TupleBatch`]: group keys are composed from cached
//!   dictionary codes into dense first-seen group ids, aggregates run as
//!   segmented accumulation over `Vec<AggState>`, and projection/ORDER
//!   BY/LIMIT work as typed gathers over a sort permutation.
//!
//! ## When the §3.3 GEMM aggregation path is selected
//!
//! Inside the columnar pipeline, a SUM/COUNT/AVG aggregate is lowered to
//! an *actual one-hot GEMM* on the tensor engine
//! (`tcudb_tensor::grouped::grouped_sum_gemm`, the grouped-GEMV form of
//! Lemma 3.1) instead of segmented accumulation exactly when
//!
//! 1. the argument is a numeric [`BatchExpr`] (plain columns/arithmetic;
//!    COUNT(*) always qualifies),
//! 2. the `rows × groups` one-hot group matrix fits
//!    [`FinalizeOptions::gemm_limit`] (the engine's
//!    `materialize_limit` capped by a host execution budget — building
//!    the group matrix is O(rows × groups) host memory traffic), and
//! 3. the f32 exactness test holds: every value is an integer and the sum
//!    of absolute values stays below 2²⁴, so every partial sum is exactly
//!    representable and the kernel result is bit-identical to the
//!    segmented f64 fold.
//!
//! MIN/MAX are not matrix-expressible (§3.4); they run as typed segmented
//! reductions — over `i64`, over f64 with `sql_cmp` NaN semantics, or
//! over the dictionary's sorted-order ranks for text columns.

use crate::analyzer::{
    batch_expr, simple_column, vectorizable_atom, AnalyzedQuery, BatchExpr, FilterAtom,
};
use crate::batch::{GroupIds, TupleBatch};
use crate::context::{eval, eval_predicate, RowContext};
use crate::translate::{EncodedSource, NO_INDEX};
use std::borrow::Cow;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;
use tcudb_sql::{AggFunc, BinOp, Expr, SelectStatement};
use tcudb_storage::{chunk, Column, ColumnDef, DictColumn, Schema, Table};
use tcudb_tensor::{grouped, GemmPrecision, GemmStats};
use tcudb_types::sync::QueryContext;
use tcudb_types::value::ValueKey;
use tcudb_types::{DataType, MorselRun, TcuError, TcuResult, Value, WorkerPool};

/// Equality hash join over two key columns restricted to row subsets.
/// Returns pairs of *original* row indices `(left_row, right_row)`.
pub fn hash_join_pairs(
    left: &Column,
    left_rows: &[usize],
    right: &Column,
    right_rows: &[usize],
) -> Vec<(usize, usize)> {
    // Build on the smaller side.
    if right_rows.len() < left_rows.len() {
        return hash_join_pairs(right, right_rows, left, left_rows)
            .into_iter()
            .map(|(r, l)| (l, r))
            .collect();
    }
    let mut table: HashMap<ValueKey, Vec<usize>> = HashMap::with_capacity(left_rows.len());
    for &r in left_rows {
        table.entry(left.value(r).group_key()).or_default().push(r);
    }
    let mut out = Vec::new();
    for &r in right_rows {
        if let Some(matches) = table.get(&right.value(r).group_key()) {
            for &l in matches {
                out.push((l, r));
            }
        }
    }
    out
}

/// Equality join on dictionary codes remapped into a shared domain: the
/// encoded counterpart of [`hash_join_pairs`].  Build and probe work on
/// array-indexed buckets over domain indices — no `ValueKey` hashing, no
/// `Value` materialisation.  Returns pairs of *positions* within the two
/// selected sequences, in the same order [`hash_join_pairs`] produces for
/// the same sides (build on the smaller side, probe the larger).
pub fn join_pairs_by_code(
    left: &EncodedSource<'_>,
    left_remap: &[u32],
    right: &EncodedSource<'_>,
    right_remap: &[u32],
    domain_len: usize,
) -> Vec<(usize, usize)> {
    join_pairs_by_code_morsels(
        left,
        left_remap,
        right,
        right_remap,
        domain_len,
        1,
        usize::MAX,
    )
    .0
}

/// [`join_pairs_by_code`] with the probe side split into contiguous row
/// morsels executed on the shared [`WorkerPool`].  The build side (the
/// smaller input) is laid out once; each morsel probes one row range and
/// the per-morsel outputs are concatenated in range order, so the pair
/// sequence is byte-identical to the serial probe for every thread count.
pub fn join_pairs_by_code_morsels(
    left: &EncodedSource<'_>,
    left_remap: &[u32],
    right: &EncodedSource<'_>,
    right_remap: &[u32],
    domain_len: usize,
    threads: usize,
    morsel_rows: usize,
) -> (Vec<(usize, usize)>, MorselRun) {
    if right.len() < left.len() {
        let (pairs, run) = join_pairs_by_code_morsels(
            right,
            right_remap,
            left,
            left_remap,
            domain_len,
            threads,
            morsel_rows,
        );
        return (pairs.into_iter().map(|(r, l)| (l, r)).collect(), run);
    }
    // Counting-sort layout: one flat pass to count, one to fill, so the
    // bucket table is two dense arrays rather than a Vec-of-Vecs.
    let m = left.len();
    let mut counts = vec![0u32; domain_len + 1];
    for pos in 0..m {
        let di = left_remap[left.code_at(pos) as usize];
        if di != NO_INDEX {
            counts[di as usize + 1] += 1;
        }
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    let mut slots = vec![0u32; m];
    let mut cursor = counts.clone();
    for pos in 0..m {
        let di = left_remap[left.code_at(pos) as usize];
        if di != NO_INDEX {
            slots[cursor[di as usize] as usize] = pos as u32;
            cursor[di as usize] += 1;
        }
    }
    let mr = morsel_rows.max(1);
    let morsel_count = right.len().div_ceil(mr);
    let (parts, run) = WorkerPool::shared().run_chunks(morsel_count, threads, |ci| {
        let lo = ci * mr;
        let hi = lo.saturating_add(mr).min(right.len());
        let mut out = Vec::new();
        for rpos in lo..hi {
            let di = right_remap[right.code_at(rpos) as usize];
            if di == NO_INDEX {
                continue;
            }
            let (start, end) = (
                counts[di as usize] as usize,
                counts[di as usize + 1] as usize,
            );
            for &lpos in &slots[start..end] {
                out.push((lpos as usize, rpos));
            }
        }
        out
    });
    let total = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for p in parts {
        out.extend(p);
    }
    (out, run)
}

/// Non-equi join over two key columns restricted to row subsets, for the
/// comparison operators of §3.4.  Each side's keys are extracted **once**
/// into a typed buffer; on sortable keys (integer, non-NaN float, text)
/// the ordering operators run as sort + `partition_point` instead of an
/// O(n·m) comparison sweep.  Output order matches the reference nested
/// loop exactly (left-major, right in `right_rows` order).
pub fn nonequi_join_pairs(
    left: &Column,
    left_rows: &[usize],
    right: &Column,
    right_rows: &[usize],
    op: BinOp,
) -> TcuResult<Vec<(usize, usize)>> {
    if !op.is_comparison() {
        return Err(TcuError::Plan(format!("{op} is not a join comparison")));
    }
    match (left, right) {
        // Exact integer keys: every operator (incl. Eq/NotEq, which the
        // interpreter compares as exact i64) can use the sorted path.
        (Column::Int64(lv), Column::Int64(rv)) => {
            let lk: Vec<i64> = left_rows.iter().map(|&r| lv[r]).collect();
            let rk: Vec<i64> = right_rows.iter().map(|&r| rv[r]).collect();
            Ok(nonequi_sorted(&lk, left_rows, &rk, right_rows, op))
        }
        (Column::Text(lv), Column::Text(rv)) => {
            let lk: Vec<&str> = left_rows.iter().map(|&r| lv[r].as_str()).collect();
            let rk: Vec<&str> = right_rows.iter().map(|&r| rv[r].as_str()).collect();
            Ok(nonequi_sorted(&lk, left_rows, &rk, right_rows, op))
        }
        (l, r) if l.data_type().is_numeric() && r.data_type().is_numeric() => {
            let lk: Vec<f64> = left_rows.iter().map(|&i| l.numeric(i).unwrap()).collect();
            let rk: Vec<f64> = right_rows.iter().map(|&i| r.numeric(i).unwrap()).collect();
            // Mixed-numeric Eq/NotEq follow `group_key` (exact i64 for
            // integral values) rather than f64 equality, and NaNs break
            // the sort's total order — both fall back to the buffered
            // `Value` sweep.
            let nan = lk.iter().chain(&rk).any(|x| x.is_nan());
            if !nan && !matches!(op, BinOp::Eq | BinOp::NotEq) {
                Ok(nonequi_sorted(&lk, left_rows, &rk, right_rows, op))
            } else {
                Ok(nonequi_buffered(left, left_rows, right, right_rows, op))
            }
        }
        // Cross-type text/numeric comparisons keep the reference `Value`
        // semantics through the buffered sweep.
        _ => Ok(nonequi_buffered(left, left_rows, right, right_rows, op)),
    }
}

/// Reference non-equi sweep with each side's `Value`s materialised once.
fn nonequi_buffered(
    left: &Column,
    left_rows: &[usize],
    right: &Column,
    right_rows: &[usize],
    op: BinOp,
) -> Vec<(usize, usize)> {
    let lvals: Vec<Value> = left_rows.iter().map(|&r| left.value(r)).collect();
    let rvals: Vec<Value> = right_rows.iter().map(|&r| right.value(r)).collect();
    let mut out = Vec::new();
    for (li, lv) in lvals.iter().enumerate() {
        for (rj, rv) in rvals.iter().enumerate() {
            let ord = lv.sql_cmp(rv);
            let hit = match op {
                BinOp::Eq => lv.sql_eq(rv),
                BinOp::NotEq => !lv.is_null() && !rv.is_null() && !lv.sql_eq(rv),
                BinOp::Lt => ord == Ordering::Less,
                BinOp::LtEq => ord != Ordering::Greater,
                BinOp::Gt => ord == Ordering::Greater,
                BinOp::GtEq => ord != Ordering::Less,
                _ => unreachable!(),
            };
            if hit {
                out.push((left_rows[li], right_rows[rj]));
            }
        }
    }
    out
}

/// Sorted-probe non-equi join: sort the right keys once, then locate each
/// left key's matching range with `partition_point`.  `left_keys[i]`
/// corresponds to `left_rows[i]` (likewise for the right side).
fn nonequi_sorted<T: PartialOrd>(
    left_keys: &[T],
    left_rows: &[usize],
    right_keys: &[T],
    right_rows: &[usize],
    op: BinOp,
) -> Vec<(usize, usize)> {
    // Stable sort of right *positions* by key: equal keys keep their
    // probe-order, which the per-range position sort below relies on.
    let mut order: Vec<u32> = (0..right_keys.len() as u32).collect();
    order.sort_by(|&a, &b| {
        right_keys[a as usize]
            .partial_cmp(&right_keys[b as usize])
            .unwrap_or(Ordering::Equal)
    });
    let below = |k: &T| {
        order.partition_point(|&p| right_keys[p as usize].partial_cmp(k) == Some(Ordering::Less))
    };
    let through = |k: &T| {
        order.partition_point(|&p| {
            matches!(
                right_keys[p as usize].partial_cmp(k),
                Some(Ordering::Less) | Some(Ordering::Equal)
            )
        })
    };
    let n = order.len();
    let mut out = Vec::new();
    let mut positions: Vec<u32> = Vec::new();
    for (li, k) in left_keys.iter().enumerate() {
        // The matching right keys form one or two contiguous ranges of the
        // sorted order.
        let (a, b) = match op {
            BinOp::Lt => (through(k), n),
            BinOp::LtEq => (below(k), n),
            BinOp::Gt => (0, below(k)),
            BinOp::GtEq => (0, through(k)),
            BinOp::Eq => (below(k), through(k)),
            BinOp::NotEq => {
                // The complement of the equal range is nearly everything;
                // a direct scan (already in right_rows order) beats
                // copying and re-sorting n positions per left key.
                for (rpos, rk) in right_keys.iter().enumerate() {
                    if rk != k {
                        out.push((left_rows[li], right_rows[rpos]));
                    }
                }
                continue;
            }
            _ => unreachable!("caller validated the comparison"),
        };
        positions.clear();
        positions.extend_from_slice(&order[a..b]);
        // Emit in original right_rows order, as the nested loop does.
        positions.sort_unstable();
        for &p in &positions {
            out.push((left_rows[li], right_rows[p as usize]));
        }
    }
    out
}

/// Evaluate the single-table filters of an analyzed query, returning the
/// surviving row indices per table.
///
/// This is the *reference* path (row-at-a-time interpreter, textual
/// predicate order) shared by the baseline engines; the TCUDB executor
/// opts into the vectorized kernels through [`apply_filters_with`].
pub fn apply_filters(analyzed: &AnalyzedQuery) -> TcuResult<Vec<Vec<usize>>> {
    apply_filters_with(analyzed, false)
}

/// [`apply_filters`] with the vectorized path switchable, so harnesses
/// and the oracle tests can compare both.
///
/// When `vectorized`, predicates the analyzer classifies as
/// [`FilterAtom`]s run as tight typed loops over the column data (text
/// equality/ordering goes through the cached dictionary codes), producing
/// a selection mask; only rows surviving the mask reach the expression
/// interpreter for the remaining complex predicates.  Note the atoms are
/// therefore evaluated *first* — a row rejected by an atom can no longer
/// raise an evaluation error (e.g. division by zero) from a complex
/// predicate that textually precedes it.
pub fn apply_filters_with(
    analyzed: &AnalyzedQuery,
    vectorized: bool,
) -> TcuResult<Vec<Vec<usize>>> {
    apply_filters_ctx(analyzed, vectorized, &QueryContext::unbounded())
}

/// [`apply_filters_with`] under a cancellation/deadline context, probed
/// per table and per scan morsel.  A cancelled query unwinds here with
/// the typed error before any join work starts.
///
/// This legacy entry point runs the scan chunk-serially with zone-map
/// pruning **off**, so row order, predicate evaluation order and error
/// order are exactly the historical single-stream semantics; the executor
/// opts into pruning and morsel parallelism through
/// [`apply_filters_scan`].
pub fn apply_filters_ctx(
    analyzed: &AnalyzedQuery,
    vectorized: bool,
    qctx: &QueryContext,
) -> TcuResult<Vec<Vec<usize>>> {
    let opts = ScanOptions {
        threads: 1,
        zone_prune: false,
        semi_join: false,
    };
    Ok(apply_filters_scan(analyzed, vectorized, qctx, &opts)?.0)
}

/// Knobs of the chunked scan pipeline ([`apply_filters_scan`]).
#[derive(Debug, Clone, Copy)]
pub struct ScanOptions {
    /// Maximum threads one morsel run may use (1 = inline, serial).
    pub threads: usize,
    /// Skip chunks whose zone maps cannot satisfy the table's own
    /// [`FilterAtom`]s.  Pure pruning: never changes the surviving set.
    pub zone_prune: bool,
    /// Additionally push min/max key ranges from already-filtered join
    /// partners and prune chunks that cannot contain a joinable key.
    /// This *shrinks* per-table surviving sets (rows that provably join
    /// nothing are dropped before the join), so it is only enabled on the
    /// executor path where every downstream consumer is the join itself —
    /// final query results are unchanged.
    pub semi_join: bool,
}

impl ScanOptions {
    /// Chunk-serial scan with pruning but no cross-table pushdown.
    pub fn serial() -> ScanOptions {
        ScanOptions {
            threads: 1,
            zone_prune: true,
            semi_join: false,
        }
    }
}

/// Chunk accounting of one table's scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableScan {
    /// Total chunks the table is partitioned into.
    pub chunks: u64,
    /// Chunks skipped by zone-map pruning.
    pub pruned: u64,
}

/// Aggregate scan statistics of one query (summed over its tables).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Chunks actually scanned.
    pub chunks_scanned: u64,
    /// Chunks skipped by zone-map pruning.
    pub chunks_pruned: u64,
    /// Scan morsels executed.
    pub morsels: u64,
    /// Most threads any morsel run used (0 when no morsels ran).
    pub workers: u64,
}

/// The executor's scan entry point: evaluate every table's single-table
/// filters over its column chunks, with zone-map pruning and
/// morsel-parallel evaluation on the shared [`WorkerPool`].
///
/// Determinism: kept chunks are scanned as index-ordered morsels whose
/// results are concatenated in chunk order, so the surviving row sets —
/// and the first error, if any — are identical for every thread count.
/// Atoms are classified in **both** the vectorized and the interpreter
/// mode so that two engines differing only in `vectorized` prune (and
/// report) identically; the interpreter mode still evaluates all
/// predicates row-at-a-time on the chunks it scans.
///
/// Returns `(surviving rows per table, per-table chunk accounting,
/// aggregate stats)`.
pub fn apply_filters_scan(
    analyzed: &AnalyzedQuery,
    vectorized: bool,
    qctx: &QueryContext,
    opts: &ScanOptions,
) -> TcuResult<(Vec<Vec<usize>>, Vec<TableScan>, ScanStats)> {
    let n = analyzed.tables.len();
    let class_ctx = analyzed.row_context();
    let mut surviving: Vec<Option<Vec<usize>>> = (0..n).map(|_| None).collect();
    let mut scans = vec![TableScan::default(); n];
    let mut stats = ScanStats::default();
    // Semi-join key-range constraints pushed onto not-yet-scanned tables:
    // `(column index, lo, hi)` — a chunk of that table whose key zone
    // cannot intersect `[lo, hi]` cannot produce a join match.
    let mut pushed: Vec<Vec<(usize, f64, f64)>> = vec![Vec::new(); n];
    let mut order: Vec<usize> = (0..n).collect();
    if opts.semi_join {
        // Scan smaller tables first so filtered dimensions push their key
        // ranges onto the fact tables scanned after them.
        order.sort_by_key(|&t| (analyzed.tables[t].table.num_rows(), t));
    }
    let pool = WorkerPool::shared();

    for &ti in &order {
        qctx.check()?;
        let bound = &analyzed.tables[ti];
        let table: &Table = &bound.table;
        let nrows = table.num_rows();
        let filters = analyzed.filters_for_table(ti);

        // Classify the table's predicates (pruning needs the atoms in
        // both modes; only the vectorized path evaluates them as typed
        // kernels).
        let mut atoms: Vec<FilterAtom> = Vec::new();
        let mut complex: Vec<&Expr> = Vec::new();
        for f in &filters {
            match vectorizable_atom(f, &class_ctx, ti) {
                Some(a) => atoms.push(a),
                None => complex.push(*f),
            }
        }

        // ---- Zone-map pruning ----
        let chunk_rows = table.chunk_rows();
        let total = chunk::chunk_count(nrows, chunk_rows);
        let mut constraints: Vec<(std::sync::Arc<chunk::ColumnZones>, f64, f64)> = Vec::new();
        if opts.zone_prune {
            for a in &atoms {
                if let Some((col, lo, hi)) = atom_interval(a) {
                    constraints.push((table.zone_map(col), lo, hi));
                }
            }
            for &(col, lo, hi) in &pushed[ti] {
                constraints.push((table.zone_map(col), lo, hi));
            }
        }
        let kept: Vec<usize> = (0..total)
            .filter(|&k| {
                constraints
                    .iter()
                    .all(|(z, lo, hi)| z.may_intersect(k, *lo, *hi))
            })
            .collect();
        scans[ti] = TableScan {
            chunks: total as u64,
            pruned: (total - kept.len()) as u64,
        };
        stats.chunks_scanned += kept.len() as u64;
        stats.chunks_pruned += scans[ti].pruned;

        // ---- Evaluate the kept chunks as morsels ----
        let keep: Vec<usize> = if filters.is_empty() && kept.len() == total {
            // Unfiltered and nothing pruned: the identity selection.
            (0..nrows).collect()
        } else {
            let eval_atoms: &[FilterAtom] = if vectorized { &atoms } else { &[] };
            let eval_complex: &[&Expr] = if vectorized { &complex } else { &filters };
            let scan_chunk = |ci: usize| -> TcuResult<Vec<usize>> {
                qctx.check()?;
                let (start, end) = chunk::chunk_span(nrows, chunk_rows, kept[ci]);
                scan_range(analyzed, ti, table, start, end, eval_atoms, eval_complex)
            };
            let (parts, run) = pool.run_chunks(kept.len(), opts.threads.max(1), scan_chunk);
            stats.morsels += run.morsels;
            stats.workers = stats.workers.max(run.threads as u64);
            let mut acc = Vec::new();
            for p in parts {
                acc.extend(p?);
            }
            acc
        };

        // ---- Semi-join key-range pushdown ----
        if opts.semi_join && keep.len() < nrows {
            for j in &analyzed.joins {
                if !j.is_equi() {
                    continue;
                }
                let (partner, my_col, partner_col) = if j.left.0 == ti {
                    (j.right.0, &j.left.1, &j.right.1)
                } else if j.right.0 == ti {
                    (j.left.0, &j.right.1, &j.left.1)
                } else {
                    continue;
                };
                if partner == ti || surviving[partner].is_some() {
                    continue;
                }
                let my_idx = table.schema().require(my_col)?;
                if let Some((lo, hi)) = value_range(table.column(my_idx), &keep) {
                    let p_idx = analyzed.tables[partner]
                        .table
                        .schema()
                        .require(partner_col)?;
                    pushed[partner].push((p_idx, lo, hi));
                }
            }
        }
        surviving[ti] = Some(keep);
    }

    let surviving = surviving
        .into_iter()
        .map(Option::unwrap_or_default)
        .collect();
    Ok((surviving, scans, stats))
}

/// Evaluate one table's predicates over the row range `[start, end)`,
/// reproducing the single-stream evaluation order exactly: atoms AND into
/// a mask with typed kernels, surviving rows run the complex predicates
/// through the interpreter in textual order.
fn scan_range(
    analyzed: &AnalyzedQuery,
    ti: usize,
    table: &Table,
    start: usize,
    end: usize,
    atoms: &[FilterAtom],
    complex: &[&Expr],
) -> TcuResult<Vec<usize>> {
    let mut keep = Vec::new();
    if atoms.is_empty() {
        let mut ctx = analyzed.row_context();
        'rows: for r in start..end {
            ctx.set_row(ti, r);
            for f in complex {
                if !eval_predicate(f, &ctx)? {
                    continue 'rows;
                }
            }
            keep.push(r);
        }
        return Ok(keep);
    }
    let mut mask = vec![true; end - start];
    for atom in atoms {
        apply_filter_atom_range(table, atom, start, &mut mask)?;
    }
    if complex.is_empty() {
        keep.extend(
            mask.iter()
                .enumerate()
                .filter(|(_, ok)| **ok)
                .map(|(i, _)| start + i),
        );
        return Ok(keep);
    }
    let mut ctx = analyzed.row_context();
    'masked: for (i, ok) in mask.iter().enumerate() {
        if !*ok {
            continue;
        }
        let r = start + i;
        ctx.set_row(ti, r);
        for f in complex {
            if !eval_predicate(f, &ctx)? {
                continue 'masked;
            }
        }
        keep.push(r);
    }
    Ok(keep)
}

/// The constraint interval `[lo, hi]` a [`FilterAtom`] imposes on its
/// column, for zone-map pruning — `None` when the atom cannot prune
/// (text/NotEq, or a literal whose exact `f64` image is not guaranteed).
/// Ordering atoms use a half-open-at-infinity interval; the closed
/// endpoint is conservative for the strict operators (a chunk whose bound
/// only *equals* the literal is still scanned), which keeps pruning sound.
fn atom_interval(atom: &FilterAtom) -> Option<(usize, f64, f64)> {
    match atom {
        FilterAtom::Between { col, low, high } => Some((*col, *low, *high)),
        FilterAtom::Cmp { col, op, lit } => {
            let v = match lit {
                Value::Int(x) => chunk::int_bound(*x)?,
                Value::Float(f) if !f.is_nan() => *f,
                _ => return None,
            };
            match op {
                BinOp::Eq => Some((*col, v, v)),
                BinOp::Lt | BinOp::LtEq => Some((*col, f64::NEG_INFINITY, v)),
                BinOp::Gt | BinOp::GtEq => Some((*col, v, f64::INFINITY)),
                _ => None,
            }
        }
    }
}

/// Min/max of a key column restricted to `rows`, as an exact `f64`
/// interval — the semi-join range pushed to join partners.  `None` when
/// no sound interval exists (text keys, NaN keys — which join other NaNs
/// under `group_key` — or integers beyond ±2⁵²).  An empty selection
/// yields the empty interval `[+∞, −∞]`, which prunes every prunable
/// partner chunk.
fn value_range(col: &Column, rows: &[usize]) -> Option<(f64, f64)> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    match col {
        Column::Int64(v) => {
            for &r in rows {
                let x = chunk::int_bound(v[r])?;
                lo = lo.min(x);
                hi = hi.max(x);
            }
        }
        Column::Float64(v) => {
            for &r in rows {
                let x = v[r];
                if x.is_nan() {
                    return None;
                }
                lo = lo.min(x);
                hi = hi.max(x);
            }
        }
        Column::Text(_) => return None,
    }
    Some((lo, hi))
}

/// Fraction of table `ti`'s chunks a zone-pruned scan must still read
/// (1.0 when nothing can be pruned) — the hook admission control uses to
/// price pruned scans instead of whole-table sizes.
pub fn pruned_scan_fraction(analyzed: &AnalyzedQuery, ti: usize) -> f64 {
    let table = &analyzed.tables[ti].table;
    let total = table.chunk_count();
    if total == 0 {
        return 1.0;
    }
    let ctx = analyzed.row_context();
    let mut zones = Vec::new();
    for f in &analyzed.filters_for_table(ti) {
        if let Some(a) = vectorizable_atom(f, &ctx, ti) {
            if let Some((col, lo, hi)) = atom_interval(&a) {
                zones.push((table.zone_map(col), lo, hi));
            }
        }
    }
    if zones.is_empty() {
        return 1.0;
    }
    let constraints: Vec<(&chunk::ColumnZones, f64, f64)> = zones
        .iter()
        .map(|(z, lo, hi)| (z.as_ref(), *lo, *hi))
        .collect();
    chunk::kept_chunks(total, &constraints) as f64 / total as f64
}

/// AND one vectorizable predicate into the selection mask of the row
/// range `[start, start + mask.len())` with a typed columnar loop.  Every
/// branch reproduces the corresponding `eval_predicate` result bit for
/// bit (including the `partial_cmp(..).unwrap_or(Equal)` NaN behaviour of
/// `sql_cmp`, hence the negated comparisons for `LtEq`/`GtEq` — `!(a > b)`
/// is *not* the same as `a <= b` on NaN, and the interpreter implements
/// the former).
#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn apply_filter_atom_range(
    table: &Table,
    atom: &FilterAtom,
    start: usize,
    mask: &mut [bool],
) -> TcuResult<()> {
    fn mask_by<T: Copy>(mask: &mut [bool], data: &[T], pred: impl Fn(T) -> bool) {
        for (m, &x) in mask.iter_mut().zip(data) {
            *m = *m && pred(x);
        }
    }
    let end = start + mask.len();
    let internal = |what: &str| {
        TcuError::Execution(format!(
            "filter atom misclassified ({what}); analyzer and kernels disagree"
        ))
    };
    match atom {
        FilterAtom::Between { col, low, high } => {
            let (lo, hi) = (*low, *high);
            match table.column(*col) {
                Column::Int64(v) => mask_by(mask, &v[start..end], |x| {
                    let x = x as f64;
                    x >= lo && x <= hi
                }),
                Column::Float64(v) => mask_by(mask, &v[start..end], |x| x >= lo && x <= hi),
                Column::Text(_) => return Err(internal("BETWEEN over text")),
            }
        }
        FilterAtom::Cmp { col, op, lit } => {
            let op = *op;
            match (table.column(*col), lit) {
                (Column::Int64(v), Value::Int(x)) => {
                    let v = &v[start..end];
                    let x = *x;
                    match op {
                        BinOp::Eq => mask_by(mask, v, |a| a == x),
                        BinOp::NotEq => mask_by(mask, v, |a| a != x),
                        BinOp::Lt => mask_by(mask, v, |a| a < x),
                        BinOp::LtEq => mask_by(mask, v, |a| a <= x),
                        BinOp::Gt => mask_by(mask, v, |a| a > x),
                        BinOp::GtEq => mask_by(mask, v, |a| a >= x),
                        _ => return Err(internal("non-comparison op")),
                    }
                }
                (Column::Int64(v), Value::Float(f)) => {
                    let v = &v[start..end];
                    let f = *f;
                    match op {
                        // Int-vs-Float equality follows group_key: only an
                        // integral literal can ever match.
                        BinOp::Eq | BinOp::NotEq => {
                            let want_eq = op == BinOp::Eq;
                            match ValueKey::from_f64(f) {
                                ValueKey::Int(x) => mask_by(mask, v, |a| (a == x) == want_eq),
                                _ => mask_by(mask, v, |_| !want_eq),
                            }
                        }
                        BinOp::Lt => mask_by(mask, v, |a| (a as f64) < f),
                        BinOp::LtEq => mask_by(mask, v, |a| !((a as f64) > f)),
                        BinOp::Gt => mask_by(mask, v, |a| (a as f64) > f),
                        BinOp::GtEq => mask_by(mask, v, |a| !((a as f64) < f)),
                        _ => return Err(internal("non-comparison op")),
                    }
                }
                (Column::Float64(v), lit @ (Value::Int(_) | Value::Float(_))) => {
                    let v = &v[start..end];
                    let litf = lit.as_f64().expect("numeric literal");
                    match op {
                        BinOp::Eq | BinOp::NotEq => {
                            let want_eq = op == BinOp::Eq;
                            // group_key: the one normalisation both paths
                            // share (ValueKey::from_f64).
                            let key = lit.group_key();
                            mask_by(mask, v, |a| (ValueKey::from_f64(a) == key) == want_eq);
                        }
                        BinOp::Lt => mask_by(mask, v, |a| a < litf),
                        BinOp::LtEq => mask_by(mask, v, |a| !(a > litf)),
                        BinOp::Gt => mask_by(mask, v, |a| a > litf),
                        BinOp::GtEq => mask_by(mask, v, |a| !(a < litf)),
                        _ => return Err(internal("non-comparison op")),
                    }
                }
                (Column::Text(_), Value::Text(s)) => {
                    let dict = table.encoded_column(*col);
                    let codes = &dict.codes()[start..end];
                    match op {
                        BinOp::Eq | BinOp::NotEq => {
                            let want_eq = op == BinOp::Eq;
                            match dict.code_of(&Value::Text(s.clone())) {
                                Some(t) => mask_by(mask, codes, |c| (c == t) == want_eq),
                                None => mask_by(mask, codes, |_| !want_eq),
                            }
                        }
                        BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                            // One string comparison per *distinct* value.
                            let lut: Vec<bool> = dict
                                .values()
                                .iter()
                                .map(|v| {
                                    let ord = v.as_str().expect("text dict").cmp(s.as_str());
                                    match op {
                                        BinOp::Lt => ord == Ordering::Less,
                                        BinOp::LtEq => ord != Ordering::Greater,
                                        BinOp::Gt => ord == Ordering::Greater,
                                        _ => ord != Ordering::Less,
                                    }
                                })
                                .collect();
                            mask_by(mask, codes, |c| lut[c as usize]);
                        }
                        _ => return Err(internal("non-comparison op")),
                    }
                }
                _ => return Err(internal("column/literal type mismatch")),
            }
        }
    }
    Ok(())
}

/// One accumulating aggregate state, shared by the row-at-a-time oracle
/// and (as `Vec<AggState>` indexed by dense group id) the vectorized
/// pipeline, so both fold values with identical SQL semantics:
///
/// * NULL inputs are **skipped** by every aggregate (COUNT(col) does not
///   count them; SUM/AVG over zero non-NULL inputs yield NULL) — COUNT(*)
///   counts rows because its call sites feed a literal `1`,
/// * MIN/MAX keep the first-seen extreme **value** (via `sql_cmp`), so an
///   INT column's minimum stays an `Int` and a TEXT column's minimum is
///   the lexicographically smallest string, not a `0.0` coercion.
#[derive(Debug, Clone)]
struct AggState {
    func: AggFunc,
    sum: f64,
    count: u64,
    /// Current MIN/MAX extreme (the original value, type preserved).
    best: Option<Value>,
}

impl AggState {
    fn new(func: AggFunc) -> AggState {
        AggState {
            func,
            sum: 0.0,
            count: 0,
            best: None,
        }
    }

    /// Fold one value in, touching only the accumulators `finish` will
    /// read for this aggregate.
    fn update(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        match self.func {
            AggFunc::Count => self.count += 1,
            AggFunc::Sum | AggFunc::Avg => {
                // Non-numeric (text) inputs keep their historical 0.0
                // coercion; only NULLs are skipped.
                self.sum += v.as_f64().unwrap_or(0.0);
                self.count += 1;
            }
            AggFunc::Min => {
                if self
                    .best
                    .as_ref()
                    .is_none_or(|b| v.sql_cmp(b) == Ordering::Less)
                {
                    self.best = Some(v.clone());
                }
            }
            AggFunc::Max => {
                if self
                    .best
                    .as_ref()
                    .is_none_or(|b| v.sql_cmp(b) == Ordering::Greater)
                {
                    self.best = Some(v.clone());
                }
            }
        }
    }

    /// Non-NULL numeric fast path: exactly [`AggState::update`] with
    /// `Value::Float(v)` minus the boxing (the vectorized pipeline calls
    /// this in its segmented-accumulation loop).
    fn update_f64(&mut self, v: f64) {
        match self.func {
            AggFunc::Count => self.count += 1,
            AggFunc::Sum | AggFunc::Avg => {
                self.sum += v;
                self.count += 1;
            }
            // `sql_cmp` over two Floats is `partial_cmp` with NaN mapping
            // to Equal (never replaces, never gets replaced).
            AggFunc::Min => {
                let replace = match &self.best {
                    None => true,
                    Some(b) => {
                        v.partial_cmp(&b.as_f64().unwrap_or(f64::NEG_INFINITY))
                            == Some(Ordering::Less)
                    }
                };
                if replace {
                    self.best = Some(Value::Float(v));
                }
            }
            AggFunc::Max => {
                let replace = match &self.best {
                    None => true,
                    Some(b) => {
                        v.partial_cmp(&b.as_f64().unwrap_or(f64::NEG_INFINITY))
                            == Some(Ordering::Greater)
                    }
                };
                if replace {
                    self.best = Some(Value::Float(v));
                }
            }
        }
    }

    fn finish(&self) -> Value {
        match self.func {
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum)
                }
            }
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min | AggFunc::Max => self.best.clone().unwrap_or(Value::Null),
        }
    }
}

/// Materialise the final output table of a query from the joined row
/// tuples (one row index per bound table, in table order).
///
/// Handles residual predicates, projection, grouped and ungrouped
/// aggregation, ORDER BY and LIMIT.
pub fn finalize_output(analyzed: &AnalyzedQuery, tuples: &[Vec<usize>]) -> TcuResult<Table> {
    let mut ctx = analyzed.row_context();
    let stmt = &analyzed.stmt;
    let col_names: Vec<String> = stmt.items.iter().map(|i| i.output_name()).collect();

    let mut rows: Vec<Vec<Value>> = Vec::new();

    if stmt.has_aggregates() || !stmt.group_by.is_empty() {
        // Grouped (or global) aggregation.
        #[allow(clippy::type_complexity)]
        let mut groups: HashMap<Vec<ValueKey>, (Vec<Value>, Vec<AggState>)> = HashMap::new();
        let mut group_order: Vec<Vec<ValueKey>> = Vec::new();

        for tuple in tuples {
            ctx.set_rows(tuple);
            if !residuals_pass(analyzed, &ctx)? {
                continue;
            }
            let mut key_vals = Vec::with_capacity(stmt.group_by.len());
            let mut key = Vec::with_capacity(stmt.group_by.len());
            for g in &stmt.group_by {
                let v = eval(g, &ctx)?;
                key.push(v.group_key());
                key_vals.push(v);
            }
            let entry = groups.entry(key.clone()).or_insert_with(|| {
                group_order.push(key.clone());
                let states = stmt
                    .items
                    .iter()
                    .map(|item| {
                        item.expr
                            .first_aggregate()
                            .map(|(f, _)| AggState::new(*f))
                            .unwrap_or_else(|| AggState::new(AggFunc::Count))
                    })
                    .collect();
                (key_vals.clone(), states)
            });
            for (item, state) in stmt.items.iter().zip(entry.1.iter_mut()) {
                if let Some((func, arg)) = item.expr.first_aggregate() {
                    let v = match (func, arg) {
                        // COUNT(*) counts rows regardless of the argument.
                        (AggFunc::Count, Expr::Literal(_)) => Value::Int(1),
                        _ => eval(arg, &ctx)?,
                    };
                    state.update(&v);
                }
            }
        }

        // Global aggregation over zero groups still yields one row.
        if stmt.group_by.is_empty() && groups.is_empty() {
            let states: Vec<AggState> = stmt
                .items
                .iter()
                .map(|item| {
                    item.expr
                        .first_aggregate()
                        .map(|(f, _)| AggState::new(*f))
                        .unwrap_or_else(|| AggState::new(AggFunc::Count))
                })
                .collect();
            groups.insert(Vec::new(), (Vec::new(), states));
            group_order.push(Vec::new());
        }

        for key in &group_order {
            let (key_vals, states) = &groups[key];
            let mut row = Vec::with_capacity(stmt.items.len());
            for (idx, item) in stmt.items.iter().enumerate() {
                if item.expr.contains_aggregate() {
                    row.push(finish_aggregate_item(&item.expr, &states[idx])?);
                } else {
                    // Non-aggregate item must be a group key: find it.
                    let pos = stmt
                        .group_by
                        .iter()
                        .position(|g| g == &item.expr)
                        .ok_or_else(|| {
                            TcuError::Analysis(format!(
                                "non-aggregate SELECT item '{}' is not in GROUP BY",
                                item.expr
                            ))
                        })?;
                    row.push(key_vals[pos].clone());
                }
            }
            rows.push(row);
        }
    } else {
        // Plain projection.
        for tuple in tuples {
            ctx.set_rows(tuple);
            if !residuals_pass(analyzed, &ctx)? {
                continue;
            }
            let mut row = Vec::with_capacity(stmt.items.len());
            for item in &stmt.items {
                row.push(eval(&item.expr, &ctx)?);
            }
            rows.push(row);
        }
    }

    // ORDER BY against output columns, then LIMIT.
    if !stmt.order_by.is_empty() {
        let keys = order_key_indices(stmt, &col_names)?;
        rows.sort_by(|a, b| {
            for (idx, asc) in &keys {
                let ord = a[*idx].sql_cmp(&b[*idx]);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    if let Some(limit) = stmt.limit {
        rows.truncate(limit);
    }

    table_from_rows("result", &col_names, rows)
}

/// Resolve the ORDER BY keys to `(output column index, ascending)` pairs:
/// by output name first, falling back to matching the rendered expression
/// of each SELECT item (e.g. `ORDER BY d_year` when the item has no
/// alias).  Shared by the row-oriented and the columnar output paths so
/// both resolve — and fail — identically.
fn order_key_indices(
    stmt: &SelectStatement,
    col_names: &[String],
) -> TcuResult<Vec<(usize, bool)>> {
    let mut keys = Vec::with_capacity(stmt.order_by.len());
    for ob in &stmt.order_by {
        let name = match &ob.expr {
            Expr::Column(c) => c.column.clone(),
            other => other.to_string(),
        };
        let idx = col_names
            .iter()
            .position(|n| n.eq_ignore_ascii_case(&name))
            .or_else(|| stmt.items.iter().position(|i| i.expr == ob.expr))
            .ok_or_else(|| {
                TcuError::Analysis(format!("ORDER BY key '{}' is not in the SELECT list", name))
            })?;
        keys.push((idx, ob.ascending));
    }
    Ok(keys)
}

/// Apply the residual (multi-table, non-join) predicates to the current row.
fn residuals_pass(analyzed: &AnalyzedQuery, ctx: &RowContext) -> TcuResult<bool> {
    for pred in &analyzed.residual {
        if !eval_predicate(pred, ctx)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// When the SELECT item is an expression *around* an aggregate
/// (e.g. `SUM(x) / 100`), evaluate the surrounding arithmetic with the
/// aggregate replaced by its final value.
fn finish_aggregate_item(expr: &Expr, state: &AggState) -> TcuResult<Value> {
    fn substitute(expr: &Expr, agg_value: &Value) -> TcuResult<Value> {
        match expr {
            Expr::Aggregate { .. } => Ok(agg_value.clone()),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Column(c) => Err(TcuError::Analysis(format!(
                "column '{c}' mixed with aggregates must appear in GROUP BY"
            ))),
            Expr::Binary { left, op, right } => {
                let l = substitute(left, agg_value)?;
                let r = substitute(right, agg_value)?;
                crate::context::eval_binary(&l, *op, &r)
            }
            Expr::Between { .. } => Err(TcuError::Analysis(
                "BETWEEN is not valid in an aggregate SELECT item".into(),
            )),
        }
    }
    substitute(expr, &state.finish())
}

/// Build a table from value rows, inferring each column's type.
pub fn table_from_rows(
    name: &str,
    col_names: &[String],
    rows: Vec<Vec<Value>>,
) -> TcuResult<Table> {
    let ncols = col_names.len();
    let mut types = vec![DataType::Int64; ncols];
    for row in &rows {
        for (c, v) in row.iter().enumerate() {
            match v {
                Value::Text(_) => types[c] = DataType::Text,
                Value::Float(_) if types[c] == DataType::Int64 => types[c] = DataType::Float64,
                _ => {}
            }
        }
    }
    let schema = Schema::new(
        col_names
            .iter()
            .zip(&types)
            .map(|(n, t)| ColumnDef::new(n.clone(), *t))
            .collect(),
    );
    let mut table = Table::new(name, schema);
    for row in rows {
        let coerced: Vec<Value> = row
            .into_iter()
            .zip(&types)
            .map(|(v, t)| match (v, t) {
                (Value::Int(x), DataType::Float64) => Value::Float(x as f64),
                (Value::Null, DataType::Float64) => Value::Float(f64::NAN),
                (Value::Null, DataType::Int64) => Value::Int(0),
                (Value::Null, DataType::Text) => Value::Text(String::new()),
                (v, _) => v,
            })
            .collect();
        table.push_row(coerced)?;
    }
    Ok(table)
}

// ---------------------------------------------------------------------
// Vectorized, late-materialized output pipeline:
//   TupleBatch → residual mask → dense group ids → segmented /
//   one-hot-GEMM aggregation → typed gather.
//
// The row-at-a-time [`finalize_output`] above stays intact as the oracle
// (`EngineConfig::encoded_path(false)` selects it); the `encoded_oracle`
// proptests hold the two bit-identical.  Like the vectorized filters, the
// one observable difference is *error ordering*: the columnar pipeline
// evaluates each output expression over all tuples before moving to the
// next, so when two expressions would both fail, the error may come from
// a different (expression, row) pair than the tuple-order interpreter's.
// ---------------------------------------------------------------------

/// Tunables of the columnar output pipeline.
#[derive(Debug, Clone)]
pub struct FinalizeOptions {
    /// Largest `rows × groups` one-hot group matrix the aggregation stage
    /// will materialise and push through the tensor engine (§3.3's
    /// grouped-GEMV form); `0` disables the GEMM form entirely (the
    /// CPU/GPU baseline engines, which model group-by as a separate
    /// non-tensor kernel).
    pub gemm_limit: usize,
    /// Cancellation/deadline context, probed at finalize-chunk boundaries
    /// (residual batches, per-aggregate reductions, group-emission
    /// chunks).  Defaults to unbounded.
    pub ctx: QueryContext,
}

/// Tuples (or groups) processed between two cancellation probes inside
/// the finalize loops — small enough that a cancelled query stops within
/// microseconds, large enough that the probe cost vanishes.
const FINALIZE_CHECK_CHUNK: usize = 4096;

/// Host execution budget for the one-hot aggregation GEMM: building the
/// group matrix is O(rows × groups) memory traffic on the host, so past
/// ~1M elements the segmented form computes the identical result faster
/// than the emulated kernel can even materialise its operand (on real TCU
/// hardware the cost model, not this constant, makes the call).
const AGG_GEMM_EXEC_LIMIT: usize = 1 << 20;

impl FinalizeOptions {
    /// Options for the TCUDB executor: GEMM aggregation up to the
    /// engine's materialization limit, bounded by the host execution
    /// budget.
    pub fn tensor(materialize_limit: usize) -> FinalizeOptions {
        FinalizeOptions {
            gemm_limit: materialize_limit.min(AGG_GEMM_EXEC_LIMIT),
            ctx: QueryContext::unbounded(),
        }
    }

    /// Options for the baseline engines: vectorized pipeline, no tensor
    /// kernels.
    pub fn baseline() -> FinalizeOptions {
        FinalizeOptions {
            gemm_limit: 0,
            ctx: QueryContext::unbounded(),
        }
    }

    /// Attach a cancellation/deadline context to probe at finalize-chunk
    /// boundaries.
    pub fn with_ctx(mut self, ctx: QueryContext) -> FinalizeOptions {
        self.ctx = ctx;
        self
    }
}

/// What the columnar finalize actually did — exact counts the engine
/// layer feeds to the cost model instead of pre-execution guesses.
#[derive(Debug, Clone, Default)]
pub struct FinalizeReport {
    /// Tuples entering the stage (before residual predicates).
    pub input_tuples: usize,
    /// Tuples surviving the residual predicates (= aggregation input).
    pub agg_rows: usize,
    /// Distinct groups produced (0 for non-aggregating queries).
    pub groups: usize,
    /// Kernel statistics of each aggregate reduced on the tensor engine
    /// (empty when every aggregate ran as segmented accumulation).
    pub gemm: Vec<GemmStats>,
    /// Which pipeline ran: `"projection"`, `"grouped"`, `"grouped-gemm"`
    /// or `"value-fallback"`.
    pub path: &'static str,
}

/// Columnar counterpart of [`finalize_output`]: materialise the output
/// table of a query from a late-materialized [`TupleBatch`] with
/// column-at-a-time kernels — dictionary-code group ids, segmented (or
/// §3.3 one-hot GEMM) aggregation, sort-permutation ORDER BY and typed
/// column gathers, with zero per-cell `Value` traffic on the hot paths.
pub fn finalize_output_columnar(
    analyzed: &AnalyzedQuery,
    batch: &TupleBatch,
    opts: &FinalizeOptions,
) -> TcuResult<(Table, FinalizeReport)> {
    let mut report = FinalizeReport {
        input_tuples: batch.len(),
        ..FinalizeReport::default()
    };

    // Complex group-key expressions: the row-at-a-time oracle is the only
    // evaluator with the right semantics.  Decided before the residual
    // pass, since `finalize_output` applies residuals itself.
    let stmt = &analyzed.stmt;
    let grouped = stmt.has_aggregates() || !stmt.group_by.is_empty();
    if grouped {
        let ctx = analyzed.row_context();
        if !stmt
            .group_by
            .iter()
            .all(|g| simple_column(g, &ctx).is_some())
        {
            let table = finalize_output(analyzed, &batch.to_tuples())?;
            report.path = "value-fallback";
            return Ok((table, report));
        }
    }

    // Residual (multi-table, non-join) predicates: interpreter per tuple,
    // vectorized selection of the survivors.
    let filtered: Cow<'_, TupleBatch> = if analyzed.residual.is_empty() {
        Cow::Borrowed(batch)
    } else {
        let mut ctx = analyzed.row_context();
        let mut buf = vec![0usize; batch.num_slots()];
        let mut keep = Vec::new();
        for i in 0..batch.len() {
            if i % FINALIZE_CHECK_CHUNK == 0 {
                opts.ctx.check()?;
            }
            batch.write_row(i, &mut buf);
            ctx.set_rows(&buf);
            if residuals_pass(analyzed, &ctx)? {
                keep.push(i as u32);
            }
        }
        Cow::Owned(batch.select(&keep))
    };
    let batch = filtered.as_ref();
    report.agg_rows = batch.len();

    if grouped {
        finalize_grouped(analyzed, batch, opts, report)
    } else {
        finalize_projection(analyzed, batch, &opts.ctx, report)
    }
}

/// Grouped (or global) aggregation over a tuple batch.
fn finalize_grouped(
    analyzed: &AnalyzedQuery,
    batch: &TupleBatch,
    opts: &FinalizeOptions,
    mut report: FinalizeReport,
) -> TcuResult<(Table, FinalizeReport)> {
    let stmt = &analyzed.stmt;
    let ctx = analyzed.row_context();
    let col_names: Vec<String> = stmt.items.iter().map(|i| i.output_name()).collect();

    // ---- Group keys: gather cached dictionary codes per tuple, compose
    // them into dense first-seen group ids (array lookups; hashing at
    // most once per distinct combination).
    let mut key_codes: Vec<(Arc<DictColumn>, Vec<u32>)> = Vec::with_capacity(stmt.group_by.len());
    for g in &stmt.group_by {
        let (ti, ci) = simple_column(g, &ctx)
            .expect("finalize_output_columnar pre-checked group keys as simple columns");
        let dict = analyzed.tables[ti].table.encoded_column(ci);
        let codes: Vec<u32> = batch
            .col(ti)
            .iter()
            .map(|&r| dict.codes()[r as usize])
            .collect();
        key_codes.push((dict, codes));
    }
    let mut gids = GroupIds::new(batch.len());
    for (dict, codes) in &key_codes {
        gids.compose(codes, dict.dict_len());
    }
    let groups = gids.groups();
    report.groups = groups;
    report.path = "grouped";

    // ---- Aggregation: one Vec<AggState> (dense group id → state) per
    // aggregate SELECT item, folded by segmented accumulation or the
    // §3.3 one-hot GEMM.
    let mut item_states: Vec<Option<Vec<AggState>>> = Vec::with_capacity(stmt.items.len());
    for item in &stmt.items {
        opts.ctx.check()?;
        if item.expr.contains_aggregate() {
            let (func, arg) = item.expr.first_aggregate().expect("contains_aggregate");
            item_states.push(Some(reduce_aggregate(
                analyzed,
                batch,
                *func,
                arg,
                &gids,
                opts,
                &mut report,
            )?));
        } else {
            item_states.push(None);
        }
    }

    // ---- Per-group key values: the representative (first-seen) tuple's
    // dictionary values.
    let key_values: Vec<Vec<Value>> = gids
        .representatives()
        .iter()
        .map(|&rep| {
            key_codes
                .iter()
                .map(|(dict, codes)| dict.value(codes[rep as usize]).clone())
                .collect()
        })
        .collect();

    // ---- Output rows, one per group in first-seen (= dense id) order.
    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(groups);
    let mut emit_row = |g: Option<usize>| -> TcuResult<()> {
        let mut row = Vec::with_capacity(stmt.items.len());
        for (idx, item) in stmt.items.iter().enumerate() {
            if let Some(states) = &item_states[idx] {
                let state = match g {
                    Some(g) => states[g].clone(),
                    None => {
                        let (func, _) = item.expr.first_aggregate().expect("aggregate item");
                        AggState::new(*func)
                    }
                };
                row.push(finish_aggregate_item(&item.expr, &state)?);
            } else {
                let pos = stmt
                    .group_by
                    .iter()
                    .position(|gb| gb == &item.expr)
                    .ok_or_else(|| {
                        TcuError::Analysis(format!(
                            "non-aggregate SELECT item '{}' is not in GROUP BY",
                            item.expr
                        ))
                    })?;
                row.push(key_values[g.expect("keyed groups have tuples")][pos].clone());
            }
        }
        rows.push(row);
        Ok(())
    };
    if groups == 0 && stmt.group_by.is_empty() {
        // Global aggregation over zero tuples still yields one row.
        emit_row(None)?;
    } else {
        for g in 0..groups {
            if g % FINALIZE_CHECK_CHUNK == 0 {
                opts.ctx.check()?;
            }
            emit_row(Some(g))?;
        }
    }

    // ORDER BY / LIMIT over per-group rows: the group count is small, so
    // the shared row sort is the right tool.
    if !stmt.order_by.is_empty() {
        let keys = order_key_indices(stmt, &col_names)?;
        rows.sort_by(|a, b| {
            for (idx, asc) in &keys {
                let ord = a[*idx].sql_cmp(&b[*idx]);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }
    if let Some(limit) = stmt.limit {
        rows.truncate(limit);
    }
    let table = table_from_rows("result", &col_names, rows)?;
    Ok((table, report))
}

/// Reduce one aggregate over the batch into per-group states.
fn reduce_aggregate(
    analyzed: &AnalyzedQuery,
    batch: &TupleBatch,
    func: AggFunc,
    arg: &Expr,
    gids: &GroupIds,
    opts: &FinalizeOptions,
    report: &mut FinalizeReport,
) -> TcuResult<Vec<AggState>> {
    let ids = gids.ids();
    let groups = gids.groups();
    let mut states = vec![AggState::new(func); groups];

    // COUNT(*) counts tuples regardless of the (literal) argument.
    if func == AggFunc::Count && matches!(arg, Expr::Literal(_)) {
        if gemm_reduce_feasible(&[], batch.len(), groups, opts) {
            let ones = vec![1.0f32; batch.len()];
            let (sums, stats) = grouped::grouped_sum_gemm(&ones, ids, groups, GemmPrecision::Fp32)?;
            for (state, s) in states.iter_mut().zip(&sums) {
                state.count = *s as u64;
            }
            report.gemm.push(stats);
            report.path = "grouped-gemm";
        } else {
            for &g in ids {
                states[g as usize].count += 1;
            }
        }
        return Ok(states);
    }

    let ctx = analyzed.row_context();

    // Typed MIN/MAX fast paths over plain columns (the input type — and
    // for text, the dictionary's sorted order — decides the winner).
    if matches!(func, AggFunc::Min | AggFunc::Max) {
        if let Some((ti, ci)) = simple_column(arg, &ctx) {
            let rows = batch.col(ti);
            match analyzed.tables[ti].table.column(ci) {
                Column::Int64(v) => {
                    let want = if func == AggFunc::Min {
                        Ordering::Less
                    } else {
                        Ordering::Greater
                    };
                    let mut best: Vec<Option<i64>> = vec![None; groups];
                    for (i, &g) in ids.iter().enumerate() {
                        let x = v[rows[i] as usize];
                        let slot = &mut best[g as usize];
                        if slot.is_none_or(|b| x.cmp(&b) == want) {
                            *slot = Some(x);
                        }
                    }
                    for (state, b) in states.iter_mut().zip(best) {
                        state.best = b.map(Value::Int);
                    }
                    return Ok(states);
                }
                Column::Text(_) => {
                    // One string comparison per distinct value: reduce over
                    // the dictionary's sorted-order ranks, then map the
                    // winning code back to its value.
                    let dict = analyzed.tables[ti].table.encoded_column(ci);
                    let ranks = dict.ordered_ranks();
                    let want = if func == AggFunc::Min {
                        Ordering::Less
                    } else {
                        Ordering::Greater
                    };
                    let mut best: Vec<Option<u32>> = vec![None; groups];
                    for (i, &g) in ids.iter().enumerate() {
                        let code = dict.codes()[rows[i] as usize];
                        let slot = &mut best[g as usize];
                        if slot.is_none_or(|b| ranks[code as usize].cmp(&ranks[b as usize]) == want)
                        {
                            *slot = Some(code);
                        }
                    }
                    for (state, b) in states.iter_mut().zip(best) {
                        state.best = b.map(|code| dict.value(code).clone());
                    }
                    return Ok(states);
                }
                Column::Float64(v) => {
                    for (i, &g) in ids.iter().enumerate() {
                        states[g as usize].update_f64(v[rows[i] as usize]);
                    }
                    return Ok(states);
                }
            }
        }
    }

    // Numeric argument expression → one flat f64 vector over the batch.
    if let Some(be) = batch_expr(arg, &ctx) {
        if func == AggFunc::Count {
            // COUNT(col): a non-NULL numeric argument contributes only its
            // presence — evaluate it solely for error parity with the
            // interpreter (division by zero), skipped when the expression
            // cannot fail, and reduce as an all-ones count.
            if batch_expr_can_fail(&be) {
                eval_batch_expr(&be, analyzed, batch)?;
            }
            if gemm_reduce_feasible(&[], batch.len(), groups, opts) {
                let ones = vec![1.0f32; batch.len()];
                let (sums, stats) =
                    grouped::grouped_sum_gemm(&ones, ids, groups, GemmPrecision::Fp32)?;
                for (state, s) in states.iter_mut().zip(&sums) {
                    state.count = *s as u64;
                }
                report.gemm.push(stats);
                report.path = "grouped-gemm";
            } else {
                for &g in ids {
                    states[g as usize].count += 1;
                }
            }
            return Ok(states);
        }
        let vals = eval_batch_expr(&be, analyzed, batch)?;
        if matches!(func, AggFunc::Sum | AggFunc::Avg)
            && gemm_reduce_feasible(&vals, batch.len(), groups, opts)
        {
            // §3.3: the per-group sums as one value-vector × one-hot GEMM
            // on the tensor engine.  The feasibility test guarantees f32
            // accumulation is exact, so the result is bit-identical to the
            // segmented f64 form.
            let vals32: Vec<f32> = vals.iter().map(|&v| v as f32).collect();
            let (sums, stats) =
                grouped::grouped_sum_gemm(&vals32, ids, groups, GemmPrecision::Fp32)?;
            for (state, s) in states.iter_mut().zip(&sums) {
                state.sum = *s as f64;
            }
            for &g in ids {
                states[g as usize].count += 1;
            }
            report.gemm.push(stats);
            report.path = "grouped-gemm";
        } else {
            for (i, &v) in vals.iter().enumerate() {
                states[ids[i] as usize].update_f64(v);
            }
        }
        return Ok(states);
    }

    // Interpreter fallback: evaluate the argument row by row (text
    // arguments, BETWEEN, comparisons …) and fold with full SQL
    // NULL-skipping semantics.
    let mut ctx = analyzed.row_context();
    let mut buf = vec![0usize; batch.num_slots()];
    for (i, &g) in ids.iter().enumerate() {
        batch.write_row(i, &mut buf);
        ctx.set_rows(&buf);
        let v = eval(arg, &ctx)?;
        states[g as usize].update(&v);
    }
    Ok(states)
}

/// Can evaluating this batch expression raise an error?  Only division
/// (by zero) can; columns, literals and `+ - *` are total over f64.
fn batch_expr_can_fail(expr: &BatchExpr) -> bool {
    match expr {
        BatchExpr::Column(..) | BatchExpr::Literal(_) => false,
        BatchExpr::Binary { left, op, right } => {
            *op == BinOp::Div || batch_expr_can_fail(left) || batch_expr_can_fail(right)
        }
    }
}

/// Can this reduction run as an exact f32 one-hot GEMM?  Requires the
/// group matrix (`rows × groups`) to fit the materialization budget and
/// every partial sum to be exactly representable in f32: integer values
/// with Σ|v| < 2²⁴ (pass an empty value slice for all-ones counting,
/// where the sum bound reduces to the row count).
fn gemm_reduce_feasible(vals: &[f64], rows: usize, groups: usize, opts: &FinalizeOptions) -> bool {
    const EXACT_BOUND: f64 = (1u64 << 24) as f64;
    if opts.gemm_limit == 0 || groups == 0 || rows == 0 {
        return false;
    }
    if rows.saturating_mul(groups) > opts.gemm_limit {
        return false;
    }
    if vals.is_empty() {
        return (rows as f64) < EXACT_BOUND;
    }
    let mut abs_sum = 0.0f64;
    for &v in vals {
        // NaN and infinities fail the fract test.
        if v.fract() != 0.0 {
            return false;
        }
        abs_sum += v.abs();
        if abs_sum >= EXACT_BOUND {
            return false;
        }
    }
    true
}

/// Evaluate a [`BatchExpr`] over every tuple of the batch into a flat f64
/// vector — the column-at-a-time mirror of `context::eval` /
/// `eval_binary` (which compute all arithmetic in f64).
fn eval_batch_expr(
    expr: &BatchExpr,
    analyzed: &AnalyzedQuery,
    batch: &TupleBatch,
) -> TcuResult<Vec<f64>> {
    match expr {
        BatchExpr::Column(ti, ci) => {
            let rows = batch.col(*ti);
            match analyzed.tables[*ti].table.column(*ci) {
                Column::Int64(v) => Ok(rows.iter().map(|&r| v[r as usize] as f64).collect()),
                Column::Float64(v) => Ok(rows.iter().map(|&r| v[r as usize]).collect()),
                Column::Text(_) => Err(TcuError::Execution(
                    "batch expression misclassified (text column); analyzer and kernels disagree"
                        .into(),
                )),
            }
        }
        BatchExpr::Literal(x) => Ok(vec![*x; batch.len()]),
        BatchExpr::Binary { left, op, right } => {
            let a = eval_batch_expr(left, analyzed, batch)?;
            let b = eval_batch_expr(right, analyzed, batch)?;
            let mut out = Vec::with_capacity(a.len());
            for (&x, &y) in a.iter().zip(&b) {
                out.push(match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => {
                        if y == 0.0 {
                            return Err(TcuError::Execution("division by zero".into()));
                        }
                        x / y
                    }
                    other => {
                        return Err(TcuError::Execution(format!(
                            "batch expression misclassified (operator {other})"
                        )))
                    }
                });
            }
            Ok(out)
        }
    }
}

/// Per-item data of the vectorized projection path.
enum ItemData<'a> {
    /// A plain base-table column gathered through the batch: the column
    /// and the batch's row-index column for its table.
    Gather(&'a Column, &'a [u32]),
    /// A numeric expression evaluated column-at-a-time (always `Float`).
    F64(Vec<f64>),
    /// Interpreter fallback, one `Value` per tuple.
    Values(Vec<Value>),
}

impl ItemData<'_> {
    /// Compare the item's values of tuples `a` and `b` with `sql_cmp`
    /// semantics (each variant holds a single value type, so the typed
    /// comparisons below are exactly what `sql_cmp` would do).
    fn cmp(&self, a: u32, b: u32) -> Ordering {
        match self {
            ItemData::Gather(col, rows) => {
                let (ra, rb) = (rows[a as usize] as usize, rows[b as usize] as usize);
                match col {
                    Column::Int64(v) => v[ra].cmp(&v[rb]),
                    Column::Float64(v) => v[ra].partial_cmp(&v[rb]).unwrap_or(Ordering::Equal),
                    Column::Text(v) => v[ra].cmp(&v[rb]),
                }
            }
            ItemData::F64(v) => v[a as usize]
                .partial_cmp(&v[b as usize])
                .unwrap_or(Ordering::Equal),
            ItemData::Values(v) => v[a as usize].sql_cmp(&v[b as usize]),
        }
    }
}

/// Plain projection (no aggregates) over a tuple batch: typed gathers,
/// sort-permutation ORDER BY and top-k selection under LIMIT.
fn finalize_projection(
    analyzed: &AnalyzedQuery,
    batch: &TupleBatch,
    qctx: &QueryContext,
    mut report: FinalizeReport,
) -> TcuResult<(Table, FinalizeReport)> {
    let stmt = &analyzed.stmt;
    let ctx = analyzed.row_context();
    let col_names: Vec<String> = stmt.items.iter().map(|i| i.output_name()).collect();
    report.path = "projection";

    // Classify and evaluate each SELECT item over the whole batch: one
    // cancellation probe per item (each evaluates over the full batch).
    let mut items: Vec<ItemData<'_>> = Vec::with_capacity(stmt.items.len());
    for item in &stmt.items {
        qctx.check()?;
        if let Some((ti, ci)) = simple_column(&item.expr, &ctx) {
            items.push(ItemData::Gather(
                analyzed.tables[ti].table.column(ci),
                batch.col(ti),
            ));
        } else if let Some(be) = batch_expr(&item.expr, &ctx) {
            items.push(ItemData::F64(eval_batch_expr(&be, analyzed, batch)?));
        } else {
            let mut row_ctx = analyzed.row_context();
            let mut buf = vec![0usize; batch.num_slots()];
            let mut vals = Vec::with_capacity(batch.len());
            for i in 0..batch.len() {
                batch.write_row(i, &mut buf);
                row_ctx.set_rows(&buf);
                vals.push(eval(&item.expr, &row_ctx)?);
            }
            items.push(ItemData::Values(vals));
        }
    }

    // ORDER BY as a sort permutation over tuple positions; under LIMIT a
    // top-k selection (total order via the position tiebreak, which makes
    // select-then-sort reproduce stable-sort-then-truncate exactly).
    let n = batch.len();
    let mut perm: Vec<u32> = (0..n as u32).collect();
    if !stmt.order_by.is_empty() {
        let keys = order_key_indices(stmt, &col_names)?;
        let key_cmp = |a: u32, b: u32| -> Ordering {
            for (idx, asc) in &keys {
                let ord = items[*idx].cmp(a, b);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        };
        match stmt.limit {
            Some(limit) if limit < n => {
                if limit == 0 {
                    perm.clear();
                } else {
                    let total = |a: &u32, b: &u32| key_cmp(*a, *b).then(a.cmp(b));
                    perm.select_nth_unstable_by(limit - 1, total);
                    perm.truncate(limit);
                    perm.sort_unstable_by(total);
                }
            }
            _ => perm.sort_by(|&a, &b| key_cmp(a, b)),
        }
    } else if let Some(limit) = stmt.limit {
        perm.truncate(limit);
    }

    // Zero output rows: defer to the shared row builder so the inferred
    // schema (all-INT64) matches the `Value` path exactly.
    if perm.is_empty() {
        let table = table_from_rows("result", &col_names, Vec::new())?;
        return Ok((table, report));
    }

    // Typed gather of the output columns through the (sorted, truncated)
    // permutation.
    let mut defs = Vec::with_capacity(items.len());
    let mut columns = Vec::with_capacity(items.len());
    for (name, data) in col_names.iter().zip(&items) {
        let col = match data {
            ItemData::Gather(col, rows) => {
                let idx: Vec<u32> = perm.iter().map(|&p| rows[p as usize]).collect();
                col.gather_u32(&idx)
            }
            ItemData::F64(vals) => {
                Column::Float64(perm.iter().map(|&p| vals[p as usize]).collect())
            }
            ItemData::Values(vals) => {
                column_from_inferred(perm.iter().map(|&p| vals[p as usize].clone()).collect())?
            }
        };
        defs.push(ColumnDef::new(name.clone(), col.data_type()));
        columns.push(col);
    }
    let table = Table::from_columns("result", Schema::new(defs), columns)?;
    Ok((table, report))
}

/// Fold a sequence of values with one aggregate's full SQL semantics —
/// NULL inputs are skipped (COUNT(col) does not count them; SUM/AVG over
/// zero non-NULL inputs yield NULL), MIN/MAX preserve the input value's
/// type and compare via `sql_cmp`.  This is the scalar oracle both the
/// row-at-a-time and the segmented/GEMM pipelines reduce to; exposed so
/// the oracle test-suite can drive it with NULL densities the SQL surface
/// (whose base columns are never NULL) cannot express.
pub fn aggregate_values(func: AggFunc, values: &[Value]) -> Value {
    let mut state = AggState::new(func);
    for v in values {
        state.update(v);
    }
    state.finish()
}

/// Build one column from `Value`s with exactly the type-inference and
/// NULL-coercion rules of [`table_from_rows`], applied to a single
/// column.
fn column_from_inferred(values: Vec<Value>) -> TcuResult<Column> {
    let mut ty = DataType::Int64;
    for v in &values {
        match v {
            Value::Text(_) => ty = DataType::Text,
            Value::Float(_) if ty == DataType::Int64 => ty = DataType::Float64,
            _ => {}
        }
    }
    let mut col = Column::with_capacity(ty, values.len());
    for v in values {
        let coerced = match (v, ty) {
            (Value::Int(x), DataType::Float64) => Value::Float(x as f64),
            (Value::Null, DataType::Float64) => Value::Float(f64::NAN),
            (Value::Null, DataType::Int64) => Value::Int(0),
            (Value::Null, DataType::Text) => Value::Text(String::new()),
            (v, _) => v,
        };
        col.push(coerced)?;
    }
    Ok(col)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use tcudb_sql::parse;
    use tcudb_storage::Catalog;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.register(
            Table::from_int_columns(
                "A",
                &[("id", vec![1, 1, 2, 3]), ("val", vec![10, 11, 20, 30])],
            )
            .unwrap(),
        );
        cat.register(
            Table::from_int_columns("B", &[("id", vec![1, 2, 2]), ("val", vec![5, 6, 7])]).unwrap(),
        );
        cat
    }

    #[test]
    fn hash_join_produces_all_pairs() {
        let left = Column::Int64(vec![1, 1, 2, 3]);
        let right = Column::Int64(vec![1, 2, 2]);
        let all_left: Vec<usize> = (0..4).collect();
        let all_right: Vec<usize> = (0..3).collect();
        let mut pairs = hash_join_pairs(&left, &all_left, &right, &all_right);
        pairs.sort();
        assert_eq!(pairs, vec![(0, 0), (1, 0), (2, 1), (2, 2)]);
        // Restricting rows restricts matches.
        let restricted = hash_join_pairs(&left, &[0], &right, &all_right);
        assert_eq!(restricted, vec![(0, 0)]);
    }

    #[test]
    fn nonequi_join_lt() {
        let left = Column::Int64(vec![1, 2]);
        let right = Column::Int64(vec![1, 2, 3]);
        let pairs = nonequi_join_pairs(&left, &[0, 1], &right, &[0, 1, 2], BinOp::Lt).unwrap();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 2)]);
        assert!(nonequi_join_pairs(&left, &[0], &right, &[0], BinOp::Add).is_err());
    }

    #[test]
    fn nonequi_sorted_paths_match_buffered_reference() {
        let li = Column::Int64(vec![3, 1, 4, 1, 5, 9, 2, 6]);
        let ri = Column::Int64(vec![5, 3, 5, 8, 9, 7, 9]);
        let lrows: Vec<usize> = vec![0, 2, 3, 5, 7];
        let rrows: Vec<usize> = vec![1, 0, 4, 6, 2];
        let lt = Column::Text(vec!["b".into(), "a".into(), "c".into(), "a".into()]);
        let rt = Column::Text(vec!["a".into(), "c".into(), "b".into()]);
        let lf = Column::Float64(vec![1.5, 2.0, -3.0, 2.0]);
        for op in [
            BinOp::Lt,
            BinOp::LtEq,
            BinOp::Gt,
            BinOp::GtEq,
            BinOp::Eq,
            BinOp::NotEq,
        ] {
            let got = nonequi_join_pairs(&li, &lrows, &ri, &rrows, op).unwrap();
            assert_eq!(got, nonequi_buffered(&li, &lrows, &ri, &rrows, op), "{op}");
            let got_t = nonequi_join_pairs(&lt, &[0, 1, 2, 3], &rt, &[2, 0, 1], op).unwrap();
            assert_eq!(
                got_t,
                nonequi_buffered(&lt, &[0, 1, 2, 3], &rt, &[2, 0, 1], op),
                "text {op}"
            );
            // Mixed numeric (float left, int right).
            let got_m = nonequi_join_pairs(&lf, &[0, 1, 2, 3], &ri, &rrows, op).unwrap();
            assert_eq!(
                got_m,
                nonequi_buffered(&lf, &[0, 1, 2, 3], &ri, &rrows, op),
                "mixed {op}"
            );
        }
        // NaNs force the buffered fallback; results still match.
        let nan = Column::Float64(vec![1.0, f64::NAN]);
        let got = nonequi_join_pairs(&nan, &[0, 1], &lf, &[0, 1, 2, 3], BinOp::LtEq).unwrap();
        assert_eq!(
            got,
            nonequi_buffered(&nan, &[0, 1], &lf, &[0, 1, 2, 3], BinOp::LtEq)
        );
    }

    #[test]
    fn code_join_matches_hash_join() {
        use crate::translate::Domain;
        use tcudb_storage::DictColumn;
        let left = Column::Int64(vec![1, 1, 2, 3, 7]);
        let right = Column::Int64(vec![1, 2, 2, 9]);
        let ld = DictColumn::build(&left);
        let rd = DictColumn::build(&right);
        // Both orientations, since build/probe side selection depends on
        // relative sizes and changes the output order.
        for (lr, rr) in [
            ((0..5).collect::<Vec<_>>(), (0..4).collect::<Vec<_>>()),
            (vec![0, 2], (0..4).collect()),
            (vec![], (0..4).collect()),
        ] {
            let lsrc = EncodedSource::subset(&ld, &lr);
            let rsrc = EncodedSource::subset(&rd, &rr);
            let (dom, maps) = Domain::build_encoded(&[lsrc, rsrc]);
            let got = join_pairs_by_code(&lsrc, &maps[0], &rsrc, &maps[1], dom.len());
            // hash_join_pairs over positions (gathered columns).
            let lcol = left.gather(&lr);
            let rcol = right.gather(&rr);
            let lpos: Vec<usize> = (0..lr.len()).collect();
            let rpos: Vec<usize> = (0..rr.len()).collect();
            let want = hash_join_pairs(&lcol, &lpos, &rcol, &rpos);
            assert_eq!(got, want, "lr={lr:?}");
        }
    }

    #[test]
    fn vectorized_filters_match_interpreter() {
        let mut cat = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("i", DataType::Int64),
            ("f", DataType::Float64),
            ("s", DataType::Text),
        ]);
        let t = Table::from_columns(
            "T",
            schema,
            vec![
                Column::Int64(vec![1, 2, 3, 4, 5]),
                Column::Float64(vec![1.5, 2.0, -1.0, 4.0, 5.5]),
                Column::Text(vec![
                    "a".into(),
                    "bb".into(),
                    "a".into(),
                    "cc".into(),
                    "bb".into(),
                ]),
            ],
        )
        .unwrap();
        cat.register(t);
        for sql in [
            "SELECT T.i FROM T WHERE T.i >= 2 AND T.i < 5",
            "SELECT T.i FROM T WHERE T.f > 1.5 AND T.s <> 'bb'",
            "SELECT T.i FROM T WHERE T.s = 'a' OR T.s = 'cc'", // OR → interpreter
            "SELECT T.i FROM T WHERE T.i BETWEEN 2 AND 4 AND T.f = 2",
            "SELECT T.i FROM T WHERE 3 < T.i",
            "SELECT T.i FROM T WHERE T.s >= 'bb'",
            "SELECT T.i FROM T WHERE T.i + 1 > 3 AND T.i <= 4", // mixed
            "SELECT T.i FROM T WHERE T.f = 2.5",
        ] {
            let q = analyze(&parse(sql).unwrap(), &cat).unwrap();
            let fast = apply_filters_with(&q, true).unwrap();
            let slow = apply_filters_with(&q, false).unwrap();
            assert_eq!(fast, slow, "{sql}");
        }
    }

    #[test]
    fn filters_reduce_row_sets() {
        let cat = catalog();
        let q = analyze(
            &parse("SELECT A.val FROM A, B WHERE A.id = B.id AND A.val >= 20 AND B.val = 6")
                .unwrap(),
            &cat,
        )
        .unwrap();
        let surviving = apply_filters(&q).unwrap();
        assert_eq!(surviving[0], vec![2, 3]);
        assert_eq!(surviving[1], vec![1]);
    }

    #[test]
    fn finalize_projection_and_order() {
        let cat = catalog();
        let q = analyze(
            &parse("SELECT A.val, B.val FROM A, B WHERE A.id = B.id ORDER BY A.val DESC").unwrap(),
            &cat,
        )
        .unwrap();
        // Matching tuples computed by hand: A rows {0,1} join B row 0; A row 2 joins B rows 1,2.
        let tuples = vec![vec![0, 0], vec![1, 0], vec![2, 1], vec![2, 2]];
        let out = finalize_output(&q, &tuples).unwrap();
        assert_eq!(out.num_rows(), 4);
        assert_eq!(out.row(0)[0], Value::Int(20));
        assert_eq!(out.schema().names(), vec!["val", "val"]);
    }

    #[test]
    fn finalize_group_by_aggregate() {
        let cat = catalog();
        let q = analyze(
            &parse("SELECT SUM(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val").unwrap(),
            &cat,
        )
        .unwrap();
        let tuples = vec![vec![0, 0], vec![1, 0], vec![2, 1], vec![2, 2]];
        let out = finalize_output(&q, &tuples).unwrap();
        assert_eq!(out.num_rows(), 3);
        // Group B.val=5 sums A.val 10+11=21.
        let sums = out.column_by_name("SUM(A.val)");
        assert!(sums.is_ok() || out.num_columns() == 2);
        assert_eq!(out.row(0)[0].as_f64().unwrap(), 21.0);
        assert_eq!(out.row(0)[1], Value::Int(5));
    }

    #[test]
    fn finalize_global_aggregate_and_count() {
        let cat = catalog();
        let q = analyze(
            &parse("SELECT SUM(A.val * B.val), COUNT(*) FROM A, B WHERE A.id = B.id").unwrap(),
            &cat,
        )
        .unwrap();
        let tuples = vec![vec![0, 0], vec![1, 0], vec![2, 1], vec![2, 2]];
        let out = finalize_output(&q, &tuples).unwrap();
        assert_eq!(out.num_rows(), 1);
        // 10*5 + 11*5 + 20*6 + 20*7 = 50+55+120+140 = 365
        assert_eq!(out.row(0)[0].as_f64().unwrap(), 365.0);
        assert_eq!(out.row(0)[1], Value::Int(4));
        // Zero tuples still produce one aggregate row.
        let empty = finalize_output(&q, &[]).unwrap();
        assert_eq!(empty.num_rows(), 1);
        assert_eq!(empty.row(0)[1], Value::Int(0));
    }

    #[test]
    fn finalize_avg_min_max() {
        let cat = catalog();
        let q = analyze(
            &parse("SELECT AVG(A.val), MIN(A.val), MAX(A.val) FROM A, B WHERE A.id = B.id")
                .unwrap(),
            &cat,
        )
        .unwrap();
        let tuples = vec![vec![0, 0], vec![2, 1]];
        let out = finalize_output(&q, &tuples).unwrap();
        assert_eq!(out.row(0)[0].as_f64().unwrap(), 15.0);
        assert_eq!(out.row(0)[1].as_f64().unwrap(), 10.0);
        assert_eq!(out.row(0)[2].as_f64().unwrap(), 20.0);
    }

    #[test]
    fn limit_and_residuals() {
        let cat = catalog();
        let q = analyze(
            &parse(
                "SELECT A.val, B.val FROM A, B WHERE A.id = B.id AND A.val + B.val > 20 LIMIT 1",
            )
            .unwrap(),
            &cat,
        )
        .unwrap();
        let tuples = vec![vec![0, 0], vec![1, 0], vec![2, 1], vec![2, 2]];
        let out = finalize_output(&q, &tuples).unwrap();
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn vectorized_filters_reorder_error_raising_predicates() {
        // Documented divergence: the atom `T.i = 5` masks out the i=0 row
        // before the division predicate runs, so the vectorized path
        // succeeds where the interpreter (which evaluates predicates in
        // textual order on every row) raises division by zero.
        let mut cat = Catalog::new();
        cat.register(
            Table::from_int_columns("T", &[("i", vec![0, 5]), ("v", vec![1, 2])]).unwrap(),
        );
        let q = analyze(
            &parse("SELECT T.v FROM T WHERE T.v / T.i > 0 AND T.i = 5").unwrap(),
            &cat,
        )
        .unwrap();
        assert!(apply_filters_with(&q, false).is_err());
        let fast = apply_filters_with(&q, true).unwrap();
        assert_eq!(fast, vec![vec![1]]);
    }

    /// Run both finalize paths over the same tuples and assert equality.
    fn both_paths(sql: &str, cat: &Catalog, tuples: &[Vec<usize>]) -> Table {
        let q = analyze(&parse(sql).unwrap(), cat).unwrap();
        let oracle = finalize_output(&q, tuples).unwrap();
        let batch = TupleBatch::from_tuples(tuples, q.tables.len()).unwrap();
        for opts in [
            FinalizeOptions::baseline(),
            FinalizeOptions::tensor(1 << 24),
        ] {
            let (got, report) = finalize_output_columnar(&q, &batch, &opts).unwrap();
            assert_eq!(got, oracle, "{sql} ({})", report.path);
        }
        oracle
    }

    #[test]
    fn columnar_finalize_matches_oracle_on_fixtures() {
        let cat = catalog();
        let tuples = vec![vec![0, 0], vec![1, 0], vec![2, 1], vec![2, 2]];
        for sql in [
            "SELECT A.val, B.val FROM A, B WHERE A.id = B.id ORDER BY A.val DESC",
            "SELECT SUM(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val",
            "SELECT SUM(A.val * B.val), COUNT(*) FROM A, B WHERE A.id = B.id",
            "SELECT AVG(A.val), MIN(A.val), MAX(A.val) FROM A, B WHERE A.id = B.id",
            "SELECT A.val, B.val FROM A, B WHERE A.id = B.id AND A.val + B.val > 20 LIMIT 1",
            "SELECT COUNT(B.val), B.id FROM A, B WHERE A.id = B.id GROUP BY B.id ORDER BY B.id LIMIT 2",
            "SELECT A.val + B.val, B.val FROM A, B WHERE A.id = B.id ORDER BY B.val LIMIT 3",
        ] {
            both_paths(sql, &cat, &tuples);
            both_paths(sql, &cat, &[]);
        }
    }

    #[test]
    fn columnar_gemm_aggregation_agrees_with_segmented() {
        // The §3.3 one-hot GEMM and the segmented form must produce the
        // same table bit for bit when the exactness test admits the GEMM.
        let cat = catalog();
        let sql =
            "SELECT SUM(A.val), COUNT(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val";
        let q = analyze(&parse(sql).unwrap(), &cat).unwrap();
        let tuples = vec![vec![0, 0], vec![1, 0], vec![2, 1], vec![2, 2], vec![3, 2]];
        let batch = TupleBatch::from_tuples(&tuples, 2).unwrap();
        let (seg, seg_rep) =
            finalize_output_columnar(&q, &batch, &FinalizeOptions::baseline()).unwrap();
        let (gemm, gemm_rep) =
            finalize_output_columnar(&q, &batch, &FinalizeOptions::tensor(1 << 24)).unwrap();
        assert_eq!(seg, gemm);
        assert!(seg_rep.gemm.is_empty());
        assert_eq!(gemm_rep.path, "grouped-gemm");
        // One GEMM per tensor-reduced aggregate (SUM and COUNT).
        assert_eq!(gemm_rep.gemm.len(), 2);
        assert_eq!(gemm_rep.groups, 3);
        assert_eq!(gemm_rep.agg_rows, 5);
    }

    #[test]
    fn aggregates_skip_nulls() {
        use AggFunc::*;
        let vals = [Value::Int(3), Value::Null, Value::Int(5), Value::Null];
        assert_eq!(aggregate_values(Count, &vals), Value::Int(2));
        assert_eq!(aggregate_values(Sum, &vals), Value::Float(8.0));
        assert_eq!(aggregate_values(Avg, &vals), Value::Float(4.0));
        // SUM/AVG over zero non-NULL inputs yield NULL, not 0.
        let all_null = [Value::Null, Value::Null];
        assert_eq!(aggregate_values(Sum, &all_null), Value::Null);
        assert_eq!(aggregate_values(Avg, &all_null), Value::Null);
        assert_eq!(aggregate_values(Count, &all_null), Value::Int(0));
        assert_eq!(aggregate_values(Min, &all_null), Value::Null);
        assert_eq!(aggregate_values(Sum, &[]), Value::Null);
    }

    #[test]
    fn min_max_preserve_input_type() {
        use AggFunc::*;
        let ints = [Value::Int(7), Value::Null, Value::Int(-2), Value::Int(7)];
        assert_eq!(aggregate_values(Min, &ints), Value::Int(-2));
        assert_eq!(aggregate_values(Max, &ints), Value::Int(7));
        let floats = [Value::Float(1.5), Value::Float(-0.5)];
        assert_eq!(aggregate_values(Min, &floats), Value::Float(-0.5));
        let texts = [
            Value::from("pear"),
            Value::from("apple"),
            Value::from("fig"),
        ];
        assert_eq!(aggregate_values(Min, &texts), Value::from("apple"));
        assert_eq!(aggregate_values(Max, &texts), Value::from("pear"));
        // Mixed Int/Float keeps whichever value actually won.
        let mixed = [Value::Int(3), Value::Float(2.5)];
        assert_eq!(aggregate_values(Min, &mixed), Value::Float(2.5));
        assert_eq!(aggregate_values(Max, &mixed), Value::Int(3));
    }

    #[test]
    fn min_max_over_text_column_through_both_paths() {
        let mut cat = Catalog::new();
        let schema = Schema::from_pairs(&[("id", DataType::Int64), ("tag", DataType::Text)]);
        cat.register(
            Table::from_columns(
                "T",
                schema,
                vec![
                    Column::Int64(vec![1, 1, 2, 2]),
                    Column::Text(vec![
                        "pear".into(),
                        "apple".into(),
                        "fig".into(),
                        "zed".into(),
                    ]),
                ],
            )
            .unwrap(),
        );
        cat.register(Table::from_int_columns("U", &[("id", vec![1, 2])]).unwrap());
        let out = both_paths(
            "SELECT MIN(T.tag), MAX(T.tag), U.id FROM T, U WHERE T.id = U.id GROUP BY U.id ORDER BY U.id",
            &cat,
            &[vec![0, 0], vec![1, 0], vec![2, 1], vec![3, 1]],
        );
        assert_eq!(out.row(0)[0], Value::from("apple"));
        assert_eq!(out.row(0)[1], Value::from("pear"));
        assert_eq!(out.row(1)[0], Value::from("fig"));
        assert_eq!(out.row(1)[1], Value::from("zed"));
        // The output columns stay TEXT, not coerced floats.
        assert_eq!(out.schema().column(0).data_type, DataType::Text);
    }

    #[test]
    fn table_from_rows_infers_types() {
        let rows = vec![
            vec![Value::Int(1), Value::Float(1.5), Value::from("a")],
            vec![Value::Int(2), Value::Int(3), Value::from("b")],
        ];
        let t = table_from_rows(
            "t",
            &["i".to_string(), "f".to_string(), "s".to_string()],
            rows,
        )
        .unwrap();
        assert_eq!(t.schema().column(0).data_type, DataType::Int64);
        assert_eq!(t.schema().column(1).data_type, DataType::Float64);
        assert_eq!(t.schema().column(2).data_type, DataType::Text);
        assert_eq!(t.row(1)[1], Value::Float(3.0));
    }
}
