//! Reference relational operators shared by every engine.
//!
//! These operators compute *what* a query returns; each engine charges its
//! own simulated cost for *how* it would have computed it (TCU GEMM,
//! GPU hash join, CPU hash join).  Keeping a single result path guarantees
//! that TCUDB, the YDB baseline and the CPU baseline always agree on
//! answers, which the integration tests assert.

use crate::analyzer::{vectorizable_atom, AnalyzedQuery, FilterAtom};
use crate::context::{eval, eval_predicate, RowContext};
use crate::translate::{EncodedSource, NO_INDEX};
use std::cmp::Ordering;
use std::collections::HashMap;
use tcudb_sql::{AggFunc, BinOp, Expr};
use tcudb_storage::{Column, ColumnDef, Schema, Table};
use tcudb_types::value::ValueKey;
use tcudb_types::{DataType, TcuError, TcuResult, Value};

/// Equality hash join over two key columns restricted to row subsets.
/// Returns pairs of *original* row indices `(left_row, right_row)`.
pub fn hash_join_pairs(
    left: &Column,
    left_rows: &[usize],
    right: &Column,
    right_rows: &[usize],
) -> Vec<(usize, usize)> {
    // Build on the smaller side.
    if right_rows.len() < left_rows.len() {
        return hash_join_pairs(right, right_rows, left, left_rows)
            .into_iter()
            .map(|(r, l)| (l, r))
            .collect();
    }
    let mut table: HashMap<ValueKey, Vec<usize>> = HashMap::with_capacity(left_rows.len());
    for &r in left_rows {
        table.entry(left.value(r).group_key()).or_default().push(r);
    }
    let mut out = Vec::new();
    for &r in right_rows {
        if let Some(matches) = table.get(&right.value(r).group_key()) {
            for &l in matches {
                out.push((l, r));
            }
        }
    }
    out
}

/// Equality join on dictionary codes remapped into a shared domain: the
/// encoded counterpart of [`hash_join_pairs`].  Build and probe work on
/// array-indexed buckets over domain indices — no `ValueKey` hashing, no
/// `Value` materialisation.  Returns pairs of *positions* within the two
/// selected sequences, in the same order [`hash_join_pairs`] produces for
/// the same sides (build on the smaller side, probe the larger).
pub fn join_pairs_by_code(
    left: &EncodedSource<'_>,
    left_remap: &[u32],
    right: &EncodedSource<'_>,
    right_remap: &[u32],
    domain_len: usize,
) -> Vec<(usize, usize)> {
    if right.len() < left.len() {
        return join_pairs_by_code(right, right_remap, left, left_remap, domain_len)
            .into_iter()
            .map(|(r, l)| (l, r))
            .collect();
    }
    // Counting-sort layout: one flat pass to count, one to fill, so the
    // bucket table is two dense arrays rather than a Vec-of-Vecs.
    let m = left.len();
    let mut counts = vec![0u32; domain_len + 1];
    for pos in 0..m {
        let di = left_remap[left.code_at(pos) as usize];
        if di != NO_INDEX {
            counts[di as usize + 1] += 1;
        }
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    let mut slots = vec![0u32; m];
    let mut cursor = counts.clone();
    for pos in 0..m {
        let di = left_remap[left.code_at(pos) as usize];
        if di != NO_INDEX {
            slots[cursor[di as usize] as usize] = pos as u32;
            cursor[di as usize] += 1;
        }
    }
    let mut out = Vec::new();
    for rpos in 0..right.len() {
        let di = right_remap[right.code_at(rpos) as usize];
        if di == NO_INDEX {
            continue;
        }
        let (start, end) = (
            counts[di as usize] as usize,
            counts[di as usize + 1] as usize,
        );
        for &lpos in &slots[start..end] {
            out.push((lpos as usize, rpos));
        }
    }
    out
}

/// Non-equi join over two key columns restricted to row subsets, for the
/// comparison operators of §3.4.  Each side's keys are extracted **once**
/// into a typed buffer; on sortable keys (integer, non-NaN float, text)
/// the ordering operators run as sort + `partition_point` instead of an
/// O(n·m) comparison sweep.  Output order matches the reference nested
/// loop exactly (left-major, right in `right_rows` order).
pub fn nonequi_join_pairs(
    left: &Column,
    left_rows: &[usize],
    right: &Column,
    right_rows: &[usize],
    op: BinOp,
) -> TcuResult<Vec<(usize, usize)>> {
    if !op.is_comparison() {
        return Err(TcuError::Plan(format!("{op} is not a join comparison")));
    }
    match (left, right) {
        // Exact integer keys: every operator (incl. Eq/NotEq, which the
        // interpreter compares as exact i64) can use the sorted path.
        (Column::Int64(lv), Column::Int64(rv)) => {
            let lk: Vec<i64> = left_rows.iter().map(|&r| lv[r]).collect();
            let rk: Vec<i64> = right_rows.iter().map(|&r| rv[r]).collect();
            Ok(nonequi_sorted(&lk, left_rows, &rk, right_rows, op))
        }
        (Column::Text(lv), Column::Text(rv)) => {
            let lk: Vec<&str> = left_rows.iter().map(|&r| lv[r].as_str()).collect();
            let rk: Vec<&str> = right_rows.iter().map(|&r| rv[r].as_str()).collect();
            Ok(nonequi_sorted(&lk, left_rows, &rk, right_rows, op))
        }
        (l, r) if l.data_type().is_numeric() && r.data_type().is_numeric() => {
            let lk: Vec<f64> = left_rows.iter().map(|&i| l.numeric(i).unwrap()).collect();
            let rk: Vec<f64> = right_rows.iter().map(|&i| r.numeric(i).unwrap()).collect();
            // Mixed-numeric Eq/NotEq follow `group_key` (exact i64 for
            // integral values) rather than f64 equality, and NaNs break
            // the sort's total order — both fall back to the buffered
            // `Value` sweep.
            let nan = lk.iter().chain(&rk).any(|x| x.is_nan());
            if !nan && !matches!(op, BinOp::Eq | BinOp::NotEq) {
                Ok(nonequi_sorted(&lk, left_rows, &rk, right_rows, op))
            } else {
                Ok(nonequi_buffered(left, left_rows, right, right_rows, op))
            }
        }
        // Cross-type text/numeric comparisons keep the reference `Value`
        // semantics through the buffered sweep.
        _ => Ok(nonequi_buffered(left, left_rows, right, right_rows, op)),
    }
}

/// Reference non-equi sweep with each side's `Value`s materialised once.
fn nonequi_buffered(
    left: &Column,
    left_rows: &[usize],
    right: &Column,
    right_rows: &[usize],
    op: BinOp,
) -> Vec<(usize, usize)> {
    let lvals: Vec<Value> = left_rows.iter().map(|&r| left.value(r)).collect();
    let rvals: Vec<Value> = right_rows.iter().map(|&r| right.value(r)).collect();
    let mut out = Vec::new();
    for (li, lv) in lvals.iter().enumerate() {
        for (rj, rv) in rvals.iter().enumerate() {
            let ord = lv.sql_cmp(rv);
            let hit = match op {
                BinOp::Eq => lv.sql_eq(rv),
                BinOp::NotEq => !lv.is_null() && !rv.is_null() && !lv.sql_eq(rv),
                BinOp::Lt => ord == Ordering::Less,
                BinOp::LtEq => ord != Ordering::Greater,
                BinOp::Gt => ord == Ordering::Greater,
                BinOp::GtEq => ord != Ordering::Less,
                _ => unreachable!(),
            };
            if hit {
                out.push((left_rows[li], right_rows[rj]));
            }
        }
    }
    out
}

/// Sorted-probe non-equi join: sort the right keys once, then locate each
/// left key's matching range with `partition_point`.  `left_keys[i]`
/// corresponds to `left_rows[i]` (likewise for the right side).
fn nonequi_sorted<T: PartialOrd>(
    left_keys: &[T],
    left_rows: &[usize],
    right_keys: &[T],
    right_rows: &[usize],
    op: BinOp,
) -> Vec<(usize, usize)> {
    // Stable sort of right *positions* by key: equal keys keep their
    // probe-order, which the per-range position sort below relies on.
    let mut order: Vec<u32> = (0..right_keys.len() as u32).collect();
    order.sort_by(|&a, &b| {
        right_keys[a as usize]
            .partial_cmp(&right_keys[b as usize])
            .unwrap_or(Ordering::Equal)
    });
    let below = |k: &T| {
        order.partition_point(|&p| right_keys[p as usize].partial_cmp(k) == Some(Ordering::Less))
    };
    let through = |k: &T| {
        order.partition_point(|&p| {
            matches!(
                right_keys[p as usize].partial_cmp(k),
                Some(Ordering::Less) | Some(Ordering::Equal)
            )
        })
    };
    let n = order.len();
    let mut out = Vec::new();
    let mut positions: Vec<u32> = Vec::new();
    for (li, k) in left_keys.iter().enumerate() {
        // The matching right keys form one or two contiguous ranges of the
        // sorted order.
        let (a, b) = match op {
            BinOp::Lt => (through(k), n),
            BinOp::LtEq => (below(k), n),
            BinOp::Gt => (0, below(k)),
            BinOp::GtEq => (0, through(k)),
            BinOp::Eq => (below(k), through(k)),
            BinOp::NotEq => {
                // The complement of the equal range is nearly everything;
                // a direct scan (already in right_rows order) beats
                // copying and re-sorting n positions per left key.
                for (rpos, rk) in right_keys.iter().enumerate() {
                    if rk != k {
                        out.push((left_rows[li], right_rows[rpos]));
                    }
                }
                continue;
            }
            _ => unreachable!("caller validated the comparison"),
        };
        positions.clear();
        positions.extend_from_slice(&order[a..b]);
        // Emit in original right_rows order, as the nested loop does.
        positions.sort_unstable();
        for &p in &positions {
            out.push((left_rows[li], right_rows[p as usize]));
        }
    }
    out
}

/// Evaluate the single-table filters of an analyzed query, returning the
/// surviving row indices per table.
///
/// This is the *reference* path (row-at-a-time interpreter, textual
/// predicate order) shared by the baseline engines; the TCUDB executor
/// opts into the vectorized kernels through [`apply_filters_with`].
pub fn apply_filters(analyzed: &AnalyzedQuery) -> TcuResult<Vec<Vec<usize>>> {
    apply_filters_with(analyzed, false)
}

/// [`apply_filters`] with the vectorized path switchable, so harnesses
/// and the oracle tests can compare both.
///
/// When `vectorized`, predicates the analyzer classifies as
/// [`FilterAtom`]s run as tight typed loops over the column data (text
/// equality/ordering goes through the cached dictionary codes), producing
/// a selection mask; only rows surviving the mask reach the expression
/// interpreter for the remaining complex predicates.  Note the atoms are
/// therefore evaluated *first* — a row rejected by an atom can no longer
/// raise an evaluation error (e.g. division by zero) from a complex
/// predicate that textually precedes it.
pub fn apply_filters_with(
    analyzed: &AnalyzedQuery,
    vectorized: bool,
) -> TcuResult<Vec<Vec<usize>>> {
    let mut ctx = analyzed.row_context();
    let mut surviving = Vec::with_capacity(analyzed.tables.len());
    for (ti, bound) in analyzed.tables.iter().enumerate() {
        let filters = analyzed.filters_for_table(ti);
        let nrows = bound.table.num_rows();
        if filters.is_empty() {
            surviving.push((0..nrows).collect());
            continue;
        }
        let mut atoms = Vec::new();
        let mut complex = Vec::new();
        if vectorized {
            for f in &filters {
                match vectorizable_atom(f, &ctx, ti) {
                    Some(a) => atoms.push(a),
                    None => complex.push(*f),
                }
            }
        } else {
            complex.extend(filters.iter().copied());
        }

        let mut keep = Vec::new();
        if atoms.is_empty() {
            'rows: for r in 0..nrows {
                ctx.set_row(ti, r);
                for f in &complex {
                    if !eval_predicate(f, &ctx)? {
                        continue 'rows;
                    }
                }
                keep.push(r);
            }
        } else {
            let mut mask = vec![true; nrows];
            for atom in &atoms {
                apply_filter_atom(&bound.table, atom, &mut mask)?;
            }
            'masked: for (r, ok) in mask.iter().enumerate() {
                if !*ok {
                    continue;
                }
                if !complex.is_empty() {
                    ctx.set_row(ti, r);
                    for f in &complex {
                        if !eval_predicate(f, &ctx)? {
                            continue 'masked;
                        }
                    }
                }
                keep.push(r);
            }
        }
        surviving.push(keep);
    }
    Ok(surviving)
}

/// AND one vectorizable predicate into the selection mask with a typed
/// columnar loop.  Every branch reproduces the corresponding
/// `eval_predicate` result bit for bit (including the
/// `partial_cmp(..).unwrap_or(Equal)` NaN behaviour of `sql_cmp`, hence
/// the negated comparisons for `LtEq`/`GtEq` — `!(a > b)` is *not* the
/// same as `a <= b` on NaN, and the interpreter implements the former).
#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn apply_filter_atom(table: &Table, atom: &FilterAtom, mask: &mut [bool]) -> TcuResult<()> {
    fn mask_by<T: Copy>(mask: &mut [bool], data: &[T], pred: impl Fn(T) -> bool) {
        for (m, &x) in mask.iter_mut().zip(data) {
            *m = *m && pred(x);
        }
    }
    let internal = |what: &str| {
        TcuError::Execution(format!(
            "filter atom misclassified ({what}); analyzer and kernels disagree"
        ))
    };
    match atom {
        FilterAtom::Between { col, low, high } => {
            let (lo, hi) = (*low, *high);
            match table.column(*col) {
                Column::Int64(v) => mask_by(mask, v, |x| {
                    let x = x as f64;
                    x >= lo && x <= hi
                }),
                Column::Float64(v) => mask_by(mask, v, |x| x >= lo && x <= hi),
                Column::Text(_) => return Err(internal("BETWEEN over text")),
            }
        }
        FilterAtom::Cmp { col, op, lit } => {
            let op = *op;
            match (table.column(*col), lit) {
                (Column::Int64(v), Value::Int(x)) => {
                    let x = *x;
                    match op {
                        BinOp::Eq => mask_by(mask, v, |a| a == x),
                        BinOp::NotEq => mask_by(mask, v, |a| a != x),
                        BinOp::Lt => mask_by(mask, v, |a| a < x),
                        BinOp::LtEq => mask_by(mask, v, |a| a <= x),
                        BinOp::Gt => mask_by(mask, v, |a| a > x),
                        BinOp::GtEq => mask_by(mask, v, |a| a >= x),
                        _ => return Err(internal("non-comparison op")),
                    }
                }
                (Column::Int64(v), Value::Float(f)) => {
                    let f = *f;
                    match op {
                        // Int-vs-Float equality follows group_key: only an
                        // integral literal can ever match.
                        BinOp::Eq | BinOp::NotEq => {
                            let want_eq = op == BinOp::Eq;
                            match ValueKey::from_f64(f) {
                                ValueKey::Int(x) => mask_by(mask, v, |a| (a == x) == want_eq),
                                _ => mask_by(mask, v, |_| !want_eq),
                            }
                        }
                        BinOp::Lt => mask_by(mask, v, |a| (a as f64) < f),
                        BinOp::LtEq => mask_by(mask, v, |a| !((a as f64) > f)),
                        BinOp::Gt => mask_by(mask, v, |a| (a as f64) > f),
                        BinOp::GtEq => mask_by(mask, v, |a| !((a as f64) < f)),
                        _ => return Err(internal("non-comparison op")),
                    }
                }
                (Column::Float64(v), lit @ (Value::Int(_) | Value::Float(_))) => {
                    let litf = lit.as_f64().expect("numeric literal");
                    match op {
                        BinOp::Eq | BinOp::NotEq => {
                            let want_eq = op == BinOp::Eq;
                            // group_key: the one normalisation both paths
                            // share (ValueKey::from_f64).
                            let key = lit.group_key();
                            mask_by(mask, v, |a| (ValueKey::from_f64(a) == key) == want_eq);
                        }
                        BinOp::Lt => mask_by(mask, v, |a| a < litf),
                        BinOp::LtEq => mask_by(mask, v, |a| !(a > litf)),
                        BinOp::Gt => mask_by(mask, v, |a| a > litf),
                        BinOp::GtEq => mask_by(mask, v, |a| !(a < litf)),
                        _ => return Err(internal("non-comparison op")),
                    }
                }
                (Column::Text(_), Value::Text(s)) => {
                    let dict = table.encoded_column(*col);
                    let codes = dict.codes();
                    match op {
                        BinOp::Eq | BinOp::NotEq => {
                            let want_eq = op == BinOp::Eq;
                            match dict.code_of(&Value::Text(s.clone())) {
                                Some(t) => mask_by(mask, codes, |c| (c == t) == want_eq),
                                None => mask_by(mask, codes, |_| !want_eq),
                            }
                        }
                        BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                            // One string comparison per *distinct* value.
                            let lut: Vec<bool> = dict
                                .values()
                                .iter()
                                .map(|v| {
                                    let ord = v.as_str().expect("text dict").cmp(s.as_str());
                                    match op {
                                        BinOp::Lt => ord == Ordering::Less,
                                        BinOp::LtEq => ord != Ordering::Greater,
                                        BinOp::Gt => ord == Ordering::Greater,
                                        _ => ord != Ordering::Less,
                                    }
                                })
                                .collect();
                            mask_by(mask, codes, |c| lut[c as usize]);
                        }
                        _ => return Err(internal("non-comparison op")),
                    }
                }
                _ => return Err(internal("column/literal type mismatch")),
            }
        }
    }
    Ok(())
}

/// One accumulating aggregate state.
#[derive(Debug, Clone)]
struct AggState {
    func: AggFunc,
    sum: f64,
    count: u64,
    min: Option<f64>,
    max: Option<f64>,
}

impl AggState {
    fn new(func: AggFunc) -> AggState {
        AggState {
            func,
            sum: 0.0,
            count: 0,
            min: None,
            max: None,
        }
    }

    /// Fold one value in, touching only the accumulators `finish` will
    /// read for this aggregate (COUNT/SUM skip the min/max branches
    /// entirely).
    fn update(&mut self, v: f64) {
        match self.func {
            AggFunc::Count => self.count += 1,
            AggFunc::Sum => self.sum += v,
            AggFunc::Avg => {
                self.sum += v;
                self.count += 1;
            }
            AggFunc::Min => self.min = Some(self.min.map_or(v, |m| m.min(v))),
            AggFunc::Max => self.max = Some(self.max.map_or(v, |m| m.max(v))),
        }
    }

    fn finish(&self) -> Value {
        match self.func {
            AggFunc::Sum => Value::Float(self.sum),
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.map(Value::Float).unwrap_or(Value::Null),
            AggFunc::Max => self.max.map(Value::Float).unwrap_or(Value::Null),
        }
    }
}

/// Materialise the final output table of a query from the joined row
/// tuples (one row index per bound table, in table order).
///
/// Handles residual predicates, projection, grouped and ungrouped
/// aggregation, ORDER BY and LIMIT.
pub fn finalize_output(analyzed: &AnalyzedQuery, tuples: &[Vec<usize>]) -> TcuResult<Table> {
    let mut ctx = analyzed.row_context();
    let stmt = &analyzed.stmt;
    let col_names: Vec<String> = stmt.items.iter().map(|i| i.output_name()).collect();

    let mut rows: Vec<Vec<Value>> = Vec::new();

    if stmt.has_aggregates() || !stmt.group_by.is_empty() {
        // Grouped (or global) aggregation.
        #[allow(clippy::type_complexity)]
        let mut groups: HashMap<Vec<ValueKey>, (Vec<Value>, Vec<AggState>)> = HashMap::new();
        let mut group_order: Vec<Vec<ValueKey>> = Vec::new();

        for tuple in tuples {
            ctx.set_rows(tuple);
            if !residuals_pass(analyzed, &ctx)? {
                continue;
            }
            let mut key_vals = Vec::with_capacity(stmt.group_by.len());
            let mut key = Vec::with_capacity(stmt.group_by.len());
            for g in &stmt.group_by {
                let v = eval(g, &ctx)?;
                key.push(v.group_key());
                key_vals.push(v);
            }
            let entry = groups.entry(key.clone()).or_insert_with(|| {
                group_order.push(key.clone());
                let states = stmt
                    .items
                    .iter()
                    .map(|item| {
                        item.expr
                            .first_aggregate()
                            .map(|(f, _)| AggState::new(*f))
                            .unwrap_or_else(|| AggState::new(AggFunc::Count))
                    })
                    .collect();
                (key_vals.clone(), states)
            });
            for (item, state) in stmt.items.iter().zip(entry.1.iter_mut()) {
                if let Some((func, arg)) = item.expr.first_aggregate() {
                    let v = match (func, arg) {
                        // COUNT(*) counts rows regardless of the argument.
                        (AggFunc::Count, Expr::Literal(_)) => 1.0,
                        _ => eval(arg, &ctx)?.as_f64().unwrap_or(0.0),
                    };
                    state.update(v);
                }
            }
        }

        // Global aggregation over zero groups still yields one row.
        if stmt.group_by.is_empty() && groups.is_empty() {
            let states: Vec<AggState> = stmt
                .items
                .iter()
                .map(|item| {
                    item.expr
                        .first_aggregate()
                        .map(|(f, _)| AggState::new(*f))
                        .unwrap_or_else(|| AggState::new(AggFunc::Count))
                })
                .collect();
            groups.insert(Vec::new(), (Vec::new(), states));
            group_order.push(Vec::new());
        }

        for key in &group_order {
            let (key_vals, states) = &groups[key];
            let mut row = Vec::with_capacity(stmt.items.len());
            for (idx, item) in stmt.items.iter().enumerate() {
                if item.expr.contains_aggregate() {
                    row.push(finish_aggregate_item(&item.expr, &states[idx])?);
                } else {
                    // Non-aggregate item must be a group key: find it.
                    let pos = stmt
                        .group_by
                        .iter()
                        .position(|g| g == &item.expr)
                        .ok_or_else(|| {
                            TcuError::Analysis(format!(
                                "non-aggregate SELECT item '{}' is not in GROUP BY",
                                item.expr
                            ))
                        })?;
                    row.push(key_vals[pos].clone());
                }
            }
            rows.push(row);
        }
    } else {
        // Plain projection.
        for tuple in tuples {
            ctx.set_rows(tuple);
            if !residuals_pass(analyzed, &ctx)? {
                continue;
            }
            let mut row = Vec::with_capacity(stmt.items.len());
            for item in &stmt.items {
                row.push(eval(&item.expr, &ctx)?);
            }
            rows.push(row);
        }
    }

    // ORDER BY against output columns.
    if !stmt.order_by.is_empty() {
        let mut keys: Vec<(usize, bool)> = Vec::new();
        for ob in &stmt.order_by {
            let name = match &ob.expr {
                Expr::Column(c) => c.column.clone(),
                other => other.to_string(),
            };
            let idx = col_names
                .iter()
                .position(|n| n.eq_ignore_ascii_case(&name))
                .or_else(|| {
                    // Fall back to matching the rendered expression of each
                    // SELECT item (e.g. ORDER BY d_year when the item has no
                    // alias).
                    stmt.items.iter().position(|i| i.expr == ob.expr)
                })
                .ok_or_else(|| {
                    TcuError::Analysis(format!("ORDER BY key '{}' is not in the SELECT list", name))
                })?;
            keys.push((idx, ob.ascending));
        }
        rows.sort_by(|a, b| {
            for (idx, asc) in &keys {
                let ord = a[*idx].sql_cmp(&b[*idx]);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    if let Some(limit) = stmt.limit {
        rows.truncate(limit);
    }

    table_from_rows("result", &col_names, rows)
}

/// Apply the residual (multi-table, non-join) predicates to the current row.
fn residuals_pass(analyzed: &AnalyzedQuery, ctx: &RowContext) -> TcuResult<bool> {
    for pred in &analyzed.residual {
        if !eval_predicate(pred, ctx)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// When the SELECT item is an expression *around* an aggregate
/// (e.g. `SUM(x) / 100`), evaluate the surrounding arithmetic with the
/// aggregate replaced by its final value.
fn finish_aggregate_item(expr: &Expr, state: &AggState) -> TcuResult<Value> {
    fn substitute(expr: &Expr, agg_value: &Value) -> TcuResult<Value> {
        match expr {
            Expr::Aggregate { .. } => Ok(agg_value.clone()),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Column(c) => Err(TcuError::Analysis(format!(
                "column '{c}' mixed with aggregates must appear in GROUP BY"
            ))),
            Expr::Binary { left, op, right } => {
                let l = substitute(left, agg_value)?;
                let r = substitute(right, agg_value)?;
                crate::context::eval_binary(&l, *op, &r)
            }
            Expr::Between { .. } => Err(TcuError::Analysis(
                "BETWEEN is not valid in an aggregate SELECT item".into(),
            )),
        }
    }
    substitute(expr, &state.finish())
}

/// Build a table from value rows, inferring each column's type.
pub fn table_from_rows(
    name: &str,
    col_names: &[String],
    rows: Vec<Vec<Value>>,
) -> TcuResult<Table> {
    let ncols = col_names.len();
    let mut types = vec![DataType::Int64; ncols];
    for row in &rows {
        for (c, v) in row.iter().enumerate() {
            match v {
                Value::Text(_) => types[c] = DataType::Text,
                Value::Float(_) if types[c] == DataType::Int64 => types[c] = DataType::Float64,
                _ => {}
            }
        }
    }
    let schema = Schema::new(
        col_names
            .iter()
            .zip(&types)
            .map(|(n, t)| ColumnDef::new(n.clone(), *t))
            .collect(),
    );
    let mut table = Table::new(name, schema);
    for row in rows {
        let coerced: Vec<Value> = row
            .into_iter()
            .zip(&types)
            .map(|(v, t)| match (v, t) {
                (Value::Int(x), DataType::Float64) => Value::Float(x as f64),
                (Value::Null, DataType::Float64) => Value::Float(f64::NAN),
                (Value::Null, DataType::Int64) => Value::Int(0),
                (Value::Null, DataType::Text) => Value::Text(String::new()),
                (v, _) => v,
            })
            .collect();
        table.push_row(coerced)?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use tcudb_sql::parse;
    use tcudb_storage::Catalog;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.register(
            Table::from_int_columns(
                "A",
                &[("id", vec![1, 1, 2, 3]), ("val", vec![10, 11, 20, 30])],
            )
            .unwrap(),
        );
        cat.register(
            Table::from_int_columns("B", &[("id", vec![1, 2, 2]), ("val", vec![5, 6, 7])]).unwrap(),
        );
        cat
    }

    #[test]
    fn hash_join_produces_all_pairs() {
        let left = Column::Int64(vec![1, 1, 2, 3]);
        let right = Column::Int64(vec![1, 2, 2]);
        let all_left: Vec<usize> = (0..4).collect();
        let all_right: Vec<usize> = (0..3).collect();
        let mut pairs = hash_join_pairs(&left, &all_left, &right, &all_right);
        pairs.sort();
        assert_eq!(pairs, vec![(0, 0), (1, 0), (2, 1), (2, 2)]);
        // Restricting rows restricts matches.
        let restricted = hash_join_pairs(&left, &[0], &right, &all_right);
        assert_eq!(restricted, vec![(0, 0)]);
    }

    #[test]
    fn nonequi_join_lt() {
        let left = Column::Int64(vec![1, 2]);
        let right = Column::Int64(vec![1, 2, 3]);
        let pairs = nonequi_join_pairs(&left, &[0, 1], &right, &[0, 1, 2], BinOp::Lt).unwrap();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 2)]);
        assert!(nonequi_join_pairs(&left, &[0], &right, &[0], BinOp::Add).is_err());
    }

    #[test]
    fn nonequi_sorted_paths_match_buffered_reference() {
        let li = Column::Int64(vec![3, 1, 4, 1, 5, 9, 2, 6]);
        let ri = Column::Int64(vec![5, 3, 5, 8, 9, 7, 9]);
        let lrows: Vec<usize> = vec![0, 2, 3, 5, 7];
        let rrows: Vec<usize> = vec![1, 0, 4, 6, 2];
        let lt = Column::Text(vec!["b".into(), "a".into(), "c".into(), "a".into()]);
        let rt = Column::Text(vec!["a".into(), "c".into(), "b".into()]);
        let lf = Column::Float64(vec![1.5, 2.0, -3.0, 2.0]);
        for op in [
            BinOp::Lt,
            BinOp::LtEq,
            BinOp::Gt,
            BinOp::GtEq,
            BinOp::Eq,
            BinOp::NotEq,
        ] {
            let got = nonequi_join_pairs(&li, &lrows, &ri, &rrows, op).unwrap();
            assert_eq!(got, nonequi_buffered(&li, &lrows, &ri, &rrows, op), "{op}");
            let got_t = nonequi_join_pairs(&lt, &[0, 1, 2, 3], &rt, &[2, 0, 1], op).unwrap();
            assert_eq!(
                got_t,
                nonequi_buffered(&lt, &[0, 1, 2, 3], &rt, &[2, 0, 1], op),
                "text {op}"
            );
            // Mixed numeric (float left, int right).
            let got_m = nonequi_join_pairs(&lf, &[0, 1, 2, 3], &ri, &rrows, op).unwrap();
            assert_eq!(
                got_m,
                nonequi_buffered(&lf, &[0, 1, 2, 3], &ri, &rrows, op),
                "mixed {op}"
            );
        }
        // NaNs force the buffered fallback; results still match.
        let nan = Column::Float64(vec![1.0, f64::NAN]);
        let got = nonequi_join_pairs(&nan, &[0, 1], &lf, &[0, 1, 2, 3], BinOp::LtEq).unwrap();
        assert_eq!(
            got,
            nonequi_buffered(&nan, &[0, 1], &lf, &[0, 1, 2, 3], BinOp::LtEq)
        );
    }

    #[test]
    fn code_join_matches_hash_join() {
        use crate::translate::Domain;
        use tcudb_storage::DictColumn;
        let left = Column::Int64(vec![1, 1, 2, 3, 7]);
        let right = Column::Int64(vec![1, 2, 2, 9]);
        let ld = DictColumn::build(&left);
        let rd = DictColumn::build(&right);
        // Both orientations, since build/probe side selection depends on
        // relative sizes and changes the output order.
        for (lr, rr) in [
            ((0..5).collect::<Vec<_>>(), (0..4).collect::<Vec<_>>()),
            (vec![0, 2], (0..4).collect()),
            (vec![], (0..4).collect()),
        ] {
            let lsrc = EncodedSource::subset(&ld, &lr);
            let rsrc = EncodedSource::subset(&rd, &rr);
            let (dom, maps) = Domain::build_encoded(&[lsrc, rsrc]);
            let got = join_pairs_by_code(&lsrc, &maps[0], &rsrc, &maps[1], dom.len());
            // hash_join_pairs over positions (gathered columns).
            let lcol = left.gather(&lr);
            let rcol = right.gather(&rr);
            let lpos: Vec<usize> = (0..lr.len()).collect();
            let rpos: Vec<usize> = (0..rr.len()).collect();
            let want = hash_join_pairs(&lcol, &lpos, &rcol, &rpos);
            assert_eq!(got, want, "lr={lr:?}");
        }
    }

    #[test]
    fn vectorized_filters_match_interpreter() {
        let mut cat = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("i", DataType::Int64),
            ("f", DataType::Float64),
            ("s", DataType::Text),
        ]);
        let t = Table::from_columns(
            "T",
            schema,
            vec![
                Column::Int64(vec![1, 2, 3, 4, 5]),
                Column::Float64(vec![1.5, 2.0, -1.0, 4.0, 5.5]),
                Column::Text(vec![
                    "a".into(),
                    "bb".into(),
                    "a".into(),
                    "cc".into(),
                    "bb".into(),
                ]),
            ],
        )
        .unwrap();
        cat.register(t);
        for sql in [
            "SELECT T.i FROM T WHERE T.i >= 2 AND T.i < 5",
            "SELECT T.i FROM T WHERE T.f > 1.5 AND T.s <> 'bb'",
            "SELECT T.i FROM T WHERE T.s = 'a' OR T.s = 'cc'", // OR → interpreter
            "SELECT T.i FROM T WHERE T.i BETWEEN 2 AND 4 AND T.f = 2",
            "SELECT T.i FROM T WHERE 3 < T.i",
            "SELECT T.i FROM T WHERE T.s >= 'bb'",
            "SELECT T.i FROM T WHERE T.i + 1 > 3 AND T.i <= 4", // mixed
            "SELECT T.i FROM T WHERE T.f = 2.5",
        ] {
            let q = analyze(&parse(sql).unwrap(), &cat).unwrap();
            let fast = apply_filters_with(&q, true).unwrap();
            let slow = apply_filters_with(&q, false).unwrap();
            assert_eq!(fast, slow, "{sql}");
        }
    }

    #[test]
    fn filters_reduce_row_sets() {
        let cat = catalog();
        let q = analyze(
            &parse("SELECT A.val FROM A, B WHERE A.id = B.id AND A.val >= 20 AND B.val = 6")
                .unwrap(),
            &cat,
        )
        .unwrap();
        let surviving = apply_filters(&q).unwrap();
        assert_eq!(surviving[0], vec![2, 3]);
        assert_eq!(surviving[1], vec![1]);
    }

    #[test]
    fn finalize_projection_and_order() {
        let cat = catalog();
        let q = analyze(
            &parse("SELECT A.val, B.val FROM A, B WHERE A.id = B.id ORDER BY A.val DESC").unwrap(),
            &cat,
        )
        .unwrap();
        // Matching tuples computed by hand: A rows {0,1} join B row 0; A row 2 joins B rows 1,2.
        let tuples = vec![vec![0, 0], vec![1, 0], vec![2, 1], vec![2, 2]];
        let out = finalize_output(&q, &tuples).unwrap();
        assert_eq!(out.num_rows(), 4);
        assert_eq!(out.row(0)[0], Value::Int(20));
        assert_eq!(out.schema().names(), vec!["val", "val"]);
    }

    #[test]
    fn finalize_group_by_aggregate() {
        let cat = catalog();
        let q = analyze(
            &parse("SELECT SUM(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val").unwrap(),
            &cat,
        )
        .unwrap();
        let tuples = vec![vec![0, 0], vec![1, 0], vec![2, 1], vec![2, 2]];
        let out = finalize_output(&q, &tuples).unwrap();
        assert_eq!(out.num_rows(), 3);
        // Group B.val=5 sums A.val 10+11=21.
        let sums = out.column_by_name("SUM(A.val)");
        assert!(sums.is_ok() || out.num_columns() == 2);
        assert_eq!(out.row(0)[0].as_f64().unwrap(), 21.0);
        assert_eq!(out.row(0)[1], Value::Int(5));
    }

    #[test]
    fn finalize_global_aggregate_and_count() {
        let cat = catalog();
        let q = analyze(
            &parse("SELECT SUM(A.val * B.val), COUNT(*) FROM A, B WHERE A.id = B.id").unwrap(),
            &cat,
        )
        .unwrap();
        let tuples = vec![vec![0, 0], vec![1, 0], vec![2, 1], vec![2, 2]];
        let out = finalize_output(&q, &tuples).unwrap();
        assert_eq!(out.num_rows(), 1);
        // 10*5 + 11*5 + 20*6 + 20*7 = 50+55+120+140 = 365
        assert_eq!(out.row(0)[0].as_f64().unwrap(), 365.0);
        assert_eq!(out.row(0)[1], Value::Int(4));
        // Zero tuples still produce one aggregate row.
        let empty = finalize_output(&q, &[]).unwrap();
        assert_eq!(empty.num_rows(), 1);
        assert_eq!(empty.row(0)[1], Value::Int(0));
    }

    #[test]
    fn finalize_avg_min_max() {
        let cat = catalog();
        let q = analyze(
            &parse("SELECT AVG(A.val), MIN(A.val), MAX(A.val) FROM A, B WHERE A.id = B.id")
                .unwrap(),
            &cat,
        )
        .unwrap();
        let tuples = vec![vec![0, 0], vec![2, 1]];
        let out = finalize_output(&q, &tuples).unwrap();
        assert_eq!(out.row(0)[0].as_f64().unwrap(), 15.0);
        assert_eq!(out.row(0)[1].as_f64().unwrap(), 10.0);
        assert_eq!(out.row(0)[2].as_f64().unwrap(), 20.0);
    }

    #[test]
    fn limit_and_residuals() {
        let cat = catalog();
        let q = analyze(
            &parse(
                "SELECT A.val, B.val FROM A, B WHERE A.id = B.id AND A.val + B.val > 20 LIMIT 1",
            )
            .unwrap(),
            &cat,
        )
        .unwrap();
        let tuples = vec![vec![0, 0], vec![1, 0], vec![2, 1], vec![2, 2]];
        let out = finalize_output(&q, &tuples).unwrap();
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn vectorized_filters_reorder_error_raising_predicates() {
        // Documented divergence: the atom `T.i = 5` masks out the i=0 row
        // before the division predicate runs, so the vectorized path
        // succeeds where the interpreter (which evaluates predicates in
        // textual order on every row) raises division by zero.
        let mut cat = Catalog::new();
        cat.register(
            Table::from_int_columns("T", &[("i", vec![0, 5]), ("v", vec![1, 2])]).unwrap(),
        );
        let q = analyze(
            &parse("SELECT T.v FROM T WHERE T.v / T.i > 0 AND T.i = 5").unwrap(),
            &cat,
        )
        .unwrap();
        assert!(apply_filters_with(&q, false).is_err());
        let fast = apply_filters_with(&q, true).unwrap();
        assert_eq!(fast, vec![vec![1]]);
    }

    #[test]
    fn table_from_rows_infers_types() {
        let rows = vec![
            vec![Value::Int(1), Value::Float(1.5), Value::from("a")],
            vec![Value::Int(2), Value::Int(3), Value::from("b")],
        ];
        let t = table_from_rows(
            "t",
            &["i".to_string(), "f".to_string(), "s".to_string()],
            rows,
        )
        .unwrap();
        assert_eq!(t.schema().column(0).data_type, DataType::Int64);
        assert_eq!(t.schema().column(1).data_type, DataType::Float64);
        assert_eq!(t.schema().column(2).data_type, DataType::Text);
        assert_eq!(t.row(1)[1], Value::Float(3.0));
    }
}
