//! The TCUDB program driver: physical operators and the execution pipeline.
//!
//! Execution follows the paper's architecture: single-table filters run as
//! GPU scans, joins run as tensor-core matrix multiplications (dense,
//! sparse TCU-SpMM or blocked, as chosen by the optimizer), group-by
//! aggregates over joins are fused into the final GEMM (§3.3), and results
//! are extracted with the `nonzero(·)` operator (§3.2).
//!
//! ### Execution vs. simulation
//!
//! Every operator *computes the real answer*.  When the operand matrices
//! are small enough (`EngineConfig::materialize_limit`), the tensor kernels
//! of `tcudb-tensor` are actually executed and their measured operation
//! counts drive the simulated timings; for larger shapes the same answers
//! are produced through an equivalent hash-based path while the simulated
//! timings come from the identical cost formulas evaluated on the exact
//! operation counts the kernel *would* have performed.  DESIGN.md §2
//! documents this substitution.

use crate::analyzer::{AnalyzedQuery, QueryPattern};
use crate::batch::TupleBatch;
use crate::engine::EngineConfig;
use crate::optimizer::{JoinShape, Optimizer, PlanChoice, PlanKind};
use crate::relops::{self, FinalizeOptions};
use crate::translate::{self, Domain, EncodedSource};
use std::collections::HashSet;
use std::time::Instant;
use tcudb_device::{ExecutionTimeline, Phase};
use tcudb_sql::BinOp;
use tcudb_storage::{Column, Table};
use tcudb_tensor::{blocked, gemm, nonzero, spmm, CsrMatrix, DenseMatrix, GemmPrecision};
use tcudb_types::sync::QueryContext;
use tcudb_types::{DataType, TcuError, TcuResult, Value};

/// Join results stay resident in device memory (the in-GPU-memory
/// architecture of §2.2 keeps intermediate and final relations on the
/// device); only a fixed-size result handle is copied back to the host.
const RESULT_HANDLE_BYTES: f64 = 4096.0;

/// A human-readable description of the physical plan that was executed.
#[derive(Debug, Clone, Default)]
pub struct PlanDescription {
    /// The recognised query pattern.
    pub pattern: String,
    /// One line per executed step.
    pub steps: Vec<String>,
    /// Did any step run on the tensor cores?
    pub used_tcu: bool,
    /// Was every TCU step guaranteed exact by the feasibility test?
    pub exact: bool,
}

impl PlanDescription {
    /// Render the plan as indented text.
    pub fn format(&self) -> String {
        let mut out = format!("pattern: {}\n", self.pattern);
        for s in &self.steps {
            out.push_str("  ");
            out.push_str(s);
            out.push('\n');
        }
        out
    }
}

/// Host-measured wall-clock attribution of one execution, independent of
/// the *simulated* device timeline: how long this process actually spent
/// in each stage.  The `perfqueries` harness reports the join vs finalize
/// share per query so BENCH_queries.json shows *why* a query is fast or
/// slow.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HostBreakdown {
    /// Seconds in scan + filter evaluation.
    pub filter_secs: f64,
    /// Seconds in the join pipeline (key gather, planning, join kernels,
    /// tuple-batch extension).
    pub join_secs: f64,
    /// Seconds in the output pipeline (residuals, grouping, aggregation,
    /// ORDER BY/LIMIT, result materialization).
    pub finalize_secs: f64,
    /// Column chunks actually scanned (summed over the query's tables).
    pub chunks_scanned: u64,
    /// Column chunks skipped by zone-map pruning.
    pub chunks_pruned: u64,
    /// Morsels executed through the shared worker pool (scan chunks plus
    /// join probe ranges).
    pub morsels: u64,
    /// Most worker threads any morsel run of this query used (1 = every
    /// run stayed inline on the calling thread).
    pub workers: u64,
}

impl HostBreakdown {
    /// Total measured seconds across the attributed stages.
    pub fn total_secs(&self) -> f64 {
        self.filter_secs + self.join_secs + self.finalize_secs
    }
}

/// Result of executing one query.
#[derive(Debug, Clone)]
pub struct Execution {
    /// The result table.
    pub table: Table,
    /// Simulated per-phase timing breakdown.
    pub timeline: ExecutionTimeline,
    /// Description of the executed plan.
    pub plan: PlanDescription,
    /// Host-measured wall-clock stage attribution.
    pub host: HostBreakdown,
    /// The optimizer's decision per executed join step, in execution
    /// order — what the plan cache records so repeat executions of the
    /// same statement against the same snapshot skip costing entirely.
    pub choices: Vec<PlanChoice>,
}

/// Execute an analyzed query on the TCUDB engine.
///
/// `replay` carries the per-join-step [`PlanChoice`]s recorded by a prior
/// execution of the identical statement against the identical catalog
/// snapshot (see [`crate::plancache`]); when present, join steps reuse
/// those decisions instead of re-running the optimizer's feasibility /
/// density / working-set / cost tests.  Pass `None` to plan from scratch
/// (the choices actually taken are returned in [`Execution::choices`]
/// either way).
pub fn execute(
    analyzed: &AnalyzedQuery,
    optimizer: &Optimizer,
    config: &EngineConfig,
    replay: Option<&[PlanChoice]>,
) -> TcuResult<Execution> {
    execute_ctx(
        analyzed,
        optimizer,
        config,
        replay,
        &QueryContext::unbounded(),
    )
}

/// [`execute`] under a cancellation/deadline [`QueryContext`].
///
/// The context is probed at the pipeline's natural chunk boundaries —
/// per filtered table, per join step, inside the tensor kernels between
/// k-blocks, and per finalize chunk — so a cancelled or past-deadline
/// query unwinds with [`TcuError::Cancelled`] /
/// [`TcuError::DeadlineExceeded`] within one chunk's worth of work,
/// never mid-mutation and never leaving a poisoned lock (execution holds
/// no locks; the serve layer owns the admission bookkeeping and releases
/// it on *any* return path).
pub fn execute_ctx(
    analyzed: &AnalyzedQuery,
    optimizer: &Optimizer,
    config: &EngineConfig,
    replay: Option<&[PlanChoice]>,
    ctx: &QueryContext,
) -> TcuResult<Execution> {
    let mut timeline = ExecutionTimeline::new();
    let mut plan = PlanDescription {
        pattern: format!("{:?}", analyzed.pattern),
        steps: Vec::new(),
        used_tcu: false,
        exact: true,
    };
    let cost = optimizer.cost_model();
    let mut host = HostBreakdown::default();

    // ---- Filters (GPU scans over the filtered columns; vectorized
    // typed kernels on the encoded path), chunked with zone-map pruning
    // and morsel parallelism ----
    let stage = Instant::now();
    let scan_opts = relops::ScanOptions {
        threads: config.effective_morsel_threads(),
        zone_prune: config.zone_prune,
        semi_join: config.zone_prune,
    };
    let (surviving, table_scans, scan_stats) =
        relops::apply_filters_scan(analyzed, config.encoded_path, ctx, &scan_opts)?;
    host.filter_secs = stage.elapsed().as_secs_f64();
    host.chunks_scanned = scan_stats.chunks_scanned;
    host.chunks_pruned = scan_stats.chunks_pruned;
    host.morsels = scan_stats.morsels;
    host.workers = scan_stats.workers.max(1);
    for (ti, bound) in analyzed.tables.iter().enumerate() {
        // Both plan lines depend only on chunk layout, zone maps and
        // surviving counts, which the encoded and interpreter paths share
        // — plan text stays engine-independent.
        if table_scans[ti].pruned > 0 {
            plan.steps.push(format!(
                "zone-prune {}: skipped {}/{} chunks",
                bound.binding, table_scans[ti].pruned, table_scans[ti].chunks
            ));
        }
        if !analyzed.filters_for_table(ti).is_empty() {
            let secs = cost.gpu_scan_seconds(bound.table.num_rows(), 8);
            timeline.record_detail(
                Phase::ScanFilter,
                format!("filter {} ({} rows)", bound.binding, bound.table.num_rows()),
                secs,
            );
            plan.steps.push(format!(
                "scan+filter {}: {} → {} rows",
                bound.binding,
                bound.table.num_rows(),
                surviving[ti].len()
            ));
        }
    }

    // ---- Single-table queries: no join to accelerate ----
    if analyzed.tables.len() == 1 {
        let batch = TupleBatch::from_rows(&surviving[0])?;
        let agg_secs = cost.gpu_aggregation_seconds(batch.len());
        timeline.record_detail(
            Phase::GroupByAggregation,
            "single-table aggregate",
            agg_secs,
        );
        plan.steps
            .push(format!("single-table pipeline over {} rows", batch.len()));
        let stage = Instant::now();
        let table = if config.encoded_path {
            let opts = FinalizeOptions::tensor(config.materialize_limit).with_ctx(ctx.clone());
            relops::finalize_output_columnar(analyzed, &batch, &opts)?.0
        } else {
            ctx.check()?;
            relops::finalize_output(analyzed, &batch.to_tuples())?
        };
        host.finalize_secs = stage.elapsed().as_secs_f64();
        return Ok(Execution {
            table,
            timeline,
            plan,
            host,
            choices: Vec::new(),
        });
    }

    // ---- Join order: greedy connectivity over the join graph ----
    let stage = Instant::now();
    let order = join_order(analyzed)?;
    let mut joined: Vec<usize> = vec![order[0]];
    let mut batch = TupleBatch::from_rows(&surviving[order[0]])?;
    // The batch holds one row-index column per *joined* table (in `joined`
    // order); the columns are permuted into bound-table order at the end.

    let fuse_last = analyzed.stmt.has_aggregates()
        && matches!(
            analyzed.pattern,
            QueryPattern::JoinGroupByAggregate
                | QueryPattern::JoinAggregate
                | QueryPattern::MatMul
                | QueryPattern::MultiWayJoin
        );

    let mut choices: Vec<PlanChoice> = Vec::with_capacity(order.len().saturating_sub(1));
    for (step_idx, &next) in order.iter().enumerate().skip(1) {
        // Per-join-step checkpoint: a multi-way join abandons remaining
        // steps as soon as the query is cancelled or past deadline.
        ctx.check()?;
        let is_last = step_idx == order.len() - 1;
        // One join step per loop iteration: replayed choices line up with
        // `choices` by position.
        let cached_choice = replay.and_then(|c| c.get(choices.len()));
        // Find the join predicate connecting `next` to the joined set.
        let (pred, joined_side_is_left) = analyzed
            .joins
            .iter()
            .find_map(|j| {
                if j.left.0 == next && joined.contains(&j.right.0) {
                    Some((j, false))
                } else if j.right.0 == next && joined.contains(&j.left.0) {
                    Some((j, true))
                } else {
                    None
                }
            })
            .ok_or_else(|| {
                TcuError::Plan(format!(
                    "table '{}' is not connected to the join graph",
                    analyzed.tables[next].binding
                ))
            })?;

        // Key columns: the joined-set side and the new-table side.
        let (joined_table_idx, joined_col, new_col) = if joined_side_is_left {
            (pred.left.0, pred.left.1.clone(), pred.right.1.clone())
        } else {
            (pred.right.0, pred.right.1.clone(), pred.left.1.clone())
        };
        // Non-equi orientation: predicate is written left <op> right; when
        // the joined set is on the right side the operator flips.
        let op = if joined_side_is_left {
            pred.op
        } else {
            pred.op.flip()
        };

        // Locate the key columns.
        let joined_pos = joined.iter().position(|&t| t == joined_table_idx).unwrap();
        let joined_table = &analyzed.tables[joined_table_idx].table;
        let joined_key_col_idx = joined_table.schema().require(&joined_col)?;
        let new_table = &analyzed.tables[next].table;
        let new_key_col_idx = new_table.schema().require(&new_col)?;
        let right_rows = &surviving[next];
        let bindings = (
            analyzed.tables[joined_table_idx].binding.as_str(),
            analyzed.tables[next].binding.as_str(),
        );
        let fused = is_last && fuse_last;
        let left_rows = batch.col(joined_pos);

        // ---- Gather keys, choose the plan, execute the join step ----
        let pairs = if config.encoded_path && op == BinOp::Eq {
            // Encoded data path: dictionary codes end-to-end.  The base
            // columns' dictionaries are cached on the tables, the domain
            // union works on code-remap tables, and the join / matrix
            // builders scatter codes directly — no per-row `Value`s.
            let joined_dict = joined_table.encoded_column(joined_key_col_idx);
            let new_dict = new_table.encoded_column(new_key_col_idx);
            let left_codes: Vec<u32> = left_rows
                .iter()
                .map(|&r| joined_dict.codes()[r as usize])
                .collect();
            let lsrc = EncodedSource {
                dict: &joined_dict,
                codes: &left_codes,
                rows: None,
            };
            let rsrc = EncodedSource::subset(&new_dict, right_rows);
            let (domain, maps) = Domain::build_encoded(&[lsrc, rsrc]);
            let (shape, choice) = plan_join_step(
                analyzed,
                optimizer,
                &mut plan,
                bindings,
                (&joined_col, &new_col),
                (lsrc.len(), rsrc.len(), domain.len()),
                fused,
                batch.len(),
                cached_choice,
            );
            choices.push(choice.clone());
            execute_join_step_encoded(
                (&lsrc, &maps[0]),
                (&rsrc, &maps[1]),
                &domain,
                &choice,
                &shape,
                optimizer,
                config,
                &mut timeline,
                &mut host,
                ctx,
            )?
        } else {
            let key_col = joined_table.column(joined_key_col_idx);
            let left_keys: Vec<Value> = left_rows
                .iter()
                .map(|&r| key_col.value(r as usize))
                .collect();
            let right_keys: Vec<Value> = right_rows
                .iter()
                .map(|&r| new_table.column(new_key_col_idx).value(r))
                .collect();
            let left_col = column_from_values(&left_keys)?;
            let right_col = column_from_values(&right_keys)?;
            let domain = Domain::build(&[(&left_col, None), (&right_col, None)]);
            let (shape, choice) = plan_join_step(
                analyzed,
                optimizer,
                &mut plan,
                bindings,
                (&joined_col, &new_col),
                (left_keys.len(), right_keys.len(), domain.len()),
                fused,
                batch.len(),
                cached_choice,
            );
            choices.push(choice.clone());
            execute_join_step(
                &left_keys,
                &right_keys,
                &domain,
                op,
                &choice,
                &shape,
                optimizer,
                config,
                &mut timeline,
                ctx,
            )?
        };

        // Extend the batch with the new table's rows: columnar gathers,
        // no per-tuple allocation.
        joined.push(next);
        batch = batch.extend_join(&pairs, right_rows)?;

        // Apply any *additional* join predicates that connect tables we
        // have already joined (composite keys) as residual filters.
        batch = filter_by_extra_joins(analyzed, &joined, batch)?;
    }
    host.join_secs = stage.elapsed().as_secs_f64();

    // Remap the batch columns from `joined` order to bound-table order
    // (a column permutation — O(tables), not O(tuples × tables)).
    let batch = batch.remap_slots(&joined, analyzed.tables.len());

    // ---- Final aggregation / projection ----
    let stage = Instant::now();
    let record_agg = analyzed.stmt.has_aggregates() && !fuse_last;
    let table = if config.count_only {
        if record_agg {
            let secs =
                cost.gpu_groupby_agg_seconds(batch.len(), estimate_groups(analyzed, &batch.len()));
            timeline.record_detail(Phase::GroupByAggregation, "post-join aggregation", secs);
        }
        relops::table_from_rows(
            "result_count",
            &["matched_tuples".to_string()],
            vec![vec![Value::Int(batch.len() as i64)]],
        )?
    } else if config.encoded_path {
        let opts = FinalizeOptions::tensor(config.materialize_limit).with_ctx(ctx.clone());
        let (table, report) = relops::finalize_output_columnar(analyzed, &batch, &opts)?;
        if record_agg {
            // Exact operation counts from the finalize stage, not the
            // pre-execution row-count guess the interpreter path charges.
            let secs = cost.gpu_groupby_agg_seconds(report.agg_rows, report.groups.max(1));
            let detail = if report.gemm.is_empty() {
                format!(
                    "post-join aggregation ({} rows → {} groups)",
                    report.agg_rows, report.groups
                )
            } else {
                let macs: f64 = report.gemm.iter().map(|s| s.flops / 2.0).sum();
                format!(
                    "post-join aggregation ({} rows → {} groups, {} one-hot GEMMs, {macs:.0} MACs)",
                    report.agg_rows,
                    report.groups,
                    report.gemm.len(),
                )
            };
            timeline.record_detail(Phase::GroupByAggregation, detail, secs);
        }
        table
    } else {
        if record_agg {
            let secs =
                cost.gpu_groupby_agg_seconds(batch.len(), estimate_groups(analyzed, &batch.len()));
            timeline.record_detail(Phase::GroupByAggregation, "post-join aggregation", secs);
        }
        ctx.check()?;
        relops::finalize_output(analyzed, &batch.to_tuples())?
    };
    host.finalize_secs = stage.elapsed().as_secs_f64();

    Ok(Execution {
        table,
        timeline,
        plan,
        host,
        choices,
    })
}

/// Decide the join order: start from the most-connected table (the fact
/// table of a star schema) and greedily add connected tables.
fn join_order(analyzed: &AnalyzedQuery) -> TcuResult<Vec<usize>> {
    let n = analyzed.tables.len();
    let degree = |i: usize| analyzed.joins_for_table(i).len();
    let start = (0..n).max_by_key(|&i| degree(i)).unwrap_or(0);
    let mut order = vec![start];
    let mut in_order: HashSet<usize> = HashSet::from([start]);
    while order.len() < n {
        let next = (0..n).find(|i| {
            !in_order.contains(i)
                && analyzed.joins.iter().any(|j| {
                    (j.left.0 == *i && in_order.contains(&j.right.0))
                        || (j.right.0 == *i && in_order.contains(&j.left.0))
                })
        });
        match next {
            Some(t) => {
                in_order.insert(t);
                order.push(t);
            }
            None => {
                return Err(TcuError::Plan(
                    "query contains a cross join (disconnected join graph)".into(),
                ))
            }
        }
    }
    Ok(order)
}

/// Build a `Column` from homogeneous key values.
fn column_from_values(values: &[Value]) -> TcuResult<Column> {
    let dt = values
        .iter()
        .find_map(|v| v.data_type())
        .unwrap_or(DataType::Int64);
    Column::from_values(dt, values)
}

/// Estimate the number of output groups of the query's GROUP BY.
fn estimate_groups(analyzed: &AnalyzedQuery, tuple_count: &usize) -> usize {
    if analyzed.stmt.group_by.is_empty() {
        return 1;
    }
    let mut product: usize = 1;
    for g in &analyzed.stmt.group_by {
        let mut best = *tuple_count;
        if let tcudb_sql::Expr::Column(c) = g {
            if let Ok((ti, ci)) = crate::analyzer::resolve_column(analyzed, c) {
                let name = &analyzed.tables[ti].table.schema().column(ci).name;
                best = analyzed.tables[ti]
                    .stats
                    .column(name)
                    .map(|s| s.distinct_count)
                    .unwrap_or(*tuple_count);
            }
        }
        product = product.saturating_mul(best.max(1));
    }
    product.min((*tuple_count).max(1))
}

/// Build the join shape for one step, ask the optimizer for a plan (or
/// replay a cached one) and record the step in the plan description.
/// Shared by the encoded and the `Value`-based paths so both describe and
/// cost joins identically.
#[allow(clippy::too_many_arguments)]
fn plan_join_step(
    analyzed: &AnalyzedQuery,
    optimizer: &Optimizer,
    plan: &mut PlanDescription,
    bindings: (&str, &str),
    cols: (&str, &str),
    (m, n, k): (usize, usize, usize),
    fused: bool,
    tuple_count: usize,
    cached: Option<&PlanChoice>,
) -> (JoinShape, PlanChoice) {
    let k = k.max(1);
    let mut shape = JoinShape::equi_join(m, n, k);
    shape.raw_bytes = (m + n) * 8;
    if fused {
        shape.fused_aggregate = true;
        shape.groups = estimate_groups(analyzed, &tuple_count);
        shape.n = shape.groups.max(1).min(n.max(1));
    }
    if analyzed.pattern == QueryPattern::MatMul {
        // Dense value matrices: density is the fill factor of the
        // (row, col) key space rather than 1/k.
        let fill = m as f64 / (shape.m.max(1) * k) as f64;
        shape.density = fill.clamp(0.0, 1.0).max(1e-9);
    }
    // A cached choice was produced by this very function for the identical
    // statement against the identical snapshot, so the shape — and
    // therefore the decision — is the same; skip the costing pass.
    let choice = match cached {
        Some(c) => c.clone(),
        None => optimizer.choose_join_plan(&shape),
    };
    plan.used_tcu |= choice.kind.is_tcu();
    plan.exact &= choice.exact_guaranteed;
    plan.steps.push(format!(
        "join {} ⋈ {} on {}={} via {} [{}], m={} n={} k={}",
        bindings.0,
        bindings.1,
        cols.0,
        cols.1,
        choice.kind,
        choice.precision,
        shape.m,
        shape.n,
        shape.k,
    ));
    (shape, choice)
}

/// Execute one equi-join step on the encoded data path, returning the
/// matching `(left position, right position)` pairs.  Mirrors
/// [`execute_join_step`] arm for arm — identical cost charging, identical
/// results — but scatters dictionary codes instead of materialising
/// `Value`s, and joins through array-indexed code buckets instead of a
/// `ValueKey` hash table.
#[allow(clippy::too_many_arguments)]
fn execute_join_step_encoded(
    (left, left_remap): (&EncodedSource<'_>, &[u32]),
    (right, right_remap): (&EncodedSource<'_>, &[u32]),
    domain: &Domain,
    choice: &PlanChoice,
    shape: &JoinShape,
    optimizer: &Optimizer,
    config: &EngineConfig,
    timeline: &mut ExecutionTimeline,
    host: &mut HostBreakdown,
    ctx: &QueryContext,
) -> TcuResult<Vec<(usize, usize)>> {
    let cost = optimizer.cost_model();
    let m = left.len();
    let n = right.len();
    let k = domain.len().max(1);
    let precision: GemmPrecision = choice.precision.into();

    let can_materialize = (m.saturating_mul(k)).max(n.saturating_mul(k))
        <= config.materialize_limit
        && m.saturating_mul(n) <= config.materialize_limit
        && (m as u128 * n as u128 * k as u128) <= config.kernel_mac_limit;

    let dt = if choice.transform_on_gpu {
        cost.transform_gpu_seconds(m + n)
            + cost.device_mem_seconds(shape.plan_working_set_bytes(choice.kind, choice.precision))
    } else {
        cost.transform_cpu_seconds(m + n)
    };
    let dm = if choice.transform_on_gpu {
        cost.h2d_seconds(shape.raw_bytes as f64)
    } else {
        cost.h2d_seconds(shape.plan_working_set_bytes(choice.kind, choice.precision))
    };

    // The probe side of the code join runs as contiguous row morsels on
    // the shared worker pool; pair order is identical to the serial probe.
    let code_join = |host: &mut HostBreakdown| {
        let (pairs, run) = relops::join_pairs_by_code_morsels(
            left,
            left_remap,
            right,
            right_remap,
            domain.len(),
            config.effective_morsel_threads(),
            tcudb_storage::DEFAULT_CHUNK_ROWS,
        );
        host.morsels += run.morsels;
        host.workers = host.workers.max(run.threads as u64);
        pairs
    };

    match choice.kind {
        PlanKind::GpuFallback => {
            let pairs = code_join(host);
            timeline.record_detail(
                Phase::MemcpyHostToDevice,
                "copy join columns",
                cost.h2d_seconds(shape.raw_bytes as f64),
            );
            timeline.record_detail(
                Phase::HashJoin,
                format!("GPU hash join {m}x{n}"),
                cost.gpu_hash_join_seconds(m, n, pairs.len()),
            );
            timeline.record_detail(
                Phase::MemcpyDeviceToHost,
                "copy result handle",
                cost.d2h_seconds(RESULT_HANDLE_BYTES),
            );
            Ok(pairs)
        }
        PlanKind::TcuDense | PlanKind::TcuBlocked if can_materialize && !shape.fused_aggregate => {
            timeline.record_detail(Phase::FillMatrices, "build one-hot matrices", dt);
            timeline.record_detail(Phase::MemcpyHostToDevice, "copy operands", dm);
            let a = translate::one_hot_matrix_encoded(left, left_remap, domain.len());
            let b = translate::one_hot_matrix_encoded(right, right_remap, domain.len());
            let (c, kernel_secs) = if choice.kind == PlanKind::TcuBlocked {
                let block = blocked::choose_block_size(cost.profile().device_mem_bytes);
                let (c, stats) = blocked::blocked_gemm_bt_ctx(&a, &b, precision, block, ctx)?;
                (c, cost.blocked_gemm_seconds(&stats, choice.precision))
            } else {
                let (c, stats) = gemm::gemm_bt_ctx(&a, &b, precision, ctx)?;
                (c, cost.tcu_gemm_seconds(&stats))
            };
            timeline.record_detail(
                Phase::TcuKernel,
                format!("{} {}x{}x{}", choice.kind, m, n, k),
                kernel_secs,
            );
            let pairs = nonzero::nonzero(&c);
            timeline.record_detail(
                Phase::ResultMaterialize,
                "nonzero extraction",
                cost.nonzero_seconds(m, n, pairs.len()),
            );
            timeline.record_detail(
                Phase::MemcpyDeviceToHost,
                "copy result handle",
                cost.d2h_seconds(RESULT_HANDLE_BYTES),
            );
            Ok(pairs)
        }
        PlanKind::TcuSparse if can_materialize && !shape.fused_aggregate => {
            timeline.record_detail(Phase::FillMatrices, "build CSR operands", dt);
            timeline.record_detail(Phase::MemcpyHostToDevice, "copy operands", dm);
            let a = translate::one_hot_csr_encoded(left, left_remap, domain.len())?;
            let b = translate::one_hot_csr_encoded(right, right_remap, domain.len())?;
            let (c, stats) = spmm::tcu_spmm_ctx(&a, &b, precision, ctx)?;
            timeline.record_detail(
                Phase::TcuKernel,
                format!(
                    "TCU-SpMM {}x{}x{} ({} tiles, {:.1}% skipped)",
                    m,
                    n,
                    k,
                    stats.tiles_processed,
                    stats.skip_ratio() * 100.0
                ),
                cost.tcu_spmm_seconds(&stats, choice.precision),
            );
            let pairs = nonzero::nonzero(&c);
            timeline.record_detail(
                Phase::ResultMaterialize,
                "nonzero extraction",
                cost.nonzero_seconds(m, n, pairs.len()),
            );
            timeline.record_detail(
                Phase::MemcpyDeviceToHost,
                "copy result handle",
                cost.d2h_seconds(RESULT_HANDLE_BYTES),
            );
            Ok(pairs)
        }
        // Too large to materialise (or fused): compute through the code
        // join while charging the simulated cost of the chosen TCU kernel.
        kind => {
            timeline.record_detail(Phase::FillMatrices, "build matrices (GPU-assisted)", dt);
            timeline.record_detail(Phase::MemcpyHostToDevice, "copy operands", dm);
            let pairs = code_join(host);
            let kernel_secs = match kind {
                PlanKind::TcuSparse => {
                    cost.tcu_spmm_seconds(&shape.estimated_spmm_stats(), choice.precision)
                }
                PlanKind::TcuBlocked => {
                    optimizer.tcu_plan_seconds(
                        shape,
                        PlanKind::TcuBlocked,
                        choice.precision,
                        choice.transform_on_gpu,
                    ) - dt
                        - dm
                }
                _ => cost.tcu_gemm_seconds(&shape.dense_gemm_stats(choice.precision)),
            };
            if shape.fused_aggregate {
                timeline.record_detail(
                    Phase::TcuKernel,
                    format!(
                        "fused Join+Aggregation {} {}x{}x{}",
                        kind, shape.m, shape.n, shape.k
                    ),
                    kernel_secs.max(0.0),
                );
                timeline.record_detail(
                    Phase::MemcpyDeviceToHost,
                    "copy aggregate result",
                    cost.d2h_seconds(shape.groups.max(1) as f64 * 8.0),
                );
            } else {
                timeline.record_detail(
                    Phase::TcuKernel,
                    format!("{kind} {m}x{n}x{k} (simulated at scale)"),
                    kernel_secs.max(0.0),
                );
                timeline.record_detail(
                    Phase::ResultMaterialize,
                    "nonzero extraction",
                    cost.nonzero_seconds(shape.m, shape.n, pairs.len()),
                );
                timeline.record_detail(
                    Phase::MemcpyDeviceToHost,
                    "copy join result",
                    cost.d2h_seconds(pairs.len() as f64 * 8.0),
                );
            }
            Ok(pairs)
        }
    }
}

/// Execute one join step, returning the matching `(left index, right
/// index)` pairs (indices into the key slices, not original rows).
#[allow(clippy::too_many_arguments)]
fn execute_join_step(
    left_keys: &[Value],
    right_keys: &[Value],
    domain: &Domain,
    op: BinOp,
    choice: &PlanChoice,
    shape: &JoinShape,
    optimizer: &Optimizer,
    config: &EngineConfig,
    timeline: &mut ExecutionTimeline,
    ctx: &QueryContext,
) -> TcuResult<Vec<(usize, usize)>> {
    let cost = optimizer.cost_model();
    let m = left_keys.len();
    let n = right_keys.len();
    let k = domain.len().max(1);
    let precision: GemmPrecision = choice.precision.into();

    let can_materialize = (m.saturating_mul(k)).max(n.saturating_mul(k))
        <= config.materialize_limit
        && m.saturating_mul(n) <= config.materialize_limit
        && (m as u128 * n as u128 * k as u128) <= config.kernel_mac_limit;

    // Transformation + movement phases are charged the same way regardless
    // of whether the kernel really runs.
    let dt = if choice.transform_on_gpu {
        // Scattering the operand matrices on the device also writes the
        // full matrix buffers through device memory.
        cost.transform_gpu_seconds(m + n)
            + cost.device_mem_seconds(shape.plan_working_set_bytes(choice.kind, choice.precision))
    } else {
        cost.transform_cpu_seconds(m + n)
    };
    let dm = if choice.transform_on_gpu {
        cost.h2d_seconds(shape.raw_bytes as f64)
    } else {
        cost.h2d_seconds(shape.plan_working_set_bytes(choice.kind, choice.precision))
    };

    match choice.kind {
        PlanKind::GpuFallback => {
            let left_col = column_from_values(left_keys)?;
            let right_col = column_from_values(right_keys)?;
            let all_left: Vec<usize> = (0..m).collect();
            let all_right: Vec<usize> = (0..n).collect();
            let pairs = if op == BinOp::Eq {
                relops::hash_join_pairs(&left_col, &all_left, &right_col, &all_right)
            } else {
                relops::nonequi_join_pairs(&left_col, &all_left, &right_col, &all_right, op)?
            };
            timeline.record_detail(
                Phase::MemcpyHostToDevice,
                "copy join columns",
                cost.h2d_seconds(shape.raw_bytes as f64),
            );
            timeline.record_detail(
                Phase::HashJoin,
                format!("GPU hash join {m}x{n}"),
                cost.gpu_hash_join_seconds(m, n, pairs.len()),
            );
            timeline.record_detail(
                Phase::MemcpyDeviceToHost,
                "copy result handle",
                cost.d2h_seconds(RESULT_HANDLE_BYTES),
            );
            Ok(pairs)
        }
        PlanKind::TcuDense | PlanKind::TcuBlocked
            if can_materialize && op == BinOp::Eq && !shape.fused_aggregate =>
        {
            timeline.record_detail(Phase::FillMatrices, "build one-hot matrices", dt);
            timeline.record_detail(Phase::MemcpyHostToDevice, "copy operands", dm);
            let left_col = column_from_values(left_keys)?;
            let right_col = column_from_values(right_keys)?;
            let a = translate::one_hot_matrix(&left_col, None, domain);
            let b = translate::one_hot_matrix(&right_col, None, domain);
            let (c, kernel_secs) = if choice.kind == PlanKind::TcuBlocked {
                let block = blocked::choose_block_size(cost.profile().device_mem_bytes);
                // The bt-oriented blocked path packs the transpose inside the
                // kernel engine instead of materialising a k×n copy here.
                let (c, stats) = blocked::blocked_gemm_bt_ctx(&a, &b, precision, block, ctx)?;
                (c, cost.blocked_gemm_seconds(&stats, choice.precision))
            } else {
                let (c, stats) = gemm::gemm_bt_ctx(&a, &b, precision, ctx)?;
                (c, cost.tcu_gemm_seconds(&stats))
            };
            timeline.record_detail(
                Phase::TcuKernel,
                format!("{} {}x{}x{}", choice.kind, m, n, k),
                kernel_secs,
            );
            let pairs = nonzero::nonzero(&c);
            timeline.record_detail(
                Phase::ResultMaterialize,
                "nonzero extraction",
                cost.nonzero_seconds(m, n, pairs.len()),
            );
            timeline.record_detail(
                Phase::MemcpyDeviceToHost,
                "copy result handle",
                cost.d2h_seconds(RESULT_HANDLE_BYTES),
            );
            Ok(pairs)
        }
        PlanKind::TcuSparse if can_materialize && op == BinOp::Eq && !shape.fused_aggregate => {
            timeline.record_detail(Phase::FillMatrices, "build CSR operands", dt);
            timeline.record_detail(Phase::MemcpyHostToDevice, "copy operands", dm);
            let left_col = column_from_values(left_keys)?;
            let right_col = column_from_values(right_keys)?;
            let a = translate::one_hot_csr(&left_col, None, domain)?;
            let b = translate::one_hot_csr(&right_col, None, domain)?;
            let (c, stats) = spmm::tcu_spmm_ctx(&a, &b, precision, ctx)?;
            timeline.record_detail(
                Phase::TcuKernel,
                format!(
                    "TCU-SpMM {}x{}x{} ({} tiles, {:.1}% skipped)",
                    m,
                    n,
                    k,
                    stats.tiles_processed,
                    stats.skip_ratio() * 100.0
                ),
                cost.tcu_spmm_seconds(&stats, choice.precision),
            );
            let pairs = nonzero::nonzero(&c);
            timeline.record_detail(
                Phase::ResultMaterialize,
                "nonzero extraction",
                cost.nonzero_seconds(m, n, pairs.len()),
            );
            timeline.record_detail(
                Phase::MemcpyDeviceToHost,
                "copy result handle",
                cost.d2h_seconds(RESULT_HANDLE_BYTES),
            );
            Ok(pairs)
        }
        // Non-equi joins on the TCU use the comparison matrix of §3.4 when
        // small, otherwise a nested-loop equivalent with simulated GEMM
        // cost.
        kind if op != BinOp::Eq => {
            timeline.record_detail(Phase::FillMatrices, "build comparison matrix", dt);
            timeline.record_detail(Phase::MemcpyHostToDevice, "copy operands", dm);
            let left_col = column_from_values(left_keys)?;
            let right_col = column_from_values(right_keys)?;
            let pairs = if can_materialize {
                let a = translate::comparison_matrix(&left_col, None, domain, op)?;
                let b = translate::one_hot_matrix(&right_col, None, domain);
                let (c, stats) = gemm::gemm_bt_ctx(&a, &b, precision, ctx)?;
                timeline.record_detail(
                    Phase::TcuKernel,
                    format!("non-equi TCU join {m}x{n}x{k}"),
                    cost.tcu_gemm_seconds(&stats),
                );
                nonzero::nonzero(&c)
            } else {
                let all_left: Vec<usize> = (0..m).collect();
                let all_right: Vec<usize> = (0..n).collect();
                let stats = shape.dense_gemm_stats(choice.precision);
                timeline.record_detail(
                    Phase::TcuKernel,
                    format!("non-equi TCU join {m}x{n}x{k} (simulated)"),
                    cost.tcu_gemm_seconds(&stats),
                );
                relops::nonequi_join_pairs(&left_col, &all_left, &right_col, &all_right, op)?
            };
            let _ = kind;
            timeline.record_detail(
                Phase::ResultMaterialize,
                "nonzero extraction",
                cost.nonzero_seconds(m, n, pairs.len()),
            );
            Ok(pairs)
        }
        // Too large to materialise: run the hash-join equivalent but charge
        // the simulated cost of the chosen TCU kernel on its exact shape.
        kind => {
            timeline.record_detail(Phase::FillMatrices, "build matrices (GPU-assisted)", dt);
            timeline.record_detail(Phase::MemcpyHostToDevice, "copy operands", dm);
            let left_col = column_from_values(left_keys)?;
            let right_col = column_from_values(right_keys)?;
            let all_left: Vec<usize> = (0..m).collect();
            let all_right: Vec<usize> = (0..n).collect();
            let pairs = relops::hash_join_pairs(&left_col, &all_left, &right_col, &all_right);
            let kernel_secs = match kind {
                PlanKind::TcuSparse => {
                    cost.tcu_spmm_seconds(&shape.estimated_spmm_stats(), choice.precision)
                }
                PlanKind::TcuBlocked => {
                    optimizer.tcu_plan_seconds(
                        shape,
                        PlanKind::TcuBlocked,
                        choice.precision,
                        choice.transform_on_gpu,
                    ) - dt
                        - dm
                }
                _ => cost.tcu_gemm_seconds(&shape.dense_gemm_stats(choice.precision)),
            };
            if shape.fused_aggregate {
                // The §3.3 fused Join+GroupBy+Aggregation operator: a single
                // GEMM whose output dimension is the group domain, so only
                // one row per group ever leaves the device.
                timeline.record_detail(
                    Phase::TcuKernel,
                    format!(
                        "fused Join+Aggregation {} {}x{}x{}",
                        kind, shape.m, shape.n, shape.k
                    ),
                    kernel_secs.max(0.0),
                );
                timeline.record_detail(
                    Phase::MemcpyDeviceToHost,
                    "copy aggregate result",
                    cost.d2h_seconds(shape.groups.max(1) as f64 * 8.0),
                );
            } else {
                timeline.record_detail(
                    Phase::TcuKernel,
                    format!("{kind} {m}x{n}x{k} (simulated at scale)"),
                    kernel_secs.max(0.0),
                );
                timeline.record_detail(
                    Phase::ResultMaterialize,
                    "nonzero extraction",
                    cost.nonzero_seconds(shape.m, shape.n, pairs.len()),
                );
                timeline.record_detail(
                    Phase::MemcpyDeviceToHost,
                    "copy join result",
                    cost.d2h_seconds(pairs.len() as f64 * 8.0),
                );
            }
            Ok(pairs)
        }
    }
}

/// Estimate the peak device working-set bytes a query will occupy, before
/// executing it — the admission-control currency of the `tcudb-serve`
/// scheduler.
///
/// For every join predicate the estimator builds the [`JoinShape`] the
/// executor *would* build with no filters applied (base-table row counts,
/// key-domain bounded by the join columns' distinct counts from the
/// catalog statistics), asks the optimizer which plan it would choose and
/// charges that plan's [`JoinShape::plan_working_set_bytes`].  The result
/// is the peak over the steps plus the raw bytes of one pass over the
/// touched tables.
///
/// This is a *heuristic*, deliberately biased high for the common case —
/// filters only shrink per-predicate shapes below the unfiltered bound —
/// but it is not a guaranteed upper bound: multi-way joins whose
/// intermediate results fan out beyond the base-table row counts, or
/// shapes where the runtime plan kind diverges from the unfiltered
/// estimate's, can exceed it.  Admission control treats it as a
/// throttling currency, not a hard memory reservation.
pub fn estimate_working_set_bytes(analyzed: &AnalyzedQuery, optimizer: &Optimizer) -> f64 {
    // Each table is charged only the fraction of its chunks a zone-pruned
    // scan will actually read: admission control prices pruned scans, not
    // whole-table sizes.
    let table_bytes: f64 = analyzed
        .tables
        .iter()
        .enumerate()
        .map(|(ti, b)| b.table.byte_size() as f64 * relops::pruned_scan_fraction(analyzed, ti))
        .sum();
    let mut peak: f64 = 0.0;
    for j in &analyzed.joins {
        let (lt, lcol) = (&analyzed.tables[j.left.0], &j.left.1);
        let (rt, rcol) = (&analyzed.tables[j.right.0], &j.right.1);
        let m = lt.table.num_rows();
        let n = rt.table.num_rows();
        let ndv = |b: &crate::analyzer::BoundTable, col: &str| {
            b.stats
                .column(col)
                .map(|s| s.distinct_count)
                .unwrap_or_else(|| b.table.num_rows())
        };
        // The executor's domain is the union of both sides' key sets.
        let k = ndv(lt, lcol).saturating_add(ndv(rt, rcol)).max(1);
        let shape = JoinShape::equi_join(m, n, k);
        let choice = optimizer.choose_join_plan(&shape);
        peak = peak.max(shape.plan_working_set_bytes(choice.kind, choice.precision));
    }
    table_bytes + peak
}

/// Filter the batch by join predicates between already-joined tables that
/// were not used as the primary join key of any step (composite join
/// keys).
fn filter_by_extra_joins(
    analyzed: &AnalyzedQuery,
    joined: &[usize],
    batch: TupleBatch,
) -> TcuResult<TupleBatch> {
    // Collect predicates whose two sides are both joined.
    let joined_set: HashSet<usize> = joined.iter().copied().collect();
    let preds: Vec<_> = analyzed
        .joins
        .iter()
        .filter(|j| joined_set.contains(&j.left.0) && joined_set.contains(&j.right.0))
        .collect();
    if preds.len() < joined.len() {
        // Only the spanning-tree predicates exist; nothing extra to check.
        return Ok(batch);
    }
    // Resolve each predicate's columns and batch slots once, then sweep
    // the batch columns.
    let pos_of = |t: usize| joined.iter().position(|&x| x == t).unwrap();
    let mut resolved = Vec::with_capacity(preds.len());
    for p in &preds {
        let lt = &analyzed.tables[p.left.0].table;
        let rt = &analyzed.tables[p.right.0].table;
        let lc = lt.schema().require(&p.left.1)?;
        let rc = rt.schema().require(&p.right.1)?;
        resolved.push((
            lt.column(lc),
            batch.col(pos_of(p.left.0)),
            rt.column(rc),
            batch.col(pos_of(p.right.0)),
            p.op,
        ));
    }
    let mut keep = Vec::with_capacity(batch.len());
    'tuple: for i in 0..batch.len() {
        for (lcol, lrows, rcol, rrows, op) in &resolved {
            let lv = lcol.value(lrows[i] as usize);
            let rv = rcol.value(rrows[i] as usize);
            let pass = match op {
                BinOp::Eq => lv.sql_eq(&rv),
                BinOp::NotEq => !lv.sql_eq(&rv),
                BinOp::Lt => lv.sql_cmp(&rv) == std::cmp::Ordering::Less,
                BinOp::LtEq => lv.sql_cmp(&rv) != std::cmp::Ordering::Greater,
                BinOp::Gt => lv.sql_cmp(&rv) == std::cmp::Ordering::Greater,
                BinOp::GtEq => lv.sql_cmp(&rv) != std::cmp::Ordering::Less,
                _ => true,
            };
            if !pass {
                continue 'tuple;
            }
        }
        keep.push(i as u32);
    }
    if keep.len() == batch.len() {
        return Ok(batch);
    }
    Ok(batch.select(&keep))
}

// ---------------------------------------------------------------------
// Stand-alone fused operator (Lemma 3.1): exposed for tests and examples.
// ---------------------------------------------------------------------

/// Compute the §3.3 fused group-by SUM aggregate entirely with matrix
/// operations: `1_{1×n} × mat(A) × mat(B)ᵀ`.
///
/// * `a_keys` / `a_values`: the fact side — join key and payload per row,
/// * `b_keys` / `b_groups`: the dimension side — join key and group value
///   per row.
///
/// Returns `(group value, aggregated sum)` pairs, exactly what
/// `SELECT SUM(A.Val), B.Val … GROUP BY B.Val` returns.
pub fn tcu_group_aggregate(
    a_keys: &[Value],
    a_values: &[f64],
    b_keys: &[Value],
    b_groups: &[Value],
    precision: GemmPrecision,
) -> TcuResult<Vec<(Value, f64)>> {
    if a_keys.len() != a_values.len() || b_keys.len() != b_groups.len() {
        return Err(TcuError::InvalidArgument(
            "key and value slices must have equal lengths".into(),
        ));
    }
    let a_key_col = column_from_values(a_keys)?;
    let b_key_col = column_from_values(b_keys)?;
    let b_group_col = column_from_values(b_groups)?;
    let key_domain = Domain::build(&[(&a_key_col, None), (&b_key_col, None)]);
    let group_domain = Domain::build(&[(&b_group_col, None)]);

    // mat(A): n×k valued; mat(B): m×k adjacency over (group, key).
    let a = translate::valued_matrix(&a_key_col, a_values, None, &key_domain);
    let b = translate::adjacency_matrix(
        &b_group_col,
        &b_key_col,
        None,
        None,
        &group_domain,
        &key_domain,
    );
    // P = mat(A) × mat(B)ᵀ  (n × m), then reduce with the all-ones vector.
    let (p, _) = gemm::gemm_bt(&a, &b, precision)?;
    let ones = DenseMatrix::ones(1, p.rows());
    let (reduced, _) = gemm::gemm(&ones, &p, precision)?;

    let mut out = Vec::with_capacity(group_domain.len());
    for j in 0..group_domain.len() {
        out.push((group_domain.value_at(j).clone(), reduced.get(0, j) as f64));
    }
    Ok(out)
}

/// Compute the Figure 5 matrix-multiplication query with one GEMM: given
/// two "coordinate + value" tables, returns `(row, col, value)` triples of
/// the matrix product.
pub fn tcu_matmul_query(
    a_rows: &[Value],
    a_cols: &[Value],
    a_vals: &[f64],
    b_rows: &[Value],
    b_cols: &[Value],
    b_vals: &[f64],
    precision: GemmPrecision,
) -> TcuResult<Vec<(Value, Value, f64)>> {
    let a_row_col = column_from_values(a_rows)?;
    let a_col_col = column_from_values(a_cols)?;
    let b_row_col = column_from_values(b_rows)?;
    let b_col_col = column_from_values(b_cols)?;

    // Output dimensions: A.col_num × B.row_num; shared key: A.row_num = B.col_num.
    let out_rows = Domain::build(&[(&a_col_col, None)]);
    let out_cols = Domain::build(&[(&b_row_col, None)]);
    let key_domain = Domain::build(&[(&a_row_col, None), (&b_col_col, None)]);

    let a = translate::adjacency_matrix(
        &a_col_col,
        &a_row_col,
        Some(a_vals),
        None,
        &out_rows,
        &key_domain,
    );
    let b = translate::adjacency_matrix(
        &b_row_col,
        &b_col_col,
        Some(b_vals),
        None,
        &out_cols,
        &key_domain,
    );
    let (c, _) = gemm::gemm_bt(&a, &b, precision)?;
    let mut out = Vec::new();
    for (i, j, v) in nonzero::nonzero_with_values(&c) {
        out.push((
            out_rows.value_at(i).clone(),
            out_cols.value_at(j).clone(),
            v as f64,
        ));
    }
    Ok(out)
}

/// Build a CSR adjacency matrix from an edge list — the representation the
/// PageRank / graph workloads feed to TCU-SpMM.  Exposed for the graph
/// examples and the MAGiQ comparison.
pub fn edges_to_csr(num_nodes: usize, edges: &[(usize, usize)]) -> TcuResult<CsrMatrix> {
    let triplets: Vec<(usize, usize, f32)> = edges.iter().map(|&(s, d)| (s, d, 1.0f32)).collect();
    CsrMatrix::from_triplets(num_nodes, num_nodes, &triplets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_group_aggregate_matches_scalar_reference() {
        // A: (ID, Val); B: (ID, Group)
        let a_keys: Vec<Value> = [1, 2, 2, 3, 3, 3].iter().map(|&x| Value::Int(x)).collect();
        let a_vals = [10.0, 20.0, 21.0, 30.0, 31.0, 32.0];
        let b_keys: Vec<Value> = [1, 2, 3, 3].iter().map(|&x| Value::Int(x)).collect();
        let b_groups: Vec<Value> = [100, 100, 200, 300]
            .iter()
            .map(|&x| Value::Int(x))
            .collect();

        let result =
            tcu_group_aggregate(&a_keys, &a_vals, &b_keys, &b_groups, GemmPrecision::Fp32).unwrap();

        // Scalar reference: join on key, group by group value, sum A.val.
        let mut expected: std::collections::HashMap<i64, f64> = std::collections::HashMap::new();
        for (ak, av) in a_keys.iter().zip(&a_vals) {
            for (bk, bg) in b_keys.iter().zip(&b_groups) {
                if ak.sql_eq(bk) {
                    *expected.entry(bg.as_i64().unwrap()).or_default() += av;
                }
            }
        }
        assert_eq!(result.len(), expected.len());
        for (g, sum) in result {
            let g = g.as_i64().unwrap();
            assert!((expected[&g] - sum).abs() < 1e-6, "group {g}");
        }
    }

    #[test]
    fn fused_aggregate_rejects_mismatched_lengths() {
        let r = tcu_group_aggregate(
            &[Value::Int(1)],
            &[1.0, 2.0],
            &[Value::Int(1)],
            &[Value::Int(1)],
            GemmPrecision::Fp32,
        );
        assert!(r.is_err());
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // 2x2 index loops mirror the math
    fn matmul_query_matches_direct_product() {
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]] in coordinate form.
        let mut a_rows = Vec::new();
        let mut a_cols = Vec::new();
        let mut a_vals = Vec::new();
        let mut b_rows = Vec::new();
        let mut b_cols = Vec::new();
        let mut b_vals = Vec::new();
        let a = [[1.0, 2.0], [3.0, 4.0]];
        let b = [[5.0, 6.0], [7.0, 8.0]];
        for i in 0..2 {
            for j in 0..2 {
                a_rows.push(Value::Int(i as i64));
                a_cols.push(Value::Int(j as i64));
                a_vals.push(a[i][j]);
                b_rows.push(Value::Int(i as i64));
                b_cols.push(Value::Int(j as i64));
                b_vals.push(b[i][j]);
            }
        }
        let result = tcu_matmul_query(
            &a_rows,
            &a_cols,
            &a_vals,
            &b_rows,
            &b_cols,
            &b_vals,
            GemmPrecision::Fp32,
        )
        .unwrap();
        // The query computes (AᵀBᵀ)ᵀ-style coordinates: result[(A.col, B.row)]
        // = Σ_key A[key][col]·B[row][key] = (B·A)[row][col] transposed onto
        // (col, row).  Verify against a direct computation of that quantity.
        let mut expected = std::collections::HashMap::new();
        for col in 0..2usize {
            for row in 0..2usize {
                let mut s = 0.0;
                for key in 0..2usize {
                    s += a[key][col] * b[row][key];
                }
                expected.insert((col as i64, row as i64), s);
            }
        }
        assert_eq!(result.len(), 4);
        for (c, r, v) in result {
            let key = (c.as_i64().unwrap(), r.as_i64().unwrap());
            assert!((expected[&key] - v).abs() < 1e-6);
        }
    }

    #[test]
    fn edges_to_csr_builds_adjacency() {
        let csr = edges_to_csr(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.rows(), 4);
        assert!(edges_to_csr(2, &[(5, 0)]).is_err());
    }
}
