//! # tcudb-serve
//!
//! Concurrent query serving for TCUDB: the layer that turns the
//! single-query engine of `tcudb-core` into a front that sustains a
//! stream of statements from many clients at once.
//!
//! ```text
//!   Session (client handle, optional pinned snapshot)
//!      │ submit(sql)
//!      ▼
//!   prepare: plan-cache lookup (normalized SQL + epoch)
//!      │        └─ miss → parse + analyze once, shared by every waiter
//!      ▼
//!   FIFO queue ──┬─ coalesce: identical (SQL, epoch) already queued?
//!                │        └─ attach to that job, one execution fans out
//!                ▼
//!   admission control: Σ estimated working-set bytes of in-flight
//!                      queries ≤ cap  (JoinShape::plan_working_set_bytes)
//!                ▼
//!   worker pool (N threads) → TcuDb::execute_prepared → reply channels
//! ```
//!
//! Three mechanisms make repeated traffic cheap:
//!
//! * the **plan/statement cache** (in `tcudb-core`) pays parse → analyze →
//!   cost once per distinct statement per catalog epoch,
//! * **in-flight coalescing** executes one physical query for any number
//!   of concurrently submitted identical statements against the same
//!   snapshot (read-only queries are deterministic per snapshot, so every
//!   waiter receives a byte-identical result),
//! * **admission control** keeps the device working set bounded: a query
//!   is dispatched only while the sum of the estimated working-set bytes
//!   of running queries stays under the configured cap; everything else
//!   waits in arrival (FIFO) order.  One query is always admitted when
//!   the server is idle, so an over-sized query degrades to serial
//!   execution instead of starving.
//!
//! ## Query lifecycle & overload resilience
//!
//! Every submission gets a [`QueryContext`] — a fresh
//! [`CancellationToken`] plus an optional [`Deadline`] (explicit via
//! [`Session::submit_with_deadline`] or defaulted from
//! [`ServeConfig::default_deadline`]).  The context rides the job through
//! the queue and into `TcuDb::execute_prepared_ctx`, where the engine
//! probes it at every pipeline chunk boundary; a tripped context unwinds
//! with the typed [`TcuError::Cancelled`] / [`TcuError::DeadlineExceeded`]
//! and the worker releases the admission budget exactly as for a success.
//!
//! Overload is met at the door, not in the queue: a submission is
//! rejected with [`TcuError::Overloaded`] when the queue is at
//! [`ServeConfig::max_queue`] depth or its head has waited longer than
//! [`ServeConfig::max_queue_wait`] (both gates skip coalescing attaches,
//! which add no work).  [`Session::cancel`] detaches a session's waiters
//! and cancels executions nobody else is waiting on.
//! [`Server::shutdown`] drains gracefully for up to
//! [`ServeConfig::drain_timeout`], then cancels stragglers and answers
//! queued waiters with `Cancelled` instead of hanging.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tcudb_core::executor::estimate_working_set_bytes;
use tcudb_core::plancache::CachedStatement;
use tcudb_core::{QueryOutput, TcuDb};
use tcudb_storage::CatalogSnapshot;
use tcudb_types::sync::{
    locked, wait_on, wait_on_timeout, CancellationToken, Deadline, QueryContext,
};
use tcudb_types::{TcuError, TcuResult, WorkerPool};

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Admission cap: maximum summed estimated working-set bytes of
    /// concurrently executing queries.  `0.0` derives the cap from the
    /// engine's device profile (its device memory) at server start.
    pub admission_bytes: f64,
    /// Coalesce concurrently submitted identical statements (same
    /// normalized SQL, same catalog epoch) into one execution.
    pub coalesce: bool,
    /// Queue-depth shed threshold: a submission that would make the queue
    /// deeper than this is rejected with [`TcuError::Overloaded`]
    /// (coalescing attaches are exempt — they add no work).  `0` means
    /// unbounded.
    pub max_queue: usize,
    /// Queue-wait shed threshold: while the queue head has been waiting
    /// longer than this, new work is rejected with
    /// [`TcuError::Overloaded`] — the server is visibly not keeping up,
    /// so admitting more would only grow everyone's latency.
    pub max_queue_wait: Option<Duration>,
    /// Deadline applied to every submission that does not carry an
    /// explicit one (see [`Session::submit_with_deadline`]).  The clock
    /// starts at submit, so time spent queued counts.
    pub default_deadline: Option<Duration>,
    /// How long [`Server::shutdown`] waits for queued and in-flight work
    /// to drain before cancelling stragglers.  `None` waits forever (the
    /// pre-resilience behaviour).
    pub drain_timeout: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            admission_bytes: 0.0,
            coalesce: true,
            max_queue: 0,
            max_queue_wait: None,
            default_deadline: None,
            drain_timeout: Some(Duration::from_secs(30)),
        }
    }
}

impl ServeConfig {
    /// A configuration with an explicit worker count.
    pub fn with_workers(workers: usize) -> ServeConfig {
        ServeConfig {
            workers: workers.max(1),
            ..ServeConfig::default()
        }
    }
}

/// Counters describing server behaviour since start.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Statements submitted (including ones that joined an existing job).
    pub submitted: u64,
    /// Executions completed (one per physical execution, not per waiter).
    pub executed: u64,
    /// Submissions answered by attaching to an already queued identical
    /// statement (no additional execution).
    pub coalesced: u64,
    /// Times the queue head had to wait because admitting it would have
    /// pushed the in-flight working set over the cap.
    pub admission_waits: u64,
    /// Executions that returned an error (excluding cancellations and
    /// deadline misses, which have their own counters).
    pub errors: u64,
    /// Submissions rejected with [`TcuError::Overloaded`] by the
    /// queue-depth / queue-wait shed gates.
    pub shed: u64,
    /// Queries that returned [`TcuError::DeadlineExceeded`].
    pub timed_out: u64,
    /// Cancellation events: waiters detached by [`Session::cancel`] or
    /// a hard-stopping shutdown, plus executions that returned
    /// [`TcuError::Cancelled`].
    pub cancelled: u64,
    /// Queue depth at the moment the stats were read.
    pub queue_depth: u64,
    /// Summed estimated working-set bytes executing at the moment the
    /// stats were read.
    pub in_flight_bytes: f64,
    /// Peak summed estimated working-set bytes of concurrently executing
    /// queries.
    pub peak_in_flight_bytes: f64,
    /// Epoch sealed by the graceful-shutdown checkpoint: `Some(e)` when
    /// [`Server::shutdown`] checkpointed a durable engine at epoch `e`,
    /// `None` when the engine is in-memory, nothing new had been
    /// published, or the checkpoint failed (the data is still safe in
    /// the WAL — the next open replays it).
    pub checkpoint_epoch: Option<u64>,
}

/// A pending query: await the result with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<TcuResult<QueryOutput>>,
}

impl Ticket {
    /// Block until the query finishes and return its result.
    pub fn wait(self) -> TcuResult<QueryOutput> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(TcuError::Execution(
                "server shut down before the query completed".into(),
            ))
        })
    }
}

/// One waiter's reply path: a channel feeding a [`Ticket`], or a
/// callback invoked on the worker thread that finished the execution.
/// Callbacks are what the network front end (`tcudb-net`) registers — a
/// reactor cannot block on a channel, so the completion is pushed to it
/// instead.  A callback must be cheap and non-blocking (enqueue + wake);
/// it runs on a serve worker, and stalling it stalls the whole pool.
enum Replier {
    /// Feed a [`Ticket`] waiting on the other end of the channel.
    Channel(mpsc::Sender<TcuResult<QueryOutput>>),
    /// Invoke on completion (result fan-out clones per waiter).
    Callback(Box<dyn FnOnce(TcuResult<QueryOutput>) + Send>),
}

impl Replier {
    /// Deliver the result, consuming the replier.  A waiter that dropped
    /// its ticket is simply skipped.
    fn send(self, result: TcuResult<QueryOutput>) {
        match self {
            Replier::Channel(tx) => {
                let _ = tx.send(result);
            }
            Replier::Callback(f) => f(result),
        }
    }
}

impl std::fmt::Debug for Replier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Replier::Channel(_) => f.write_str("Replier::Channel"),
            Replier::Callback(_) => f.write_str("Replier::Callback"),
        }
    }
}

/// The clients waiting on one physical execution.  `closed` flips when
/// the executing worker claims the list to fan the result out; attachers
/// arriving later start a fresh job instead.  Each replier is tagged with
/// the submitting session's id so [`Session::cancel`] can detach exactly
/// its own waiters.
#[derive(Default)]
struct ReplierSlot {
    senders: Vec<(u64, Replier)>,
    closed: bool,
}

/// One unit of scheduled work: a prepared statement plus every client
/// waiting on its result.
///
/// The plan cache hands out one `Arc<CachedStatement>` per
/// `(normalized SQL, epoch)` pair, so `Arc::ptr_eq` on `entry` is the
/// coalescing identity — no re-normalization, no key strings.
struct Job {
    entry: Arc<CachedStatement>,
    est_bytes: f64,
    repliers: Arc<Mutex<ReplierSlot>>,
    /// The query's cancellation/deadline context; its token is also kept
    /// in `SchedState::running` while the job executes so cancellation
    /// and hard-stop shutdown can reach it.
    ctx: QueryContext,
    enqueued_at: Instant,
    /// Whether this job has already been counted in `admission_waits`
    /// (the counter records blocked jobs, not condvar wakeups).
    counted_wait: bool,
}

/// One executing job as seen by cancellation: its coalescing identity,
/// its waiter list, and its cancellation token.
struct RunningJob {
    entry: Arc<CachedStatement>,
    repliers: Arc<Mutex<ReplierSlot>>,
    token: Option<CancellationToken>,
}

#[derive(Default)]
struct SchedState {
    queue: VecDeque<Job>,
    /// Jobs currently executing on a worker, so identical statements
    /// submitted mid-execution can still attach and cancellation can
    /// reach in-flight tokens.
    running: Vec<RunningJob>,
    in_flight_bytes: f64,
    in_flight: usize,
    peak_in_flight_bytes: f64,
    shutdown: bool,
    /// Set when a draining shutdown ran out of patience: workers stop
    /// taking queued jobs even though the queue may be non-empty.
    hard_stop: bool,
}

struct Shared {
    db: Arc<TcuDb>,
    admission_bytes: f64,
    coalesce: bool,
    max_queue: usize,
    max_queue_wait: Option<Duration>,
    default_deadline: Option<Duration>,
    drain_timeout: Option<Duration>,
    state: Mutex<SchedState>,
    work_ready: Condvar,
    next_session_id: AtomicU64,
    submitted: AtomicU64,
    executed: AtomicU64,
    coalesced: AtomicU64,
    admission_waits: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    timed_out: AtomicU64,
    cancelled: AtomicU64,
}

impl Shared {
    /// Pop the next admissible job, FIFO.  Returns `None` on shutdown
    /// with an empty queue.
    fn next_job(&self) -> Option<Job> {
        let mut state = locked(&self.state);
        loop {
            if state.shutdown && (state.queue.is_empty() || state.hard_stop) {
                return None;
            }
            if let Some(head_est) = state.queue.front().map(|j| j.est_bytes) {
                // Strict FIFO: only the head is considered.  Admit it when
                // it fits under the cap — or unconditionally when nothing
                // is running (otherwise a query estimated above the cap
                // could never run at all).
                let fits = state.in_flight_bytes + head_est <= self.admission_bytes;
                if fits || state.in_flight == 0 {
                    if let Some(job) = state.queue.pop_front() {
                        state.in_flight += 1;
                        state.in_flight_bytes += job.est_bytes;
                        state.peak_in_flight_bytes =
                            state.peak_in_flight_bytes.max(state.in_flight_bytes);
                        state.running.push(RunningJob {
                            entry: Arc::clone(&job.entry),
                            repliers: Arc::clone(&job.repliers),
                            token: job.ctx.token.clone(),
                        });
                        return Some(job);
                    }
                } else if let Some(head) = state.queue.front_mut() {
                    // Count each blocked job once, not once per condvar
                    // wakeup of each idle worker.
                    if !head.counted_wait {
                        head.counted_wait = true;
                        self.admission_waits.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            state = wait_on(&self.work_ready, state);
        }
    }

    fn finish_job(&self, job: &Job) {
        let mut state = locked(&self.state);
        state.in_flight -= 1;
        state.in_flight_bytes -= job.est_bytes;
        state
            .running
            .retain(|r| !Arc::ptr_eq(&r.repliers, &job.repliers));
        drop(state);
        // A completed job frees admission budget: wake every waiter (both
        // workers blocked on admission and `shutdown` joiners).
        self.work_ready.notify_all();
    }

    fn worker_loop(&self) {
        while let Some(job) = self.next_job() {
            // A query cancelled or expired while queued is answered
            // without touching the engine.
            let result = match job.ctx.error_if_done() {
                Err(e) => Err(e),
                Ok(()) => {
                    // Mark this worker busy for the duration of the query so
                    // `WorkerPool::scoped_parallelism` prices morsel fan-out
                    // against the cores actually serving.
                    let _busy = WorkerPool::shared().busy_guard();
                    self.db.execute_prepared_ctx(&job.entry, &job.ctx)
                }
            };
            self.executed.fetch_add(1, Ordering::Relaxed);
            match &result {
                Err(TcuError::Cancelled(_)) => {
                    self.cancelled.fetch_add(1, Ordering::Relaxed);
                }
                Err(TcuError::DeadlineExceeded(_)) => {
                    self.timed_out.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                }
                Ok(_) => {}
            }
            // Claim the waiter list before announcing completion: once
            // `closed`, late identical submissions start a fresh job.
            let senders = {
                let mut slot = locked(&job.repliers);
                slot.closed = true;
                std::mem::take(&mut slot.senders)
            };
            self.finish_job(&job);
            // Fan the one result out to every coalesced waiter.
            for (_, replier) in senders {
                replier.send(result.clone());
            }
        }
    }
}

/// The serving front: a worker pool draining an admission-controlled FIFO
/// queue of prepared statements against a shared [`TcuDb`].
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers.len())
            .field("admission_bytes", &self.shared.admission_bytes)
            .finish()
    }
}

impl Server {
    /// Start a server over an engine, spawning the worker pool.
    ///
    /// Panics only when *no* worker thread could be spawned at all; use
    /// [`Server::try_start`] to handle that case as an error.
    pub fn start(db: Arc<TcuDb>, config: ServeConfig) -> Server {
        // lint: allow(panic) boot-time only: a server with zero workers can never serve
        Self::try_start(db, config).expect("could not spawn any worker thread")
    }

    /// Start a server over an engine, spawning the worker pool.
    ///
    /// Thread spawning can fail under resource exhaustion; a partially
    /// spawned pool is kept (the server just runs with fewer workers),
    /// and only a pool with zero workers is an error — such a server
    /// would accept statements that can never execute.
    pub fn try_start(db: Arc<TcuDb>, config: ServeConfig) -> TcuResult<Server> {
        let admission_bytes = if config.admission_bytes > 0.0 {
            config.admission_bytes
        } else {
            db.config().device.device_mem_bytes as f64
        };
        let shared = Arc::new(Shared {
            db,
            admission_bytes,
            coalesce: config.coalesce,
            max_queue: config.max_queue,
            max_queue_wait: config.max_queue_wait,
            default_deadline: config.default_deadline,
            drain_timeout: config.drain_timeout,
            state: Mutex::new(SchedState::default()),
            work_ready: Condvar::new(),
            next_session_id: AtomicU64::new(1),
            submitted: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            admission_waits: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
        });
        let mut workers = Vec::with_capacity(config.workers.max(1));
        let mut spawn_err = None;
        for i in 0..config.workers.max(1) {
            let shared = Arc::clone(&shared);
            // Workers lease capacity from the shared workspace pool so the
            // morsel scheduler can see how many cores serving occupies.
            match WorkerPool::shared()
                .spawn_worker(format!("tcudb-serve-{i}"), move || shared.worker_loop())
            {
                Ok(handle) => workers.push(handle),
                Err(e) => spawn_err = Some(e),
            }
        }
        if workers.is_empty() {
            let detail = spawn_err
                .map(|e| e.to_string())
                .unwrap_or_else(|| "zero workers requested".into());
            return Err(TcuError::Execution(format!(
                "could not spawn any worker thread: {detail}"
            )));
        }
        Ok(Server { shared, workers })
    }

    /// The engine this server executes against.
    pub fn db(&self) -> &Arc<TcuDb> {
        &self.shared.db
    }

    /// Open a client session (current-snapshot reads; see
    /// [`Session::pin_current`] for repeatable reads).
    pub fn session(&self) -> Session {
        Session {
            shared: Arc::clone(&self.shared),
            pinned: None,
            id: self.shared.next_session_id.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Submit a statement against the current snapshot and wait for it —
    /// convenience for one-off callers; sessions are the normal interface.
    pub fn execute(&self, sql: &str) -> TcuResult<QueryOutput> {
        self.session().execute(sql)
    }

    /// Counters since start (see [`ServerStats`]).
    pub fn stats(&self) -> ServerStats {
        let state = locked(&self.shared.state);
        ServerStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            executed: self.shared.executed.load(Ordering::Relaxed),
            coalesced: self.shared.coalesced.load(Ordering::Relaxed),
            admission_waits: self.shared.admission_waits.load(Ordering::Relaxed),
            errors: self.shared.errors.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            timed_out: self.shared.timed_out.load(Ordering::Relaxed),
            cancelled: self.shared.cancelled.load(Ordering::Relaxed),
            queue_depth: state.queue.len() as u64,
            in_flight_bytes: state.in_flight_bytes,
            peak_in_flight_bytes: state.peak_in_flight_bytes,
            checkpoint_epoch: None,
        }
    }

    /// Drain the queue, stop the workers and return the final counters.
    ///
    /// Draining is bounded by [`ServeConfig::drain_timeout`]: past it,
    /// running queries are cancelled through their tokens (they unwind at
    /// the next engine checkpoint with [`TcuError::Cancelled`]) and
    /// still-queued waiters are answered with the same typed error — the
    /// shutdown never hangs on a straggler.
    ///
    /// On a durable engine a graceful shutdown also checkpoints: the
    /// current epoch is sealed into segment files so the next open
    /// replays nothing from the WAL.  A failed checkpoint is reported as
    /// `checkpoint_epoch: None` and loses nothing — every published
    /// write is already in the log.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop_workers();
        let mut stats = self.stats();
        if self.shared.db.is_durable() {
            stats.checkpoint_epoch = self.shared.db.checkpoint().ok().flatten();
        }
        stats
    }

    fn stop_workers(&mut self) {
        {
            let mut state = locked(&self.shared.state);
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        if let Some(limit) = self.shared.drain_timeout {
            let deadline = Instant::now() + limit;
            let mut state = locked(&self.shared.state);
            while !(state.queue.is_empty() && state.in_flight == 0) {
                let now = Instant::now();
                if now >= deadline {
                    // Out of patience: cancel stragglers instead of
                    // hanging.  Running queries unwind at their next
                    // cancellation checkpoint; queued jobs are answered
                    // here, typed, without executing.
                    state.hard_stop = true;
                    for r in &state.running {
                        if let Some(token) = &r.token {
                            token.cancel();
                        }
                    }
                    let abandoned: Vec<Job> = state.queue.drain(..).collect();
                    drop(state);
                    for job in abandoned {
                        let senders = {
                            let mut slot = locked(&job.repliers);
                            slot.closed = true;
                            std::mem::take(&mut slot.senders)
                        };
                        for (_, replier) in senders {
                            self.shared.cancelled.fetch_add(1, Ordering::Relaxed);
                            replier.send(Err(TcuError::Cancelled(
                                "server shut down before the query ran".into(),
                            )));
                        }
                    }
                    self.shared.work_ready.notify_all();
                    state = locked(&self.shared.state);
                    break;
                }
                let (guard, _) = wait_on_timeout(&self.shared.work_ready, state, deadline - now);
                state = guard;
            }
            drop(state);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// A client handle onto a [`Server`].
///
/// Sessions are cheap (an `Arc` clone) and independent: each decides per
/// statement which catalog snapshot to read — the server's current one by
/// default, or a pinned one after [`Session::pin_current`] (repeatable
/// reads across a sequence of statements).
///
/// Clones share the original's cancellation scope: [`Session::cancel`]
/// on either handle detaches the submissions of both.
#[derive(Clone)]
pub struct Session {
    shared: Arc<Shared>,
    pinned: Option<Arc<CatalogSnapshot>>,
    id: u64,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("id", &self.id)
            .field("pinned_epoch", &self.pinned.as_ref().map(|s| s.epoch()))
            .finish()
    }
}

impl Session {
    /// Pin the catalog snapshot current *now*: until
    /// [`unpin`](Session::unpin), every statement of this session reads
    /// this exact catalog state, regardless of concurrent writes.
    pub fn pin_current(&mut self) -> u64 {
        let snap = self.shared.db.snapshot();
        let epoch = snap.epoch();
        self.pinned = Some(snap);
        epoch
    }

    /// Return to reading the current snapshot per statement.
    pub fn unpin(&mut self) {
        self.pinned = None;
    }

    /// Submit a statement; returns a [`Ticket`] to wait on.
    ///
    /// Parse/analysis errors surface here synchronously (they need no
    /// scheduling); valid statements are enqueued FIFO and possibly
    /// coalesced with an identical in-queue statement.  The statement
    /// runs under [`ServeConfig::default_deadline`] when one is set.
    pub fn submit(&self, sql: &str) -> TcuResult<Ticket> {
        let (tx, rx) = mpsc::channel();
        self.submit_inner(sql, self.shared.default_deadline, Replier::Channel(tx))?;
        Ok(Ticket { rx })
    }

    /// Submit a statement with an explicit deadline, measured from now —
    /// time spent queued counts.  Overrides
    /// [`ServeConfig::default_deadline`].  A statement still queued or
    /// executing past the deadline returns
    /// [`TcuError::DeadlineExceeded`].
    pub fn submit_with_deadline(&self, sql: &str, deadline: Duration) -> TcuResult<Ticket> {
        let (tx, rx) = mpsc::channel();
        self.submit_inner(sql, Some(deadline), Replier::Channel(tx))?;
        Ok(Ticket { rx })
    }

    /// Submit a statement whose result is delivered to `callback` instead
    /// of a [`Ticket`] — the reply path the network front end uses: a
    /// reactor thread cannot block on a channel, so the completion is
    /// pushed into it (enqueue + wake) from the worker that finished the
    /// execution.
    ///
    /// Synchronous rejections (parse/analysis errors, overload shedding,
    /// a shut-down server) surface as the returned `Err` and the callback
    /// is **not** invoked; once this returns `Ok(())`, the callback is
    /// guaranteed to fire exactly once — with the query result, a typed
    /// [`TcuError::Cancelled`] / [`TcuError::DeadlineExceeded`], or the
    /// shutdown cancellation.  The callback runs on a serve worker and
    /// must not block.  `deadline` overrides
    /// [`ServeConfig::default_deadline`] when `Some`.
    pub fn submit_callback(
        &self,
        sql: &str,
        deadline: Option<Duration>,
        callback: impl FnOnce(TcuResult<QueryOutput>) + Send + 'static,
    ) -> TcuResult<()> {
        let deadline = deadline.or(self.shared.default_deadline);
        self.submit_inner(sql, deadline, Replier::Callback(Box::new(callback)))
    }

    fn submit_inner(
        &self,
        sql: &str,
        deadline: Option<Duration>,
        replier: Replier,
    ) -> TcuResult<()> {
        let shared = &self.shared;
        let snapshot = match &self.pinned {
            Some(s) => Arc::clone(s),
            None => shared.db.snapshot(),
        };
        let entry = shared.db.prepare(sql, &snapshot)?;
        // Memoized on the entry: computed once per statement per epoch.
        let est_bytes = entry.working_set_bytes(|| {
            estimate_working_set_bytes(&entry.analyzed, &shared.db.optimizer())
        });
        let mut ctx = QueryContext::with_token(CancellationToken::new());
        if let Some(d) = deadline {
            ctx = ctx.deadline(Deadline::after(d));
        }

        {
            let mut state = locked(&shared.state);
            if state.shutdown {
                return Err(TcuError::Execution("server is shut down".into()));
            }
            if shared.coalesce {
                // Attach to an identical queued statement, or to one that
                // is executing right now but has not fanned out yet —
                // both run against exactly the epoch this submission
                // would (same plan-cache entry, compared by pointer), so
                // the shared result is byte-identical to a private
                // execution.  Attaches bypass the shed gates: they add
                // no queue depth and no execution work.
                let slot = state
                    .queue
                    .iter()
                    .find(|j| Arc::ptr_eq(&j.entry, &entry))
                    .map(|j| Arc::clone(&j.repliers))
                    .or_else(|| {
                        state
                            .running
                            .iter()
                            .find(|r| Arc::ptr_eq(&r.entry, &entry))
                            .map(|r| Arc::clone(&r.repliers))
                    });
                if let Some(slot) = slot {
                    let mut guard = locked(&slot);
                    if !guard.closed {
                        guard.senders.push((self.id, replier));
                        drop(guard);
                        shared.submitted.fetch_add(1, Ordering::Relaxed);
                        shared.coalesced.fetch_add(1, Ordering::Relaxed);
                        drop(state);
                        shared.work_ready.notify_all();
                        return Ok(());
                    }
                    // The execution finished between lookup and attach:
                    // fall through and enqueue a fresh job.
                }
            }
            // Overload shedding: reject (typed, retryable) instead of
            // letting the queue grow without bound or behind a stalled
            // head.  Shed submissions are not counted as `submitted` —
            // nothing was accepted.
            if shared.max_queue > 0 && state.queue.len() >= shared.max_queue {
                shared.shed.fetch_add(1, Ordering::Relaxed);
                return Err(TcuError::Overloaded(format!(
                    "queue is at its depth bound ({})",
                    shared.max_queue
                )));
            }
            if let (Some(limit), Some(head)) = (shared.max_queue_wait, state.queue.front()) {
                let waited = head.enqueued_at.elapsed();
                if waited > limit {
                    shared.shed.fetch_add(1, Ordering::Relaxed);
                    return Err(TcuError::Overloaded(format!(
                        "queue head has waited {waited:?} (shed threshold {limit:?})"
                    )));
                }
            }
            shared.submitted.fetch_add(1, Ordering::Relaxed);
            state.queue.push_back(Job {
                entry,
                est_bytes,
                repliers: Arc::new(Mutex::new(ReplierSlot {
                    senders: vec![(self.id, replier)],
                    closed: false,
                })),
                ctx,
                enqueued_at: Instant::now(),
                counted_wait: false,
            });
        }
        shared.work_ready.notify_all();
        Ok(())
    }

    /// Cancel this session's outstanding submissions.
    ///
    /// Queued waiters are detached and answered immediately with
    /// [`TcuError::Cancelled`]; a queued job left with no waiters is
    /// removed from the queue without executing.  An *executing* job
    /// loses this session's waiters, and its cancellation token fires
    /// when no other session is waiting on it — the engine unwinds at
    /// its next checkpoint and the worker releases the admission budget
    /// normally.  Returns the number of waiters detached.
    pub fn cancel(&self) -> usize {
        let shared = &self.shared;
        let mut detached: Vec<Replier> = Vec::new();
        {
            let mut state = locked(&shared.state);
            // Queued jobs: detach our waiters; drop jobs nobody waits on.
            let mut kept = VecDeque::with_capacity(state.queue.len());
            while let Some(job) = state.queue.pop_front() {
                let now_empty = {
                    let mut slot = locked(&job.repliers);
                    let mine = extract_session(&mut slot.senders, self.id);
                    detached.extend(mine);
                    slot.senders.is_empty()
                };
                if !now_empty {
                    kept.push_back(job);
                }
            }
            state.queue = kept;
            // Executing jobs: detach our waiters; cancel the execution
            // when it has no remaining audience.
            for r in &state.running {
                let mut slot = locked(&r.repliers);
                if slot.closed {
                    continue;
                }
                let mine = extract_session(&mut slot.senders, self.id);
                if !mine.is_empty() && slot.senders.is_empty() {
                    if let Some(token) = &r.token {
                        token.cancel();
                    }
                }
                detached.extend(mine);
            }
        }
        shared.work_ready.notify_all();
        shared
            .cancelled
            .fetch_add(detached.len() as u64, Ordering::Relaxed);
        let n = detached.len();
        for replier in detached {
            replier.send(Err(TcuError::Cancelled("cancelled by session".into())));
        }
        n
    }

    /// Submit a statement and block until its result arrives.
    pub fn execute(&self, sql: &str) -> TcuResult<QueryOutput> {
        self.submit(sql)?.wait()
    }
}

/// Remove and return the repliers belonging to `session_id`.
fn extract_session(senders: &mut Vec<(u64, Replier)>, session_id: u64) -> Vec<Replier> {
    let all = std::mem::take(senders);
    let (mine, keep): (Vec<_>, Vec<_>) = all.into_iter().partition(|(sid, _)| *sid == session_id);
    *senders = keep;
    mine.into_iter().map(|(_, replier)| replier).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcudb_storage::Table;
    use tcudb_types::Value;

    fn engine() -> Arc<TcuDb> {
        let db = TcuDb::default();
        db.register_table(
            Table::from_int_columns(
                "A",
                &[("id", vec![1, 1, 2, 3]), ("val", vec![10, 11, 20, 30])],
            )
            .unwrap(),
        );
        db.register_table(
            Table::from_int_columns("B", &[("id", vec![1, 2, 2]), ("val", vec![5, 6, 7])]).unwrap(),
        );
        Arc::new(db)
    }

    const JOIN: &str = "SELECT A.val, B.val FROM A, B WHERE A.id = B.id";

    #[test]
    fn serial_and_served_results_agree() {
        let db = engine();
        let serial = db.execute(JOIN).unwrap();
        let server = Server::start(Arc::clone(&db), ServeConfig::with_workers(2));
        let served = server.execute(JOIN).unwrap();
        assert_eq!(serial.table, served.table);
        assert_eq!(serial.plan.steps, served.plan.steps);
        let stats = server.shutdown();
        assert_eq!(stats.executed, 1);
        assert_eq!(stats.errors, 0);
    }

    #[test]
    fn many_clients_one_server_byte_identical() {
        let db = engine();
        let expected = db.execute(JOIN).unwrap().table;
        let server = Server::start(Arc::clone(&db), ServeConfig::with_workers(3));
        std::thread::scope(|s| {
            for _ in 0..6 {
                let session = server.session();
                let expected = &expected;
                s.spawn(move || {
                    for _ in 0..10 {
                        let out = session.execute(JOIN).unwrap();
                        assert_eq!(&out.table, expected);
                    }
                });
            }
        });
        let stats = server.shutdown();
        assert_eq!(stats.submitted, 60);
        // Every submission was answered, by execution or by coalescing.
        assert_eq!(stats.executed + stats.coalesced, 60);
    }

    #[test]
    fn coalescing_executes_once_for_concurrent_identical_statements() {
        let db = engine();
        // A single worker guarantees the queue backs up, so identical
        // submissions must coalesce.
        let server = Server::start(Arc::clone(&db), ServeConfig::with_workers(1));
        let session = server.session();
        let tickets: Vec<Ticket> = (0..8).map(|_| session.submit(JOIN).unwrap()).collect();
        let expected = db.execute(JOIN).unwrap().table;
        for t in tickets {
            assert_eq!(t.wait().unwrap().table, expected);
        }
        let stats = server.shutdown();
        assert_eq!(stats.submitted, 8);
        assert!(stats.coalesced >= 1, "stats: {stats:?}");
        assert!(stats.executed < 8);
    }

    #[test]
    fn admission_cap_serializes_oversized_queries() {
        let db = engine();
        // A 1-byte cap admits only via the idle-server escape hatch: every
        // query runs strictly alone.
        let server = Server::start(
            Arc::clone(&db),
            ServeConfig {
                workers: 4,
                admission_bytes: 1.0,
                coalesce: false,
                ..ServeConfig::default()
            },
        );
        let session = server.session();
        let tickets: Vec<Ticket> = (0..6).map(|_| session.submit(JOIN).unwrap()).collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let stats = server.shutdown();
        assert_eq!(stats.executed, 6);
        // The cap kept executions strictly serial: the peak in-flight
        // working set never exceeded a single query's estimate.
        let snap = db.snapshot();
        let entry = db.prepare(JOIN, &snap).unwrap();
        let one = estimate_working_set_bytes(&entry.analyzed, &db.optimizer());
        assert!(one > 1.0, "estimate should exceed the cap");
        assert!(
            stats.peak_in_flight_bytes <= one,
            "peak {} vs single estimate {one}",
            stats.peak_in_flight_bytes
        );
    }

    #[test]
    fn pinned_sessions_are_repeatable_under_ingest() {
        let db = engine();
        let server = Server::start(Arc::clone(&db), ServeConfig::with_workers(2));
        let mut pinned = server.session();
        pinned.pin_current();
        let before = pinned.execute(JOIN).unwrap().table;
        db.append_rows("B", vec![vec![Value::Int(3), Value::Int(9)]])
            .unwrap();
        // The pinned session still sees the pre-ingest catalog...
        assert_eq!(pinned.execute(JOIN).unwrap().table, before);
        // ...an unpinned session sees the new row.
        let fresh = server.session().execute(JOIN).unwrap();
        assert_eq!(fresh.table.num_rows(), before.num_rows() + 1);
        let mut unpinned = pinned.clone();
        unpinned.unpin();
        assert_eq!(unpinned.execute(JOIN).unwrap().table, fresh.table);
    }

    #[test]
    fn callback_submissions_fire_exactly_once() {
        let db = engine();
        let expected = db.execute(JOIN).unwrap().table;
        let server = Server::start(Arc::clone(&db), ServeConfig::with_workers(2));
        let session = server.session();
        let (tx, rx) = mpsc::channel();
        session
            .submit_callback(JOIN, None, move |result| {
                tx.send(result).unwrap();
            })
            .unwrap();
        let out = rx.recv().unwrap().unwrap();
        assert_eq!(out.table, expected);
        // Synchronous rejection: the callback never fires, the error is
        // returned directly.
        let (tx, rx) = mpsc::channel::<TcuResult<QueryOutput>>();
        assert!(session
            .submit_callback("SELEKT nope", None, move |r| {
                tx.send(r).unwrap();
            })
            .is_err());
        assert!(rx.recv().is_err(), "callback must not fire on sync errors");
        let stats = server.shutdown();
        assert_eq!(stats.executed, 1);
    }

    #[test]
    fn parse_errors_surface_synchronously() {
        let db = engine();
        let server = Server::start(db, ServeConfig::with_workers(1));
        assert!(server.session().submit("SELEKT nope").is_err());
        let stats = server.shutdown();
        assert_eq!(stats.executed, 0);
    }

    /// Distinct statements so nothing coalesces (coalescing attaches are
    /// exempt from shedding by design).
    fn distinct_sql(i: usize) -> String {
        format!("SELECT A.val, B.val FROM A, B WHERE A.id = B.id AND A.val > {i}")
    }

    #[test]
    fn queue_depth_bound_sheds_with_typed_error() {
        let db = engine();
        // A 1-byte admission cap serializes execution and max_queue: 1
        // bounds the backlog, so a fast burst of distinct statements
        // must either complete or shed.  Timing decides how many of
        // each; the counter invariants must hold for any split.
        let server = Server::start(
            Arc::clone(&db),
            ServeConfig {
                workers: 1,
                admission_bytes: 1.0,
                coalesce: false,
                max_queue: 1,
                ..ServeConfig::default()
            },
        );
        let session = server.session();
        let mut tickets = Vec::new();
        let mut shed = 0u64;
        for i in 0..32 {
            match session.submit(&distinct_sql(i)) {
                Ok(t) => tickets.push(t),
                Err(TcuError::Overloaded(_)) => shed += 1,
                Err(e) => panic!("unexpected error kind: {e}"),
            }
        }
        for t in tickets {
            t.wait().unwrap();
        }
        let stats = server.shutdown();
        assert_eq!(stats.shed, shed);
        assert_eq!(stats.submitted, 32 - shed);
        assert_eq!(stats.executed, 32 - shed);
        assert!(
            stats.queue_depth == 0 && stats.in_flight_bytes == 0.0,
            "drained server should report an idle scheduler: {stats:?}"
        );
    }

    #[test]
    fn expired_deadline_returns_typed_error_without_executing() {
        let db = engine();
        let server = Server::start(Arc::clone(&db), ServeConfig::with_workers(1));
        let session = server.session();
        // A zero deadline is already expired when the worker picks the
        // job up: the reply must be DeadlineExceeded, typed, not a hang.
        let t = session
            .submit_with_deadline(JOIN, Duration::from_secs(0))
            .unwrap();
        match t.wait() {
            Err(TcuError::DeadlineExceeded(_)) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let stats = server.shutdown();
        assert_eq!(stats.timed_out, 1);
        assert_eq!(stats.errors, 0, "deadline misses are not generic errors");
    }

    #[test]
    fn default_deadline_applies_to_plain_submits() {
        let db = engine();
        let server = Server::start(
            Arc::clone(&db),
            ServeConfig {
                workers: 1,
                default_deadline: Some(Duration::from_secs(0)),
                ..ServeConfig::default()
            },
        );
        match server.session().execute(JOIN) {
            Err(TcuError::DeadlineExceeded(_)) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn session_cancel_answers_queued_waiters() {
        let db = engine();
        // Stall the queue: zero workers is impossible, so use a long
        // queue behind a paused worker via admission: a 1-byte cap plus
        // in-flight work keeps queued jobs waiting.  Simplest determin-
        // istic arrangement: submit with an already-expired deadline so
        // the worker is busy answering, then cancel the rest.
        let server = Server::start(
            Arc::clone(&db),
            ServeConfig {
                workers: 1,
                admission_bytes: 1.0,
                coalesce: false,
                ..ServeConfig::default()
            },
        );
        let victim = server.session();
        let bystander = server.session();
        let mut victim_tickets = Vec::new();
        let mut bystander_tickets = Vec::new();
        for i in 0..8 {
            victim_tickets.push(victim.submit(&distinct_sql(i)).unwrap());
            bystander_tickets.push(bystander.submit(&distinct_sql(100 + i)).unwrap());
        }
        let detached = victim.cancel();
        // Everything detached is answered with the typed cancellation;
        // anything already executed (the race is inherent) succeeded.
        let mut cancelled_seen = 0;
        for t in victim_tickets {
            match t.wait() {
                Err(TcuError::Cancelled(_)) => cancelled_seen += 1,
                Ok(_) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(cancelled_seen, detached);
        // The bystander session is untouched.
        for t in bystander_tickets {
            t.wait().unwrap();
        }
        let stats = server.shutdown();
        assert!(stats.cancelled >= detached as u64);
    }

    #[test]
    fn shutdown_with_zero_drain_timeout_cancels_queued_work() {
        let db = engine();
        let server = Server::start(
            Arc::clone(&db),
            ServeConfig {
                workers: 1,
                admission_bytes: 1.0,
                coalesce: false,
                drain_timeout: Some(Duration::from_millis(0)),
                ..ServeConfig::default()
            },
        );
        let session = server.session();
        let tickets: Vec<Ticket> = (0..16)
            .map(|i| session.submit(&distinct_sql(i)).unwrap())
            .collect();
        let stats = server.shutdown();
        // Every ticket is answered — success for whatever ran, the typed
        // cancellation for whatever was abandoned.  Never a hang.
        let mut done = 0u64;
        let mut cancelled = 0u64;
        for t in tickets {
            match t.wait() {
                Ok(_) => done += 1,
                Err(TcuError::Cancelled(_)) => cancelled += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(done + cancelled, 16);
        assert_eq!(stats.executed, done);
        assert!(stats.cancelled >= cancelled);
    }

    #[test]
    fn cancelled_and_shed_queries_never_leak_admission_budget() {
        let db = engine();
        let server = Server::start(
            Arc::clone(&db),
            ServeConfig {
                workers: 2,
                admission_bytes: 1.0,
                coalesce: false,
                max_queue: 4,
                default_deadline: Some(Duration::from_secs(0)),
                ..ServeConfig::default()
            },
        );
        let session = server.session();
        let mut tickets = Vec::new();
        for i in 0..64 {
            if let Ok(t) = session.submit(&distinct_sql(i)) {
                tickets.push(t);
            }
        }
        session.cancel();
        for t in tickets {
            let _ = t.wait();
        }
        let stats = server.stats();
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.in_flight_bytes, 0.0);
        server.shutdown();
    }
}
