//! # tcudb-serve
//!
//! Concurrent query serving for TCUDB: the layer that turns the
//! single-query engine of `tcudb-core` into a front that sustains a
//! stream of statements from many clients at once.
//!
//! ```text
//!   Session (client handle, optional pinned snapshot)
//!      │ submit(sql)
//!      ▼
//!   prepare: plan-cache lookup (normalized SQL + epoch)
//!      │        └─ miss → parse + analyze once, shared by every waiter
//!      ▼
//!   FIFO queue ──┬─ coalesce: identical (SQL, epoch) already queued?
//!                │        └─ attach to that job, one execution fans out
//!                ▼
//!   admission control: Σ estimated working-set bytes of in-flight
//!                      queries ≤ cap  (JoinShape::plan_working_set_bytes)
//!                ▼
//!   worker pool (N threads) → TcuDb::execute_prepared → reply channels
//! ```
//!
//! Three mechanisms make repeated traffic cheap:
//!
//! * the **plan/statement cache** (in `tcudb-core`) pays parse → analyze →
//!   cost once per distinct statement per catalog epoch,
//! * **in-flight coalescing** executes one physical query for any number
//!   of concurrently submitted identical statements against the same
//!   snapshot (read-only queries are deterministic per snapshot, so every
//!   waiter receives a byte-identical result),
//! * **admission control** keeps the device working set bounded: a query
//!   is dispatched only while the sum of the estimated working-set bytes
//!   of running queries stays under the configured cap; everything else
//!   waits in arrival (FIFO) order.  One query is always admitted when
//!   the server is idle, so an over-sized query degrades to serial
//!   execution instead of starving.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use tcudb_core::executor::estimate_working_set_bytes;
use tcudb_core::plancache::CachedStatement;
use tcudb_core::{QueryOutput, TcuDb};
use tcudb_storage::CatalogSnapshot;
use tcudb_types::sync::{locked, wait_on};
use tcudb_types::{TcuError, TcuResult};

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Admission cap: maximum summed estimated working-set bytes of
    /// concurrently executing queries.  `0.0` derives the cap from the
    /// engine's device profile (its device memory) at server start.
    pub admission_bytes: f64,
    /// Coalesce concurrently submitted identical statements (same
    /// normalized SQL, same catalog epoch) into one execution.
    pub coalesce: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            admission_bytes: 0.0,
            coalesce: true,
        }
    }
}

impl ServeConfig {
    /// A configuration with an explicit worker count.
    pub fn with_workers(workers: usize) -> ServeConfig {
        ServeConfig {
            workers: workers.max(1),
            ..ServeConfig::default()
        }
    }
}

/// Counters describing server behaviour since start.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Statements submitted (including ones that joined an existing job).
    pub submitted: u64,
    /// Executions completed (one per physical execution, not per waiter).
    pub executed: u64,
    /// Submissions answered by attaching to an already queued identical
    /// statement (no additional execution).
    pub coalesced: u64,
    /// Times the queue head had to wait because admitting it would have
    /// pushed the in-flight working set over the cap.
    pub admission_waits: u64,
    /// Executions that returned an error.
    pub errors: u64,
    /// Peak summed estimated working-set bytes of concurrently executing
    /// queries.
    pub peak_in_flight_bytes: f64,
    /// Epoch sealed by the graceful-shutdown checkpoint: `Some(e)` when
    /// [`Server::shutdown`] checkpointed a durable engine at epoch `e`,
    /// `None` when the engine is in-memory, nothing new had been
    /// published, or the checkpoint failed (the data is still safe in
    /// the WAL — the next open replays it).
    pub checkpoint_epoch: Option<u64>,
}

/// A pending query: await the result with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<TcuResult<QueryOutput>>,
}

impl Ticket {
    /// Block until the query finishes and return its result.
    pub fn wait(self) -> TcuResult<QueryOutput> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(TcuError::Execution(
                "server shut down before the query completed".into(),
            ))
        })
    }
}

/// The clients waiting on one physical execution.  `closed` flips when
/// the executing worker claims the list to fan the result out; attachers
/// arriving later start a fresh job instead.
#[derive(Default)]
struct ReplierSlot {
    senders: Vec<mpsc::Sender<TcuResult<QueryOutput>>>,
    closed: bool,
}

/// One unit of scheduled work: a prepared statement plus every client
/// waiting on its result.
///
/// The plan cache hands out one `Arc<CachedStatement>` per
/// `(normalized SQL, epoch)` pair, so `Arc::ptr_eq` on `entry` is the
/// coalescing identity — no re-normalization, no key strings.
struct Job {
    entry: Arc<CachedStatement>,
    est_bytes: f64,
    repliers: Arc<Mutex<ReplierSlot>>,
    /// Whether this job has already been counted in `admission_waits`
    /// (the counter records blocked jobs, not condvar wakeups).
    counted_wait: bool,
}

#[derive(Default)]
struct SchedState {
    queue: VecDeque<Job>,
    /// `(entry, repliers)` of jobs currently executing on a worker, so
    /// identical statements submitted mid-execution can still attach.
    running: Vec<(Arc<CachedStatement>, Arc<Mutex<ReplierSlot>>)>,
    in_flight_bytes: f64,
    in_flight: usize,
    peak_in_flight_bytes: f64,
    shutdown: bool,
}

struct Shared {
    db: Arc<TcuDb>,
    admission_bytes: f64,
    coalesce: bool,
    state: Mutex<SchedState>,
    work_ready: Condvar,
    submitted: AtomicU64,
    executed: AtomicU64,
    coalesced: AtomicU64,
    admission_waits: AtomicU64,
    errors: AtomicU64,
}

impl Shared {
    /// Pop the next admissible job, FIFO.  Returns `None` on shutdown
    /// with an empty queue.
    fn next_job(&self) -> Option<Job> {
        let mut state = locked(&self.state);
        loop {
            if state.shutdown && state.queue.is_empty() {
                return None;
            }
            if let Some(head_est) = state.queue.front().map(|j| j.est_bytes) {
                // Strict FIFO: only the head is considered.  Admit it when
                // it fits under the cap — or unconditionally when nothing
                // is running (otherwise a query estimated above the cap
                // could never run at all).
                let fits = state.in_flight_bytes + head_est <= self.admission_bytes;
                if fits || state.in_flight == 0 {
                    if let Some(job) = state.queue.pop_front() {
                        state.in_flight += 1;
                        state.in_flight_bytes += job.est_bytes;
                        state.peak_in_flight_bytes =
                            state.peak_in_flight_bytes.max(state.in_flight_bytes);
                        if self.coalesce {
                            state
                                .running
                                .push((Arc::clone(&job.entry), Arc::clone(&job.repliers)));
                        }
                        return Some(job);
                    }
                } else if let Some(head) = state.queue.front_mut() {
                    // Count each blocked job once, not once per condvar
                    // wakeup of each idle worker.
                    if !head.counted_wait {
                        head.counted_wait = true;
                        self.admission_waits.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            state = wait_on(&self.work_ready, state);
        }
    }

    fn finish_job(&self, job: &Job) {
        let mut state = locked(&self.state);
        state.in_flight -= 1;
        state.in_flight_bytes -= job.est_bytes;
        state
            .running
            .retain(|(_, slot)| !Arc::ptr_eq(slot, &job.repliers));
        drop(state);
        // A completed job frees admission budget: wake every waiter (both
        // workers blocked on admission and `shutdown` joiners).
        self.work_ready.notify_all();
    }

    fn worker_loop(&self) {
        while let Some(job) = self.next_job() {
            let result = self.db.execute_prepared(&job.entry);
            self.executed.fetch_add(1, Ordering::Relaxed);
            if result.is_err() {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
            // Claim the waiter list before announcing completion: once
            // `closed`, late identical submissions start a fresh job.
            let senders = {
                let mut slot = locked(&job.repliers);
                slot.closed = true;
                std::mem::take(&mut slot.senders)
            };
            self.finish_job(&job);
            // Fan the one result out to every coalesced waiter.  A waiter
            // that dropped its ticket is simply skipped.
            for tx in senders {
                let _ = tx.send(result.clone());
            }
        }
    }
}

/// The serving front: a worker pool draining an admission-controlled FIFO
/// queue of prepared statements against a shared [`TcuDb`].
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers.len())
            .field("admission_bytes", &self.shared.admission_bytes)
            .finish()
    }
}

impl Server {
    /// Start a server over an engine, spawning the worker pool.
    ///
    /// Panics only when *no* worker thread could be spawned at all; use
    /// [`Server::try_start`] to handle that case as an error.
    pub fn start(db: Arc<TcuDb>, config: ServeConfig) -> Server {
        // lint: allow(panic) boot-time only: a server with zero workers can never serve
        Self::try_start(db, config).expect("could not spawn any worker thread")
    }

    /// Start a server over an engine, spawning the worker pool.
    ///
    /// Thread spawning can fail under resource exhaustion; a partially
    /// spawned pool is kept (the server just runs with fewer workers),
    /// and only a pool with zero workers is an error — such a server
    /// would accept statements that can never execute.
    pub fn try_start(db: Arc<TcuDb>, config: ServeConfig) -> TcuResult<Server> {
        let admission_bytes = if config.admission_bytes > 0.0 {
            config.admission_bytes
        } else {
            db.config().device.device_mem_bytes as f64
        };
        let shared = Arc::new(Shared {
            db,
            admission_bytes,
            coalesce: config.coalesce,
            state: Mutex::new(SchedState::default()),
            work_ready: Condvar::new(),
            submitted: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            admission_waits: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        });
        let mut workers = Vec::with_capacity(config.workers.max(1));
        let mut spawn_err = None;
        for i in 0..config.workers.max(1) {
            let shared = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("tcudb-serve-{i}"))
                .spawn(move || shared.worker_loop())
            {
                Ok(handle) => workers.push(handle),
                Err(e) => spawn_err = Some(e),
            }
        }
        if workers.is_empty() {
            let detail = spawn_err
                .map(|e| e.to_string())
                .unwrap_or_else(|| "zero workers requested".into());
            return Err(TcuError::Execution(format!(
                "could not spawn any worker thread: {detail}"
            )));
        }
        Ok(Server { shared, workers })
    }

    /// The engine this server executes against.
    pub fn db(&self) -> &Arc<TcuDb> {
        &self.shared.db
    }

    /// Open a client session (current-snapshot reads; see
    /// [`Session::pin_current`] for repeatable reads).
    pub fn session(&self) -> Session {
        Session {
            shared: Arc::clone(&self.shared),
            pinned: None,
        }
    }

    /// Submit a statement against the current snapshot and wait for it —
    /// convenience for one-off callers; sessions are the normal interface.
    pub fn execute(&self, sql: &str) -> TcuResult<QueryOutput> {
        self.session().execute(sql)
    }

    /// Counters since start (see [`ServerStats`]).
    pub fn stats(&self) -> ServerStats {
        let state = locked(&self.shared.state);
        ServerStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            executed: self.shared.executed.load(Ordering::Relaxed),
            coalesced: self.shared.coalesced.load(Ordering::Relaxed),
            admission_waits: self.shared.admission_waits.load(Ordering::Relaxed),
            errors: self.shared.errors.load(Ordering::Relaxed),
            peak_in_flight_bytes: state.peak_in_flight_bytes,
            checkpoint_epoch: None,
        }
    }

    /// Drain the queue, stop the workers and return the final counters.
    ///
    /// On a durable engine a graceful shutdown also checkpoints: the
    /// current epoch is sealed into segment files so the next open
    /// replays nothing from the WAL.  A failed checkpoint is reported as
    /// `checkpoint_epoch: None` and loses nothing — every published
    /// write is already in the log.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop_workers();
        let mut stats = self.stats();
        if self.shared.db.is_durable() {
            stats.checkpoint_epoch = self.shared.db.checkpoint().ok().flatten();
        }
        stats
    }

    fn stop_workers(&mut self) {
        {
            let mut state = locked(&self.shared.state);
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// A client handle onto a [`Server`].
///
/// Sessions are cheap (an `Arc` clone) and independent: each decides per
/// statement which catalog snapshot to read — the server's current one by
/// default, or a pinned one after [`Session::pin_current`] (repeatable
/// reads across a sequence of statements).
#[derive(Clone)]
pub struct Session {
    shared: Arc<Shared>,
    pinned: Option<Arc<CatalogSnapshot>>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("pinned_epoch", &self.pinned.as_ref().map(|s| s.epoch()))
            .finish()
    }
}

impl Session {
    /// Pin the catalog snapshot current *now*: until
    /// [`unpin`](Session::unpin), every statement of this session reads
    /// this exact catalog state, regardless of concurrent writes.
    pub fn pin_current(&mut self) -> u64 {
        let snap = self.shared.db.snapshot();
        let epoch = snap.epoch();
        self.pinned = Some(snap);
        epoch
    }

    /// Return to reading the current snapshot per statement.
    pub fn unpin(&mut self) {
        self.pinned = None;
    }

    /// Submit a statement; returns a [`Ticket`] to wait on.
    ///
    /// Parse/analysis errors surface here synchronously (they need no
    /// scheduling); valid statements are enqueued FIFO and possibly
    /// coalesced with an identical in-queue statement.
    pub fn submit(&self, sql: &str) -> TcuResult<Ticket> {
        let shared = &self.shared;
        let snapshot = match &self.pinned {
            Some(s) => Arc::clone(s),
            None => shared.db.snapshot(),
        };
        let entry = shared.db.prepare(sql, &snapshot)?;
        // Memoized on the entry: computed once per statement per epoch.
        let est_bytes = entry.working_set_bytes(|| {
            estimate_working_set_bytes(&entry.analyzed, &shared.db.optimizer())
        });

        let (tx, rx) = mpsc::channel();
        {
            let mut state = locked(&shared.state);
            if state.shutdown {
                return Err(TcuError::Execution("server is shut down".into()));
            }
            shared.submitted.fetch_add(1, Ordering::Relaxed);
            if shared.coalesce {
                // Attach to an identical queued statement, or to one that
                // is executing right now but has not fanned out yet —
                // both run against exactly the epoch this submission
                // would (same plan-cache entry, compared by pointer), so
                // the shared result is byte-identical to a private
                // execution.
                let slot = state
                    .queue
                    .iter()
                    .find(|j| Arc::ptr_eq(&j.entry, &entry))
                    .map(|j| Arc::clone(&j.repliers))
                    .or_else(|| {
                        state
                            .running
                            .iter()
                            .find(|(e, _)| Arc::ptr_eq(e, &entry))
                            .map(|(_, slot)| Arc::clone(slot))
                    });
                if let Some(slot) = slot {
                    let mut guard = locked(&slot);
                    if !guard.closed {
                        guard.senders.push(tx);
                        drop(guard);
                        shared.coalesced.fetch_add(1, Ordering::Relaxed);
                        drop(state);
                        shared.work_ready.notify_all();
                        return Ok(Ticket { rx });
                    }
                    // The execution finished between lookup and attach:
                    // fall through and enqueue a fresh job.
                }
            }
            state.queue.push_back(Job {
                entry,
                est_bytes,
                repliers: Arc::new(Mutex::new(ReplierSlot {
                    senders: vec![tx],
                    closed: false,
                })),
                counted_wait: false,
            });
        }
        shared.work_ready.notify_all();
        Ok(Ticket { rx })
    }

    /// Submit a statement and block until its result arrives.
    pub fn execute(&self, sql: &str) -> TcuResult<QueryOutput> {
        self.submit(sql)?.wait()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcudb_storage::Table;
    use tcudb_types::Value;

    fn engine() -> Arc<TcuDb> {
        let db = TcuDb::default();
        db.register_table(
            Table::from_int_columns(
                "A",
                &[("id", vec![1, 1, 2, 3]), ("val", vec![10, 11, 20, 30])],
            )
            .unwrap(),
        );
        db.register_table(
            Table::from_int_columns("B", &[("id", vec![1, 2, 2]), ("val", vec![5, 6, 7])]).unwrap(),
        );
        Arc::new(db)
    }

    const JOIN: &str = "SELECT A.val, B.val FROM A, B WHERE A.id = B.id";

    #[test]
    fn serial_and_served_results_agree() {
        let db = engine();
        let serial = db.execute(JOIN).unwrap();
        let server = Server::start(Arc::clone(&db), ServeConfig::with_workers(2));
        let served = server.execute(JOIN).unwrap();
        assert_eq!(serial.table, served.table);
        assert_eq!(serial.plan.steps, served.plan.steps);
        let stats = server.shutdown();
        assert_eq!(stats.executed, 1);
        assert_eq!(stats.errors, 0);
    }

    #[test]
    fn many_clients_one_server_byte_identical() {
        let db = engine();
        let expected = db.execute(JOIN).unwrap().table;
        let server = Server::start(Arc::clone(&db), ServeConfig::with_workers(3));
        std::thread::scope(|s| {
            for _ in 0..6 {
                let session = server.session();
                let expected = &expected;
                s.spawn(move || {
                    for _ in 0..10 {
                        let out = session.execute(JOIN).unwrap();
                        assert_eq!(&out.table, expected);
                    }
                });
            }
        });
        let stats = server.shutdown();
        assert_eq!(stats.submitted, 60);
        // Every submission was answered, by execution or by coalescing.
        assert_eq!(stats.executed + stats.coalesced, 60);
    }

    #[test]
    fn coalescing_executes_once_for_concurrent_identical_statements() {
        let db = engine();
        // A single worker guarantees the queue backs up, so identical
        // submissions must coalesce.
        let server = Server::start(Arc::clone(&db), ServeConfig::with_workers(1));
        let session = server.session();
        let tickets: Vec<Ticket> = (0..8).map(|_| session.submit(JOIN).unwrap()).collect();
        let expected = db.execute(JOIN).unwrap().table;
        for t in tickets {
            assert_eq!(t.wait().unwrap().table, expected);
        }
        let stats = server.shutdown();
        assert_eq!(stats.submitted, 8);
        assert!(stats.coalesced >= 1, "stats: {stats:?}");
        assert!(stats.executed < 8);
    }

    #[test]
    fn admission_cap_serializes_oversized_queries() {
        let db = engine();
        // A 1-byte cap admits only via the idle-server escape hatch: every
        // query runs strictly alone.
        let server = Server::start(
            Arc::clone(&db),
            ServeConfig {
                workers: 4,
                admission_bytes: 1.0,
                coalesce: false,
            },
        );
        let session = server.session();
        let tickets: Vec<Ticket> = (0..6).map(|_| session.submit(JOIN).unwrap()).collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let stats = server.shutdown();
        assert_eq!(stats.executed, 6);
        // The cap kept executions strictly serial: the peak in-flight
        // working set never exceeded a single query's estimate.
        let snap = db.snapshot();
        let entry = db.prepare(JOIN, &snap).unwrap();
        let one = estimate_working_set_bytes(&entry.analyzed, &db.optimizer());
        assert!(one > 1.0, "estimate should exceed the cap");
        assert!(
            stats.peak_in_flight_bytes <= one,
            "peak {} vs single estimate {one}",
            stats.peak_in_flight_bytes
        );
    }

    #[test]
    fn pinned_sessions_are_repeatable_under_ingest() {
        let db = engine();
        let server = Server::start(Arc::clone(&db), ServeConfig::with_workers(2));
        let mut pinned = server.session();
        pinned.pin_current();
        let before = pinned.execute(JOIN).unwrap().table;
        db.append_rows("B", vec![vec![Value::Int(3), Value::Int(9)]])
            .unwrap();
        // The pinned session still sees the pre-ingest catalog...
        assert_eq!(pinned.execute(JOIN).unwrap().table, before);
        // ...an unpinned session sees the new row.
        let fresh = server.session().execute(JOIN).unwrap();
        assert_eq!(fresh.table.num_rows(), before.num_rows() + 1);
        let mut unpinned = pinned.clone();
        unpinned.unpin();
        assert_eq!(unpinned.execute(JOIN).unwrap().table, fresh.table);
    }

    #[test]
    fn parse_errors_surface_synchronously() {
        let db = engine();
        let server = Server::start(db, ServeConfig::with_workers(1));
        assert!(server.session().submit("SELEKT nope").is_err());
        let stats = server.shutdown();
        assert_eq!(stats.executed, 0);
    }
}
