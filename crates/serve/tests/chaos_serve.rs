//! Serve-level chaos: cancellation, deadlines, overload shedding and
//! transient storage faults composed against one live server.
//!
//! The contract being checked:
//!
//! * every submission resolves — with a result or a typed error
//!   ([`TcuError::Overloaded`], [`TcuError::Cancelled`],
//!   [`TcuError::DeadlineExceeded`]) — never a panic or a hang;
//! * admission accounting returns to zero once the storm passes
//!   (`queue_depth == 0`, `in_flight_bytes == 0`), so aborted queries
//!   leak no budget;
//! * the server stays live throughout and shuts down cleanly;
//! * writer durability is untouched by the chaos: transient backend
//!   blips are retried, and every acknowledged write survives reboot
//!   and recovery.

use std::sync::Arc;
use std::time::Duration;
use tcudb_core::{EngineConfig, TcuDb};
use tcudb_serve::{ServeConfig, Server};
use tcudb_storage::{DurabilityOptions, MemBackend, Table};
use tcudb_types::{TcuError, Value};

fn open_durable(be: &MemBackend) -> TcuDb {
    TcuDb::open_with_backend(
        Arc::new(be.clone()),
        EngineConfig::default(),
        DurabilityOptions::strict_manual(),
    )
    .expect("open durable engine")
}

fn seed_tables(db: &TcuDb, b_rows: i64) {
    db.try_register_table(
        Table::from_int_columns(
            "A",
            &[
                ("id", vec![1, 2, 3, 4, 5]),
                ("val", vec![10, 20, 30, 40, 50]),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    let ids: Vec<i64> = (0..b_rows).map(|i| i % 6).collect();
    let vals: Vec<i64> = (0..b_rows).map(|i| 100 + i).collect();
    db.try_register_table(Table::from_int_columns("B", &[("id", ids), ("val", vals)]).unwrap())
        .unwrap();
}

/// Distinct statements defeat coalescing so every submission is its own
/// queue entry.
fn distinct_sql(i: usize) -> String {
    format!("SELECT A.val, B.val FROM A, B WHERE A.id = B.id AND B.val > {i}")
}

/// Cancellation, zero deadlines and transient backend blips composed
/// under concurrent load: everything resolves typed, accounting drains
/// to zero, acked writes survive reboot.
#[test]
fn chaos_storm_resolves_typed_and_leaks_nothing() {
    let be = MemBackend::new();
    let db = Arc::new(open_durable(&be));
    seed_tables(&db, 64);

    let server = Server::start(Arc::clone(&db), ServeConfig::with_workers(2));
    let join = "SELECT SUM(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val";

    let victim = server.session();
    let bystander = server.session();
    let mut acked: Vec<(i64, u64)> = Vec::new();
    let mut outcomes = (0u64, 0u64, 0u64); // (ok, cancelled, timed_out)
    std::thread::scope(|s| {
        // Bystander load: plain submissions racing everything else.
        let bys_handle = s.spawn(|| {
            let mut ok = 0u64;
            for i in 0..40usize {
                let ticket = match bystander.submit(&distinct_sql(i)) {
                    Ok(t) => t,
                    Err(e) => panic!("bystander submit failed: {e}"),
                };
                match ticket.wait() {
                    Ok(_) => ok += 1,
                    // A hard-stopping shutdown could cancel stragglers,
                    // but this test never hard-stops; anything but Ok is
                    // a bug here.
                    Err(e) => panic!("bystander query failed: {e}"),
                }
            }
            ok
        });

        // Writer: appends with transient blips on every third commit.
        let writer_db = Arc::clone(&db);
        let writer_be = be.clone();
        let writer_handle = s.spawn(move || {
            let mut acked = Vec::new();
            for i in 0..30i64 {
                if i % 3 == 0 {
                    writer_be.inject_transient_failures(1 + (i as u64 % 3));
                }
                writer_db
                    .append_rows("B", vec![vec![Value::Int(i % 6), Value::Int(5000 + i)]])
                    .expect("acked write despite transient blips");
                acked.push((5000 + i, writer_db.epoch()));
            }
            acked
        });

        // Victim: floods the queue, then cancels its own session. Every
        // ticket resolves as Ok (already executed) or typed Cancelled.
        let mut tickets = Vec::new();
        for i in 100..140usize {
            tickets.push(victim.submit(&distinct_sql(i)).expect("victim submit"));
        }
        let detached = victim.cancel();
        let (mut ok, mut cancelled) = (0u64, 0u64);
        for t in tickets {
            match t.wait() {
                Ok(_) => ok += 1,
                Err(TcuError::Cancelled(_)) => cancelled += 1,
                Err(e) => panic!("victim ticket resolved with wrong error: {e}"),
            }
        }
        assert_eq!(
            cancelled as usize, detached,
            "every detached waiter resolves Cancelled"
        );
        assert_eq!(ok + cancelled, 40, "every victim ticket resolved");

        // Zero deadlines: typed DeadlineExceeded, never a hang.
        let mut timed_out = 0u64;
        for i in 200..208usize {
            let t = victim
                .submit_with_deadline(&distinct_sql(i), Duration::ZERO)
                .expect("submit with deadline");
            match t.wait() {
                Err(TcuError::DeadlineExceeded(_)) => timed_out += 1,
                Ok(_) => panic!("zero-deadline query executed"),
                Err(e) => panic!("zero-deadline query got wrong error: {e}"),
            }
        }

        acked = writer_handle.join().unwrap();
        let bys_ok = bys_handle.join().unwrap();
        outcomes = (ok + bys_ok, cancelled, timed_out);
    });

    assert!(be.transient_trips() > 0, "fault injection never fired");
    let (ok, cancelled, timed_out) = outcomes;
    assert!(ok >= 40, "bystander work must complete: ok={ok}");
    assert_eq!(timed_out, 8);

    // The storm has passed: the server is live and leaked nothing.
    server.execute(join).expect("server live after the storm");
    let stats = server.stats();
    assert_eq!(stats.queue_depth, 0, "stats: {stats:?}");
    assert_eq!(stats.in_flight_bytes, 0.0, "stats: {stats:?}");
    // `cancelled` counts detached waiters AND executions aborted by the
    // token, so it can exceed the per-ticket count when a cancel caught
    // a job mid-execution.
    assert!(stats.cancelled >= cancelled, "stats: {stats:?}");
    assert_eq!(stats.timed_out, 8, "stats: {stats:?}");
    let stats = server.shutdown();
    assert!(
        stats.checkpoint_epoch.is_some(),
        "graceful shutdown checkpoints"
    );

    // Reboot: every acknowledged write survived the chaos.
    let last_epoch = acked.last().unwrap().1;
    drop(db);
    be.reboot();
    let db = open_durable(&be);
    let report = db.recovery_report().unwrap().clone();
    assert!(
        report.recovered_epoch >= last_epoch,
        "lost acked epoch {last_epoch}, recovered {}",
        report.recovered_epoch
    );
    let snap = db.snapshot();
    let vals = snap
        .table("B")
        .unwrap()
        .column_by_name("val")
        .unwrap()
        .as_i64()
        .unwrap()
        .to_vec();
    for (val, epoch) in &acked {
        assert!(vals.contains(val), "acked val={val} (epoch {epoch}) lost");
    }
}

/// Overload composed with chaos: a one-worker server with a tiny queue
/// sheds the flood with typed errors, keeps executing admitted work,
/// and drains back to zero.
#[test]
fn overload_sheds_typed_while_admitted_work_completes() {
    let be = MemBackend::new();
    let db = Arc::new(open_durable(&be));
    // A heavier B makes each query slow enough that a flood outruns the
    // single worker and actually hits the queue bound.
    seed_tables(&db, 2048);

    let server = Server::start(
        Arc::clone(&db),
        ServeConfig {
            max_queue: 2,
            ..ServeConfig::with_workers(1)
        },
    );
    let session = server.session();

    let mut admitted = Vec::new();
    let mut shed = 0u64;
    for i in 0..120usize {
        match session.submit(&distinct_sql(i)) {
            Ok(t) => admitted.push(t),
            Err(TcuError::Overloaded(_)) => shed += 1,
            Err(e) => panic!("submit failed with wrong error: {e}"),
        }
    }
    assert!(shed > 0, "flood never hit the queue bound");
    let admitted_count = admitted.len() as u64;
    for t in admitted {
        t.wait().expect("admitted queries complete");
    }

    let stats = server.stats();
    assert_eq!(stats.shed, shed, "stats: {stats:?}");
    assert_eq!(stats.queue_depth, 0, "stats: {stats:?}");
    assert_eq!(stats.in_flight_bytes, 0.0, "stats: {stats:?}");
    assert!(stats.executed >= admitted_count, "stats: {stats:?}");
    // Shed submissions are rejections, not submissions.
    assert_eq!(stats.submitted, admitted_count, "stats: {stats:?}");

    // Still live after the flood, and clean shutdown.
    server
        .execute("SELECT A.val FROM A WHERE A.val >= 20")
        .expect("server live");
    server.shutdown();
}
