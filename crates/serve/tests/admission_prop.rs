//! Admission-accounting property: after ANY interleaving of successful
//! queries, coalesced attaches, session cancellations, expired
//! deadlines, shed floods, ingest-driven epoch bumps and a starvation-
//! tight admission cap, the scheduler leaks nothing — every waiter is
//! woken (each `Ticket::wait` returns), the queue is empty, and the
//! in-flight working-set accounting drains to exactly zero.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use tcudb_core::TcuDb;
use tcudb_serve::{ServeConfig, Server, Ticket};
use tcudb_storage::{Catalog, Table};
use tcudb_types::{TcuError, Value};

fn base_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.register(
        Table::from_int_columns(
            "A",
            &[
                ("id", vec![1, 2, 3, 4, 5]),
                ("val", vec![10, 20, 30, 40, 50]),
            ],
        )
        .unwrap(),
    );
    cat.register(
        Table::from_int_columns("B", &[("id", vec![1, 2, 2, 4]), ("val", vec![5, 6, 7, 8])])
            .unwrap(),
    );
    cat
}

/// A statement unique to `i`, defeating coalescing.
fn distinct_sql(i: usize) -> String {
    format!("SELECT A.val, B.val FROM A, B WHERE A.id = B.id AND A.val > {i}")
}

/// The statement every "duplicate" op submits, inviting coalescing.
const DUP_SQL: &str = "SELECT SUM(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_interleaving_drains_admission_accounting_to_zero(
        ops in prop::collection::vec((0u8..6, 0u8..8), 1..40),
        workers in 1usize..4,
        bound_queue_raw in 0u8..2,
        tight_cap_raw in 0u8..2,
    ) {
        let (bound_queue, tight_cap) = (bound_queue_raw == 1, tight_cap_raw == 1);
        let db = Arc::new(TcuDb::default());
        db.set_catalog(base_catalog());
        let server = Server::start(
            Arc::clone(&db),
            ServeConfig {
                // A 1-byte cap makes every query oversized: each runs
                // alone through the idle escape hatch, maximally
                // stressing the reserve/release bookkeeping.
                admission_bytes: if tight_cap { 1.0 } else { 0.0 },
                max_queue: if bound_queue { 2 } else { 0 },
                ..ServeConfig::with_workers(workers)
            },
        );
        let main = server.session();
        let victim = server.session();

        let mut tickets: Vec<Ticket> = Vec::new();
        for (i, &(kind, var)) in ops.iter().enumerate() {
            let outcome: Result<Ticket, TcuError> = match kind {
                // Distinct statement on the main session.
                0 => main.submit(&distinct_sql(i)),
                // Duplicate statement: invites in-flight coalescing.
                1 => main.submit(DUP_SQL),
                // Already-expired deadline: resolves DeadlineExceeded.
                2 => main.submit_with_deadline(&distinct_sql(i), Duration::ZERO),
                // Work on the victim session (cancellation fodder).
                3 => victim.submit(&distinct_sql(1000 + i)),
                // Cancel everything the victim has pending.
                4 => {
                    victim.cancel();
                    continue;
                }
                // Ingest: publishes a new epoch mid-stream, so queued
                // statements prepared at the old epoch still drain fine.
                _ => {
                    db.append_rows(
                        "B",
                        vec![vec![Value::Int(i64::from(var) % 5), Value::Int(100 + i as i64)]],
                    ).unwrap();
                    continue;
                }
            };
            match outcome {
                Ok(t) => tickets.push(t),
                // The only permitted submit-time rejection is the shed
                // gate, and only when the queue is actually bounded.
                Err(TcuError::Overloaded(_)) if bound_queue => {}
                Err(e) => panic!("submit failed with unexpected error: {e}"),
            }
        }

        // Every waiter wakes: wait() returns for every ticket, with a
        // result or a typed abort — a leaked reservation or a lost
        // notification would hang right here.
        for t in tickets {
            match t.wait() {
                Ok(_)
                | Err(TcuError::Cancelled(_))
                | Err(TcuError::DeadlineExceeded(_)) => {}
                Err(e) => panic!("ticket resolved with unexpected error: {e}"),
            }
        }

        // The server is still live for all sessions...
        main.execute(DUP_SQL).expect("server live after interleaving");
        // ...and the accounting has drained to exactly zero.
        let stats = server.stats();
        prop_assert_eq!(stats.queue_depth, 0, "stats: {:?}", stats);
        prop_assert_eq!(stats.in_flight_bytes, 0.0, "stats: {:?}", stats);
        server.shutdown();
    }
}
