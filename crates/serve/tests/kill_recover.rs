//! Kill-and-recover serving scenario: concurrent queries and ingest
//! against a durable on-disk engine, the server dropped mid-stream
//! (no checkpoint), then the database reopened from disk — every
//! acknowledged write must be present at (or before) the epoch it was
//! acknowledged at.  A second pass exercises the graceful path: a
//! `shutdown()` checkpoint seals the epoch so the reopen replays nothing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tcudb_core::{EngineConfig, TcuDb};
use tcudb_serve::{ServeConfig, Server};
use tcudb_storage::{DurabilityOptions, Table};
use tcudb_types::Value;

/// A unique on-disk scratch directory (no tempdir dependency).
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!(
            "tcudb-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn open_db(dir: &std::path::Path) -> TcuDb {
    TcuDb::open_with(
        dir,
        EngineConfig::default(),
        DurabilityOptions::strict_manual(),
    )
    .expect("open durable db")
}

fn acked_ids(db: &TcuDb) -> Vec<i64> {
    db.snapshot()
        .table("B")
        .unwrap()
        .column_by_name("id")
        .unwrap()
        .as_i64()
        .unwrap()
        .to_vec()
}

#[test]
fn killed_server_loses_no_acknowledged_write() {
    let scratch = ScratchDir::new("kill-recover");
    let db = Arc::new(open_db(&scratch.0));
    db.try_register_table(
        Table::from_int_columns("A", &[("id", vec![1, 2, 3]), ("val", vec![10, 20, 30])]).unwrap(),
    )
    .unwrap();
    db.try_register_table(
        Table::from_int_columns("B", &[("id", vec![]), ("val", vec![])]).unwrap(),
    )
    .unwrap();

    let server = Server::start(Arc::clone(&db), ServeConfig::with_workers(3));
    let sql = "SELECT SUM(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val";

    // Writer: append unique ids one commit at a time, recording the
    // epoch each acknowledgement was published at.  Readers hammer the
    // server through sessions (which outlive the server object); the
    // server itself is dropped mid-stream — a "kill": workers stop, NO
    // checkpoint runs — while the writer keeps going against the engine.
    let sessions: Vec<_> = (0..2).map(|_| server.session()).collect();
    let mut server = Some(server);
    let mut acked: Vec<(i64, u64)> = Vec::new();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let stop = &stop;
        for session in &sessions {
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    // In-flight queries may be cut off by the kill; that
                    // must never affect writer durability.
                    let _ = session.execute(sql);
                }
                // One final submit against the killed server: it must
                // error out, not hang or panic.
                let _ = session.execute(sql);
            });
        }
        for id in 0..40i64 {
            db.append_rows("B", vec![vec![Value::Int(id), Value::Int(1000 + id)]])
                .expect("acked write");
            acked.push((id, db.epoch()));
            if id == 20 {
                drop(server.take()); // kill mid-stream
                stop.store(true, Ordering::Relaxed);
            }
        }
    });

    let last_epoch = acked.last().unwrap().1;
    drop(db);

    // Reopen from disk: every acknowledged id must be present, and the
    // recovered epoch must cover the last acknowledgement.
    let db = open_db(&scratch.0);
    let report = db.recovery_report().unwrap();
    assert!(
        report.recovered_epoch >= last_epoch,
        "recovered epoch {} < last acked epoch {last_epoch}",
        report.recovered_epoch
    );
    let ids = acked_ids(&db);
    for (id, epoch) in &acked {
        assert!(
            ids.contains(id),
            "acked write id={id} (epoch {epoch}) missing after recovery"
        );
    }
    assert_eq!(ids.len(), 40, "duplicate or phantom rows after recovery");

    // Graceful pass: more traffic, then shutdown() checkpoints.
    let db = Arc::new(db);
    let server = Server::start(Arc::clone(&db), ServeConfig::with_workers(2));
    for id in 40..50i64 {
        db.append_rows("B", vec![vec![Value::Int(id), Value::Int(1000 + id)]])
            .unwrap();
        let _ = server.execute(sql).unwrap();
    }
    let stats = server.shutdown();
    let sealed = stats
        .checkpoint_epoch
        .expect("graceful shutdown checkpoints");
    assert_eq!(sealed, db.epoch());
    drop(db);

    // After a graceful shutdown the reopen replays nothing from the WAL.
    let db = open_db(&scratch.0);
    let report = db.recovery_report().unwrap();
    assert_eq!(report.manifest_epoch, sealed);
    assert_eq!(report.replayed_commits, 0);
    assert_eq!(report.truncated_bytes, 0);
    assert_eq!(acked_ids(&db).len(), 50);
}
