//! A minimal Rust lexer.
//!
//! This is **not** a full Rust lexer: it distinguishes exactly the token
//! classes the lint rules need — identifiers, literals, punctuation,
//! delimiters and lifetimes — and keeps comments (the carriers of
//! `// SAFETY:` and `// lint: allow(...)` annotations) in a side list with
//! line information.  Strings (including raw and byte strings), char
//! literals vs. lifetimes, nested block comments and numeric literals are
//! handled faithfully enough that no token is ever mis-bucketed into code
//! when it is really data, which is all the rules rely on.

/// Token classes distinguished by the scanner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (text kept on the token).
    Ident,
    /// A lifetime such as `'a` (text kept without the quote).
    Lifetime,
    /// Any literal: string, raw string, byte string, char or number.
    Lit,
    /// A single punctuation character (`.`, `;`, `#`, `!`, …).
    Punct(char),
    /// An opening delimiter: `(`, `[` or `{`.
    Open(char),
    /// A closing delimiter: `)`, `]` or `}`.
    Close(char),
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token class.
    pub kind: TokKind,
    /// Source text for identifiers and lifetimes; empty otherwise.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True when the token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment, kept out of the token stream.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//`/`/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (block comments may span lines).
    pub end_line: u32,
    /// True for doc comments (`///`, `//!`, `/** */`, `/*! */`).
    pub doc: bool,
}

/// The output of [`lex`]: code tokens plus the comment side list.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenize `src`.  Unterminated constructs (strings, block comments) are
/// consumed to end-of-file rather than reported: the analyzer lints code
/// that already compiles, so they cannot occur in practice.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                let doc = start < b.len() && (b[start] == b'/' || b[start] == b'!');
                let mut j = i + 2;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    text: String::from_utf8_lossy(&b[i + 2..j]).into_owned(),
                    line,
                    end_line: line,
                    doc,
                });
                i = j;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let doc = i + 2 < b.len() && (b[i + 2] == b'*' || b[i + 2] == b'!');
                let start_line = line;
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                out.comments.push(Comment {
                    text: String::from_utf8_lossy(&b[i + 2..j.saturating_sub(2).max(i + 2)])
                        .into_owned(),
                    line: start_line,
                    end_line: line,
                    doc,
                });
                i = j;
            }
            b'"' => {
                let l = line;
                i = skip_string(b, i, &mut line);
                out.tokens.push(lit(l));
            }
            b'r' | b'b' if is_raw_or_byte_string(b, i) => {
                let l = line;
                i = skip_raw_or_byte(b, i, &mut line);
                out.tokens.push(lit(l));
            }
            b'\'' => {
                // Lifetime vs char literal: `'ident` not followed by a
                // closing quote is a lifetime.
                let is_lifetime =
                    i + 1 < b.len() && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_') && {
                        let mut j = i + 2;
                        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                            j += 1;
                        }
                        !(j < b.len() && b[j] == b'\'')
                    };
                if is_lifetime {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: String::from_utf8_lossy(&b[i + 1..j]).into_owned(),
                        line,
                    });
                    i = j;
                } else {
                    let l = line;
                    i = skip_char_literal(b, i);
                    out.tokens.push(lit(l));
                }
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let mut j = i + 1;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: String::from_utf8_lossy(&b[i..j]).into_owned(),
                    line,
                });
                i = j;
            }
            _ if c.is_ascii_digit() => {
                let l = line;
                i = skip_number(b, i);
                out.tokens.push(lit(l));
            }
            b'(' | b'[' | b'{' => {
                out.tokens.push(Token {
                    kind: TokKind::Open(c as char),
                    text: String::new(),
                    line,
                });
                i += 1;
            }
            b')' | b']' | b'}' => {
                out.tokens.push(Token {
                    kind: TokKind::Close(c as char),
                    text: String::new(),
                    line,
                });
                i += 1;
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokKind::Punct(c as char),
                    text: String::new(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn lit(line: u32) -> Token {
    Token {
        kind: TokKind::Lit,
        text: String::new(),
        line,
    }
}

/// Skip a `"…"` string starting at `i`; returns the index past the close.
fn skip_string(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\n' => {
                *line += 1;
                j += 1;
            }
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// True when position `i` starts `r"`, `r#`, `b"`, `b'`, `br` or `rb`-style
/// raw/byte literals (as opposed to an identifier starting with r/b).
fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let rest = &b[i..];
    let after = |k: usize| rest.get(k).copied();
    match rest.first() {
        Some(b'r') => matches!(after(1), Some(b'"') | Some(b'#')),
        Some(b'b') => match after(1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(after(2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// Skip a raw string / byte string / byte char starting at `i`.
fn skip_raw_or_byte(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'\'' {
        return skip_char_literal(b, j);
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
        let mut hashes = 0usize;
        while j < b.len() && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j < b.len() && b[j] == b'"' {
            j += 1;
            while j < b.len() {
                if b[j] == b'\n' {
                    *line += 1;
                    j += 1;
                } else if b[j] == b'"' && b[j + 1..].iter().take(hashes).all(|&h| h == b'#') {
                    return j + 1 + hashes;
                } else {
                    j += 1;
                }
            }
        }
        return j;
    }
    // Plain byte string `b"…"`.
    skip_string(b, j, line)
}

/// Skip a `'…'` char literal starting at `i`.
fn skip_char_literal(b: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    if j < b.len() && b[j] == b'\\' {
        j += 2;
        // `\u{…}` escapes.
        if j <= b.len() && b.get(j - 1) == Some(&b'{') {
            while j < b.len() && b[j] != b'}' {
                j += 1;
            }
            j += 1;
        }
    } else {
        j += 1;
    }
    while j < b.len() && b[j] != b'\'' {
        j += 1;
    }
    j + 1
}

/// Skip a numeric literal starting at `i` without consuming `..` ranges.
fn skip_number(b: &[u8], i: usize) -> usize {
    let mut j = i;
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    // Fractional part — only when the dot is not the start of `..` or a
    // method call on the literal.
    if j + 1 < b.len() && b[j] == b'.' && b[j + 1].is_ascii_digit() {
        j += 1;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        // Exponent sign (`1.5e-3`): the `e` was consumed above; a sign
        // followed by digits continues the literal.
        if j + 1 < b.len()
            && (b[j] == b'+' || b[j] == b'-')
            && b[j - 1].eq_ignore_ascii_case(&b'e')
            && b[j + 1].is_ascii_digit()
        {
            j += 1;
            while j < b.len() && b[j].is_ascii_digit() {
                j += 1;
            }
        }
    } else if j + 1 < b.len()
        && (b[j] == b'+' || b[j] == b'-')
        && b[j - 1].eq_ignore_ascii_case(&b'e')
        && b[j + 1].is_ascii_digit()
        && b[i..j].iter().any(|&d| d.eq_ignore_ascii_case(&b'e'))
    {
        j += 1;
        while j < b.len() && b[j].is_ascii_digit() {
            j += 1;
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_never_leak_tokens() {
        let src = r##"
            // unsafe in a comment
            let s = "unsafe { lock() }";
            let r = r#"panic!("x")"#;
            /* block /* nested */ unwrap() */
            let c = '{';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'a'; }").tokens;
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let lits = toks.iter().filter(|t| t.kind == TokKind::Lit).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(lits, 1);
    }

    #[test]
    fn ranges_do_not_eat_dots() {
        let toks = lex("for i in 0..10 { x[i] = 1.5e-3; }").tokens;
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "0..10 keeps its two dots");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Lit).count(), 3);
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = \"x\ny\";\n/* c\nc */\nfinal_token();";
        let toks = lex(src).tokens;
        let last = toks.iter().find(|t| t.is_ident("final_token")).unwrap();
        assert_eq!(last.line, 5);
    }
}
