//! Unsafe-audit rule.
//!
//! Three checks, all workspace-wide:
//!
//! * **`safety-comment`** — every `unsafe` block must carry a `// SAFETY:`
//!   comment (same line or the contiguous comment block directly above),
//!   and every `unsafe fn` must either carry one or document a
//!   `# Safety` section in its doc comment (the rustdoc convention).
//! * **`unsafe-outside-tensor`** — crates other than the configured
//!   allow-list (by default just `tcudb-tensor`, whose SIMD kernels are
//!   the one legitimate home for `unsafe`) must contain no `unsafe` at
//!   all.  Individual files may additionally be allow-listed by path:
//!   `tcudb-net` is `#[deny(unsafe_code)]` except for its audited
//!   `src/sys.rs` syscall-wrapper module.
//! * **`forbid-unsafe-missing`** — crates proven clean of `unsafe` must
//!   say so in the source: their crate root needs
//!   `#![forbid(unsafe_code)]` so the guarantee is enforced by rustc
//!   itself, not just by this analyzer.

use crate::model::{SourceFile, UnsafeKind};
use crate::{Finding, Rule};
use std::collections::{BTreeMap, BTreeSet};

/// Run the unsafe-audit over all parsed files.
///
/// `allowed_crates` are crate names permitted to contain `unsafe`;
/// `allowed_paths` are workspace-relative path prefixes permitted to
/// contain `unsafe` regardless of crate (audited syscall modules);
/// `check_forbid` enables the `forbid-unsafe-missing` check (fixtures
/// turn it off — a one-file fixture has no crate root to annotate).
pub fn run(
    files: &[SourceFile],
    allowed_crates: &[String],
    allowed_paths: &[String],
    check_forbid: bool,
    findings: &mut Vec<Finding>,
) {
    // Crate → has any unsafe site anywhere.
    let mut crate_unsafe: BTreeMap<&str, bool> = BTreeMap::new();
    // Crate → crate-root files (lib.rs / main.rs) and whether one carries
    // the forbid attribute.
    let mut crate_roots: BTreeMap<&str, (bool, String)> = BTreeMap::new();

    for f in files {
        let entry = crate_unsafe.entry(&f.crate_name).or_insert(false);
        *entry |= !f.unsafe_sites.is_empty();
        if f.rel_path.ends_with("src/lib.rs") || f.rel_path.ends_with("src/main.rs") {
            let e = crate_roots
                .entry(&f.crate_name)
                .or_insert((false, f.rel_path.clone()));
            if f.has_forbid_unsafe {
                e.0 = true;
            }
        }

        let allowed = allowed_crates.iter().any(|c| c == &f.crate_name)
            || allowed_paths
                .iter()
                .any(|p| f.rel_path.starts_with(p.as_str()));
        for site in &f.unsafe_sites {
            if !allowed {
                findings.push(Finding::new(
                    Rule::UnsafeOutsideTensor,
                    &f.rel_path,
                    site.line,
                    format!(
                        "`unsafe` in crate `{}`; only crates [{}] and audited modules [{}] \
                         may contain unsafe code",
                        f.crate_name,
                        allowed_crates.join(", "),
                        allowed_paths.join(", ")
                    ),
                ));
            }
            let annotated = match site.kind {
                UnsafeKind::Block | UnsafeKind::Item => has_safety_comment(f, site.line),
                UnsafeKind::Fn => {
                    has_safety_comment(f, site.line) || fn_has_safety_doc(f, site.line)
                }
            };
            if !annotated {
                let hint = match site.kind {
                    UnsafeKind::Fn => {
                        "document the caller contract in a `# Safety` doc section or a `// SAFETY:` comment"
                    }
                    _ => "add a `// SAFETY:` comment stating why the invariants hold",
                };
                findings.push(Finding::new(
                    Rule::SafetyComment,
                    &f.rel_path,
                    site.line,
                    format!("`unsafe` without a safety comment; {hint}"),
                ));
            }
        }
    }

    if !check_forbid {
        return;
    }
    let clean: BTreeSet<&str> = crate_unsafe
        .iter()
        .filter(|(_, has)| !**has)
        .map(|(c, _)| *c)
        .collect();
    for (krate, (has_forbid, root)) in &crate_roots {
        if clean.contains(krate) && !has_forbid {
            findings.push(Finding::new(
                Rule::ForbidUnsafeMissing,
                root,
                1,
                format!(
                    "crate `{krate}` contains no unsafe code but its root lacks \
                     `#![forbid(unsafe_code)]`; add it so rustc enforces the guarantee"
                ),
            ));
        }
    }
}

/// A `// SAFETY` comment on the same line or in the contiguous comment
/// block directly above `line`.
fn has_safety_comment(f: &SourceFile, line: u32) -> bool {
    f.comment_block_above(line, |c| c.text.to_ascii_uppercase().contains("SAFETY"))
}

/// An `unsafe fn` documented with a rustdoc `# Safety` section directly
/// above its declaration.
fn fn_has_safety_doc(f: &SourceFile, line: u32) -> bool {
    f.fns
        .iter()
        .any(|g| g.line == line && g.is_unsafe && g.doc_safety)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn audit(crate_name: &str, src: &str, allowed: &[&str], check_forbid: bool) -> Vec<Finding> {
        audit_at(
            &format!("{crate_name}/src/lib.rs"),
            crate_name,
            src,
            allowed,
            &[],
            check_forbid,
        )
    }

    fn audit_at(
        rel_path: &str,
        crate_name: &str,
        src: &str,
        allowed: &[&str],
        allowed_paths: &[&str],
        check_forbid: bool,
    ) -> Vec<Finding> {
        let f = SourceFile::parse(rel_path, crate_name, src, false);
        let mut out = Vec::new();
        let allowed: Vec<String> = allowed.iter().map(|s| s.to_string()).collect();
        let allowed_paths: Vec<String> = allowed_paths.iter().map(|s| s.to_string()).collect();
        run(&[f], &allowed, &allowed_paths, check_forbid, &mut out);
        out
    }

    #[test]
    fn uncommented_unsafe_block_is_flagged() {
        let out = audit(
            "tcudb-tensor",
            "fn f(p: *const f32) -> f32 { unsafe { *p } }",
            &["tcudb-tensor"],
            false,
        );
        assert_eq!(out.len(), 1, "findings: {out:?}");
        assert_eq!(out[0].rule, Rule::SafetyComment);
    }

    #[test]
    fn safety_comment_above_or_on_line_passes() {
        let out = audit(
            "tcudb-tensor",
            r#"
            fn f(p: *const f32) -> f32 {
                // SAFETY: caller guarantees p is valid for reads
                unsafe { *p }
            }
            fn g(p: *const f32) -> f32 {
                unsafe { *p } // SAFETY: bounds checked by construction
            }
            "#,
            &["tcudb-tensor"],
            false,
        );
        assert!(out.is_empty(), "findings: {out:?}");
    }

    #[test]
    fn unsafe_fn_with_safety_doc_section_passes() {
        let out = audit(
            "tcudb-tensor",
            r#"
            /// Does pointer things.
            ///
            /// # Safety
            /// `p` must be valid for `n` reads.
            pub unsafe fn f(p: *const f32, n: usize) -> f32 { *p }
            "#,
            &["tcudb-tensor"],
            false,
        );
        assert!(out.is_empty(), "findings: {out:?}");
    }

    #[test]
    fn unsafe_outside_allowed_crates_is_flagged() {
        let out = audit(
            "tcudb-storage",
            r#"
            fn f(p: *const f32) -> f32 {
                // SAFETY: commented, but still in the wrong crate
                unsafe { *p }
            }
            "#,
            &["tcudb-tensor"],
            false,
        );
        assert_eq!(out.len(), 1, "findings: {out:?}");
        assert_eq!(out[0].rule, Rule::UnsafeOutsideTensor);
    }

    #[test]
    fn path_allowance_admits_an_audited_module_in_a_deny_crate() {
        // The sys.rs syscall module is allowed by path even though
        // tcudb-net is not on the crate allow-list …
        let out = audit_at(
            "crates/net/src/sys.rs",
            "tcudb-net",
            r#"
            pub fn f(p: *const i32) -> i32 {
                // SAFETY: caller guarantees p is valid for reads
                unsafe { *p }
            }
            "#,
            &["tcudb-tensor"],
            &["crates/net/src/sys.rs"],
            false,
        );
        assert!(out.is_empty(), "findings: {out:?}");
        // … but it still owes a safety comment on every unsafe site …
        let out = audit_at(
            "crates/net/src/sys.rs",
            "tcudb-net",
            "pub fn f(p: *const i32) -> i32 { unsafe { *p } }",
            &["tcudb-tensor"],
            &["crates/net/src/sys.rs"],
            false,
        );
        assert_eq!(out.len(), 1, "findings: {out:?}");
        assert_eq!(out[0].rule, Rule::SafetyComment);
        // … and the allowance does not leak to sibling files in the crate.
        let out = audit_at(
            "crates/net/src/reactor.rs",
            "tcudb-net",
            r#"
            pub fn f(p: *const i32) -> i32 {
                // SAFETY: commented, but outside the audited module
                unsafe { *p }
            }
            "#,
            &["tcudb-tensor"],
            &["crates/net/src/sys.rs"],
            false,
        );
        assert_eq!(out.len(), 1, "findings: {out:?}");
        assert_eq!(out[0].rule, Rule::UnsafeOutsideTensor);
    }

    #[test]
    fn clean_crate_without_forbid_attribute_is_flagged() {
        let out = audit("tcudb-types", "pub fn f() {}", &["tcudb-tensor"], true);
        assert_eq!(out.len(), 1, "findings: {out:?}");
        assert_eq!(out[0].rule, Rule::ForbidUnsafeMissing);
    }

    #[test]
    fn clean_crate_with_forbid_attribute_passes() {
        let out = audit(
            "tcudb-types",
            "#![forbid(unsafe_code)]\npub fn f() {}",
            &["tcudb-tensor"],
            true,
        );
        assert!(out.is_empty(), "findings: {out:?}");
    }
}
