//! Command-line entry point for the TCUDB static analyzer.
//!
//! ```text
//! cargo run -p tcudb-analyze -- --deny
//! ```
//!
//! Options:
//!
//! * `--root <dir>`    workspace root (default: auto-detected from the
//!   manifest directory, falling back to the current directory);
//! * `--report <file>` where to write the JSON findings report
//!   (default `ANALYZE_findings.json`);
//! * `--deny`          exit non-zero when any finding is present;
//! * `--quiet`         suppress the per-finding listing.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use tcudb_analyze::{analyze, report, Config};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut report_path = PathBuf::from("ANALYZE_findings.json");
    let mut deny = false;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--quiet" => quiet = true,
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a value"),
            },
            "--report" => match args.next() {
                Some(v) => report_path = PathBuf::from(v),
                None => return usage("--report needs a value"),
            },
            "--help" | "-h" => {
                println!(
                    "tcudb-analyze: lock-order, panic-path and unsafe-audit lints\n\
                     usage: cargo run -p tcudb-analyze -- [--deny] [--quiet] \
                     [--root <dir>] [--report <file>]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = root.unwrap_or_else(default_root);
    let config = Config::for_root(root);
    let analysis = analyze(&config);

    let json = report::to_json(&analysis);
    if let Err(e) = std::fs::write(&report_path, &json) {
        eprintln!(
            "tcudb-analyze: cannot write report {}: {e}",
            report_path.display()
        );
        return ExitCode::FAILURE;
    }

    if !quiet {
        for f in &analysis.findings {
            println!("{f}");
        }
    }
    println!(
        "tcudb-analyze: {} files, {} functions, {} locks, {} acquisition sites, {} lock-order edges, {} findings ({})",
        analysis.files_scanned,
        analysis.functions_scanned,
        analysis.locks.locks.len(),
        analysis.locks.acquisition_sites,
        analysis.locks.edges.len(),
        analysis.findings.len(),
        report_path.display()
    );

    if deny && !analysis.findings.is_empty() {
        eprintln!("tcudb-analyze: failing (--deny with findings present)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The workspace root: the analyzer's own manifest dir is
/// `<root>/crates/analyze`, so two levels up; when run from elsewhere,
/// the current directory.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.to_path_buf())
        .unwrap_or_else(|| PathBuf::from("."))
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("tcudb-analyze: {msg}\nusage: cargo run -p tcudb-analyze -- [--deny] [--quiet] [--root <dir>] [--report <file>]");
    ExitCode::FAILURE
}
