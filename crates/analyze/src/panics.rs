//! Panic-path lint.
//!
//! The serving layer must never die because of a recoverable fault: one
//! panicking worker poisons a mutex, the next `lock().unwrap()` panics,
//! and the whole server is gone.  This rule denies, in the configured
//! request-path files:
//!
//! * `.unwrap()` / `.expect(…)` on any expression;
//! * `panic!`, `unreachable!`, `todo!`, `unimplemented!`, `assert!`-family
//!   macros (`debug_assert!` is allowed: it compiles out in release);
//! * unchecked indexing `x[i]` where the index expression involves a
//!   computed value (literal-indexed fixed-size patterns like `pair[0]`
//!   are allowed — they are bounds-known shapes, not data-dependent).
//!
//! A site can opt out with an adjacent annotation:
//!
//! ```text
//! // lint: allow(panic) worker threads are detached; a poisoned spawn is fatal by design
//! ```
//!
//! either on the same line or in the contiguous comment block directly
//! above the statement.  An annotation **without** a reason suppresses
//! nothing: it downgrades to a `lint-annotation` finding so the report
//! still fails `--deny` until a reason is written.  Test code
//! (`#[cfg(test)]` modules, `#[test]` fns, `tests/` trees) is exempt —
//! panicking is how tests fail.

use crate::lexer::TokKind;
use crate::model::SourceFile;
use crate::{Finding, Rule};

/// Macro names denied in the request path.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Method names denied in the request path.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Run the panic-path lint over one file that is part of the configured
/// request path.  `findings` receives one entry per denied site.
pub fn run(file: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for g in &file.fns {
        if g.is_test {
            continue;
        }
        let Some((open, close)) = g.body else {
            continue;
        };
        let mut i = open + 1;
        while i < close {
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                // Unchecked indexing: `expr [ idx ]` where `expr` ends in
                // an ident or `)`/`]` (i.e. not an array literal or slice
                // pattern) and the index is not a bare integer literal.
                if t.kind == TokKind::Open('[') && i > open + 1 {
                    if let Some(site) = indexing_site(file, i, close) {
                        push_or_allow(
                            file,
                            site,
                            "unchecked indexing `[…]` (use .get()/.get_mut() and return an error)",
                            findings,
                        );
                    }
                }
                i += 1;
                continue;
            }
            let line = t.line;
            let is_macro = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
            if is_macro && PANIC_MACROS.contains(&t.text.as_str()) {
                push_or_allow(
                    file,
                    line,
                    &format!("`{}!` in the serving request path", t.text),
                    findings,
                );
                i += 1;
                continue;
            }
            let prev_dot = i > 0 && toks[i - 1].is_punct('.');
            let next_call = toks
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Open('('));
            if prev_dot && next_call && PANIC_METHODS.contains(&t.text.as_str()) {
                push_or_allow(
                    file,
                    line,
                    &format!(
                        "`.{}()` in the serving request path (propagate an error instead)",
                        t.text
                    ),
                    findings,
                );
            }
            i += 1;
        }
    }
}

/// Decide whether the `[` at token index `i` is an unchecked, data-
/// dependent indexing site.  Returns the line to report, or `None` when
/// the pattern is allowed.
fn indexing_site(file: &SourceFile, i: usize, close: usize) -> Option<u32> {
    let toks = &file.tokens;
    let prev = &toks[i - 1];
    // Only `ident[...]`, `)[...]` and `][...]` are index expressions;
    // `= [...]`, `&[...]`, `([...]` etc. are array/slice literals or types.
    let indexable = match prev.kind {
        TokKind::Ident => {
            // Keywords that can precede `[` without being an indexed value.
            !matches!(
                prev.text.as_str(),
                "mut" | "return" | "in" | "box" | "dyn" | "as" | "else"
            )
        }
        TokKind::Close(')') | TokKind::Close(']') => true,
        _ => false,
    };
    if !indexable {
        return None;
    }
    let end = crate::model::match_delim(toks, i).min(close);
    // A bare integer literal index (`pair[0]`) is a fixed-shape access.
    if end == i + 2 && toks[i + 1].kind == TokKind::Lit {
        return None;
    }
    // A range index (`buf[..n]`, `buf[a..b]`) yields a slice — still a
    // potential panic, but the serving layer's uses are length-derived;
    // accept ranges and flag only scalar computed indices.
    let inner = &toks[i + 1..end];
    if inner.iter().any(|t| t.is_punct('.')) {
        // `..` appears as two '.' puncts.
        let mut dots = 0;
        for t in inner {
            if t.is_punct('.') {
                dots += 1;
                if dots == 2 {
                    return None;
                }
            } else {
                dots = 0;
            }
        }
    }
    Some(toks[i].line)
}

/// Push a finding unless an `// lint: allow(panic) <reason>` annotation
/// covers the line; an annotation without a reason becomes a
/// `lint-annotation` finding instead.
fn push_or_allow(file: &SourceFile, line: u32, what: &str, findings: &mut Vec<Finding>) {
    match file.allow_covering(line, "panic") {
        Some(note) if note.has_reason => {}
        Some(note) => findings.push(Finding::new(
            Rule::LintAnnotation,
            &file.rel_path,
            note.line,
            "`// lint: allow(panic)` requires a reason after the rule name".to_string(),
        )),
        None => findings.push(Finding::new(
            Rule::PanicPath,
            &file.rel_path,
            line,
            what.to_string(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn lint(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("serve/src/lib.rs", "tcudb-serve", src, false);
        let mut out = Vec::new();
        run(&f, &mut out);
        out
    }

    #[test]
    fn unwrap_expect_and_panic_macros_are_denied() {
        let out = lint(
            r#"
            fn handle(x: Option<u32>) -> u32 {
                let a = x.unwrap();
                let b = x.expect("present");
                if a == 0 { panic!("zero"); }
                b
            }
            "#,
        );
        assert_eq!(out.len(), 3, "findings: {out:?}");
        assert!(out.iter().all(|f| f.rule == Rule::PanicPath));
    }

    #[test]
    fn annotation_with_reason_suppresses() {
        let out = lint(
            r#"
            fn start() {
                // lint: allow(panic) spawn failure at boot is fatal by design
                std::thread::Builder::new().spawn(f).expect("spawn worker");
            }
            "#,
        );
        assert!(out.is_empty(), "findings: {out:?}");
    }

    #[test]
    fn annotation_without_reason_is_its_own_finding() {
        let out = lint(
            r#"
            fn start() {
                // lint: allow(panic)
                std::thread::Builder::new().spawn(f).expect("spawn worker");
            }
            "#,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, Rule::LintAnnotation);
    }

    #[test]
    fn same_line_annotation_works() {
        let out = lint(
            r#"
            fn f(x: Option<u32>) -> u32 {
                x.unwrap() // lint: allow(panic) checked non-empty above
            }
            "#,
        );
        assert!(out.is_empty(), "findings: {out:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let out = lint(
            r#"
            fn handler() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); assert_eq!(1, 1); }
            }
            "#,
        );
        assert!(out.is_empty(), "findings: {out:?}");
    }

    #[test]
    fn computed_indexing_is_denied_but_fixed_shapes_allowed() {
        let out = lint(
            r#"
            fn f(v: &[u32], i: usize, pair: (u32, u32)) -> u32 {
                let fixed = v[0];
                let slice = &v[..i];
                let a = [1, 2, 3];
                v[i]
            }
            "#,
        );
        assert_eq!(out.len(), 1, "findings: {out:?}");
        assert!(out[0].message.contains("indexing"));
    }

    #[test]
    fn debug_assert_is_allowed() {
        let out = lint(
            r#"
            fn f(x: u32) {
                debug_assert!(x > 0);
            }
            "#,
        );
        assert!(out.is_empty(), "findings: {out:?}");
    }
}
