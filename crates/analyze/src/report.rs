//! Machine-readable findings report.
//!
//! The analyzer has no serde (the workspace is offline), so the JSON is
//! emitted by hand: a small escaper plus structural helpers.  The format
//! is stable and consumed by the CI artifact upload:
//!
//! ```json
//! {
//!   "tool": "tcudb-analyze",
//!   "clean": true,
//!   "stats": { "files": 42, "functions": 310, "locks": 7, "acquisitions": 19 },
//!   "locks": [ { "id": "tcudb-serve::Shared.state", "kind": "Mutex", "leaf": false } ],
//!   "lock_order": [ { "from": "…", "to": "…", "site": "…", "in_fn": "…", "via": "" } ],
//!   "findings": [ { "rule": "panic-path", "file": "…", "line": 12, "message": "…" } ]
//! }
//! ```

use crate::locks::{LockAnalysis, LockKind};
use crate::{Analysis, Finding};
use std::fmt::Write as _;

/// Render the full analysis as a JSON document.
pub fn to_json(a: &Analysis) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"tool\": \"tcudb-analyze\",\n");
    let _ = writeln!(s, "  \"clean\": {},", a.findings.is_empty());
    let _ = writeln!(
        s,
        "  \"stats\": {{ \"files\": {}, \"functions\": {}, \"locks\": {}, \"acquisitions\": {} }},",
        a.files_scanned,
        a.functions_scanned,
        a.locks.locks.len(),
        a.locks.acquisition_sites
    );
    push_locks(&mut s, &a.locks);
    push_edges(&mut s, &a.locks);
    push_findings(&mut s, &a.findings);
    s.push_str("}\n");
    s
}

fn push_locks(s: &mut String, l: &LockAnalysis) {
    s.push_str("  \"locks\": [\n");
    for (i, (id, kind)) in l.locks.iter().enumerate() {
        let kind = match kind {
            LockKind::Mutex => "Mutex",
            LockKind::RwLock => "RwLock",
            LockKind::Condvar => "Condvar",
        };
        let _ = write!(
            s,
            "    {{ \"id\": {}, \"kind\": \"{kind}\", \"leaf\": {} }}",
            quote(&id.to_string()),
            l.leaf_locks.contains(id)
        );
        s.push_str(if i + 1 < l.locks.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
}

fn push_edges(s: &mut String, l: &LockAnalysis) {
    s.push_str("  \"lock_order\": [\n");
    for (i, e) in l.edges.iter().enumerate() {
        let _ = write!(
            s,
            "    {{ \"from\": {}, \"to\": {}, \"site\": {}, \"in_fn\": {}, \"via\": {} }}",
            quote(&e.from.to_string()),
            quote(&e.to.to_string()),
            quote(&e.site),
            quote(&e.in_fn),
            quote(&e.via)
        );
        s.push_str(if i + 1 < l.edges.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
}

fn push_findings(s: &mut String, findings: &[Finding]) {
    s.push_str("  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let _ = write!(
            s,
            "    {{ \"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {} }}",
            quote(f.rule.id()),
            quote(&f.file),
            f.line,
            quote(&f.message)
        );
        s.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n");
}

/// JSON string escaping for the characters that can appear in paths,
/// messages and code snippets.
fn quote(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoting_escapes_specials() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_analysis_renders_clean_document() {
        let a = Analysis::default();
        let j = to_json(&a);
        assert!(j.contains("\"clean\": true"));
        assert!(j.contains("\"findings\": [\n  ]"));
    }
}
