//! Lock-order analysis.
//!
//! The rule recovers, purely statically:
//!
//! 1. **Lock declarations** — struct fields whose type mentions
//!    [`std::sync::Mutex`], [`std::sync::RwLock`] or
//!    [`std::sync::Condvar`].  A lock's identity is `crate::Struct.field`,
//!    so two fields that happen to share a name in different crates stay
//!    distinct.
//! 2. **Acquisition sites** — `x.lock()`, `x.read()`, `x.write()` method
//!    calls whose receiver resolves to a declared lock field (directly,
//!    through a `let` alias, or through the poison-recovering helpers
//!    `locked(…)` / `read_locked(…)` / `write_locked(…)` from
//!    `tcudb_types::sync`).  Guard lifetimes follow a block-scoped model:
//!    a `let`-bound guard lives to the end of its block (or an explicit
//!    `drop(guard)`), an unbound guard lives to the end of its statement.
//! 3. **Call edges** — method and function calls resolved by name, with
//!    receiver *hints*: `self.f()` resolves within the enclosing impl,
//!    `x.field.f()` resolves against the struct types mentioned in
//!    `field`'s declared type.  Unresolvable calls produce no edges — the
//!    analysis is deliberately conservative towards silence, never noise.
//!
//! From these it builds the **static lock-order graph**: an edge `A → B`
//! whenever `B` is acquired (directly, or transitively through calls)
//! while `A` is held.  Findings:
//!
//! * `lock-order` — a cycle in the graph (two code paths that take the
//!   same pair of locks in opposite orders can deadlock), or a lock
//!   re-acquired while already held (self-deadlock for non-reentrant
//!   `std::sync` primitives).
//! * `publish-under-lock` — a `SharedCatalog` publish
//!   (`update` / `try_update` / `replace` on a `SharedCatalog`-typed
//!   field) reached while any lock guard is held: publishing is the one
//!   point where readers block, so holding an unrelated lock there turns
//!   "readers only block for the pointer swap" into "readers block for
//!   whatever the guard owner is doing".
//! * `condvar-double-hold` — waiting on a [`std::sync::Condvar`] while
//!   holding a lock other than the mutex being waited on (the classic
//!   lost-wakeup / deadlock shape).
//! * `leaf-lock-held` — a lock whose field declaration carries a
//!   `// lint: leaf-lock <reason>` comment is a **leaf**: it promises to
//!   be the innermost lock on every path (the cancellation token's state
//!   mutex, for example, is taken from arbitrary call sites that may
//!   already hold scheduler or catalog locks — that composes only while
//!   nothing is ever acquired *under* it).  Any lock-order edge
//!   originating from a leaf lock breaks the promise and is denied.

use crate::lexer::{TokKind, Token};
use crate::model::{field_table, FnItem, SourceFile};
use crate::{Finding, Rule};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// The lock flavours the rule tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockKind {
    /// `std::sync::Mutex`.
    Mutex,
    /// `std::sync::RwLock`.
    RwLock,
    /// `std::sync::Condvar`.
    Condvar,
}

/// Identity of one declared lock: `crate::Struct.field`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LockId {
    /// Declaring crate.
    pub krate: String,
    /// Declaring struct.
    pub owner: String,
    /// Field name.
    pub field: String,
}

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}::{}.{}", self.krate, self.owner, self.field)
    }
}

/// One edge of the lock-order graph, kept for the findings report.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Lock held when `to` was acquired.
    pub from: LockId,
    /// Lock acquired while `from` was held.
    pub to: LockId,
    /// `file:line` of the acquisition (or call) that creates the edge.
    pub site: String,
    /// Function the edge was observed in.
    pub in_fn: String,
    /// For call-propagated edges, the callee that performs the
    /// acquisition; empty for direct intra-function edges.
    pub via: String,
}

/// Everything the lock pass extracted, consumed by [`crate::analyze`] and
/// exposed in the machine-readable report.
#[derive(Debug, Default)]
pub struct LockAnalysis {
    /// Declared locks (sorted, deduplicated).
    pub locks: Vec<(LockId, LockKind)>,
    /// Locks declared as leaves via `// lint: leaf-lock <reason>`
    /// (sorted); edges originating from these produce findings.
    pub leaf_locks: Vec<LockId>,
    /// The lock-order graph edges (one representative per from/to pair).
    pub edges: Vec<LockEdge>,
    /// Total acquisition sites observed.
    pub acquisition_sites: usize,
    /// Findings produced by the rule.
    pub findings: Vec<Finding>,
}

/// A per-function key used for call resolution and display.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct FnKey {
    krate: String,
    impl_type: Option<String>,
    name: String,
}

impl FnKey {
    fn display(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{}::{}::{}", self.krate, t, self.name),
            None => format!("{}::{}", self.krate, self.name),
        }
    }
}

/// A resolved call observed inside a function body.
#[derive(Debug)]
struct CallObs {
    /// Candidate callees (indices into the workspace function table).
    candidates: Vec<usize>,
    /// Locks held at the call site.
    held: Vec<LockId>,
    line: u32,
}

/// A `SharedCatalog` publish observed inside a function body.
#[derive(Debug)]
struct PublishObs {
    held: Vec<LockId>,
    line: u32,
}

/// Per-function facts from the intra-procedural scan.
#[derive(Debug, Default)]
struct FnFacts {
    acquires: Vec<(LockId, u32)>,
    intra_edges: Vec<(LockId, LockId, u32)>,
    reentrant: Vec<(LockId, u32)>,
    calls: Vec<CallObs>,
    publishes: Vec<PublishObs>,
    condvar_double: Vec<(LockId, u32)>,
}

/// Run the lock-order analysis over the parsed workspace.
pub fn run(files: &[SourceFile]) -> LockAnalysis {
    let ws = Workspace::build(files);
    let mut facts: Vec<FnFacts> = Vec::with_capacity(ws.fns.len());
    for &(fi, gi) in &ws.fn_order {
        facts.push(scan_fn(&ws, &files[fi], &files[fi].fns[gi]));
    }

    // Fixpoint: transitive acquisition / publish sets over the call graph.
    let n = ws.fns.len();
    let mut acq: Vec<BTreeSet<LockId>> = (0..n)
        .map(|i| facts[i].acquires.iter().map(|(l, _)| l.clone()).collect())
        .collect();
    let mut publishes: Vec<bool> = (0..n).map(|i| !facts[i].publishes.is_empty()).collect();
    loop {
        let mut changed = false;
        for i in 0..n {
            for ci in 0..facts[i].calls.len() {
                for k in 0..facts[i].calls[ci].candidates.len() {
                    let cand = facts[i].calls[ci].candidates[k];
                    if cand == i {
                        continue;
                    }
                    let extra: Vec<LockId> = acq[cand].difference(&acq[i]).cloned().collect();
                    if !extra.is_empty() {
                        acq[i].extend(extra);
                        changed = true;
                    }
                    if publishes[cand] && !publishes[i] {
                        publishes[i] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut out = LockAnalysis {
        locks: {
            let set: BTreeMap<LockId, LockKind> =
                ws.locks.iter().map(|d| (d.id.clone(), d.kind)).collect();
            set.into_iter().collect()
        },
        leaf_locks: {
            let set: BTreeSet<LockId> = ws
                .locks
                .iter()
                .filter(|d| d.leaf)
                .map(|d| d.id.clone())
                .collect();
            set.into_iter().collect()
        },
        ..LockAnalysis::default()
    };
    out.acquisition_sites = facts.iter().map(|f| f.acquires.len()).sum();

    // Assemble the edge set: direct intra-function edges plus edges
    // propagated through resolved calls.
    let mut edge_index: BTreeMap<(LockId, LockId), LockEdge> = BTreeMap::new();
    for (i, f) in facts.iter().enumerate() {
        let key = &ws.fns[i];
        let file = &files[ws.fn_order[i].0];
        for (from, to, line) in &f.intra_edges {
            edge_index
                .entry((from.clone(), to.clone()))
                .or_insert_with(|| LockEdge {
                    from: from.clone(),
                    to: to.clone(),
                    site: format!("{}:{}", file.rel_path, line),
                    in_fn: key.display(),
                    via: String::new(),
                });
        }
        for c in &f.calls {
            if c.held.is_empty() {
                continue;
            }
            for &cand in &c.candidates {
                for to in acq[cand].iter() {
                    for from in &c.held {
                        if from == to {
                            out.findings.push(Finding::new(
                                Rule::LockOrder,
                                &file.rel_path,
                                c.line,
                                format!(
                                    "{} may re-acquire {} (already held here) via call to {}",
                                    key.display(),
                                    from,
                                    ws.fns[cand].display()
                                ),
                            ));
                            continue;
                        }
                        edge_index
                            .entry((from.clone(), to.clone()))
                            .or_insert_with(|| LockEdge {
                                from: from.clone(),
                                to: to.clone(),
                                site: format!("{}:{}", file.rel_path, c.line),
                                in_fn: key.display(),
                                via: ws.fns[cand].display(),
                            });
                    }
                }
                if publishes[cand] {
                    let held: Vec<String> = c.held.iter().map(|l| l.to_string()).collect();
                    out.findings.push(Finding::new(
                        Rule::PublishUnderLock,
                        &file.rel_path,
                        c.line,
                        format!(
                            "{} calls {} (which publishes a SharedCatalog snapshot) \
                             while holding [{}]",
                            key.display(),
                            ws.fns[cand].display(),
                            held.join(", ")
                        ),
                    ));
                }
            }
        }
        for (lock, line) in &f.reentrant {
            out.findings.push(Finding::new(
                Rule::LockOrder,
                &file.rel_path,
                *line,
                format!(
                    "{} acquires {} while a guard for it is already held (self-deadlock)",
                    key.display(),
                    lock
                ),
            ));
        }
        for p in &f.publishes {
            if !p.held.is_empty() {
                let held: Vec<String> = p.held.iter().map(|l| l.to_string()).collect();
                out.findings.push(Finding::new(
                    Rule::PublishUnderLock,
                    &file.rel_path,
                    p.line,
                    format!(
                        "{} publishes a SharedCatalog snapshot while holding [{}]; \
                         publish must run lock-free so readers only block for the pointer swap",
                        key.display(),
                        held.join(", ")
                    ),
                ));
            }
        }
        for (lock, line) in &f.condvar_double {
            out.findings.push(Finding::new(
                Rule::CondvarDoubleHold,
                &file.rel_path,
                *line,
                format!(
                    "{} waits on a Condvar while also holding {}; \
                     only the waited-on mutex may be held across a wait",
                    key.display(),
                    lock
                ),
            ));
        }
    }
    out.edges = edge_index.into_values().collect();

    // A leaf lock promises to be innermost everywhere: any edge leaving
    // it means something was acquired while the leaf was held.
    for e in &out.edges {
        if out.leaf_locks.contains(&e.from) {
            let (file, line) = split_site(&e.site);
            let via = if e.via.is_empty() {
                String::new()
            } else {
                format!(" (via {})", e.via)
            };
            out.findings.push(Finding::new(
                Rule::LeafLockHeld,
                &file,
                line,
                format!(
                    "{} acquires {} while holding {}{}; \
                     {} is declared `// lint: leaf-lock` and must stay innermost",
                    e.in_fn, e.to, e.from, via, e.from
                ),
            ));
        }
    }

    // Cycle detection over the assembled graph.
    for cycle in find_cycles(&out.edges) {
        let path: Vec<String> = cycle.iter().map(|l| l.to_string()).collect();
        let witness: Vec<&LockEdge> = out
            .edges
            .iter()
            .filter(|e| cycle.contains(&e.from) && cycle.contains(&e.to))
            .collect();
        let sites: Vec<String> = witness
            .iter()
            .map(|e| format!("{} -> {} at {}", e.from, e.to, e.site))
            .collect();
        let first = witness.first().map(|e| e.site.clone()).unwrap_or_default();
        let (file, line) = split_site(&first);
        out.findings.push(Finding::new(
            Rule::LockOrder,
            &file,
            line,
            format!(
                "lock-order cycle: {} -> (back to start); witness edges: {}",
                path.join(" -> "),
                sites.join("; ")
            ),
        ));
    }
    out
}

fn split_site(site: &str) -> (String, u32) {
    match site.rsplit_once(':') {
        Some((f, l)) => (f.to_string(), l.parse().unwrap_or(0)),
        None => (site.to_string(), 0),
    }
}

/// A lock declaration resolved from a struct field.
#[derive(Debug, Clone)]
struct LockDecl {
    id: LockId,
    kind: LockKind,
    /// The field declaration carries a `// lint: leaf-lock` comment.
    leaf: bool,
}

/// Classify a field as a lock from its type's identifier sequence.  The
/// lock type must be the *outermost* constructor (after reference-count /
/// box wrappers and path prefixes): `Mutex<T>`, `Arc<Mutex<T>>` and
/// `std::sync::RwLock<T>` qualify, but a `Vec<(K, Arc<Mutex<V>>)>` is a
/// container that happens to hold locks, not a lock field — treating it
/// as one would mis-resolve unrelated accesses to the container.
fn lock_kind(type_idents: &[String]) -> Option<LockKind> {
    let mut first = None;
    for t in type_idents {
        match t.as_str() {
            "Arc" | "Box" | "Rc" | "std" | "sync" => continue,
            other => {
                first = Some(other);
                break;
            }
        }
    }
    match first {
        Some("Mutex") => Some(LockKind::Mutex),
        Some("RwLock") => Some(LockKind::RwLock),
        Some("Condvar") => Some(LockKind::Condvar),
        _ => None,
    }
}

/// Pre-computed workspace tables shared by every function scan.
struct Workspace {
    /// All declared locks.
    locks: Vec<LockDecl>,
    /// Lock lookup by field name.
    locks_by_field: HashMap<String, Vec<usize>>,
    /// Field-name → (crate, struct, type idents) table for receiver hints.
    fields: HashMap<String, Vec<(String, String, Vec<String>)>>,
    /// Fields whose type mentions `SharedCatalog` (publish points).
    publish_fields: HashSet<String>,
    /// Every struct name in the workspace.
    struct_names: HashSet<String>,
    /// Non-test function keys, parallel to `fn_order`.
    fns: Vec<FnKey>,
    /// `(file index, fn index within file)` for each entry of `fns`.
    fn_order: Vec<(usize, usize)>,
    /// name → indices into `fns`.
    fns_by_name: HashMap<String, Vec<usize>>,
}

impl Workspace {
    fn build(files: &[SourceFile]) -> Workspace {
        let fields = field_table(files);
        let mut locks = Vec::new();
        let mut publish_fields = HashSet::new();
        let mut struct_names = HashSet::new();
        for f in files {
            for s in &f.structs {
                struct_names.insert(s.name.clone());
                for fd in &s.fields {
                    if let Some(kind) = lock_kind(&fd.type_idents) {
                        let leaf =
                            f.comment_block_above(fd.line, |c| c.text.contains("lint: leaf-lock"));
                        locks.push(LockDecl {
                            id: LockId {
                                krate: f.crate_name.clone(),
                                owner: s.name.clone(),
                                field: fd.name.clone(),
                            },
                            kind,
                            leaf,
                        });
                    }
                    if fd.type_idents.iter().any(|t| t == "SharedCatalog") {
                        publish_fields.insert(fd.name.clone());
                    }
                }
            }
        }
        let mut locks_by_field: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, d) in locks.iter().enumerate() {
            locks_by_field
                .entry(d.id.field.clone())
                .or_default()
                .push(i);
        }
        let mut fns = Vec::new();
        let mut fn_order = Vec::new();
        let mut fns_by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (gi, g) in f.fns.iter().enumerate() {
                if g.is_test || g.body.is_none() {
                    continue;
                }
                fns_by_name
                    .entry(g.name.clone())
                    .or_default()
                    .push(fns.len());
                fns.push(FnKey {
                    krate: f.crate_name.clone(),
                    impl_type: g.impl_type.clone(),
                    name: g.name.clone(),
                });
                fn_order.push((fi, gi));
            }
        }
        Workspace {
            locks,
            locks_by_field,
            fields,
            publish_fields,
            struct_names,
            fns,
            fn_order,
            fns_by_name,
        }
    }

    /// Resolve a lock acquisition receiver name to a declared lock,
    /// preferring declarations from `krate`.  Refuses to guess when the
    /// name is ambiguous across crates.
    fn resolve_lock(&self, name: &str, kinds: &[LockKind], krate: &str) -> Option<LockId> {
        let cands = self.locks_by_field.get(name)?;
        let matching: Vec<&LockDecl> = cands
            .iter()
            .map(|&i| &self.locks[i])
            .filter(|d| kinds.contains(&d.kind))
            .collect();
        if let Some(local) = matching.iter().find(|d| d.id.krate == krate) {
            return Some(local.id.clone());
        }
        if matching.len() == 1 {
            return Some(matching[0].id.clone());
        }
        None
    }

    /// Candidate functions for a method call `name` on receiver types
    /// `types`.
    fn method_candidates(&self, name: &str, types: &[String]) -> Vec<usize> {
        let Some(list) = self.fns_by_name.get(name) else {
            return Vec::new();
        };
        list.iter()
            .copied()
            .filter(|&i| {
                self.fns[i]
                    .impl_type
                    .as_ref()
                    .is_some_and(|t| types.iter().any(|x| x == t))
            })
            .collect()
    }

    /// Candidate free functions for a bare call `name`, preferring the
    /// calling crate.
    fn free_candidates(&self, name: &str, krate: &str) -> Vec<usize> {
        let Some(list) = self.fns_by_name.get(name) else {
            return Vec::new();
        };
        let free: Vec<usize> = list
            .iter()
            .copied()
            .filter(|&i| self.fns[i].impl_type.is_none())
            .collect();
        let local: Vec<usize> = free
            .iter()
            .copied()
            .filter(|&i| self.fns[i].krate == krate)
            .collect();
        if local.is_empty() {
            free
        } else {
            local
        }
    }

    /// The workspace struct types mentioned by field `name` (receiver
    /// hint), preferring declarations in `krate`.
    fn field_types(&self, name: &str, krate: &str) -> Vec<String> {
        let Some(decls) = self.fields.get(name) else {
            return Vec::new();
        };
        let local: Vec<&(String, String, Vec<String>)> =
            decls.iter().filter(|d| d.0 == krate).collect();
        let pick: Vec<&(String, String, Vec<String>)> = if local.is_empty() {
            decls.iter().collect()
        } else {
            local
        };
        let mut out = Vec::new();
        for (_, _, tys) in pick {
            for t in tys {
                if self.struct_names.contains(t) && !out.contains(t) {
                    out.push(t.clone());
                }
            }
        }
        out
    }
}

/// A guard currently held during the intra-function walk.
#[derive(Debug, Clone)]
struct Guard {
    lock: LockId,
    binding: Option<String>,
    depth: usize,
    temp: bool,
}

/// An in-flight `let` statement during the intra-function walk.
struct LetCtx {
    depth: usize,
    binding: Option<String>,
    /// An acquisition happened in the initializer: the binding is a guard,
    /// not an alias.
    acquired: bool,
    /// Lock fields mentioned (but not acquired) by the initializer; the
    /// first one becomes the binding's alias target.
    mentions: Vec<LockId>,
    past_eq: bool,
    /// The initializer contains calls, blocks or indexing — too complex
    /// to be a plain reference to a lock field, so no alias is formed.
    impure: bool,
}

const LOCK_METHODS: &[(&str, &[LockKind])] = &[
    ("lock", &[LockKind::Mutex]),
    ("read", &[LockKind::RwLock]),
    ("write", &[LockKind::RwLock]),
];

const HELPER_FNS: &[(&str, &[LockKind])] = &[
    ("locked", &[LockKind::Mutex]),
    ("read_locked", &[LockKind::RwLock]),
    ("write_locked", &[LockKind::RwLock]),
];

const PUBLISH_METHODS: &[&str] = &["update", "try_update", "try_update_with", "replace"];

/// Scan one function body, producing its local facts.
fn scan_fn(ws: &Workspace, file: &SourceFile, item: &FnItem) -> FnFacts {
    let mut facts = FnFacts::default();
    let Some((open, close)) = item.body else {
        return facts;
    };
    let toks = &file.tokens;
    let krate = &file.crate_name;
    let mut guards: Vec<Guard> = Vec::new();
    let mut aliases: HashMap<String, LockId> = HashMap::new();
    let mut letctx: Option<LetCtx> = None;
    let mut depth = 0usize;

    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        match t.kind {
            TokKind::Open('{') => {
                if let Some(ctx) = letctx.as_mut().filter(|c| c.past_eq) {
                    ctx.impure = true;
                }
                depth += 1;
            }
            TokKind::Open(_) => {
                if let Some(ctx) = letctx.as_mut().filter(|c| c.past_eq) {
                    ctx.impure = true;
                }
            }
            TokKind::Close('}') => {
                guards.retain(|g| g.depth < depth);
                depth = depth.saturating_sub(1);
            }
            TokKind::Punct(';') => {
                guards.retain(|g| !(g.temp && g.depth >= depth));
                if letctx.as_ref().is_some_and(|c| c.depth >= depth) {
                    let ctx = letctx.take().expect("checked above");
                    // Only a simple reference initializer mentioning
                    // exactly one lock creates an alias.
                    if !ctx.acquired && !ctx.impure && ctx.mentions.len() == 1 {
                        if let (Some(b), Some(lock)) = (ctx.binding, ctx.mentions.first().cloned())
                        {
                            aliases.insert(b, lock);
                        }
                    }
                }
            }
            TokKind::Ident if t.text == "let" => {
                let mut j = i + 1;
                while j < close && toks[j].is_ident("mut") {
                    j += 1;
                }
                let binding = match toks.get(j) {
                    Some(n)
                        if n.kind == TokKind::Ident
                            && toks
                                .get(j + 1)
                                .is_some_and(|a| a.is_punct('=') || a.is_punct(':')) =>
                    {
                        Some(n.text.clone())
                    }
                    _ => None,
                };
                letctx = Some(LetCtx {
                    depth,
                    binding,
                    acquired: false,
                    mentions: Vec::new(),
                    past_eq: false,
                    impure: false,
                });
            }
            TokKind::Punct('=') => {
                if let Some(ctx) = &mut letctx {
                    ctx.past_eq = true;
                }
            }
            TokKind::Ident => {
                handle_ident(
                    ws,
                    item,
                    krate,
                    toks,
                    i,
                    close,
                    depth,
                    &mut guards,
                    &mut aliases,
                    &mut letctx,
                    &mut facts,
                );
            }
            _ => {}
        }
        i += 1;
    }
    facts
}

/// Handle one identifier token inside a function body: acquisitions,
/// releases, calls, publishes and condvar waits.
#[allow(clippy::too_many_arguments)]
fn handle_ident(
    ws: &Workspace,
    item: &FnItem,
    krate: &str,
    toks: &[Token],
    i: usize,
    close: usize,
    depth: usize,
    guards: &mut Vec<Guard>,
    aliases: &mut HashMap<String, LockId>,
    letctx: &mut Option<LetCtx>,
    facts: &mut FnFacts,
) {
    let name = &toks[i].text;
    // Macro invocations look like `name ! ( … )` — the `!` sits between
    // the ident and the delimiter — so requiring `(` immediately after
    // the ident excludes them for free.
    let next_is_call = toks
        .get(i + 1)
        .is_some_and(|n| n.kind == TokKind::Open('('));
    if !next_is_call {
        // A bare mention of a lock field inside a `let` initializer feeds
        // the alias map (e.g. `let m = &self.state;` … `m.lock()`).
        if let Some(ctx) = letctx {
            if ctx.past_eq {
                if let Some(lock) =
                    ws.resolve_lock(name, &[LockKind::Mutex, LockKind::RwLock], krate)
                {
                    ctx.mentions.push(lock);
                }
            }
        }
        return;
    }
    let prev_dot = i > 0 && toks[i - 1].is_punct('.');
    let line = toks[i].line;

    // `drop(guard)` releases a named guard early.
    if !prev_dot && name == "drop" {
        if let (Some(arg), Some(cl)) = (toks.get(i + 2), toks.get(i + 3)) {
            if arg.kind == TokKind::Ident && cl.kind == TokKind::Close(')') {
                let victim = arg.text.clone();
                guards.retain(|g| g.binding.as_deref() != Some(victim.as_str()));
                return;
            }
        }
    }

    // Poison-recovering helper acquisitions: `locked(&self.state)` etc.
    if !prev_dot {
        if let Some((_, kinds)) = HELPER_FNS.iter().find(|(h, _)| h == name) {
            let args = arg_idents(toks, i + 1, close);
            let lock = args.iter().find_map(|a| {
                aliases
                    .get(a)
                    .cloned()
                    .or_else(|| ws.resolve_lock(a, kinds, krate))
            });
            if let Some(lock) = lock {
                acquire(lock, line, depth, guards, letctx, facts);
            }
            return;
        }
        if name == "wait_on" || name == "wait_on_timeout" {
            let args = arg_idents(toks, i + 1, close);
            record_wait(&args, guards, line, facts);
            return;
        }
    }

    if prev_dot {
        let chain = receiver_chain(toks, i - 1);
        // Direct lock-method acquisition.
        if let Some((_, kinds)) = LOCK_METHODS.iter().find(|(m, _)| m == name) {
            let lock = chain.iter().rev().find_map(|r| {
                aliases
                    .get(r)
                    .cloned()
                    .or_else(|| ws.resolve_lock(r, kinds, krate))
            });
            if let Some(lock) = lock {
                acquire(lock, line, depth, guards, letctx, facts);
                return;
            }
        }
        // Condvar wait.
        if name == "wait" || name == "wait_while" || name == "wait_timeout" {
            let is_condvar = chain
                .iter()
                .rev()
                .any(|r| ws.resolve_lock(r, &[LockKind::Condvar], krate).is_some());
            if is_condvar {
                let args = arg_idents(toks, i + 1, close);
                record_wait(&args, guards, line, facts);
                return;
            }
        }
        // SharedCatalog publish: `self.shared.update(…)` and friends.
        if PUBLISH_METHODS.contains(&name.as_str())
            && chain.iter().any(|r| ws.publish_fields.contains(r))
        {
            facts.publishes.push(PublishObs {
                held: held_locks(guards),
                line,
            });
            return;
        }
        // Plain method call: resolve via receiver hints only.
        let types: Vec<String> = match chain.last().map(String::as_str) {
            Some("self") => item.impl_type.clone().into_iter().collect(),
            Some(field) => ws.field_types(field, krate),
            None => Vec::new(),
        };
        let candidates = if types.is_empty() {
            Vec::new()
        } else {
            ws.method_candidates(name, &types)
        };
        if !candidates.is_empty() {
            facts.calls.push(CallObs {
                candidates,
                held: held_locks(guards),
                line,
            });
        }
        return;
    }

    // Qualified call `Type::name(…)` or bare call `name(…)`.
    let qualified = i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':');
    let candidates = if qualified {
        match i.checked_sub(3).and_then(|q| toks.get(q)) {
            Some(q) if q.kind == TokKind::Ident && ws.struct_names.contains(&q.text) => {
                ws.method_candidates(name, std::slice::from_ref(&q.text))
            }
            _ => Vec::new(),
        }
    } else {
        ws.free_candidates(name, krate)
    };
    if !candidates.is_empty() {
        facts.calls.push(CallObs {
            candidates,
            held: held_locks(guards),
            line,
        });
    }
}

/// Record a lock acquisition: edges from every held lock, re-entrancy
/// check, and the new guard (block-scoped when inside a `let`).
fn acquire(
    lock: LockId,
    line: u32,
    depth: usize,
    guards: &mut Vec<Guard>,
    letctx: &mut Option<LetCtx>,
    facts: &mut FnFacts,
) {
    for g in guards.iter() {
        if g.lock == lock {
            facts.reentrant.push((lock.clone(), line));
        } else {
            facts.intra_edges.push((g.lock.clone(), lock.clone(), line));
        }
    }
    facts.acquires.push((lock.clone(), line));
    let (binding, temp, gdepth) = match letctx {
        Some(ctx) if ctx.past_eq => {
            ctx.acquired = true;
            (ctx.binding.clone(), false, ctx.depth)
        }
        _ => (None, true, depth),
    };
    guards.push(Guard {
        lock,
        binding,
        depth: gdepth,
        temp,
    });
}

/// A condvar wait: any held lock other than the one whose guard is passed
/// to the wait is a double-hold hazard.
fn record_wait(args: &[String], guards: &[Guard], line: u32, facts: &mut FnFacts) {
    let waited: HashSet<&LockId> = guards
        .iter()
        .filter(|g| {
            g.binding
                .as_deref()
                .is_some_and(|b| args.iter().any(|a| a == b))
        })
        .map(|g| &g.lock)
        .collect();
    for g in guards {
        if !waited.contains(&g.lock) {
            facts.condvar_double.push((g.lock.clone(), line));
        }
    }
}

fn held_locks(guards: &[Guard]) -> Vec<LockId> {
    let mut out: Vec<LockId> = Vec::new();
    for g in guards {
        if !out.contains(&g.lock) {
            out.push(g.lock.clone());
        }
    }
    out
}

/// Identifiers appearing anywhere in a call's argument list.
fn arg_idents(toks: &[Token], open: usize, limit: usize) -> Vec<String> {
    let close = crate::model::match_delim(toks, open)
        .min(limit)
        .min(toks.len() - 1);
    toks[open..=close]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .collect()
}

/// The dotted receiver chain ending at the `.` at index `dot`:
/// `self.shared.state.lock()` yields `["self", "shared", "state"]`.
/// Stops (returning what it has) at anything that is not `ident.`; a
/// receiver hidden behind `)` or `]` therefore yields an empty chain and
/// the call stays unresolved — conservative by design.
fn receiver_chain(toks: &[Token], dot: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut j = dot;
    loop {
        if j == 0 || !toks[j].is_punct('.') {
            break;
        }
        let prev = &toks[j - 1];
        if prev.kind != TokKind::Ident {
            break;
        }
        chain.push(prev.text.clone());
        if j < 2 {
            break;
        }
        j -= 2;
    }
    chain.reverse();
    chain
}

/// Find elementary cycles in the lock graph.  The graph is tiny (a
/// handful of locks), so a bounded DFS per start node suffices; cycles
/// are canonicalized (rotated to start at the smallest lock) and
/// deduplicated.
fn find_cycles(edges: &[LockEdge]) -> Vec<Vec<LockId>> {
    let mut adj: BTreeMap<&LockId, Vec<&LockId>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().push(&e.to);
    }
    let mut seen: BTreeSet<Vec<LockId>> = BTreeSet::new();
    let nodes: Vec<&LockId> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut path: Vec<&LockId> = vec![start];
        let mut stack: Vec<(usize, Vec<&LockId>)> =
            vec![(0, adj.get(start).cloned().unwrap_or_default())];
        while let Some((idx, succs)) = stack.last_mut() {
            if *idx >= succs.len() {
                stack.pop();
                path.pop();
                continue;
            }
            let next = succs[*idx];
            *idx += 1;
            if next == start {
                let mut cyc: Vec<LockId> = path.iter().map(|&l| l.clone()).collect();
                let min_pos = cyc
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.cmp(b.1))
                    .map(|(p, _)| p)
                    .unwrap_or(0);
                cyc.rotate_left(min_pos);
                seen.insert(cyc);
                continue;
            }
            if path.contains(&next) || path.len() > 8 {
                continue;
            }
            path.push(next);
            let succs = adj.get(next).cloned().unwrap_or_default();
            stack.push((0, succs));
        }
    }
    seen.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn parse_one(src: &str) -> Vec<SourceFile> {
        vec![SourceFile::parse("x/src/lib.rs", "x", src, false)]
    }

    const DECLS: &str = r#"
        pub struct Hub { a: Mutex<u32>, b: Mutex<u32>, cv: Condvar, shared: SharedCatalog }
        pub struct SharedCatalog { current: RwLock<u32>, writer: Mutex<()> }
    "#;

    #[test]
    fn opposite_order_acquisitions_form_a_cycle() {
        let files = parse_one(&format!(
            "{DECLS}
            impl Hub {{
                fn fwd(&self) {{ let g = self.a.lock().unwrap(); let h = self.b.lock().unwrap(); }}
                fn rev(&self) {{ let g = self.b.lock().unwrap(); let h = self.a.lock().unwrap(); }}
            }}"
        ));
        let out = run(&files);
        assert_eq!(out.edges.len(), 2, "edges: {:?}", out.edges);
        assert!(
            out.findings
                .iter()
                .any(|f| f.rule == Rule::LockOrder && f.message.contains("cycle")),
            "findings: {:?}",
            out.findings
        );
    }

    #[test]
    fn consistent_order_is_clean_and_edges_are_reported() {
        let files = parse_one(&format!(
            "{DECLS}
            impl Hub {{
                fn fwd(&self) {{ let g = self.a.lock().unwrap(); let h = self.b.lock().unwrap(); }}
                fn also_fwd(&self) {{ let g = self.a.lock().unwrap(); self.b.lock().unwrap().checked_add(1); }}
            }}"
        ));
        let out = run(&files);
        assert!(out.findings.is_empty(), "findings: {:?}", out.findings);
        assert_eq!(out.edges.len(), 1);
        assert_eq!(out.edges[0].from.field, "a");
        assert_eq!(out.edges[0].to.field, "b");
    }

    #[test]
    fn interprocedural_edge_via_self_call() {
        let files = parse_one(&format!(
            "{DECLS}
            impl Hub {{
                fn inner(&self) {{ let g = self.b.lock().unwrap(); }}
                fn outer(&self) {{ let g = self.a.lock().unwrap(); self.inner(); }}
                fn rev(&self) {{ let g = self.b.lock().unwrap(); let h = self.a.lock().unwrap(); }}
            }}"
        ));
        let out = run(&files);
        assert!(
            out.findings
                .iter()
                .any(|f| f.rule == Rule::LockOrder && f.message.contains("cycle")),
            "findings: {:?}",
            out.findings
        );
        assert!(out.edges.iter().any(|e| !e.via.is_empty()));
    }

    #[test]
    fn reentrant_acquisition_is_flagged() {
        let files = parse_one(&format!(
            "{DECLS}
            impl Hub {{
                fn twice(&self) {{ let g = self.a.lock().unwrap(); let h = self.a.lock().unwrap(); }}
            }}"
        ));
        let out = run(&files);
        assert!(
            out.findings
                .iter()
                .any(|f| f.rule == Rule::LockOrder && f.message.contains("self-deadlock")),
            "findings: {:?}",
            out.findings
        );
    }

    #[test]
    fn block_scope_and_drop_release_guards() {
        let files = parse_one(&format!(
            "{DECLS}
            impl Hub {{
                fn scoped(&self) {{
                    {{ let g = self.a.lock().unwrap(); g.checked_add(1); }}
                    let h = self.b.lock().unwrap();
                }}
                fn dropped(&self) {{
                    let g = self.a.lock().unwrap();
                    drop(g);
                    let h = self.b.lock().unwrap();
                }}
            }}"
        ));
        let out = run(&files);
        assert!(out.edges.is_empty(), "edges: {:?}", out.edges);
        assert!(out.findings.is_empty(), "findings: {:?}", out.findings);
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let files = parse_one(&format!(
            "{DECLS}
            impl Hub {{
                fn temps(&self) {{
                    self.a.lock().unwrap().checked_add(1);
                    self.b.lock().unwrap().checked_add(1);
                }}
            }}"
        ));
        let out = run(&files);
        assert!(out.edges.is_empty(), "edges: {:?}", out.edges);
    }

    #[test]
    fn publish_under_lock_is_flagged_directly_and_through_calls() {
        let files = parse_one(&format!(
            "{DECLS}
            impl Hub {{
                fn bad(&self) {{ let g = self.a.lock().unwrap(); self.shared.update(1); }}
                fn publishes(&self) {{ self.shared.update(2); }}
                fn bad_via_call(&self) {{ let g = self.b.lock().unwrap(); self.publishes(); }}
                fn fine(&self) {{ self.shared.update(3); }}
            }}"
        ));
        let out = run(&files);
        let pubs: Vec<_> = out
            .findings
            .iter()
            .filter(|f| f.rule == Rule::PublishUnderLock)
            .collect();
        assert_eq!(pubs.len(), 2, "findings: {:?}", out.findings);
    }

    #[test]
    fn condvar_wait_with_extra_lock_is_flagged() {
        let files = parse_one(&format!(
            "{DECLS}
            impl Hub {{
                fn ok(&self) {{
                    let mut g = self.a.lock().unwrap();
                    g = self.cv.wait(g).unwrap();
                }}
                fn bad(&self) {{
                    let g = self.a.lock().unwrap();
                    let h = self.b.lock().unwrap();
                    let h2 = self.cv.wait(h).unwrap();
                }}
            }}"
        ));
        let out = run(&files);
        let cv: Vec<_> = out
            .findings
            .iter()
            .filter(|f| f.rule == Rule::CondvarDoubleHold)
            .collect();
        assert_eq!(cv.len(), 1, "findings: {:?}", out.findings);
        assert!(cv[0].message.contains("Hub.a"), "msg: {}", cv[0].message);
    }

    #[test]
    fn helper_acquisitions_are_tracked_like_direct_locks() {
        let files = parse_one(&format!(
            "{DECLS}
            impl Hub {{
                fn fwd(&self) {{ let g = locked(&self.a); let h = locked(&self.b); }}
                fn rev(&self) {{ let g = locked(&self.b); let h = locked(&self.a); }}
            }}"
        ));
        let out = run(&files);
        assert!(
            out.findings
                .iter()
                .any(|f| f.rule == Rule::LockOrder && f.message.contains("cycle")),
            "findings: {:?}",
            out.findings
        );
    }

    #[test]
    fn container_of_locks_is_not_a_lock_and_complex_lets_make_no_alias() {
        // Mirrors the serving scheduler's coalescing path: `running` is a
        // Vec that *contains* mutexes (not itself a lock), and `slot` is
        // bound from a lookup expression that mentions the `state` field
        // — neither may alias `slot.lock()` back to `Shared.state`.
        let files = parse_one(
            r#"
            pub struct Sched { queue: u32, running: Vec<(u32, Arc<Mutex<u8>>)> }
            pub struct Shr { state: Mutex<Sched> }
            impl Shr {
                fn submit(&self) {
                    let mut state = self.state.lock().unwrap();
                    let slot = state.running.iter().find(|x| true).map(|x| x.clone());
                    if let Some(slot) = slot {
                        let mut guard = slot.lock().unwrap();
                        guard.checked_add(1);
                    }
                }
            }
            "#,
        );
        let out = run(&files);
        assert_eq!(out.locks.len(), 1, "locks: {:?}", out.locks);
        assert_eq!(out.locks[0].0.field, "state");
        assert!(out.findings.is_empty(), "findings: {:?}", out.findings);
    }

    #[test]
    fn simple_reference_let_still_aliases() {
        let files = parse_one(&format!(
            "{DECLS}
            impl Hub {{
                fn via_ref(&self) {{
                    let m = &self.a;
                    let g = m.lock().unwrap();
                    let h = self.a.lock().unwrap();
                }}
            }}"
        ));
        let out = run(&files);
        assert!(
            out.findings
                .iter()
                .any(|f| f.message.contains("self-deadlock")),
            "findings: {:?}",
            out.findings
        );
    }

    #[test]
    fn leaf_lock_held_across_an_acquisition_is_flagged() {
        let files = parse_one(
            r#"
            pub struct Sig {
                // lint: leaf-lock wake signalling is taken from arbitrary callers
                sig: Mutex<u32>,
                queue: Mutex<u32>,
            }
            impl Sig {
                fn bad(&self) { let g = self.sig.lock().unwrap(); let q = self.queue.lock().unwrap(); }
            }
            "#,
        );
        let out = run(&files);
        assert_eq!(out.leaf_locks.len(), 1, "leaves: {:?}", out.leaf_locks);
        assert_eq!(out.leaf_locks[0].field, "sig");
        let leaf: Vec<_> = out
            .findings
            .iter()
            .filter(|f| f.rule == Rule::LeafLockHeld)
            .collect();
        assert_eq!(leaf.len(), 1, "findings: {:?}", out.findings);
        assert!(
            leaf[0].message.contains("Sig.sig"),
            "msg: {}",
            leaf[0].message
        );
    }

    #[test]
    fn acquiring_a_leaf_lock_last_is_clean() {
        let files = parse_one(
            r#"
            pub struct Sig {
                // lint: leaf-lock wake signalling is taken from arbitrary callers
                sig: Mutex<u32>,
                queue: Mutex<u32>,
            }
            impl Sig {
                fn good(&self) { let q = self.queue.lock().unwrap(); let g = self.sig.lock().unwrap(); }
            }
            "#,
        );
        let out = run(&files);
        assert_eq!(out.leaf_locks.len(), 1);
        assert!(out.findings.is_empty(), "findings: {:?}", out.findings);
        assert_eq!(
            out.edges.len(),
            1,
            "the queue -> sig edge is still recorded"
        );
    }

    #[test]
    fn leaf_violations_propagate_through_calls() {
        let files = parse_one(
            r#"
            pub struct Sig {
                // lint: leaf-lock wake signalling is taken from arbitrary callers
                sig: Mutex<u32>,
                queue: Mutex<u32>,
            }
            impl Sig {
                fn inner(&self) { let q = self.queue.lock().unwrap(); }
                fn outer(&self) { let g = self.sig.lock().unwrap(); self.inner(); }
            }
            "#,
        );
        let out = run(&files);
        let leaf: Vec<_> = out
            .findings
            .iter()
            .filter(|f| f.rule == Rule::LeafLockHeld)
            .collect();
        assert_eq!(leaf.len(), 1, "findings: {:?}", out.findings);
        assert!(leaf[0].message.contains("via"), "msg: {}", leaf[0].message);
    }

    #[test]
    fn unrelated_update_method_is_not_a_publish() {
        // `state.update(1)` where `state` is an AggState parameter, not a
        // SharedCatalog field, must not count as a publish.
        let files = parse_one(&format!(
            "{DECLS}
            pub struct AggState {{ v: u32 }}
            impl Hub {{
                fn f(&self, state: &mut AggState) {{
                    let g = self.a.lock().unwrap();
                    state.update(1);
                }}
            }}"
        ));
        let out = run(&files);
        assert!(
            out.findings
                .iter()
                .all(|f| f.rule != Rule::PublishUnderLock),
            "findings: {:?}",
            out.findings
        );
    }
}
