//! The source model: per-file item structure recovered from the token
//! stream.
//!
//! A single linear pass over the tokens of one file recovers everything
//! the rules consume:
//!
//! * **functions** — name, enclosing `impl` type, body token range,
//!   `unsafe`ness, and whether the function is test code (`#[test]`, or
//!   anywhere inside a `#[cfg(test)]` module, or in a `tests/` file),
//! * **structs** — named fields with the identifiers appearing in their
//!   types (enough to recognise `Mutex<…>`, `RwLock<…>`, `Condvar` and
//!   lock-holding struct types without a real type system),
//! * **unsafe sites** — `unsafe {` blocks, `unsafe fn`s, `unsafe impl`s,
//! * **annotations** — `// lint: allow(rule) reason` escape hatches and
//!   `// SAFETY:` comments, resolved by line adjacency,
//! * the presence of the crate-level `#![forbid(unsafe_code)]` attribute.
//!
//! The pass is deliberately heuristic (no expression grammar, no name
//! resolution beyond what the lock rule builds on top), but it is
//! *conservative in the right direction* for every rule: a construct the
//! model fails to classify produces no finding, never a spurious one.

use crate::lexer::{lex, Comment, TokKind, Token};
use std::collections::{HashMap, HashSet};

/// What kind of code an `unsafe` keyword introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// `unsafe { … }`.
    Block,
    /// `unsafe fn …`.
    Fn,
    /// `unsafe impl …` / `unsafe trait …`.
    Item,
}

/// One occurrence of the `unsafe` keyword in non-macro code.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Classification of the site.
    pub kind: UnsafeKind,
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
}

/// A function item (free function or method).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// The self type of the enclosing `impl` block, if any.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the function is declared `unsafe`.
    pub is_unsafe: bool,
    /// Whether the function is test code (see module docs).
    pub is_test: bool,
    /// Token-index range `(open, close)` of the body braces, if present.
    pub body: Option<(usize, usize)>,
    /// Whether the doc comment above the item contains a `# Safety`
    /// section or a `SAFETY` note.
    pub doc_safety: bool,
}

/// A named struct field and the identifiers mentioned in its type.
#[derive(Debug, Clone)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Every identifier appearing in the field's type.
    pub type_idents: Vec<String>,
    /// 1-based line of the field name.
    pub line: u32,
}

/// A struct item with named fields (tuple/unit structs keep no fields).
#[derive(Debug, Clone)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// Named fields.
    pub fields: Vec<FieldDecl>,
}

/// A `// lint: allow(rule) reason` annotation.
#[derive(Debug, Clone)]
pub struct AllowNote {
    /// 1-based line of the comment.
    pub line: u32,
    /// The rule key inside `allow(…)`.
    pub rule: String,
    /// Whether any justification text follows the `allow(…)`.
    pub has_reason: bool,
}

/// One analyzed source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the analysis root, `/`-separated.
    pub rel_path: String,
    /// The cargo package name the file belongs to.
    pub crate_name: String,
    /// Code tokens.
    pub tokens: Vec<Token>,
    /// Comments (side list).
    pub comments: Vec<Comment>,
    /// Function items in source order.
    pub fns: Vec<FnItem>,
    /// Struct items in source order.
    pub structs: Vec<StructItem>,
    /// `unsafe` sites in source order.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// `// lint: allow(…)` annotations.
    pub allows: Vec<AllowNote>,
    /// Whether the file carries `#![forbid(unsafe_code)]`.
    pub has_forbid_unsafe: bool,
    /// Lines occupied by code tokens (to tell own-line comments apart
    /// from trailing ones).
    token_lines: HashSet<u32>,
    /// Lines fully occupied by attributes (`#[…]`), treated as skippable
    /// when walking a comment block upwards.
    attr_lines: HashSet<u32>,
}

impl SourceFile {
    /// Parse one file.  `rel_path` is stored verbatim; `in_tests_dir`
    /// marks every function as test code (integration-test trees).
    pub fn parse(rel_path: &str, crate_name: &str, src: &str, in_tests_dir: bool) -> SourceFile {
        let lexed = lex(src);
        let mut f = SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            tokens: lexed.tokens,
            comments: lexed.comments,
            fns: Vec::new(),
            structs: Vec::new(),
            unsafe_sites: Vec::new(),
            allows: Vec::new(),
            has_forbid_unsafe: false,
            token_lines: HashSet::new(),
            attr_lines: HashSet::new(),
        };
        f.token_lines = f.tokens.iter().map(|t| t.line).collect();
        f.collect_allows();
        f.structure_pass(in_tests_dir);
        f
    }

    /// The comment text on `line` when that line holds no code tokens
    /// (an "own-line" comment), or a trailing comment on a code line.
    fn comment_on(&self, line: u32) -> Option<&Comment> {
        self.comments
            .iter()
            .find(|c| c.line <= line && line <= c.end_line)
    }

    /// True when `line` holds only comments or attributes (no other code).
    fn is_skippable_line(&self, line: u32) -> bool {
        if self.attr_lines.contains(&line) {
            return true;
        }
        !self.token_lines.contains(&line) && self.comment_on(line).is_some()
    }

    /// Walk the contiguous comment/attribute block directly above `line`
    /// (and the trailing comment on `line` itself) and return true when
    /// any comment in it satisfies `pred`.
    pub fn comment_block_above(&self, line: u32, mut pred: impl FnMut(&Comment) -> bool) -> bool {
        if let Some(c) = self.comment_on(line) {
            if pred(c) {
                return true;
            }
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 && self.is_skippable_line(l) {
            if let Some(c) = self.comment_on(l) {
                if pred(c) {
                    return true;
                }
                l = c.line.saturating_sub(1);
            } else {
                l = l.saturating_sub(1);
            }
            if l == 0 {
                break;
            }
        }
        false
    }

    /// The `allow(rule)` annotations that cover a finding at `line`: the
    /// trailing comment of that line or the contiguous comment block
    /// directly above it.
    pub fn allow_covering(&self, line: u32, rule: &str) -> Option<&AllowNote> {
        let mut found = None;
        self.comment_block_above(line, |c| {
            if let Some(note) = self.allows.iter().find(|a| a.line == c.line) {
                if note.rule == rule {
                    found = Some(note.line);
                    return true;
                }
            }
            false
        });
        found.and_then(|l| self.allows.iter().find(|a| a.line == l && a.rule == rule))
    }

    fn collect_allows(&mut self) {
        for c in &self.comments {
            let Some(pos) = c.text.find("lint: allow(") else {
                continue;
            };
            let after = &c.text[pos + "lint: allow(".len()..];
            let Some(close) = after.find(')') else {
                continue;
            };
            let rule = after[..close].trim().to_string();
            let reason = after[close + 1..].trim();
            self.allows.push(AllowNote {
                line: c.line,
                rule,
                has_reason: !reason.is_empty(),
            });
        }
    }

    /// The single linear pass recovering items (see module docs).
    fn structure_pass(&mut self, in_tests_dir: bool) {
        #[derive(Debug)]
        enum Ctx {
            /// `mod … {` — `cfg_test` true for `#[cfg(test)]` modules.
            Mod { cfg_test: bool },
            /// `impl … {` with the recovered self-type name.
            Impl { type_name: Option<String> },
            /// A function body; index into `self.fns`.
            Fn { idx: usize, open: usize },
            /// Any other brace (blocks, match bodies, struct literals…).
            Other,
        }

        let toks = std::mem::take(&mut self.tokens);
        let mut ctx: Vec<Ctx> = Vec::new();
        // Tokens accumulated since the last statement/item boundary —
        // consulted when a `{` opens to classify it.
        let mut header: Vec<(usize, TokKind)> = Vec::new();
        let mut pending_attr_test = false;
        let mut pending_fn: Option<usize> = None;
        let mut cfg_test_depth = 0usize;
        let mut i = 0usize;
        while i < toks.len() {
            let t = &toks[i];
            match t.kind {
                TokKind::Punct('#') => {
                    // Attribute: `#[…]` or `#![…]`.
                    let mut j = i + 1;
                    let inner = j < toks.len() && toks[j].is_punct('!');
                    if inner {
                        j += 1;
                    }
                    if j < toks.len() && toks[j].kind == TokKind::Open('[') {
                        let close = match_delim(&toks, j);
                        let idents: Vec<&str> = toks[j..=close.min(toks.len() - 1)]
                            .iter()
                            .filter(|t| t.kind == TokKind::Ident)
                            .map(|t| t.text.as_str())
                            .collect();
                        if inner && idents.contains(&"forbid") && idents.contains(&"unsafe_code") {
                            self.has_forbid_unsafe = true;
                        }
                        if !inner && idents.contains(&"test") {
                            pending_attr_test = true;
                        }
                        for t in &toks[i..=close.min(toks.len() - 1)] {
                            self.attr_lines.insert(t.line);
                        }
                        i = close + 1;
                        continue;
                    }
                    i += 1;
                }
                TokKind::Ident if t.text == "unsafe" => {
                    let next = toks.get(i + 1);
                    let kind = match next.map(|n| &n.kind) {
                        Some(TokKind::Open('{')) => Some(UnsafeKind::Block),
                        Some(TokKind::Ident) => {
                            let w = &next.expect("checked").text;
                            if w == "fn" || w == "extern" {
                                Some(UnsafeKind::Fn)
                            } else if w == "impl" || w == "trait" {
                                Some(UnsafeKind::Item)
                            } else {
                                None
                            }
                        }
                        _ => None,
                    };
                    if let Some(kind) = kind {
                        self.unsafe_sites.push(UnsafeSite { kind, line: t.line });
                    }
                    header.push((i, t.kind));
                    i += 1;
                }
                TokKind::Ident if t.text == "fn" => {
                    if let Some(name_tok) = toks.get(i + 1) {
                        if name_tok.kind == TokKind::Ident {
                            let impl_type = ctx.iter().rev().find_map(|c| match c {
                                Ctx::Impl { type_name } => Some(type_name.clone()),
                                _ => None,
                            });
                            let is_unsafe = header
                                .iter()
                                .any(|&(h, k)| k == TokKind::Ident && toks[h].text == "unsafe");
                            let doc_safety = self.comment_block_above(t.line, |c| {
                                c.doc && (c.text.contains("# Safety") || c.text.contains("SAFETY"))
                            });
                            self.fns.push(FnItem {
                                name: name_tok.text.clone(),
                                impl_type: impl_type.flatten(),
                                line: t.line,
                                is_unsafe,
                                is_test: pending_attr_test || cfg_test_depth > 0 || in_tests_dir,
                                body: None,
                                doc_safety,
                            });
                            pending_fn = Some(self.fns.len() - 1);
                            pending_attr_test = false;
                        }
                    }
                    header.push((i, t.kind));
                    i += 1;
                }
                TokKind::Ident if t.text == "struct" => {
                    let (item, next) = parse_struct(&toks, i);
                    if let Some(s) = item {
                        self.structs.push(s);
                    }
                    pending_attr_test = false;
                    header.clear();
                    pending_fn = None;
                    i = next;
                }
                TokKind::Open('{') => {
                    let words: Vec<&str> = header
                        .iter()
                        .filter(|&&(_, k)| k == TokKind::Ident)
                        .map(|&(h, _)| toks[h].text.as_str())
                        .collect();
                    let c = if let Some(idx) = pending_fn.take() {
                        Ctx::Fn { idx, open: i }
                    } else if words.first() == Some(&"mod")
                        || (words.contains(&"mod") && words.contains(&"pub"))
                    {
                        let cfg_test = pending_attr_test;
                        if cfg_test {
                            cfg_test_depth += 1;
                        }
                        Ctx::Mod { cfg_test }
                    } else if words.contains(&"impl") {
                        Ctx::Impl {
                            type_name: impl_self_type(&toks, &header),
                        }
                    } else {
                        Ctx::Other
                    };
                    pending_attr_test = false;
                    ctx.push(c);
                    header.clear();
                    i += 1;
                }
                TokKind::Close('}') => {
                    match ctx.pop() {
                        Some(Ctx::Fn { idx, open }) => {
                            self.fns[idx].body = Some((open, i));
                        }
                        Some(Ctx::Mod { cfg_test: true }) => {
                            cfg_test_depth = cfg_test_depth.saturating_sub(1);
                        }
                        _ => {}
                    }
                    header.clear();
                    pending_fn = None;
                    i += 1;
                }
                TokKind::Punct(';') => {
                    header.clear();
                    // A `;` after `fn name(…)` is a bodyless declaration.
                    pending_fn = None;
                    pending_attr_test = false;
                    i += 1;
                }
                _ => {
                    header.push((i, t.kind));
                    i += 1;
                }
            }
        }
        self.tokens = toks;
    }
}

/// Token index of the `Close` matching the `Open` at `open` (or the last
/// token when unbalanced).
pub fn match_delim(toks: &[Token], open: usize) -> usize {
    let (want_open, want_close) = match toks[open].kind {
        TokKind::Open(c) => {
            let close = match c {
                '(' => ')',
                '[' => ']',
                _ => '}',
            };
            (c, close)
        }
        _ => return open,
    };
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Open(c) if c == want_open => depth += 1,
            TokKind::Close(c) if c == want_close => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len() - 1
}

/// Recover the self-type name from an `impl` header: the last path segment
/// after `for` when present, otherwise the last path segment of the type
/// being implemented (generic arguments are skipped).
fn impl_self_type(toks: &[Token], header: &[(usize, TokKind)]) -> Option<String> {
    let impl_pos = header
        .iter()
        .position(|&(h, k)| k == TokKind::Ident && toks[h].text == "impl")?;
    let mut angle = 0i32;
    let mut candidate: Option<String> = None;
    for &(h, k) in &header[impl_pos + 1..] {
        let t = &toks[h];
        match k {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle -= 1,
            TokKind::Ident if angle == 0 => {
                if t.text == "where" {
                    break;
                }
                if t.text == "for" {
                    candidate = None;
                } else if t.text != "dyn" && t.text != "const" {
                    // Path segments overwrite each other, so the self
                    // type ends up as the last path segment seen before
                    // the body (after `for` when present, which resets).
                    candidate = Some(t.text.clone());
                }
            }
            _ => {}
        }
    }
    candidate
}

/// Parse `struct Name …` starting at the `struct` keyword; returns the
/// item (named-field structs only) and the token index to resume at.
fn parse_struct(toks: &[Token], kw: usize) -> (Option<StructItem>, usize) {
    let Some(name_tok) = toks.get(kw + 1) else {
        return (None, kw + 1);
    };
    if name_tok.kind != TokKind::Ident {
        return (None, kw + 1);
    }
    let name = name_tok.text.clone();
    let mut j = kw + 2;
    let mut angle = 0i32;
    let mut seen_where = false;
    // Find the body `{`, a tuple `(`, or the terminating `;`.
    loop {
        let Some(t) = toks.get(j) else {
            return (None, j);
        };
        match t.kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle -= 1,
            TokKind::Ident if t.text == "where" => seen_where = true,
            TokKind::Punct(';') if angle <= 0 => {
                return (
                    Some(StructItem {
                        name,
                        fields: Vec::new(),
                    }),
                    j + 1,
                );
            }
            TokKind::Open('(') if angle <= 0 && !seen_where => {
                // Tuple struct: skip to the `;`.
                let close = match_delim(toks, j);
                let mut k = close + 1;
                while k < toks.len() && !toks[k].is_punct(';') {
                    k += 1;
                }
                return (
                    Some(StructItem {
                        name,
                        fields: Vec::new(),
                    }),
                    k + 1,
                );
            }
            TokKind::Open('{') if angle <= 0 => break,
            _ => {}
        }
        j += 1;
    }
    let body_open = j;
    let body_close = match_delim(toks, body_open);
    let mut fields = Vec::new();
    let mut k = body_open + 1;
    while k < body_close {
        // Skip attributes on the field.
        if toks[k].is_punct('#') {
            if let Some(n) = toks.get(k + 1) {
                if n.kind == TokKind::Open('[') {
                    k = match_delim(toks, k + 1) + 1;
                    continue;
                }
            }
            k += 1;
            continue;
        }
        // Skip visibility.
        if toks[k].is_ident("pub") {
            k += 1;
            if k < body_close && toks[k].kind == TokKind::Open('(') {
                k = match_delim(toks, k) + 1;
            }
            continue;
        }
        if toks[k].kind != TokKind::Ident {
            k += 1;
            continue;
        }
        let fname = toks[k].text.clone();
        let fline = toks[k].line;
        if !toks.get(k + 1).is_some_and(|t| t.is_punct(':')) {
            k += 1;
            continue;
        }
        // Collect the type idents until the `,` that ends the field (at
        // delimiter depth 0 relative to the struct body, outside `<…>`).
        let mut type_idents = Vec::new();
        let mut depth = 0i32;
        let mut angle = 0i32;
        k += 2;
        while k < body_close {
            match toks[k].kind {
                TokKind::Open(_) => depth += 1,
                TokKind::Close(_) => depth -= 1,
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') => angle -= 1,
                TokKind::Punct(',') if depth == 0 && angle <= 0 => {
                    k += 1;
                    break;
                }
                TokKind::Ident => type_idents.push(toks[k].text.clone()),
                _ => {}
            }
            k += 1;
        }
        fields.push(FieldDecl {
            name: fname,
            type_idents,
            line: fline,
        });
    }
    (Some(StructItem { name, fields }), body_close + 1)
}

/// Map from field name to every `(crate, struct, type idents)` declaring
/// it — the receiver-hint table used by the lock rule.
pub fn field_table(files: &[SourceFile]) -> HashMap<String, Vec<(String, String, Vec<String>)>> {
    let mut map: HashMap<String, Vec<(String, String, Vec<String>)>> = HashMap::new();
    for f in files {
        for s in &f.structs {
            for fd in &s.fields {
                map.entry(fd.name.clone()).or_default().push((
                    f.crate_name.clone(),
                    s.name.clone(),
                    fd.type_idents.clone(),
                ));
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("lib.rs", "demo", src, false)
    }

    #[test]
    fn fns_and_impl_types_are_recovered() {
        let f = file(
            "impl std::fmt::Debug for Server { fn fmt(&self) {} }\n\
             impl<T: Clone> Wrapper<T> { fn get(&self) -> T { self.0.clone() } }\n\
             pub fn free() {}\n",
        );
        let names: Vec<(String, Option<String>)> = f
            .fns
            .iter()
            .map(|x| (x.name.clone(), x.impl_type.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("fmt".into(), Some("Server".into())),
                ("get".into(), Some("Wrapper".into())),
                ("free".into(), None),
            ]
        );
        assert!(f.fns.iter().all(|x| x.body.is_some()));
    }

    #[test]
    fn cfg_test_modules_and_test_attrs_mark_fns() {
        let f = file(
            "fn real() {}\n\
             #[test]\nfn unit() {}\n\
             #[cfg(test)]\nmod tests { fn helper() {} #[test] fn t() {} }\n",
        );
        let by_name = |n: &str| f.fns.iter().find(|x| x.name == n).unwrap();
        assert!(!by_name("real").is_test);
        assert!(by_name("unit").is_test);
        assert!(by_name("helper").is_test);
        assert!(by_name("t").is_test);
    }

    #[test]
    fn struct_fields_capture_type_idents() {
        let f = file(
            "struct Shared { state: Mutex<SchedState>, work_ready: Condvar, \
             db: Arc<TcuDb>, n: usize }\nstruct Unit;\nstruct Tup(Mutex<u8>);\n",
        );
        assert_eq!(f.structs.len(), 3);
        let shared = &f.structs[0];
        assert_eq!(shared.fields.len(), 4);
        assert!(shared.fields[0].type_idents.contains(&"Mutex".to_string()));
        assert!(shared.fields[1]
            .type_idents
            .contains(&"Condvar".to_string()));
    }

    #[test]
    fn unsafe_sites_and_forbid_attr_are_found() {
        let f = file(
            "#![forbid(unsafe_code)]\n\
             fn a() { let x = 1; }\n",
        );
        assert!(f.has_forbid_unsafe);
        let g = file(
            "unsafe fn raw() {}\n\
             fn b() { unsafe { core::hint::unreachable_unchecked() } }\n\
             unsafe impl Send for X {}\n",
        );
        let kinds: Vec<UnsafeKind> = g.unsafe_sites.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![UnsafeKind::Fn, UnsafeKind::Block, UnsafeKind::Item]
        );
    }

    #[test]
    fn allow_notes_resolve_by_adjacency() {
        let f = file(
            "fn a() {\n\
             \u{20}   // lint: allow(panic) invariant: queue is non-empty here\n\
             \u{20}   let x = q.pop().unwrap();\n\
             \u{20}   let y = r.pop().unwrap(); // lint: allow(panic) same\n\
             \u{20}   let z = s.pop().unwrap();\n\
             }\n",
        );
        assert!(f.allow_covering(3, "panic").is_some());
        assert!(f.allow_covering(4, "panic").is_some());
        assert!(f.allow_covering(5, "panic").is_none());
        assert!(f.allow_covering(3, "lock-order").is_none());
    }

    #[test]
    fn doc_safety_sections_attach_to_fns() {
        let f = file(
            "/// Does raw things.\n///\n/// # Safety\n/// Caller must check x.\n\
             #[inline]\npub unsafe fn raw() {}\n\
             pub unsafe fn undocumented() {}\n",
        );
        assert!(f.fns[0].doc_safety);
        assert!(!f.fns[1].doc_safety);
    }
}
