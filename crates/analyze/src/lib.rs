//! `tcudb-analyze` — workspace-native static analysis for TCUDB.
//!
//! The concurrency and panic-safety invariants introduced with the
//! concurrent serving layer ("readers only block for the final pointer
//! swap", "a poisoned mutex must not kill the server", "`unsafe` lives
//! only in the tensor kernels") are cheap to state and easy to erode.
//! This crate machine-checks them on every commit with a lightweight,
//! dependency-free source scanner: a hand-rolled lexer ([`lexer`]), a
//! structural pass good enough to recover functions, impls, struct
//! fields, attributes and `unsafe` sites ([`model`]) — no full parse —
//! and three rule families on top:
//!
//! * [`locks`] — static lock-order graph, cycle / re-entrancy detection,
//!   publish-under-lock, condvar double-hold and leaf-lock checks;
//! * [`panics`] — deny `unwrap`/`expect`/`panic!`/unchecked indexing in
//!   the serving request path, with a `// lint: allow(panic) <reason>`
//!   escape hatch;
//! * [`unsafety`] — every `unsafe` needs a safety comment, and only the
//!   tensor crate may contain `unsafe` at all.
//!
//! Run it as `cargo run -p tcudb-analyze -- --deny`; findings are also
//! written as a JSON report ([`report`]) consumed by CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod locks;
pub mod model;
pub mod panics;
pub mod report;
pub mod unsafety;

use model::SourceFile;
use std::fmt;
use std::path::{Path, PathBuf};

/// The lint rules the analyzer enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Lock-order cycle or re-entrant acquisition.
    LockOrder,
    /// `SharedCatalog` publish reached while a lock guard is held.
    PublishUnderLock,
    /// Condvar wait while holding a lock other than the waited mutex.
    CondvarDoubleHold,
    /// Another lock acquired while a declared leaf lock is held.
    LeafLockHeld,
    /// Panic-capable construct in the serving request path.
    PanicPath,
    /// `unsafe` without a safety comment.
    SafetyComment,
    /// `unsafe` in a crate that must not contain any.
    UnsafeOutsideTensor,
    /// Unsafe-free crate whose root lacks `#![forbid(unsafe_code)]`.
    ForbidUnsafeMissing,
    /// Malformed `// lint: allow(…)` annotation (missing reason).
    LintAnnotation,
}

impl Rule {
    /// Stable kebab-case identifier used in reports and annotations.
    pub fn id(&self) -> &'static str {
        match self {
            Rule::LockOrder => "lock-order",
            Rule::PublishUnderLock => "publish-under-lock",
            Rule::CondvarDoubleHold => "condvar-double-hold",
            Rule::LeafLockHeld => "leaf-lock-held",
            Rule::PanicPath => "panic-path",
            Rule::SafetyComment => "safety-comment",
            Rule::UnsafeOutsideTensor => "unsafe-outside-tensor",
            Rule::ForbidUnsafeMissing => "forbid-unsafe-missing",
            Rule::LintAnnotation => "lint-annotation",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One lint finding: rule, location, human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-based line number (0 when the finding is file-level).
    pub line: u32,
    /// What went wrong and how to fix it.
    pub message: String,
}

impl Finding {
    /// Construct a finding.
    pub fn new(rule: Rule, file: &str, line: u32, message: String) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{}: {}",
            self.rule.id(),
            self.file,
            self.line,
            self.message
        )
    }
}

/// Analyzer configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root to scan.
    pub root: PathBuf,
    /// Path prefixes (workspace-relative) forming the serving request
    /// path, where the panic lint applies.
    pub panic_paths: Vec<String>,
    /// Path prefixes fed to the lock-order analysis.  Kept to the crates
    /// that own `std::sync` state so unrelated code can never add noise.
    pub lock_paths: Vec<String>,
    /// Crates permitted to contain `unsafe`.
    pub unsafe_allowed_crates: Vec<String>,
    /// Individual files (workspace-relative prefixes) permitted to
    /// contain `unsafe` even though their crate is not on the crate
    /// allow-list.  Used for audited syscall-wrapper modules in
    /// otherwise `#[deny(unsafe_code)]` crates.
    pub unsafe_allowed_paths: Vec<String>,
    /// Enforce `#![forbid(unsafe_code)]` on unsafe-free crate roots.
    pub check_forbid: bool,
}

impl Config {
    /// The default configuration for a given workspace root.
    pub fn for_root(root: PathBuf) -> Config {
        Config {
            root,
            panic_paths: vec![
                "crates/serve/src".into(),
                // The durability subsystem: recovery code runs on every
                // open over arbitrarily damaged inputs, so a panic here
                // turns a recoverable torn file into a crashed server.
                "crates/storage/src/backend.rs".into(),
                "crates/storage/src/wal.rs".into(),
                "crates/storage/src/segment.rs".into(),
                "crates/storage/src/recover.rs".into(),
                // Transient-fault retry: a panic mid-retry would turn a
                // recoverable blip into a dead durability path.
                "crates/storage/src/retry.rs".into(),
                // Cancellation primitives: checkpoints run on every query
                // and cancel() runs from arbitrary sessions — both must
                // degrade to an error, never unwind.
                "crates/types/src/sync.rs".into(),
                // The network layer parses attacker-controlled bytes and
                // runs the reactor loop: a panic there is a remote DoS.
                "crates/net/src".into(),
            ],
            lock_paths: vec![
                "crates/serve/src".into(),
                "crates/storage/src".into(),
                "crates/core/src".into(),
                "crates/types/src".into(),
                "crates/net/src".into(),
            ],
            unsafe_allowed_crates: vec!["tcudb-tensor".into()],
            unsafe_allowed_paths: vec![
                // The epoll/eventfd syscall wrappers: the one audited
                // `#[allow(unsafe_code)]` module in a `#[deny]` crate.
                "crates/net/src/sys.rs".into(),
            ],
            check_forbid: true,
        }
    }
}

/// The full result of one analyzer run.
#[derive(Debug, Default)]
pub struct Analysis {
    /// All findings, sorted by file, line, rule.
    pub findings: Vec<Finding>,
    /// The lock-order analysis (graph, declared locks, statistics).
    pub locks: locks::LockAnalysis,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of functions recovered by the structural pass.
    pub functions_scanned: usize,
}

/// Directories never descended into during the workspace walk.
const SKIP_DIRS: &[&str] = &[
    "target",
    ".git",
    "vendor",
    "fixtures",
    "node_modules",
    ".github",
];

/// Walk the workspace under `config.root` and run every rule.
pub fn analyze(config: &Config) -> Analysis {
    let files = collect_files(&config.root);
    analyze_files(config, &files)
}

/// Run every rule over an already-parsed file set (used by fixture
/// tests, which build the set by hand).
pub fn analyze_files(config: &Config, files: &[SourceFile]) -> Analysis {
    let mut a = Analysis {
        files_scanned: files.len(),
        functions_scanned: files.iter().map(|f| f.fns.len()).sum(),
        ..Analysis::default()
    };

    let lock_files: Vec<SourceFile> = files
        .iter()
        .filter(|f| under_any(&f.rel_path, &config.lock_paths))
        .cloned()
        .collect();
    a.locks = locks::run(&lock_files);
    a.findings.extend(a.locks.findings.iter().cloned());

    for f in files {
        if under_any(&f.rel_path, &config.panic_paths) {
            panics::run(f, &mut a.findings);
        }
    }

    unsafety::run(
        files,
        &config.unsafe_allowed_crates,
        &config.unsafe_allowed_paths,
        config.check_forbid,
        &mut a.findings,
    );

    a.findings
        .sort_by(|x, y| (&x.file, x.line, x.rule).cmp(&(&y.file, y.line, y.rule)));
    a
}

fn under_any(rel: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p.as_str()))
}

/// Collect and parse every `.rs` file in the workspace, resolving each
/// file's crate name from the nearest `Cargo.toml`.
pub fn collect_files(root: &Path) -> Vec<SourceFile> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let Ok(src) = std::fs::read_to_string(&path) else {
                    continue;
                };
                let rel = rel_path(root, &path);
                let krate = crate_name_for(root, &path);
                let in_tests_dir = rel.split('/').any(|seg| seg == "tests" || seg == "benches");
                out.push(SourceFile::parse(&rel, &krate, &src, in_tests_dir));
            }
        }
    }
    out.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    out
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Resolve the crate a file belongs to: the `name` in the `[package]`
/// section of the nearest ancestor `Cargo.toml`.
fn crate_name_for(root: &Path, file: &Path) -> String {
    let mut dir = file.parent();
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if let Some(name) = package_name(&text) {
                    return name;
                }
            }
            // A virtual-manifest workspace root: keep walking up only if
            // we are still below it; otherwise give up.
        }
        if d == root {
            break;
        }
        dir = d.parent();
    }
    "unknown".to_string()
}

/// Extract `name = "…"` from the `[package]` section of a manifest.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    let v = rest.trim().trim_matches('"');
                    if !v.is_empty() {
                        return Some(v.to_string());
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_is_extracted_from_package_section_only() {
        let m = r#"
[workspace]
members = ["a"]

[package]
name = "tcudb-analyze"
version = "0.1.0"
"#;
        assert_eq!(package_name(m).as_deref(), Some("tcudb-analyze"));
        assert_eq!(package_name("[workspace]\nmembers = []\n"), None);
    }

    #[test]
    fn path_prefix_filter_matches_forward_slash_paths() {
        assert!(under_any(
            "crates/serve/src/lib.rs",
            &["crates/serve/src".to_string()]
        ));
        assert!(!under_any(
            "crates/server2/src/lib.rs",
            &["crates/serve/src".to_string()]
        ));
    }
}
