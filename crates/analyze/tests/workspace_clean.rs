//! Self-check: the real workspace passes `--deny`.
//!
//! This is the test that keeps the analyzer honest in both directions —
//! it fails if someone introduces a violation into the tree, and it
//! fails if an analyzer change starts producing false positives on the
//! code it was built to watch.

use std::path::PathBuf;
use tcudb_analyze::{analyze, Config};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn real_workspace_is_clean_under_deny() {
    let a = analyze(&Config::for_root(workspace_root()));
    assert!(
        a.findings.is_empty(),
        "the workspace must pass `cargo run -p tcudb-analyze -- --deny`;\n{}",
        a.findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the scan actually covered the tree (guards against a walk
    // regression making the clean assertion vacuous).
    assert!(
        a.files_scanned > 50,
        "only {} files scanned",
        a.files_scanned
    );
    assert!(
        a.functions_scanned > 500,
        "only {} functions scanned",
        a.functions_scanned
    );
}

#[test]
fn workspace_lock_graph_has_the_expected_shape() {
    let a = analyze(&Config::for_root(workspace_root()));
    let ids: Vec<String> = a.locks.locks.iter().map(|(id, _)| id.to_string()).collect();
    for expected in [
        "tcudb-serve::Shared.state",
        "tcudb-serve::Shared.work_ready",
        "tcudb-serve::Job.repliers",
        "tcudb-storage::SharedCatalog.current",
        "tcudb-storage::SharedCatalog.writer",
        "tcudb-storage::EncodingCache.inner",
        "tcudb-core::PlanCache.inner",
        "tcudb-types::CancelInner.state",
        "tcudb-types::WorkerPool.state",
        "tcudb-storage::ZoneCache.inner",
        "tcudb-net::NetShared.completions",
    ] {
        assert!(
            ids.contains(&expected.to_string()),
            "missing lock {expected}; have {ids:?}"
        );
    }

    // The cancellation token's state mutex is probed from checkpoints
    // everywhere — it must be declared (and verified) a leaf lock.  The
    // worker pool's accounting mutex and the zone-map cache are taken
    // from inside morsel execution for the same reason, and the net
    // reactor's completion queue is pushed from worker callbacks.
    let leaves: Vec<String> = a.locks.leaf_locks.iter().map(|id| id.to_string()).collect();
    for expected in [
        "tcudb-types::CancelInner.state",
        "tcudb-types::WorkerPool.state",
        "tcudb-storage::ZoneCache.inner",
        "tcudb-net::NetShared.completions",
    ] {
        assert!(
            leaves.contains(&expected.to_string()),
            "missing leaf lock {expected}; leaf locks: {leaves:?}"
        );
    }

    // The one deliberate ordering in the tree: `SharedCatalog::update`
    // takes the writer mutex, then swaps `current` under the write lock.
    let edges: Vec<String> = a
        .locks
        .edges
        .iter()
        .map(|e| format!("{} -> {}", e.from, e.to))
        .collect();
    assert!(
        edges.contains(
            &"tcudb-storage::SharedCatalog.writer -> tcudb-storage::SharedCatalog.current"
                .to_string()
        ),
        "edges: {edges:?}"
    );
}
