//! Fixture-based positive/negative tests, one pair per rule.
//!
//! Each fixture under `tests/fixtures/` is a standalone Rust source that
//! is lexed and analyzed but never compiled (the `fixtures` directory is
//! on the analyzer's skip list, so the workspace scan never sees it
//! either).  Tests feed a fixture through the public [`analyze_files`]
//! entry point with an explicit [`Config`], then assert on which rules
//! fired — the same path `--deny` takes, minus the filesystem walk.

use std::path::PathBuf;
use tcudb_analyze::model::SourceFile;
use tcudb_analyze::{analyze_files, Config, Finding, Rule};

/// A config scoped to the serving-path prefixes the fixtures pretend to
/// live under.  `check_forbid` is off by default because most fixtures
/// are not crate roots; the forbid tests switch it on.
fn config(check_forbid: bool) -> Config {
    Config {
        root: PathBuf::from("."),
        panic_paths: vec![
            "crates/serve/src".into(),
            "crates/storage/src/wal.rs".into(),
            "crates/storage/src/segment.rs".into(),
            "crates/storage/src/recover.rs".into(),
            "crates/storage/src/retry.rs".into(),
            "crates/types/src/sync.rs".into(),
        ],
        lock_paths: vec![
            "crates/serve/src".into(),
            "crates/storage/src".into(),
            "crates/types/src".into(),
        ],
        unsafe_allowed_crates: vec!["tcudb-tensor".into()],
        unsafe_allowed_paths: vec!["crates/net/src/sys.rs".into()],
        check_forbid,
    }
}

fn parse(fixture_src: &str, rel_path: &str, krate: &str) -> SourceFile {
    SourceFile::parse(rel_path, krate, fixture_src, false)
}

fn rules_of(findings: &[Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn injected_lock_order_cycle_is_denied() {
    let f = parse(
        include_str!("fixtures/locks/cycle.rs"),
        "crates/serve/src/cycle.rs",
        "tcudb-serve",
    );
    let a = analyze_files(&config(false), &[f]);
    assert!(
        a.findings.iter().any(|f| f.rule == Rule::LockOrder),
        "expected a lock-order finding, got {:?}",
        a.findings
    );
    // Both orderings were observed as edges.
    assert_eq!(a.locks.edges.len(), 2, "edges: {:?}", a.locks.edges);
}

#[test]
fn consistent_lock_order_is_clean() {
    let f = parse(
        include_str!("fixtures/locks/clean.rs"),
        "crates/serve/src/clean.rs",
        "tcudb-serve",
    );
    let a = analyze_files(&config(false), &[f]);
    assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
    // The single a → b edge is still recorded for the report.
    assert_eq!(a.locks.edges.len(), 1);
    assert_eq!(a.locks.edges[0].from.field, "a");
    assert_eq!(a.locks.edges[0].to.field, "b");
}

#[test]
fn publish_under_lock_is_denied_and_release_first_is_clean() {
    let f = parse(
        include_str!("fixtures/locks/publish.rs"),
        "crates/serve/src/publish.rs",
        "tcudb-serve",
    );
    let a = analyze_files(&config(false), &[f]);
    let publishes: Vec<&Finding> = a
        .findings
        .iter()
        .filter(|f| f.rule == Rule::PublishUnderLock)
        .collect();
    assert_eq!(publishes.len(), 1, "findings: {:?}", a.findings);
    assert!(
        publishes[0].message.contains("publish_while_locked"),
        "finding should name the offending fn: {}",
        publishes[0].message
    );
}

#[test]
fn condvar_wait_with_extra_guard_is_denied_and_single_hold_is_clean() {
    let f = parse(
        include_str!("fixtures/locks/condvar.rs"),
        "crates/serve/src/condvar.rs",
        "tcudb-serve",
    );
    let a = analyze_files(&config(false), &[f]);
    let waits: Vec<&Finding> = a
        .findings
        .iter()
        .filter(|f| f.rule == Rule::CondvarDoubleHold)
        .collect();
    assert_eq!(waits.len(), 1, "findings: {:?}", a.findings);
    assert!(
        waits[0].message.contains("double_hold"),
        "finding should name the offending fn: {}",
        waits[0].message
    );
}

#[test]
fn leaf_lock_held_across_acquisition_is_denied_and_leaf_last_is_clean() {
    let f = parse(
        include_str!("fixtures/locks/leaf.rs"),
        "crates/serve/src/leaf.rs",
        "tcudb-serve",
    );
    let a = analyze_files(&config(false), &[f]);
    assert_eq!(
        a.locks.leaf_locks.len(),
        1,
        "leaves: {:?}",
        a.locks.leaf_locks
    );
    assert_eq!(a.locks.leaf_locks[0].field, "sig");
    let leaf: Vec<&Finding> = a
        .findings
        .iter()
        .filter(|f| f.rule == Rule::LeafLockHeld)
        .collect();
    // Only `held_across` violates; `taken_last` keeps the leaf innermost
    // (its roster -> sig edge is fine), and nothing else fires.
    assert_eq!(leaf.len(), 1, "findings: {:?}", a.findings);
    assert!(
        leaf[0].message.contains("held_across"),
        "finding should name the offending fn: {}",
        leaf[0].message
    );
    assert_eq!(rules_of(&a.findings), vec![Rule::LeafLockHeld]);
}

#[test]
fn cancellation_and_retry_modules_are_on_the_panic_path() {
    // The same panicking source denied in the serving path is denied at
    // the cancellation-primitive and retry-loop paths too.
    for (rel, krate) in [
        ("crates/types/src/sync.rs", "tcudb-types"),
        ("crates/storage/src/retry.rs", "tcudb-storage"),
    ] {
        let f = parse(include_str!("fixtures/panics/unwrap.rs"), rel, krate);
        let a = analyze_files(&config(false), &[f]);
        assert_eq!(
            rules_of(&a.findings),
            vec![Rule::PanicPath, Rule::PanicPath],
            "at {rel}: {:?}",
            a.findings
        );
    }
}

#[test]
fn unannotated_serving_path_panics_are_denied() {
    let f = parse(
        include_str!("fixtures/panics/unwrap.rs"),
        "crates/serve/src/unwrap.rs",
        "tcudb-serve",
    );
    let a = analyze_files(&config(false), &[f]);
    // One for `.unwrap()` in `head`, one for the computed index in `pick`;
    // the `#[cfg(test)]` unwrap is exempt.
    assert_eq!(
        rules_of(&a.findings),
        vec![Rule::PanicPath, Rule::PanicPath],
        "findings: {:?}",
        a.findings
    );
}

#[test]
fn panic_lint_does_not_apply_outside_the_serving_path() {
    let f = parse(
        include_str!("fixtures/panics/unwrap.rs"),
        "crates/datagen/src/unwrap.rs",
        "tcudb-datagen",
    );
    let a = analyze_files(&config(false), &[f]);
    assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
}

#[test]
fn recovery_path_panics_are_denied() {
    let f = parse(
        include_str!("fixtures/panics/recovery.rs"),
        "crates/storage/src/recover.rs",
        "tcudb-storage",
    );
    let a = analyze_files(&config(false), &[f]);
    // One for the computed index in `byte_at`, one for the `.unwrap()`
    // in `last_epoch`; the bounds-checked variants and the
    // `#[cfg(test)]` unwrap are exempt.
    assert_eq!(
        rules_of(&a.findings),
        vec![Rule::PanicPath, Rule::PanicPath],
        "findings: {:?}",
        a.findings
    );
}

#[test]
fn recovery_panic_lint_is_scoped_to_the_durability_modules() {
    // The identical source outside the durability file set (and outside
    // the serving path) is not linted.
    let f = parse(
        include_str!("fixtures/panics/recovery.rs"),
        "crates/storage/src/stats.rs",
        "tcudb-storage",
    );
    let a = analyze_files(&config(false), &[f]);
    assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
}

#[test]
fn durable_publish_under_lock_is_denied_and_release_first_is_clean() {
    let f = parse(
        include_str!("fixtures/locks/publish_with.rs"),
        "crates/serve/src/publish_with.rs",
        "tcudb-serve",
    );
    let a = analyze_files(&config(false), &[f]);
    let publishes: Vec<&Finding> = a
        .findings
        .iter()
        .filter(|f| f.rule == Rule::PublishUnderLock)
        .collect();
    assert_eq!(publishes.len(), 1, "findings: {:?}", a.findings);
    assert!(
        publishes[0]
            .message
            .contains("durable_publish_while_locked"),
        "finding should name the offending fn: {}",
        publishes[0].message
    );
}

#[test]
fn timed_condvar_wait_with_extra_guard_is_denied_and_single_hold_is_clean() {
    let f = parse(
        include_str!("fixtures/locks/condvar_timeout.rs"),
        "crates/serve/src/condvar_timeout.rs",
        "tcudb-serve",
    );
    let a = analyze_files(&config(false), &[f]);
    let waits: Vec<&Finding> = a
        .findings
        .iter()
        .filter(|f| f.rule == Rule::CondvarDoubleHold)
        .collect();
    assert_eq!(waits.len(), 1, "findings: {:?}", a.findings);
    assert!(
        waits[0].message.contains("timed_double_hold"),
        "finding should name the offending fn: {}",
        waits[0].message
    );
}

#[test]
fn reasoned_allow_is_clean_and_bare_allow_is_flagged() {
    let f = parse(
        include_str!("fixtures/panics/annotated.rs"),
        "crates/serve/src/annotated.rs",
        "tcudb-serve",
    );
    let a = analyze_files(&config(false), &[f]);
    // `boot` is covered by a reasoned allow; `unreasoned` has the
    // annotation but no reason (lint-annotation, and the site stays
    // suppressed as panic-path); `range_and_literal` uses only the
    // allowed indexing forms.
    assert_eq!(
        rules_of(&a.findings),
        vec![Rule::LintAnnotation],
        "findings: {:?}",
        a.findings
    );
}

#[test]
fn uncommented_unsafe_outside_tensor_is_denied_twice() {
    let f = parse(
        include_str!("fixtures/unsafety/no_comment.rs"),
        "crates/storage/src/no_comment.rs",
        "tcudb-storage",
    );
    let a = analyze_files(&config(false), &[f]);
    let mut rules = rules_of(&a.findings);
    rules.sort();
    assert_eq!(
        rules,
        vec![Rule::SafetyComment, Rule::UnsafeOutsideTensor],
        "findings: {:?}",
        a.findings
    );
}

#[test]
fn commented_unsafe_in_tensor_is_clean() {
    let f = parse(
        include_str!("fixtures/unsafety/commented.rs"),
        "crates/tensor/src/commented.rs",
        "tcudb-tensor",
    );
    let a = analyze_files(&config(false), &[f]);
    assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
}

#[test]
fn unsafe_free_crate_root_without_forbid_is_flagged() {
    let f = parse(
        include_str!("fixtures/forbid/missing_lib.rs"),
        "crates/foo/src/lib.rs",
        "tcudb-foo",
    );
    let a = analyze_files(&config(true), &[f]);
    assert_eq!(
        rules_of(&a.findings),
        vec![Rule::ForbidUnsafeMissing],
        "findings: {:?}",
        a.findings
    );
}

#[test]
fn crate_root_with_forbid_is_clean() {
    let f = parse(
        include_str!("fixtures/forbid/present_lib.rs"),
        "crates/foo/src/lib.rs",
        "tcudb-foo",
    );
    let a = analyze_files(&config(true), &[f]);
    assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
}
