//! Panic sites in crash-recovery code: recovery runs over arbitrarily
//! damaged bytes on every open, so indexing and unwraps here turn a torn
//! file into a crashed server.

pub fn byte_at(bytes: &[u8], cursor: usize) -> u8 {
    // Computed indexing into untrusted input: flagged.
    bytes[cursor]
}

pub fn last_epoch(epochs: &[u64]) -> u64 {
    // Unwrap on data derived from disk contents: flagged.
    *epochs.last().unwrap()
}

pub fn decode_header_checked(bytes: &[u8]) -> Option<u32> {
    // Bounds-checked access is the accepted idiom and stays clean.
    let lo = bytes.first()?;
    let hi = bytes.get(1)?;
    Some(u32::from(*lo) | (u32::from(*hi) << 8))
}

pub fn prefix(bytes: &[u8], n: usize) -> Option<&[u8]> {
    // Range indexing via `get` is clean too.
    bytes.get(..n)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::decode_header_checked(&[1, 0]).unwrap(), 1);
    }
}
