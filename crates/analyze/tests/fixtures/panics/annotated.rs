//! Annotated panic sites: a reasoned allow is clean, a bare allow is not.

pub fn boot(v: &[u32]) -> u32 {
    // lint: allow(panic) boot-time only: the caller seeds v before serving
    *v.first().unwrap()
}

pub fn unreasoned(v: &[u32]) -> u32 {
    // lint: allow(panic)
    *v.first().unwrap()
}

pub fn range_and_literal(v: &[u32]) -> u32 {
    let pair = &v[..2];
    pair[0]
}
