//! Unannotated panic sites in the serving request path.

pub fn head(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn pick(v: &[u32], i: usize) -> u32 {
    v[i]
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
