//! The background flusher's timed condvar wait: `wait_on_timeout` with a
//! second guard held is the same lost-wakeup/deadlock hazard as
//! `wait_on`.
use std::sync::{Condvar, Mutex};
use std::time::Duration;
use tcudb_types::sync::{locked, wait_on_timeout};

pub struct Flusher {
    stop: Mutex<bool>,
    other: Mutex<u32>,
    cv: Condvar,
}

impl Flusher {
    pub fn timed_double_hold(&self) {
        let extra = locked(&self.other);
        let g = locked(&self.stop);
        let (g, _timed_out) = wait_on_timeout(&self.cv, g, Duration::from_millis(10));
        drop(g);
        drop(extra);
    }

    pub fn timed_single_hold(&self) {
        let g = locked(&self.stop);
        let (g, _timed_out) = wait_on_timeout(&self.cv, g, Duration::from_millis(10));
        drop(g);
    }
}
