//! The durable commit path publishes through `try_update_with`; doing so
//! while holding a scheduler lock is the same inversion hazard as the
//! plain `update` case.
use std::sync::Mutex;
use tcudb_storage::SharedCatalog;
use tcudb_types::sync::locked;

pub struct Engine {
    state: Mutex<u32>,
    catalog: SharedCatalog,
}

impl Engine {
    pub fn durable_publish_while_locked(&self) {
        let g = locked(&self.state);
        let _ = self
            .catalog
            .try_update_with(|c| -> Result<(), ()> { Ok(c.clear()) }, |_epoch| Ok(()));
        drop(g);
    }

    pub fn durable_publish_after_release(&self) {
        let g = locked(&self.state);
        drop(g);
        let _ = self
            .catalog
            .try_update_with(|c| -> Result<(), ()> { Ok(c.clear()) }, |_epoch| Ok(()));
    }
}
