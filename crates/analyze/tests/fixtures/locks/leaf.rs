//! Leaf-lock fixture: `sig` is declared a leaf, so `held_across` (which
//! acquires `queue` while holding it) is denied, while `taken_last`
//! (leaf acquired innermost) is the blessed shape.
use std::sync::Mutex;
use tcudb_types::sync::locked;

pub struct Waker {
    // lint: leaf-lock wake signalling is probed from arbitrary callers
    // that may already hold scheduler locks
    sig: Mutex<u32>,
    queue: Mutex<u32>,
    roster: Mutex<u32>,
}

impl Waker {
    pub fn held_across(&self) -> u32 {
        let g = locked(&self.sig);
        let q = locked(&self.queue);
        *g + *q
    }

    pub fn taken_last(&self) -> u32 {
        let r = locked(&self.roster);
        let g = locked(&self.sig);
        *r + *g
    }
}
