//! Publishing a catalog snapshot while holding a scheduler lock.
use std::sync::Mutex;
use tcudb_storage::SharedCatalog;
use tcudb_types::sync::locked;

pub struct Engine {
    state: Mutex<u32>,
    catalog: SharedCatalog,
}

impl Engine {
    pub fn publish_while_locked(&self) {
        let g = locked(&self.state);
        self.catalog.update(|c| c.clear());
        drop(g);
    }

    pub fn publish_after_release(&self) {
        let g = locked(&self.state);
        drop(g);
        self.catalog.update(|c| c.clear());
    }
}
