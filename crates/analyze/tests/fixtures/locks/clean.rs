//! Consistent a → b ordering in every function: one edge, no cycle.
use std::sync::Mutex;
use tcudb_types::sync::locked;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn sum(&self) -> u32 {
        let ga = locked(&self.a);
        let gb = locked(&self.b);
        *ga + *gb
    }

    pub fn product(&self) -> u32 {
        let ga = locked(&self.a);
        let gb = locked(&self.b);
        *ga * *gb
    }
}
