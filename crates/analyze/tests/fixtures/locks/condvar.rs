//! Condvar wait while a second, unrelated guard is still held.
use std::sync::{Condvar, Mutex};
use tcudb_types::sync::{locked, wait_on};

pub struct Waiter {
    m: Mutex<bool>,
    other: Mutex<u32>,
    cv: Condvar,
}

impl Waiter {
    pub fn double_hold(&self) {
        let extra = locked(&self.other);
        let mut g = locked(&self.m);
        g = wait_on(&self.cv, g);
        drop(g);
        drop(extra);
    }

    pub fn single_hold(&self) {
        let mut g = locked(&self.m);
        g = wait_on(&self.cv, g);
        drop(g);
    }
}
