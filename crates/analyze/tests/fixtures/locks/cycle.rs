//! Injected lock-order cycle: `ab` acquires a → b, `ba` acquires b → a.
use std::sync::Mutex;
use tcudb_types::sync::locked;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn ab(&self) -> u32 {
        let ga = locked(&self.a);
        let gb = locked(&self.b);
        *ga + *gb
    }

    pub fn ba(&self) -> u32 {
        let gb = locked(&self.b);
        let ga = locked(&self.a);
        *ga + *gb
    }
}
