#![forbid(unsafe_code)]
//! A crate root that forbids unsafe code, as required.

pub fn answer() -> u32 {
    42
}
