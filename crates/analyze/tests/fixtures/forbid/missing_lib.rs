//! A crate root with no `#![forbid(unsafe_code)]` attribute.

pub fn answer() -> u32 {
    42
}
