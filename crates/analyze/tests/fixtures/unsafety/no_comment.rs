//! An uncommented unsafe block in a crate that must stay safe.

pub fn peek(v: &[u32]) -> u32 {
    unsafe { *v.get_unchecked(0) }
}
