//! A properly documented unsafe block in the tensor crate.

pub fn peek(v: &[u32]) -> u32 {
    // SAFETY: callers guarantee `v` is non-empty (checked at kernel entry).
    unsafe { *v.get_unchecked(0) }
}
