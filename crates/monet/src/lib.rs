#![forbid(unsafe_code)]
//! # tcudb-monet
//!
//! The **CPU baseline** standing in for MonetDB in the paper's
//! experiments (§5.1): a single-node columnar CPU execution engine running
//! the same SQL dialect through hash joins and hash aggregation, with no
//! GPU involved.
//!
//! As with the other engines, answers are computed by the shared reference
//! operators of `tcudb-core`; the reported timings are produced by a CPU
//! cost model whose per-row constants are calibrated so that the
//! CPU : GPU-hash-join ratio lands in the range the paper reports for
//! MonetDB vs. YDB (roughly 2–6× slower depending on the query).

use tcudb_core::analyzer::{self, AnalyzedQuery};
use tcudb_core::batch::TupleBatch;
use tcudb_core::relops::{self, FinalizeOptions};
use tcudb_device::{ExecutionTimeline, Phase};
use tcudb_sql::{parse, BinOp};
use tcudb_storage::{Catalog, CatalogSnapshot, SharedCatalog, Table};
use tcudb_types::{DataType, TcuError, TcuResult, Value};

/// CPU execution cost constants (single node, main-memory column store).
#[derive(Debug, Clone)]
pub struct CpuCostModel {
    /// Seconds per row scanned / filtered.
    pub seconds_per_scan_row: f64,
    /// Seconds per row hashed (build or probe).
    pub seconds_per_hash_row: f64,
    /// Seconds per join output tuple materialised.
    pub seconds_per_output_tuple: f64,
    /// Seconds per row aggregated.
    pub seconds_per_agg_row: f64,
}

impl Default for CpuCostModel {
    fn default() -> Self {
        // Calibrated against the paper's MonetDB-vs-YDB ratios: a modern
        // CPU core hashes ~5–10 M rows/s through a full operator pipeline.
        CpuCostModel {
            seconds_per_scan_row: 4e-9,
            seconds_per_hash_row: 180e-9,
            seconds_per_output_tuple: 120e-9,
            seconds_per_agg_row: 25e-9,
        }
    }
}

impl CpuCostModel {
    /// Cost of a hash join.
    pub fn hash_join_seconds(&self, build: usize, probe: usize, output: usize) -> f64 {
        (build + probe) as f64 * self.seconds_per_hash_row
            + output as f64 * self.seconds_per_output_tuple
    }

    /// Cost of aggregating `rows` input rows.
    pub fn aggregation_seconds(&self, rows: usize) -> f64 {
        rows as f64 * self.seconds_per_agg_row
    }

    /// Cost of scanning `rows` rows.
    pub fn scan_seconds(&self, rows: usize) -> f64 {
        rows as f64 * self.seconds_per_scan_row
    }
}

/// Result of one CPU-engine query execution.
#[derive(Debug, Clone)]
pub struct MonetOutput {
    /// The result rows.
    pub table: Table,
    /// Per-phase timing (all phases are `CpuCompute` flavoured).
    pub timeline: ExecutionTimeline,
}

impl MonetOutput {
    /// Total modelled execution time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.timeline.total_seconds()
    }
}

/// The MonetDB-style CPU engine.
///
/// Shares the snapshot API of the TCUDB engine: queries pin an immutable
/// [`CatalogSnapshot`] and writes (all `&self`) publish new snapshots.
#[derive(Debug, Default, Clone)]
pub struct MonetEngine {
    shared: SharedCatalog,
    cost: CpuCostModel,
    /// Return only matched-tuple counts (see the other engines).
    pub count_only: bool,
}

impl MonetEngine {
    /// Create an engine with default cost constants.
    pub fn new() -> MonetEngine {
        MonetEngine::default()
    }

    /// Register (or replace) a table, publishing a new catalog snapshot.
    pub fn register_table(&self, table: Table) {
        self.shared.update(|c| c.register(table));
    }

    /// Share a catalog built elsewhere; publishes a new snapshot.
    pub fn set_catalog(&self, catalog: Catalog) {
        self.shared.replace(catalog);
    }

    /// Pin the current catalog snapshot.
    pub fn catalog(&self) -> std::sync::Arc<CatalogSnapshot> {
        self.shared.snapshot()
    }

    /// The CPU cost model in use.
    pub fn cost_model(&self) -> &CpuCostModel {
        &self.cost
    }

    /// Execute a SQL query on the CPU pipeline.
    pub fn execute(&self, sql: &str) -> TcuResult<MonetOutput> {
        let stmt = parse(sql)?;
        let snapshot = self.shared.snapshot();
        let analyzed = analyzer::analyze(&stmt, snapshot.catalog())?;
        self.execute_analyzed(&analyzed)
    }

    /// Execute an already-analyzed query.
    pub fn execute_analyzed(&self, analyzed: &AnalyzedQuery) -> TcuResult<MonetOutput> {
        let mut timeline = ExecutionTimeline::new();

        let surviving = relops::apply_filters(analyzed)?;
        for (ti, bound) in analyzed.tables.iter().enumerate() {
            if !analyzed.filters_for_table(ti).is_empty() {
                timeline.record_detail(
                    Phase::CpuCompute,
                    format!("scan {}", bound.binding),
                    self.cost.scan_seconds(bound.table.num_rows()),
                );
            }
        }

        let (batch, joined) = if analyzed.tables.len() == 1 {
            (TupleBatch::from_rows(&surviving[0])?, vec![0usize])
        } else {
            self.run_joins(analyzed, &surviving, &mut timeline)?
        };

        if analyzed.stmt.has_aggregates() || !analyzed.stmt.group_by.is_empty() {
            timeline.record_detail(
                Phase::CpuCompute,
                format!("aggregate {} tuples", batch.len()),
                self.cost.aggregation_seconds(batch.len()),
            );
        }

        let batch = batch.remap_slots(&joined, analyzed.tables.len());
        let table = if self.count_only {
            relops::table_from_rows(
                "result_count",
                &["matched_tuples".to_string()],
                vec![vec![Value::Int(batch.len() as i64)]],
            )?
        } else {
            // CPU pipeline: the vectorized output path, no tensor kernels.
            relops::finalize_output_columnar(analyzed, &batch, &FinalizeOptions::baseline())?.0
        };
        Ok(MonetOutput { table, timeline })
    }

    fn run_joins(
        &self,
        analyzed: &AnalyzedQuery,
        surviving: &[Vec<usize>],
        timeline: &mut ExecutionTimeline,
    ) -> TcuResult<(TupleBatch, Vec<usize>)> {
        let n = analyzed.tables.len();
        let degree = |i: usize| analyzed.joins_for_table(i).len();
        let start = (0..n).max_by_key(|&i| degree(i)).unwrap_or(0);
        let mut joined = vec![start];
        let mut batch = TupleBatch::from_rows(&surviving[start])?;

        while joined.len() < n {
            let (next, pred, joined_is_left) = (0..n)
                .filter(|i| !joined.contains(i))
                .find_map(|i| {
                    analyzed.joins.iter().find_map(|j| {
                        if j.left.0 == i && joined.contains(&j.right.0) {
                            Some((i, j, false))
                        } else if j.right.0 == i && joined.contains(&j.left.0) {
                            Some((i, j, true))
                        } else {
                            None
                        }
                    })
                })
                .ok_or_else(|| TcuError::Plan("disconnected join graph".into()))?;

            let (jt, jcol, ncol) = if joined_is_left {
                (pred.left.0, pred.left.1.clone(), pred.right.1.clone())
            } else {
                (pred.right.0, pred.right.1.clone(), pred.left.1.clone())
            };
            let op = if joined_is_left {
                pred.op
            } else {
                pred.op.flip()
            };

            let jpos = joined.iter().position(|&t| t == jt).unwrap();
            let jtable = &analyzed.tables[jt].table;
            let jci = jtable.schema().require(&jcol)?;
            let jcolumn = jtable.column(jci);
            let left_keys: Vec<Value> = batch
                .col(jpos)
                .iter()
                .map(|&r| jcolumn.value(r as usize))
                .collect();
            let ntable = &analyzed.tables[next].table;
            let nci = ntable.schema().require(&ncol)?;
            let right_rows = &surviving[next];
            let right_keys: Vec<Value> = right_rows
                .iter()
                .map(|&r| ntable.column(nci).value(r))
                .collect();

            let dt = left_keys
                .iter()
                .find_map(|v| v.data_type())
                .unwrap_or(DataType::Int64);
            let left_col = tcudb_storage::Column::from_values(dt, &left_keys)?;
            let dt_r = right_keys
                .iter()
                .find_map(|v| v.data_type())
                .unwrap_or(DataType::Int64);
            let right_col = tcudb_storage::Column::from_values(dt_r, &right_keys)?;
            let all_left: Vec<usize> = (0..left_keys.len()).collect();
            let all_right: Vec<usize> = (0..right_keys.len()).collect();
            let pairs = if op == BinOp::Eq {
                relops::hash_join_pairs(&left_col, &all_left, &right_col, &all_right)
            } else {
                relops::nonequi_join_pairs(&left_col, &all_left, &right_col, &all_right, op)?
            };
            timeline.record_detail(
                Phase::CpuCompute,
                format!(
                    "CPU hash join {} ⋈ {}",
                    analyzed.tables[jt].binding, analyzed.tables[next].binding
                ),
                self.cost
                    .hash_join_seconds(left_keys.len(), right_keys.len(), pairs.len()),
            );

            joined.push(next);
            batch = batch.extend_join(&pairs, right_rows)?;
        }
        Ok((batch, joined))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> MonetEngine {
        let e = MonetEngine::new();
        e.register_table(
            Table::from_int_columns(
                "A",
                &[("id", vec![1, 1, 2, 3]), ("val", vec![10, 11, 20, 30])],
            )
            .unwrap(),
        );
        e.register_table(
            Table::from_int_columns("B", &[("id", vec![1, 2, 2]), ("val", vec![5, 6, 7])]).unwrap(),
        );
        e
    }

    #[test]
    fn results_match_reference() {
        let out = engine()
            .execute("SELECT SUM(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val")
            .unwrap();
        assert_eq!(out.table.num_rows(), 3);
        assert_eq!(out.table.row(0)[0].as_f64().unwrap(), 21.0);
        assert!(out.total_seconds() > 0.0);
        assert!(out.timeline.seconds_in(Phase::CpuCompute) > 0.0);
    }

    #[test]
    fn cpu_join_is_slower_than_gpu_join_model() {
        // The whole point of the baseline: CPU per-row constants exceed the
        // GPU hash-join constants.
        let cpu = CpuCostModel::default();
        let gpu = tcudb_device::CostModel::new(tcudb_device::DeviceProfile::rtx_3090());
        let cpu_t = cpu.hash_join_seconds(100_000, 100_000, 1_000_000);
        let gpu_t = gpu.gpu_hash_join_seconds(100_000, 100_000, 1_000_000);
        assert!(cpu_t > gpu_t);
        assert!(cpu_t / gpu_t > 2.0);
        assert!(cpu_t / gpu_t < 20.0);
    }

    #[test]
    fn single_table_and_filters() {
        let out = engine()
            .execute("SELECT A.val FROM A WHERE A.val BETWEEN 11 AND 25 ORDER BY A.val")
            .unwrap();
        assert_eq!(out.table.num_rows(), 2);
        assert_eq!(out.table.row(0)[0], Value::Int(11));
    }

    #[test]
    fn count_only_mode() {
        let mut e = engine();
        e.count_only = true;
        let out = e
            .execute("SELECT A.val, B.val FROM A, B WHERE A.id = B.id")
            .unwrap();
        assert_eq!(out.table.row(0)[0], Value::Int(4));
    }

    #[test]
    fn scan_cost_scales_with_rows() {
        let c = CpuCostModel::default();
        assert!(c.scan_seconds(1_000_000) > c.scan_seconds(1_000));
        assert!(c.aggregation_seconds(100) > 0.0);
    }
}
