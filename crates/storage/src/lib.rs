#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # tcudb-storage
//!
//! In-memory columnar table storage for TCUDB-RS.
//!
//! The paper's engine (like YDB, which it extends) is a column store kept
//! resident in host memory; tables are shipped column-by-column to the GPU
//! so only the columns a query touches cross the PCIe bus (§2.2).  This
//! crate provides:
//!
//! * [`Schema`] / [`ColumnDef`] — table schemas,
//! * [`Column`] — typed columnar storage (Int64 / Float64 / Text),
//! * [`Table`] — a schema plus equal-length columns, with projection,
//!   filtering and row access helpers,
//! * [`ColumnStats`] / [`TableStats`] — the per-column metadata TCUDB's
//!   feasibility test relies on: minimum value, maximum value and the
//!   number of distinct values (§4.2.1),
//! * [`DictColumn`] / [`EncodingCache`] — per-column dictionary encodings
//!   (`u32` codes + distinct values), built once per `(table, column)` and
//!   cached on the [`Table`] so the encoded query data path never re-hashes
//!   rows,
//! * [`Catalog`] — the named-table registry shared by the engines,
//! * [`CatalogSnapshot`] / [`SharedCatalog`] — epoch-tagged immutable
//!   catalog snapshots and their copy-on-write publish point: queries pin
//!   one snapshot for their lifetime, writes publish the next epoch, and
//!   the epoch doubles as the invalidation token for every cache derived
//!   from catalog state (dictionary encodings, cached plans),
//! * [`csv`] — plain-text import/export used by the examples,
//! * [`backend`] / [`wal`] / [`segment`] / [`mod@recover`] — the durability
//!   subsystem: a pluggable storage backend (real filesystem or a
//!   deterministic fault-injecting in-memory disk), a CRC-framed
//!   write-ahead log whose commits carry epoch-publish markers, sealed
//!   columnar segment files with an epoch-stamped manifest, and crash
//!   recovery that replays the log to the last published epoch and
//!   truncates torn tails; transient I/O blips on the write path are
//!   retried under a bounded-backoff [`RetryPolicy`] ([`mod@retry`]).

pub mod backend;
pub mod catalog;
pub mod chunk;
pub mod column;
pub mod csv;
pub mod encoded;
pub mod recover;
pub mod retry;
pub mod schema;
pub mod segment;
pub mod snapshot;
pub mod stats;
pub mod table;
pub mod wal;

pub use backend::{FaultSpec, FsBackend, MemBackend, StorageBackend};
pub use catalog::Catalog;
pub use chunk::{ColumnZones, ZoneCache, ZoneEntry, DEFAULT_CHUNK_ROWS};
pub use column::Column;
pub use encoded::{DictColumn, EncodingCache};
pub use recover::{
    recover, spawn_flusher, DurabilityOptions, DurableStore, Flusher, Recovered, RecoveryReport,
};
pub use retry::RetryPolicy;
pub use schema::{ColumnDef, Schema};
pub use snapshot::{CatalogSnapshot, SharedCatalog};
pub use stats::{ColumnStats, TableStats};
pub use table::Table;
pub use wal::{FlushPolicy, WalRecord};
