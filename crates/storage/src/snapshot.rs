//! Epoch-tagged immutable catalog snapshots and the shared publish point.
//!
//! Concurrent query serving needs two guarantees the bare [`Catalog`]
//! value cannot give on its own:
//!
//! 1. **A query must see one frozen catalog for its whole lifetime.**  A
//!    [`CatalogSnapshot`] is an immutable, [`Arc`]-shared view of the
//!    catalog at one *epoch*; once a query pins a snapshot, concurrent
//!    writes can never change what it reads.
//! 2. **Writers must never block readers.**  A [`SharedCatalog`] holds the
//!    *current* snapshot behind a lock that is only taken for the duration
//!    of an `Arc` clone (readers) or an `Arc` swap (writers).  Writes are
//!    copy-on-write: the writer clones the catalog (cheap — tables are
//!    `Arc`-shared, so this copies a map of pointers, not data), mutates
//!    the clone, and publishes it as a **new** snapshot with a bumped
//!    epoch.  In-flight queries keep executing against the snapshot they
//!    pinned; the next query picks up the new one.
//!
//! The epoch is the cache-invalidation token for everything derived from
//! catalog state: the plan/statement cache in `tcudb-core` keys entries on
//! `(normalized SQL, epoch)`, so a published write silently retires every
//! cached plan that could observe it.
//!
//! ```text
//!   writers                    SharedCatalog                   readers
//!   ───────                  ┌───────────────┐                 ───────
//!   update(|cat| …) ───────▶ │ RwLock<Arc<──┼──snapshot()──▶ Arc<CatalogSnapshot>
//!    clone · mutate ·        │  CatalogSnap- │                (pinned: epoch N)
//!    publish(epoch N+1)      │  shot{epoch}>>│
//!                            └───────────────┘
//! ```

use crate::catalog::Catalog;
use std::sync::{Arc, Mutex, RwLock};
use tcudb_types::sync::{locked, read_locked, write_locked};

/// An immutable view of the catalog at one point in time.
///
/// Dereferences to [`Catalog`], so every read-only catalog API
/// (`table`, `stats`, `table_names`, …) works directly on a snapshot.
/// There is deliberately no way to mutate a snapshot: writes go through
/// [`SharedCatalog::update`], which builds the *next* snapshot.
#[derive(Debug, Clone)]
pub struct CatalogSnapshot {
    epoch: u64,
    catalog: Catalog,
}

impl CatalogSnapshot {
    /// Wrap a catalog as the snapshot of a given epoch.
    pub fn new(epoch: u64, catalog: Catalog) -> CatalogSnapshot {
        CatalogSnapshot { epoch, catalog }
    }

    /// The epoch this snapshot was published at.  Epochs increase by one
    /// per published write; two snapshots with equal epochs from the same
    /// [`SharedCatalog`] are identical.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen catalog state.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }
}

impl std::ops::Deref for CatalogSnapshot {
    type Target = Catalog;

    fn deref(&self) -> &Catalog {
        &self.catalog
    }
}

/// The shared publish point for catalog snapshots.
///
/// Readers call [`snapshot`](SharedCatalog::snapshot) to pin the current
/// epoch; writers call [`update`](SharedCatalog::update) to build and
/// publish the next one.  All methods take `&self`, so a `SharedCatalog`
/// can be shared across threads directly (it is `Sync`).
#[derive(Debug)]
pub struct SharedCatalog {
    current: RwLock<Arc<CatalogSnapshot>>,
    /// Serializes writers so the copy-on-write clone + mutation runs
    /// *outside* the `current` lock — readers are only ever blocked for
    /// the duration of the final pointer swap.
    writer: Mutex<()>,
}

impl Default for SharedCatalog {
    fn default() -> Self {
        SharedCatalog::new(Catalog::new())
    }
}

impl Clone for SharedCatalog {
    /// Cloning forks the history: the clone starts from this catalog's
    /// current snapshot (same epoch) and evolves independently.
    fn clone(&self) -> Self {
        SharedCatalog {
            current: RwLock::new(self.snapshot()),
            writer: Mutex::new(()),
        }
    }
}

impl SharedCatalog {
    /// Publish `catalog` as the epoch-0 snapshot.
    pub fn new(catalog: Catalog) -> SharedCatalog {
        SharedCatalog {
            current: RwLock::new(Arc::new(CatalogSnapshot::new(0, catalog))),
            writer: Mutex::new(()),
        }
    }

    /// Pin the current snapshot.  O(1): an `Arc` clone under a read lock.
    pub fn snapshot(&self) -> Arc<CatalogSnapshot> {
        Arc::clone(&read_locked(&self.current))
    }

    /// The current epoch without pinning a snapshot.
    pub fn epoch(&self) -> u64 {
        read_locked(&self.current).epoch
    }

    /// Apply a write and publish it as a new snapshot, returning the
    /// published snapshot (its epoch is the previous epoch plus one).
    ///
    /// The mutation runs on a copy-on-write clone of the current catalog:
    /// registered tables are `Arc`-shared, so untouched tables (and their
    /// warm dictionary caches) carry over at pointer cost.  Concurrent
    /// readers are never blocked by `f` itself — only the final pointer
    /// swap takes the write lock.
    ///
    /// Writers are serialized with respect to each other by a dedicated
    /// writer mutex held across clone-mutate-publish, so racing `update`
    /// calls publish epochs N+1 and N+2 exactly like two serial writes —
    /// while readers calling [`snapshot`](SharedCatalog::snapshot) are
    /// only ever blocked for the final pointer swap, never for `f` or the
    /// catalog clone.
    pub fn update<R>(&self, f: impl FnOnce(&mut Catalog) -> R) -> (Arc<CatalogSnapshot>, R) {
        let _writes_serialized = locked(&self.writer);
        // Safe to read without re-checking: only writer-lock holders
        // publish, and we are the only one right now.
        let base = self.snapshot();
        let mut catalog = base.catalog.clone();
        let out = f(&mut catalog);
        let next = Arc::new(CatalogSnapshot::new(base.epoch + 1, catalog));
        *write_locked(&self.current) = Arc::clone(&next);
        (next, out)
    }

    /// Apply a fallible write: publish a new snapshot only when `f`
    /// returns `Ok`.  On `Err` the current snapshot (and epoch) is left
    /// untouched — callers validating a write mid-mutation do not burn an
    /// epoch, so caches keyed on it stay warm.  Same locking discipline
    /// as [`update`](SharedCatalog::update).
    pub fn try_update<R, E>(
        &self,
        f: impl FnOnce(&mut Catalog) -> Result<R, E>,
    ) -> Result<(Arc<CatalogSnapshot>, R), E> {
        let _writes_serialized = locked(&self.writer);
        let base = self.snapshot();
        let mut catalog = base.catalog.clone();
        let out = f(&mut catalog)?;
        let next = Arc::new(CatalogSnapshot::new(base.epoch + 1, catalog));
        *write_locked(&self.current) = Arc::clone(&next);
        Ok((next, out))
    }

    /// Like [`try_update`](SharedCatalog::try_update), but runs
    /// `pre_publish(new_epoch)` after `f` succeeds and **before** the new
    /// snapshot becomes visible — while the writer lock is still held.
    /// If `pre_publish` fails, nothing is published and the epoch is not
    /// burned.
    ///
    /// This is the durability commit point: the WAL writes (and, under
    /// `FlushPolicy::EveryCommit`, syncs) the commit for epoch `N+1`
    /// strictly before any reader can pin epoch `N+1`, so an
    /// acknowledged-and-observed write is always on disk first.
    pub fn try_update_with<R, E>(
        &self,
        f: impl FnOnce(&mut Catalog) -> Result<R, E>,
        pre_publish: impl FnOnce(u64) -> Result<(), E>,
    ) -> Result<(Arc<CatalogSnapshot>, R), E> {
        let _writes_serialized = locked(&self.writer);
        let base = self.snapshot();
        let mut catalog = base.catalog.clone();
        let out = f(&mut catalog)?;
        pre_publish(base.epoch + 1)?;
        let next = Arc::new(CatalogSnapshot::new(base.epoch + 1, catalog));
        *write_locked(&self.current) = Arc::clone(&next);
        Ok((next, out))
    }

    /// Run `f` with the writer lock held, excluding every concurrent
    /// publish for its duration.  The current snapshot cannot change
    /// while `f` runs — checkpoints use this to seal a frozen epoch.
    pub fn with_writer_locked<R>(&self, f: impl FnOnce() -> R) -> R {
        let _writes_serialized = locked(&self.writer);
        f()
    }

    /// Wrap a recovered catalog at its recovered epoch (durable open):
    /// the next published write gets `epoch + 1`, continuing the on-disk
    /// epoch sequence instead of restarting from zero.
    pub fn at_epoch(epoch: u64, catalog: Catalog) -> SharedCatalog {
        SharedCatalog {
            current: RwLock::new(Arc::new(CatalogSnapshot::new(epoch, catalog))),
            writer: Mutex::new(()),
        }
    }

    /// Replace the whole catalog (publishes a new epoch).
    pub fn replace(&self, catalog: Catalog) -> Arc<CatalogSnapshot> {
        self.update(move |c| *c = catalog).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;

    fn small(name: &str, rows: Vec<i64>) -> Table {
        let n = rows.len() as i64;
        Table::from_int_columns(name, &[("id", rows), ("v", (0..n).collect())]).unwrap()
    }

    #[test]
    fn snapshots_pin_state_across_writes() {
        let shared = SharedCatalog::default();
        shared.update(|c| c.register(small("a", vec![1, 2, 3])));
        let pinned = shared.snapshot();
        assert_eq!(pinned.epoch(), 1);
        assert_eq!(pinned.table("a").unwrap().num_rows(), 3);

        shared.update(|c| c.register(small("a", vec![1, 2, 3, 4, 5])));
        // The pinned snapshot still sees the old table; a fresh one sees 5.
        assert_eq!(pinned.table("a").unwrap().num_rows(), 3);
        let fresh = shared.snapshot();
        assert_eq!(fresh.epoch(), 2);
        assert_eq!(fresh.table("a").unwrap().num_rows(), 5);
    }

    #[test]
    fn untouched_tables_share_storage_across_epochs() {
        let shared = SharedCatalog::default();
        shared.update(|c| {
            c.register(small("a", vec![1, 2]));
            c.register(small("b", vec![3, 4]));
        });
        let before = shared.snapshot();
        shared.update(|c| c.register(small("a", vec![9])));
        let after = shared.snapshot();
        // `b` was not written: both snapshots hold the same Arc.
        assert!(Arc::ptr_eq(
            &before.table("b").unwrap(),
            &after.table("b").unwrap()
        ));
        assert!(!Arc::ptr_eq(
            &before.table("a").unwrap(),
            &after.table("a").unwrap()
        ));
    }

    #[test]
    fn clone_forks_history() {
        let shared = SharedCatalog::default();
        shared.update(|c| c.register(small("a", vec![1])));
        let fork = shared.clone();
        shared.update(|c| c.register(small("b", vec![2])));
        assert_eq!(shared.epoch(), 2);
        assert_eq!(fork.epoch(), 1);
        assert!(!fork.snapshot().contains("b"));
    }

    #[test]
    fn try_update_with_runs_pre_publish_before_visibility() {
        let shared = SharedCatalog::default();
        let seen = std::cell::Cell::new(0u64);
        let (snap, ()) = shared
            .try_update_with::<_, ()>(
                |c| {
                    c.register(small("a", vec![1]));
                    Ok(())
                },
                |epoch| {
                    // The new epoch is named but not yet visible.
                    seen.set(epoch);
                    assert_eq!(shared.epoch(), 0, "publish must not have happened yet");
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(seen.get(), 1);
        assert_eq!(snap.epoch(), 1);
        assert_eq!(shared.epoch(), 1);
    }

    #[test]
    fn failed_pre_publish_publishes_nothing() {
        let shared = SharedCatalog::default();
        let err = shared.try_update_with(
            |c| {
                c.register(small("a", vec![1]));
                Ok(())
            },
            |_| Err("wal write failed"),
        );
        assert_eq!(err.err(), Some("wal write failed"));
        assert_eq!(shared.epoch(), 0);
        assert!(!shared.snapshot().contains("a"));
    }

    #[test]
    fn at_epoch_continues_the_sequence() {
        let mut cat = Catalog::new();
        cat.register(small("t", vec![1, 2]));
        let shared = SharedCatalog::at_epoch(41, cat);
        assert_eq!(shared.epoch(), 41);
        let (snap, _) = shared.update(|c| c.register(small("u", vec![3])));
        assert_eq!(snap.epoch(), 42);
    }

    #[test]
    fn with_writer_locked_excludes_publishes() {
        let shared = std::sync::Arc::new(SharedCatalog::default());
        let handle = shared.with_writer_locked(|| {
            let epoch_inside = shared.epoch();
            // A racing writer cannot publish while we hold the section.
            let racing = std::sync::Arc::clone(&shared);
            let handle = std::thread::spawn(move || {
                racing.update(|c| c.register(small("r", vec![1])));
            });
            // Give the racer a moment; the epoch must not move.
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(shared.epoch(), epoch_inside);
            handle
        });
        // Section released: the racer completes and publishes.
        handle.join().unwrap();
        assert_eq!(shared.epoch(), 1);
    }

    #[test]
    fn concurrent_readers_and_writers_agree() {
        let shared = std::sync::Arc::new(SharedCatalog::default());
        shared.update(|c| c.register(small("t", vec![0])));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let shared = std::sync::Arc::clone(&shared);
                s.spawn(move || {
                    for _ in 0..50 {
                        let snap = shared.snapshot();
                        let t = snap.table("t").unwrap();
                        // Row count and column length always agree: no
                        // torn reads of half-published tables.
                        assert_eq!(t.num_rows(), t.column(0).len());
                    }
                });
            }
            let writer = std::sync::Arc::clone(&shared);
            s.spawn(move || {
                for i in 0..50i64 {
                    writer.update(|c| c.register(small("t", (0..=i).collect())));
                }
            });
        });
        assert_eq!(shared.epoch(), 51);
        assert_eq!(shared.snapshot().table("t").unwrap().num_rows(), 50);
    }
}
