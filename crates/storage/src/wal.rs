//! Write-ahead log: length+CRC32-framed records, group fsync, torn-tail
//! tolerant decoding.
//!
//! Every frame on disk is `[len: u32 LE][crc32: u32 LE][payload]` where
//! the CRC covers the payload only.  A *commit* is a run of operation
//! records ([`WalRecord::CreateTable`], [`WalRecord::DropTable`],
//! [`WalRecord::AppendRows`]) terminated by a
//! [`WalRecord::EpochPublish`] marker carrying the epoch the catalog
//! published; recovery applies a commit's operations only once its
//! marker is fully on disk, so a torn commit is invisible.
//!
//! [`WalWriter::commit`] writes all frames of a commit with **one**
//! backend append, then syncs according to the [`FlushPolicy`]:
//! `EveryCommit` makes every acknowledged commit durable (the crash
//! oracle runs this mode), `EveryN` amortizes fsync over n commits
//! (group commit), `Manual` leaves syncing to checkpoints and explicit
//! [`WalWriter::sync`] calls.
//!
//! Decoding ([`decode_stream`]) never fails on a damaged tail: a short
//! header, an oversized length, a CRC mismatch or an undecodable payload
//! all terminate the scan, reporting the prefix that was valid so
//! recovery can truncate the file there.

use tcudb_types::{DataType, TcuError, TcuResult, Value};

use crate::backend::AppendHandle;
use crate::retry::RetryPolicy;
use crate::schema::{ColumnDef, Schema};

// ---------------------------------------------------------------------------
// CRC32 (IEEE, reflected, polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC32 (IEEE) of `bytes` — the checksum used by every WAL frame,
/// segment file and manifest.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        // lint: allow(panic) idx is masked to 0..256 and CRC_TABLE has exactly 256 entries
        crc = (crc >> 8) ^ CRC_TABLE[idx];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Little-endian codec helpers
// ---------------------------------------------------------------------------

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            put_i64(out, *i);
        }
        Value::Float(f) => {
            out.push(2);
            put_f64(out, *f);
        }
        Value::Text(s) => {
            out.push(3);
            put_str(out, s);
        }
    }
}

pub(crate) fn put_schema(out: &mut Vec<u8>, schema: &Schema) {
    put_u64(out, schema.len() as u64);
    for def in schema.columns() {
        put_str(out, &def.name);
        out.push(match def.data_type {
            DataType::Int64 => 0,
            DataType::Float64 => 1,
            DataType::Text => 2,
        });
    }
}

fn corrupt(what: &str) -> TcuError {
    TcuError::Io(format!("corrupt record: {what}"))
}

/// Bounds-checked little-endian reader over a byte slice; every decode
/// error is a typed [`TcuError::Io`], never a panic.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn is_done(&self) -> bool {
        self.pos >= self.buf.len()
    }

    pub(crate) fn take(&mut self, n: usize) -> TcuResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| corrupt("length overflow"))?;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| corrupt("truncated field"))?;
        self.pos = end;
        Ok(bytes)
    }

    pub(crate) fn u8(&mut self) -> TcuResult<u8> {
        Ok(self.take(1)?.first().copied().unwrap_or(0))
    }

    pub(crate) fn u32(&mut self) -> TcuResult<u32> {
        let b = self.take(4)?;
        let mut le = [0u8; 4];
        le.copy_from_slice(b);
        Ok(u32::from_le_bytes(le))
    }

    pub(crate) fn u64(&mut self) -> TcuResult<u64> {
        let b = self.take(8)?;
        let mut le = [0u8; 8];
        le.copy_from_slice(b);
        Ok(u64::from_le_bytes(le))
    }

    pub(crate) fn i64(&mut self) -> TcuResult<i64> {
        Ok(self.u64()? as i64)
    }

    pub(crate) fn f64(&mut self) -> TcuResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn str(&mut self) -> TcuResult<String> {
        let len = self.u64()?;
        if len > self.buf.len() as u64 {
            return Err(corrupt("string length exceeds buffer"));
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("string is not UTF-8"))
    }

    pub(crate) fn value(&mut self) -> TcuResult<Value> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(self.i64()?)),
            2 => Ok(Value::Float(self.f64()?)),
            3 => Ok(Value::Text(self.str()?)),
            t => Err(corrupt(&format!("unknown value tag {t}"))),
        }
    }

    pub(crate) fn data_type(&mut self) -> TcuResult<DataType> {
        match self.u8()? {
            0 => Ok(DataType::Int64),
            1 => Ok(DataType::Float64),
            2 => Ok(DataType::Text),
            t => Err(corrupt(&format!("unknown data type tag {t}"))),
        }
    }

    pub(crate) fn schema(&mut self) -> TcuResult<Schema> {
        let n = self.u64()?;
        if n > self.buf.len() as u64 {
            return Err(corrupt("schema width exceeds buffer"));
        }
        let mut defs = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let name = self.str()?;
            let dt = self.data_type()?;
            defs.push(ColumnDef::new(name, dt));
        }
        Ok(Schema::new(defs))
    }
}

// ---------------------------------------------------------------------------
// Records and framing
// ---------------------------------------------------------------------------

/// One logical WAL record.  Operations between two
/// [`WalRecord::EpochPublish`] markers form a commit and are applied
/// atomically (or not at all) by recovery.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A table (re)definition: name plus column schema.  Emitted by
    /// table registration; any pre-existing rows follow as
    /// [`WalRecord::AppendRows`] records in the same commit.
    CreateTable {
        /// Lower-cased table name as registered in the catalog.
        name: String,
        /// Column names and types.
        schema: Schema,
    },
    /// A table removal.
    DropTable {
        /// Lower-cased table name.
        name: String,
    },
    /// A batch of rows appended to an existing table, row-major.
    AppendRows {
        /// Lower-cased table name.
        name: String,
        /// The appended rows; every row has the table's arity.
        rows: Vec<Vec<Value>>,
    },
    /// Commit marker: the catalog epoch this commit published.
    EpochPublish {
        /// The published epoch.
        epoch: u64,
    },
}

const TAG_CREATE: u8 = 1;
const TAG_DROP: u8 = 2;
const TAG_APPEND: u8 = 3;
const TAG_PUBLISH: u8 = 4;

impl WalRecord {
    /// Encode the record payload (no frame header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::CreateTable { name, schema } => {
                out.push(TAG_CREATE);
                put_str(&mut out, name);
                put_schema(&mut out, schema);
            }
            WalRecord::DropTable { name } => {
                out.push(TAG_DROP);
                put_str(&mut out, name);
            }
            WalRecord::AppendRows { name, rows } => {
                out.push(TAG_APPEND);
                put_str(&mut out, name);
                put_u64(&mut out, rows.len() as u64);
                put_u64(&mut out, rows.first().map(|r| r.len()).unwrap_or(0) as u64);
                for row in rows {
                    for v in row {
                        put_value(&mut out, v);
                    }
                }
            }
            WalRecord::EpochPublish { epoch } => {
                out.push(TAG_PUBLISH);
                put_u64(&mut out, *epoch);
            }
        }
        out
    }

    /// Decode one record payload.
    pub fn decode_payload(payload: &[u8]) -> TcuResult<WalRecord> {
        let mut c = Cursor::new(payload);
        let rec = match c.u8()? {
            TAG_CREATE => WalRecord::CreateTable {
                name: c.str()?,
                schema: c.schema()?,
            },
            TAG_DROP => WalRecord::DropTable { name: c.str()? },
            TAG_APPEND => {
                let name = c.str()?;
                let nrows = c.u64()?;
                let ncols = c.u64()?;
                if nrows.saturating_mul(ncols) > payload.len() as u64 {
                    return Err(corrupt("row count exceeds payload"));
                }
                let mut rows = Vec::with_capacity(nrows as usize);
                for _ in 0..nrows {
                    let mut row = Vec::with_capacity(ncols as usize);
                    for _ in 0..ncols {
                        row.push(c.value()?);
                    }
                    rows.push(row);
                }
                WalRecord::AppendRows { name, rows }
            }
            TAG_PUBLISH => WalRecord::EpochPublish { epoch: c.u64()? },
            t => return Err(corrupt(&format!("unknown record tag {t}"))),
        };
        if !c.is_done() {
            return Err(corrupt("trailing bytes after record"));
        }
        Ok(rec)
    }
}

/// Append one `[len][crc][payload]` frame for `record` to `out`.
pub fn encode_frame(out: &mut Vec<u8>, record: &WalRecord) -> TcuResult<()> {
    let payload = record.encode_payload();
    if payload.len() > u32::MAX as usize {
        return Err(TcuError::Io(format!(
            "WAL record payload of {} bytes exceeds the 4 GiB frame limit",
            payload.len()
        )));
    }
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32(&payload));
    out.extend_from_slice(&payload);
    Ok(())
}

/// The outcome of scanning a WAL byte stream.
#[derive(Debug)]
pub struct DecodedWal {
    /// Every decodable record, paired with the byte offset just *past*
    /// its frame (a valid truncation point).
    pub records: Vec<(WalRecord, u64)>,
    /// Length of the valid prefix; bytes past this are a torn tail.
    pub valid_len: u64,
    /// True when the scan stopped before the end of the buffer (short
    /// header, bad length, CRC mismatch, or undecodable payload).
    pub torn: bool,
}

/// Scan `bytes` as a sequence of frames, stopping — never failing — at
/// the first damage.
pub fn decode_stream(bytes: &[u8]) -> DecodedWal {
    let mut records = Vec::new();
    let mut pos: usize = 0;
    let torn = loop {
        if pos == bytes.len() {
            break false; // clean end
        }
        let Some(header) = bytes.get(pos..pos + 8) else {
            break true; // short header
        };
        let mut le = [0u8; 4];
        le.copy_from_slice(&header[..4]);
        let len = u32::from_le_bytes(le) as usize;
        le.copy_from_slice(&header[4..8]);
        let crc = u32::from_le_bytes(le);
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            break true; // torn payload
        };
        if crc32(payload) != crc {
            break true; // bit rot or torn overwrite
        }
        let Ok(record) = WalRecord::decode_payload(payload) else {
            break true; // CRC matched but the payload is from the future
        };
        pos += 8 + len;
        records.push((record, pos as u64));
    };
    DecodedWal {
        records,
        valid_len: pos as u64,
        torn,
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// When the WAL makes appended commits durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushPolicy {
    /// fsync after every commit: an acknowledged write is durable.
    #[default]
    EveryCommit,
    /// Group commit: fsync once every `n` commits (and at checkpoints).
    EveryN(u32),
    /// Never fsync automatically; callers invoke [`WalWriter::sync`].
    Manual,
}

/// Appends framed commits to one log file through an [`AppendHandle`],
/// syncing per [`FlushPolicy`].
pub struct WalWriter {
    handle: Box<dyn AppendHandle>,
    policy: FlushPolicy,
    unsynced_commits: u32,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("policy", &self.policy)
            .field("len", &self.handle.len())
            .field("unsynced_commits", &self.unsynced_commits)
            .finish()
    }
}

impl WalWriter {
    /// Wrap an open append handle.
    pub fn new(handle: Box<dyn AppendHandle>, policy: FlushPolicy) -> WalWriter {
        WalWriter {
            handle,
            policy,
            unsynced_commits: 0,
        }
    }

    /// Append one commit — `ops` followed by an [`WalRecord::EpochPublish`]
    /// marker for `epoch` — as a single backend append, then sync if the
    /// flush policy says so.
    pub fn commit(&mut self, ops: &[WalRecord], epoch: u64) -> TcuResult<()> {
        self.commit_with_retry(ops, epoch, &RetryPolicy::none())
    }

    /// [`WalWriter::commit`], retrying transient backend faults under
    /// `retry`.
    ///
    /// The append and the sync retry *independently*: a transient append
    /// failure had no effect (the fault model guarantees it), so the same
    /// bytes are appended again; a transient sync failure retries only
    /// the sync, never re-appending frames that already landed — a
    /// whole-commit retry there would duplicate the commit in the log.
    pub fn commit_with_retry(
        &mut self,
        ops: &[WalRecord],
        epoch: u64,
        retry: &RetryPolicy,
    ) -> TcuResult<()> {
        let mut buf = Vec::new();
        for op in ops {
            encode_frame(&mut buf, op)?;
        }
        encode_frame(&mut buf, &WalRecord::EpochPublish { epoch })?;
        retry.run(|| self.handle.append(&buf))?;
        self.unsynced_commits += 1;
        let should_sync = match self.policy {
            FlushPolicy::EveryCommit => true,
            FlushPolicy::EveryN(n) => self.unsynced_commits >= n.max(1),
            FlushPolicy::Manual => false,
        };
        if should_sync {
            self.sync_with_retry(retry)?;
        }
        Ok(())
    }

    /// fsync the log, making every appended commit durable.
    pub fn sync(&mut self) -> TcuResult<()> {
        self.handle.sync()?;
        self.unsynced_commits = 0;
        Ok(())
    }

    /// [`WalWriter::sync`], retrying transient backend faults.
    pub fn sync_with_retry(&mut self, retry: &RetryPolicy) -> TcuResult<()> {
        retry.run(|| self.handle.sync())?;
        self.unsynced_commits = 0;
        Ok(())
    }

    /// Current log length in bytes.
    pub fn len(&self) -> u64 {
        self.handle.len()
    }

    /// True when the log holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.handle.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FaultSpec, MemBackend, StorageBackend};
    use tcudb_types::DataType;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateTable {
                name: "t".into(),
                schema: Schema::from_pairs(&[("id", DataType::Int64), ("s", DataType::Text)]),
            },
            WalRecord::AppendRows {
                name: "t".into(),
                rows: vec![
                    vec![Value::Int(1), Value::Text("a".into())],
                    vec![Value::Int(-2), Value::Null],
                ],
            },
            WalRecord::DropTable { name: "u".into() },
            WalRecord::EpochPublish { epoch: 42 },
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip() {
        for rec in sample_records() {
            let payload = rec.encode_payload();
            assert_eq!(WalRecord::decode_payload(&payload).unwrap(), rec);
        }
    }

    #[test]
    fn float_and_null_values_round_trip() {
        let rec = WalRecord::AppendRows {
            name: "f".into(),
            rows: vec![vec![Value::Float(1.5), Value::Float(-0.0), Value::Null]],
        };
        let payload = rec.encode_payload();
        assert_eq!(WalRecord::decode_payload(&payload).unwrap(), rec);
    }

    #[test]
    fn stream_round_trips_and_reports_clean_end() {
        let mut buf = Vec::new();
        for rec in sample_records() {
            encode_frame(&mut buf, &rec).unwrap();
        }
        let decoded = decode_stream(&buf);
        assert!(!decoded.torn);
        assert_eq!(decoded.valid_len, buf.len() as u64);
        let recs: Vec<WalRecord> = decoded.records.into_iter().map(|(r, _)| r).collect();
        assert_eq!(recs, sample_records());
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let mut buf = Vec::new();
        for rec in sample_records() {
            encode_frame(&mut buf, &rec).unwrap();
        }
        let full = buf.len();
        // Chop mid-final-frame: everything before the last frame survives.
        for cut in [full - 1, full - 5, full - 11] {
            let decoded = decode_stream(&buf[..cut]);
            assert!(decoded.torn, "cut at {cut}");
            assert!(decoded.valid_len <= cut as u64);
            // Re-scanning the valid prefix is clean.
            let again = decode_stream(&buf[..decoded.valid_len as usize]);
            assert!(!again.torn);
            assert_eq!(again.records.len(), decoded.records.len());
        }
    }

    #[test]
    fn bit_flip_stops_the_scan_at_the_damaged_frame() {
        let mut buf = Vec::new();
        for rec in sample_records() {
            encode_frame(&mut buf, &rec).unwrap();
        }
        let clean_count = decode_stream(&buf).records.len();
        // Flip one bit in the second frame's payload.
        let mut damaged = buf.clone();
        let second_frame_start = {
            let first = decode_stream(&buf).records[0].1;
            first as usize
        };
        damaged[second_frame_start + 9] ^= 0x40;
        let decoded = decode_stream(&damaged);
        assert!(decoded.torn);
        assert_eq!(decoded.records.len(), 1);
        assert!(decoded.records.len() < clean_count);
    }

    #[test]
    fn absurd_length_field_is_treated_as_torn() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, &WalRecord::EpochPublish { epoch: 1 }).unwrap();
        let valid = buf.len();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 12]);
        let decoded = decode_stream(&buf);
        assert!(decoded.torn);
        assert_eq!(decoded.valid_len, valid as u64);
    }

    #[test]
    fn writer_group_commit_defers_sync() {
        let be = MemBackend::new();
        let mut w = WalWriter::new(be.appender("wal").unwrap(), FlushPolicy::EveryN(3));
        for epoch in 1..=2 {
            w.commit(&[], epoch).unwrap();
        }
        // Two commits appended, none synced yet: a reboot may tear them.
        let before = be.read_all("wal").unwrap().len();
        assert!(before > 0);
        w.commit(&[], 3).unwrap(); // third commit triggers the group sync
        let decoded = decode_stream(&be.read_all("wal").unwrap());
        assert_eq!(decoded.records.len(), 3);
    }

    #[test]
    fn every_commit_policy_survives_any_reboot() {
        let be = MemBackend::with_faults(FaultSpec {
            torn_seed: 99,
            ..Default::default()
        });
        let mut w = WalWriter::new(be.appender("wal").unwrap(), FlushPolicy::EveryCommit);
        w.commit(&sample_records()[..3], 7).unwrap();
        be.reboot();
        let decoded = decode_stream(&be.read_all("wal").unwrap());
        assert!(!decoded.torn);
        assert_eq!(
            decoded.records.last().map(|(r, _)| r.clone()),
            Some(WalRecord::EpochPublish { epoch: 7 })
        );
    }
}
