//! Storage backends: the I/O boundary of the durability subsystem.
//!
//! Everything the WAL, segment and recovery code does to persistent
//! media goes through the [`StorageBackend`] trait — a flat namespace of
//! named byte files with append handles, positional reads, whole-file
//! writes and truncation.  Two implementations exist:
//!
//! * [`FsBackend`] — a directory on the real filesystem; `sync` maps to
//!   `File::sync_all`.
//! * [`MemBackend`] — an in-memory disk with deterministic fault
//!   injection: scripted crashes at a given mutating-operation count,
//!   torn (partially surviving) unsynced tails on reboot, optional bit
//!   flips inside the torn region, and short reads.  The crash oracle
//!   tests drive recovery through this backend at every possible fault
//!   point.
//!
//! The fault model matches real disks: bytes acknowledged by `sync` are
//! durable and never corrupted; bytes written but not yet synced may
//! survive fully, partially, or damaged after a crash.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use tcudb_types::sync::locked;
use tcudb_types::{TcuError, TcuResult};

/// An open append-only handle to one backend file.
pub trait AppendHandle: Send {
    /// Append `buf` at the end of the file.  The bytes are *not* durable
    /// until [`AppendHandle::sync`] returns.
    fn append(&mut self, buf: &[u8]) -> TcuResult<()>;
    /// Make all previously appended bytes durable.
    fn sync(&mut self) -> TcuResult<()>;
    /// Current length of the file in bytes (including unsynced appends).
    fn len(&self) -> u64;
    /// True when the file holds no bytes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A flat namespace of named byte files; the only way durability code
/// touches persistent media.
pub trait StorageBackend: Send + Sync + fmt::Debug {
    /// Open (creating if absent) an append handle for `name`.
    fn appender(&self, name: &str) -> TcuResult<Box<dyn AppendHandle>>;

    /// Read up to `buf.len()` bytes at `offset`; returns the count read
    /// (0 at or past end of file).  Implementations may return fewer
    /// bytes than requested even mid-file (short reads).
    fn read_at(&self, name: &str, offset: u64, buf: &mut [u8]) -> TcuResult<usize>;

    /// Read the whole file.  The default loops [`StorageBackend::read_at`]
    /// so short reads are always tolerated.
    fn read_all(&self, name: &str) -> TcuResult<Vec<u8>> {
        let total = self.file_len(name)?;
        let mut out = Vec::new();
        let mut chunk = vec![0u8; 64 * 1024];
        let mut offset = 0u64;
        while offset < total {
            let n = self.read_at(name, offset, &mut chunk)?;
            if n == 0 {
                break; // file shrank under us; return what we have
            }
            let Some(got) = chunk.get(..n) else {
                return Err(TcuError::Io(format!(
                    "backend read_at returned {n} bytes into a {} byte buffer",
                    chunk.len()
                )));
            };
            out.extend_from_slice(got);
            offset += n as u64;
        }
        Ok(out)
    }

    /// Atomically-enough create/replace `name` with `content` and sync
    /// it.  Crash atomicity is *not* guaranteed by the backend — callers
    /// frame content with CRCs and treat an invalid file as absent.
    fn write_file(&self, name: &str, content: &[u8]) -> TcuResult<()>;

    /// Truncate `name` to `len` bytes and sync the new length.
    fn truncate(&self, name: &str, len: u64) -> TcuResult<()>;

    /// Remove `name`; removing a missing file is an error.
    fn remove(&self, name: &str) -> TcuResult<()>;

    /// All file names in the namespace, sorted.
    fn list(&self) -> TcuResult<Vec<String>>;

    /// True when `name` exists.
    fn exists(&self, name: &str) -> TcuResult<bool>;

    /// Length of `name` in bytes.
    fn file_len(&self, name: &str) -> TcuResult<u64>;
}

fn io_err(ctx: &str, e: std::io::Error) -> TcuError {
    TcuError::Io(format!("{ctx}: {e}"))
}

// ---------------------------------------------------------------------------
// Real filesystem backend
// ---------------------------------------------------------------------------

/// A directory on the real filesystem; each backend file is one regular
/// file directly under the root.
#[derive(Debug)]
pub struct FsBackend {
    root: PathBuf,
}

impl FsBackend {
    /// Open (creating if needed) the database directory at `root`.
    pub fn open(root: impl Into<PathBuf>) -> TcuResult<FsBackend> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| io_err("create database directory", e))?;
        Ok(FsBackend { root })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

struct FsAppendHandle {
    file: fs::File,
    len: u64,
    name: String,
}

impl AppendHandle for FsAppendHandle {
    fn append(&mut self, buf: &[u8]) -> TcuResult<()> {
        self.file
            .write_all(buf)
            .map_err(|e| io_err(&format!("append to {}", self.name), e))?;
        self.len += buf.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> TcuResult<()> {
        self.file
            .sync_all()
            .map_err(|e| io_err(&format!("fsync {}", self.name), e))
    }

    fn len(&self) -> u64 {
        self.len
    }
}

impl StorageBackend for FsBackend {
    fn appender(&self, name: &str) -> TcuResult<Box<dyn AppendHandle>> {
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))
            .map_err(|e| io_err(&format!("open {name} for append"), e))?;
        let len = file
            .metadata()
            .map_err(|e| io_err(&format!("stat {name}"), e))?
            .len();
        Ok(Box::new(FsAppendHandle {
            file,
            len,
            name: name.to_string(),
        }))
    }

    fn read_at(&self, name: &str, offset: u64, buf: &mut [u8]) -> TcuResult<usize> {
        let mut file =
            fs::File::open(self.path(name)).map_err(|e| io_err(&format!("open {name}"), e))?;
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| io_err(&format!("seek {name}"), e))?;
        file.read(buf)
            .map_err(|e| io_err(&format!("read {name}"), e))
    }

    fn read_all(&self, name: &str) -> TcuResult<Vec<u8>> {
        fs::read(self.path(name)).map_err(|e| io_err(&format!("read {name}"), e))
    }

    fn write_file(&self, name: &str, content: &[u8]) -> TcuResult<()> {
        let path = self.path(name);
        let mut file = fs::File::create(&path).map_err(|e| io_err(&format!("create {name}"), e))?;
        file.write_all(content)
            .map_err(|e| io_err(&format!("write {name}"), e))?;
        file.sync_all()
            .map_err(|e| io_err(&format!("fsync {name}"), e))
    }

    fn truncate(&self, name: &str, len: u64) -> TcuResult<()> {
        let file = fs::OpenOptions::new()
            .write(true)
            .open(self.path(name))
            .map_err(|e| io_err(&format!("open {name} for truncate"), e))?;
        file.set_len(len)
            .map_err(|e| io_err(&format!("truncate {name}"), e))?;
        file.sync_all()
            .map_err(|e| io_err(&format!("fsync {name}"), e))
    }

    fn remove(&self, name: &str) -> TcuResult<()> {
        fs::remove_file(self.path(name)).map_err(|e| io_err(&format!("remove {name}"), e))
    }

    fn list(&self) -> TcuResult<Vec<String>> {
        let mut out = Vec::new();
        let entries = fs::read_dir(&self.root).map_err(|e| io_err("list database directory", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("list database directory", e))?;
            if entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
                if let Some(name) = entry.file_name().to_str() {
                    out.push(name.to_string());
                }
            }
        }
        out.sort();
        Ok(out)
    }

    fn exists(&self, name: &str) -> TcuResult<bool> {
        Ok(self.path(name).exists())
    }

    fn file_len(&self, name: &str) -> TcuResult<u64> {
        let md = fs::metadata(self.path(name)).map_err(|e| io_err(&format!("stat {name}"), e))?;
        Ok(md.len())
    }
}

// ---------------------------------------------------------------------------
// In-memory backend with deterministic fault injection
// ---------------------------------------------------------------------------

/// Scripted faults for [`MemBackend`].
///
/// All randomness is derived from `torn_seed` with splitmix64, so a
/// given `(FaultSpec, workload)` pair replays identically forever.
#[derive(Debug, Clone, Default)]
pub struct FaultSpec {
    /// Crash (atomically, mid-operation) on the Nth mutating backend
    /// operation (1-based).  After the crash every operation fails until
    /// [`MemBackend::reboot`].
    pub crash_at_op: Option<u64>,
    /// Seed for deciding how much of each unsynced tail survives a
    /// crash, and where a bit flip lands.
    pub torn_seed: u64,
    /// Flip one bit inside the *surviving unsynced* region of each torn
    /// file on reboot (durable bytes are never corrupted).
    pub flip_bit_in_torn_tail: bool,
    /// Cap every `read_at` to this many bytes (forces short reads during
    /// recovery).  `None` reads normally.
    pub short_read_chunk: Option<usize>,
    /// Fail the next N mutating operations with
    /// [`TcuError::IoTransient`] *before* they have any effect, then
    /// recover.  Models EINTR-style blips: the file state is untouched,
    /// so the failed operation is safe to retry verbatim.  Transient
    /// trips do not count toward `crash_at_op`.
    pub transient_failures: u64,
}

/// One in-memory file: its bytes plus the synced (durable) prefix length.
#[derive(Debug, Clone, Default)]
struct MemFile {
    data: Vec<u8>,
    synced: usize,
}

#[derive(Debug, Default)]
struct MemDisk {
    files: BTreeMap<String, MemFile>,
    spec: FaultSpec,
    /// Count of mutating operations since the last (re)boot.
    mutating_ops: u64,
    /// Count of injected transient failures since construction.
    transient_trips: u64,
    crashed: bool,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn name_salt(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

impl MemDisk {
    /// Account one mutating operation; returns `Err` if the disk is (or
    /// just went) down.  On the scripted crash op the caller-visible
    /// effect is "the operation partially happened": the caller applies
    /// a seeded prefix of its effect before erroring.
    fn begin_mutation(&mut self) -> TcuResult<MutationOutcome> {
        if self.crashed {
            return Err(TcuError::Io("storage backend is down (crashed)".into()));
        }
        if self.spec.transient_failures > 0 {
            self.spec.transient_failures -= 1;
            self.transient_trips += 1;
            return Err(TcuError::IoTransient(
                "injected transient backend fault".into(),
            ));
        }
        self.mutating_ops += 1;
        if self.spec.crash_at_op == Some(self.mutating_ops) {
            self.crashed = true;
            return Ok(MutationOutcome::CrashDuring);
        }
        Ok(MutationOutcome::Complete)
    }

    fn check_up(&self) -> TcuResult<()> {
        if self.crashed {
            return Err(TcuError::Io("storage backend is down (crashed)".into()));
        }
        Ok(())
    }

    fn file(&self, name: &str) -> TcuResult<&MemFile> {
        self.files
            .get(name)
            .ok_or_else(|| TcuError::Io(format!("{name}: no such file")))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MutationOutcome {
    Complete,
    CrashDuring,
}

/// Deterministic in-memory storage backend with fault injection; shared
/// clones see one disk, so an engine handle and a test can both touch it.
#[derive(Debug, Clone, Default)]
pub struct MemBackend {
    disk: Arc<Mutex<MemDisk>>,
}

impl MemBackend {
    /// A fresh, fault-free in-memory disk.
    pub fn new() -> MemBackend {
        MemBackend::default()
    }

    /// A fresh disk that will fault per `spec`.
    pub fn with_faults(spec: FaultSpec) -> MemBackend {
        let backend = MemBackend::default();
        locked(&backend.disk).spec = spec;
        backend
    }

    /// Simulate power-on after a crash: every file's unsynced tail is
    /// truncated to a seeded survival length (torn write); optionally one
    /// bit inside the surviving unsynced region is flipped.  Durable
    /// (synced) bytes are never touched.  Clears the crash script but
    /// keeps any short-read cap so recovery itself is exercised.
    pub fn reboot(&self) {
        let mut disk = locked(&self.disk);
        let seed = disk.spec.torn_seed;
        let flip = disk.spec.flip_bit_in_torn_tail;
        for (name, file) in disk.files.iter_mut() {
            let unsynced = file.data.len() - file.synced;
            if unsynced == 0 {
                continue;
            }
            let r = splitmix64(seed ^ name_salt(name));
            // Survive anywhere from 0 to all of the unsynced tail.
            let survive = (r % (unsynced as u64 + 1)) as usize;
            file.data.truncate(file.synced + survive);
            if flip && survive > 0 {
                let bit = splitmix64(r) % (survive as u64 * 8);
                let byte = file.synced + (bit / 8) as usize;
                if let Some(b) = file.data.get_mut(byte) {
                    *b ^= 1 << (bit % 8);
                }
            }
            file.synced = file.data.len();
        }
        disk.crashed = false;
        disk.mutating_ops = 0;
        disk.spec.crash_at_op = None;
        disk.spec.flip_bit_in_torn_tail = false;
        disk.spec.transient_failures = 0;
    }

    /// [`MemBackend::reboot`] and then install a new fault script for the
    /// next incarnation.
    pub fn reboot_with(&self, spec: FaultSpec) {
        self.reboot();
        locked(&self.disk).spec = spec;
    }

    /// Number of mutating operations since the last (re)boot — used by
    /// tests to size `crash_at_op` sweeps.
    pub fn mutating_ops(&self) -> u64 {
        locked(&self.disk).mutating_ops
    }

    /// True when a scripted crash has fired and the disk is down.
    pub fn is_crashed(&self) -> bool {
        locked(&self.disk).crashed
    }

    /// Make the next `n` mutating operations fail with
    /// [`TcuError::IoTransient`] (no effect on file state), then recover.
    pub fn inject_transient_failures(&self, n: u64) {
        locked(&self.disk).spec.transient_failures = n;
    }

    /// Total transient failures injected since construction — used by
    /// tests to assert that retries actually exercised the fault.
    pub fn transient_trips(&self) -> u64 {
        locked(&self.disk).transient_trips
    }
}

struct MemAppendHandle {
    disk: Arc<Mutex<MemDisk>>,
    name: String,
}

impl AppendHandle for MemAppendHandle {
    fn append(&mut self, buf: &[u8]) -> TcuResult<()> {
        let mut disk = locked(&self.disk);
        let outcome = disk.begin_mutation()?;
        let seed = disk.spec.torn_seed;
        let Some(file) = disk.files.get_mut(&self.name) else {
            return Err(TcuError::Io(format!("{}: no such file", self.name)));
        };
        match outcome {
            MutationOutcome::Complete => {
                file.data.extend_from_slice(buf);
                Ok(())
            }
            MutationOutcome::CrashDuring => {
                // The append itself tears: a seeded prefix reaches the disk
                // cache before power is lost.
                let keep = (splitmix64(seed ^ name_salt(&self.name) ^ 0xA99E)
                    % (buf.len() as u64 + 1)) as usize;
                file.data.extend_from_slice(buf.get(..keep).unwrap_or(buf));
                Err(TcuError::Io("storage crashed during append".into()))
            }
        }
    }

    fn sync(&mut self) -> TcuResult<()> {
        let mut disk = locked(&self.disk);
        let outcome = disk.begin_mutation()?;
        let Some(file) = disk.files.get_mut(&self.name) else {
            return Err(TcuError::Io(format!("{}: no such file", self.name)));
        };
        match outcome {
            MutationOutcome::Complete => {
                file.synced = file.data.len();
                Ok(())
            }
            // Crash at fsync time: nothing new becomes durable; the
            // written-but-unsynced tail is at the mercy of reboot().
            MutationOutcome::CrashDuring => {
                Err(TcuError::Io("storage crashed during fsync".into()))
            }
        }
    }

    fn len(&self) -> u64 {
        locked(&self.disk)
            .files
            .get(&self.name)
            .map(|f| f.data.len() as u64)
            .unwrap_or(0)
    }
}

impl StorageBackend for MemBackend {
    fn appender(&self, name: &str) -> TcuResult<Box<dyn AppendHandle>> {
        let mut disk = locked(&self.disk);
        disk.check_up()?;
        disk.files.entry(name.to_string()).or_default();
        Ok(Box::new(MemAppendHandle {
            disk: Arc::clone(&self.disk),
            name: name.to_string(),
        }))
    }

    fn read_at(&self, name: &str, offset: u64, buf: &mut [u8]) -> TcuResult<usize> {
        let disk = locked(&self.disk);
        disk.check_up()?;
        let cap = disk.spec.short_read_chunk.unwrap_or(usize::MAX);
        let file = disk.file(name)?;
        let start = (offset as usize).min(file.data.len());
        let want = buf.len().min(cap).max(1).min(file.data.len() - start);
        let Some(src) = file.data.get(start..start + want) else {
            return Ok(0);
        };
        let Some(dst) = buf.get_mut(..want) else {
            return Ok(0);
        };
        dst.copy_from_slice(src);
        Ok(want)
    }

    fn write_file(&self, name: &str, content: &[u8]) -> TcuResult<()> {
        let mut disk = locked(&self.disk);
        let outcome = disk.begin_mutation()?;
        let seed = disk.spec.torn_seed;
        match outcome {
            MutationOutcome::Complete => {
                // write_file syncs before returning: fully durable.
                disk.files.insert(
                    name.to_string(),
                    MemFile {
                        data: content.to_vec(),
                        synced: content.len(),
                    },
                );
                Ok(())
            }
            MutationOutcome::CrashDuring => {
                // A seeded prefix lands, none of it synced.
                let keep = (splitmix64(seed ^ name_salt(name) ^ 0xF11E)
                    % (content.len() as u64 + 1)) as usize;
                disk.files.insert(
                    name.to_string(),
                    MemFile {
                        data: content.get(..keep).unwrap_or(content).to_vec(),
                        synced: 0,
                    },
                );
                Err(TcuError::Io("storage crashed during write".into()))
            }
        }
    }

    fn truncate(&self, name: &str, len: u64) -> TcuResult<()> {
        let mut disk = locked(&self.disk);
        let outcome = disk.begin_mutation()?;
        let Some(file) = disk.files.get_mut(name) else {
            return Err(TcuError::Io(format!("{name}: no such file")));
        };
        match outcome {
            MutationOutcome::Complete => {
                file.data.truncate(len as usize);
                file.synced = file.synced.min(file.data.len());
                Ok(())
            }
            // Crash before the truncate takes effect.
            MutationOutcome::CrashDuring => {
                Err(TcuError::Io("storage crashed during truncate".into()))
            }
        }
    }

    fn remove(&self, name: &str) -> TcuResult<()> {
        let mut disk = locked(&self.disk);
        let outcome = disk.begin_mutation()?;
        match outcome {
            MutationOutcome::Complete => {
                if disk.files.remove(name).is_none() {
                    return Err(TcuError::Io(format!("{name}: no such file")));
                }
                Ok(())
            }
            // Crash before the unlink takes effect.
            MutationOutcome::CrashDuring => {
                Err(TcuError::Io("storage crashed during remove".into()))
            }
        }
    }

    fn list(&self) -> TcuResult<Vec<String>> {
        let disk = locked(&self.disk);
        disk.check_up()?;
        Ok(disk.files.keys().cloned().collect())
    }

    fn exists(&self, name: &str) -> TcuResult<bool> {
        let disk = locked(&self.disk);
        disk.check_up()?;
        Ok(disk.files.contains_key(name))
    }

    fn file_len(&self, name: &str) -> TcuResult<u64> {
        let disk = locked(&self.disk);
        disk.check_up()?;
        Ok(disk.file(name)?.data.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fs_backend_round_trips() {
        let dir = std::env::temp_dir().join(format!("tcudb-backend-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let be = FsBackend::open(&dir).unwrap();
        let mut h = be.appender("wal-000.log").unwrap();
        h.append(b"hello ").unwrap();
        h.append(b"world").unwrap();
        h.sync().unwrap();
        assert_eq!(h.len(), 11);
        drop(h);
        assert_eq!(be.read_all("wal-000.log").unwrap(), b"hello world");
        be.truncate("wal-000.log", 5).unwrap();
        assert_eq!(be.read_all("wal-000.log").unwrap(), b"hello");
        be.write_file("manifest-1", b"m1").unwrap();
        assert_eq!(be.list().unwrap(), vec!["manifest-1", "wal-000.log"]);
        assert!(be.exists("manifest-1").unwrap());
        be.remove("manifest-1").unwrap();
        assert!(!be.exists("manifest-1").unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_backend_round_trips() {
        let be = MemBackend::new();
        let mut h = be.appender("f").unwrap();
        h.append(b"abc").unwrap();
        h.sync().unwrap();
        assert_eq!(be.read_all("f").unwrap(), b"abc");
        assert_eq!(be.file_len("f").unwrap(), 3);
    }

    #[test]
    fn unsynced_tail_is_torn_on_reboot() {
        let be = MemBackend::with_faults(FaultSpec {
            torn_seed: 7,
            ..FaultSpec::default()
        });
        let mut h = be.appender("f").unwrap();
        h.append(b"durable").unwrap();
        h.sync().unwrap();
        h.append(b"maybe-lost").unwrap();
        be.reboot();
        let data = be.read_all("f").unwrap();
        assert!(data.starts_with(b"durable"), "synced prefix must survive");
        assert!(data.len() <= b"durable".len() + b"maybe-lost".len());
    }

    #[test]
    fn crash_at_op_downs_the_disk_until_reboot() {
        let be = MemBackend::with_faults(FaultSpec {
            crash_at_op: Some(2),
            torn_seed: 3,
            ..FaultSpec::default()
        });
        let mut h = be.appender("f").unwrap();
        h.append(b"one").unwrap(); // op 1
        assert!(h.sync().is_err()); // op 2: crash
        assert!(h.append(b"two").is_err()); // down
        assert!(be.list().is_err());
        be.reboot();
        assert!(be.list().is_ok());
        // Nothing was synced, so the reboot may have torn everything.
        assert!(be.read_all("f").unwrap().len() <= 3);
    }

    #[test]
    fn short_reads_still_read_everything_via_default_read_all() {
        let be = MemBackend::with_faults(FaultSpec {
            short_read_chunk: Some(3),
            ..FaultSpec::default()
        });
        be.write_file("f", b"0123456789abcdef").unwrap();
        // Use the trait's default read_all (loops read_at).
        let via_trait: &dyn StorageBackend = &be;
        assert_eq!(via_trait.read_all("f").unwrap(), b"0123456789abcdef");
    }

    #[test]
    fn bit_flip_lands_only_in_unsynced_region() {
        let be = MemBackend::with_faults(FaultSpec {
            torn_seed: 11,
            flip_bit_in_torn_tail: true,
            ..FaultSpec::default()
        });
        let mut h = be.appender("f").unwrap();
        h.append(b"AAAA").unwrap();
        h.sync().unwrap();
        h.append(b"BBBBBBBB").unwrap();
        be.reboot();
        let data = be.read_all("f").unwrap();
        assert_eq!(&data.get(..4).unwrap(), b"AAAA", "durable bytes untouched");
    }

    #[test]
    fn transient_failures_fail_n_ops_then_recover_without_side_effects() {
        let be = MemBackend::new();
        let mut h = be.appender("f").unwrap();
        h.append(b"base").unwrap();
        h.sync().unwrap();
        be.inject_transient_failures(2);
        let e1 = h.append(b"x").unwrap_err();
        assert!(e1.is_transient(), "expected transient error, got {e1}");
        let e2 = h.sync().unwrap_err();
        assert!(e2.is_transient(), "expected transient error, got {e2}");
        // The failed ops left no trace; the third attempt succeeds.
        assert_eq!(be.read_all("f").unwrap(), b"base");
        h.append(b"x").unwrap();
        h.sync().unwrap();
        assert_eq!(be.read_all("f").unwrap(), b"basex");
        assert_eq!(be.transient_trips(), 2);
        assert!(!be.is_crashed());
    }

    #[test]
    fn transient_trips_do_not_advance_the_crash_schedule() {
        let be = MemBackend::with_faults(FaultSpec {
            crash_at_op: Some(2),
            transient_failures: 3,
            ..FaultSpec::default()
        });
        let mut h = be.appender("f").unwrap();
        // Transient trips consume attempts without counting as ops.
        assert!(h.append(b"a").is_err());
        assert!(h.append(b"a").is_err());
        assert!(h.append(b"a").is_err());
        h.append(b"a").unwrap(); // op 1
        assert!(h.sync().is_err()); // op 2: crash fires exactly here
        assert!(be.is_crashed());
    }

    #[test]
    fn reboot_clears_pending_transient_failures() {
        let be = MemBackend::new();
        be.inject_transient_failures(5);
        be.reboot();
        be.write_file("f", b"ok").unwrap();
        assert_eq!(be.read_all("f").unwrap(), b"ok");
    }

    #[test]
    fn reboot_is_deterministic_for_a_seed() {
        let run = |seed: u64| {
            let be = MemBackend::with_faults(FaultSpec {
                torn_seed: seed,
                ..FaultSpec::default()
            });
            let mut h = be.appender("f").unwrap();
            h.append(b"0123456789").unwrap();
            be.reboot();
            be.read_all("f").unwrap()
        };
        assert_eq!(run(5), run(5));
        assert_eq!(run(6), run(6));
    }
}
