//! Crash recovery and the durable store: manifest + segment load, WAL
//! replay, checkpointing, and the background flusher.
//!
//! # Crash-consistency invariants
//!
//! 1. **Commit point.**  A write is *published* (visible to readers)
//!    only after its WAL commit — operation records plus an
//!    epoch-publish marker — has been handed to the log (and, under
//!    `FlushPolicy::EveryCommit`, fsynced).  Recovery therefore never
//!    reports an epoch newer than the log supports.
//! 2. **Atomic commits.**  Recovery applies a commit's operations only
//!    when its publish marker decodes from the valid log prefix; a torn
//!    commit is truncated away, never half-applied.
//! 3. **Checkpoint supersession.**  A checkpoint writes segment files,
//!    an empty successor WAL, and finally the manifest; the manifest
//!    write is the atomicity point (its CRC catches tearing), and a
//!    crash anywhere during a checkpoint falls back to the previous
//!    manifest + WAL, which are only deleted after the new manifest is
//!    durable.
//! 4. **Sealed images are immutable.**  Segment files are never
//!    modified; a later checkpoint either reuses a table's files
//!    verbatim (appends seal only the new tail rows into an extra
//!    segment) or writes a fresh chain under new names.
//!
//! [`recover`] is deliberately total over damaged inputs: torn WAL
//! tails are truncated, invalid manifests are skipped in favour of older
//! ones, and orphan files are deleted — the only hard errors are I/O
//! failures from the backend itself.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use tcudb_types::sync::{locked, wait_on_timeout};
use tcudb_types::{TcuError, TcuResult};

use crate::backend::StorageBackend;
use crate::catalog::Catalog;
use crate::retry::RetryPolicy;
use crate::segment::{
    self, decode_segment, encode_segment, is_segment_file, is_wal_file, manifest_file_name,
    parse_manifest_epoch, segment_file_name, table_from_segment, wal_file_name, Manifest,
    ManifestTable,
};
use crate::snapshot::SharedCatalog;
use crate::table::Table;
use crate::wal::{decode_stream, FlushPolicy, WalRecord, WalWriter};

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// What recovery found and did; surfaced through `TcuDb::recovery_report`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch of the manifest recovery loaded (0 when none existed).
    pub manifest_epoch: u64,
    /// The last durable epoch: manifest epoch plus replayed commits.
    pub recovered_epoch: u64,
    /// Commits replayed from the WAL.
    pub replayed_commits: u64,
    /// Bytes cut off the WAL tail (torn frames plus unpublished records).
    pub truncated_bytes: u64,
    /// Decodable records discarded because their commit never published.
    pub discarded_records: u64,
    /// Newer manifests skipped because they (or their segments) failed
    /// validation — evidence of a crash mid-checkpoint.
    pub skipped_manifests: u64,
    /// Orphan files (superseded or torn) deleted on open.
    pub removed_files: u64,
}

/// One table's sealed on-disk image, tracked so later checkpoints can
/// reuse segment files instead of rewriting unchanged data.
#[derive(Debug, Clone)]
pub(crate) struct SealedTable {
    /// The table exactly as sealed (recovery: as loaded from segments).
    pub table: Arc<Table>,
    /// Segment files holding it, in concatenation order.
    pub files: Vec<String>,
    /// Row count covered by `files`.
    pub rows: usize,
}

/// The result of [`recover`].
#[derive(Debug)]
pub struct Recovered {
    /// The catalog at the last durable epoch.
    pub catalog: Catalog,
    /// The last durable epoch.
    pub epoch: u64,
    /// Accounting of what recovery found.
    pub report: RecoveryReport,
    /// The WAL file that continues from `epoch`'s manifest.
    pub(crate) wal_file: String,
    /// Valid WAL prefix length; bytes past this must be truncated.
    pub(crate) wal_keep_len: u64,
    /// Sealed images from the loaded manifest (pre-replay state).
    pub(crate) sealed: HashMap<String, SealedTable>,
}

/// Load the newest valid manifest, replay the WAL to the last published
/// epoch, and report torn tails for truncation.  Never fails on damaged
/// content — only on backend I/O errors.
pub fn recover(backend: &dyn StorageBackend) -> TcuResult<Recovered> {
    let files = backend.list()?;
    let mut report = RecoveryReport::default();

    // ---- Newest valid manifest (fall back on any validation failure).
    let mut manifest_epochs: Vec<u64> = files
        .iter()
        .filter_map(|f| parse_manifest_epoch(f))
        .collect();
    manifest_epochs.sort_unstable();
    let mut loaded: Option<(Manifest, Catalog, HashMap<String, SealedTable>)> = None;
    for &epoch in manifest_epochs.iter().rev() {
        match load_manifest(backend, epoch) {
            Ok(ok) => {
                loaded = Some(ok);
                break;
            }
            Err(_) => report.skipped_manifests += 1,
        }
    }
    let (manifest, base_catalog, sealed) = match loaded {
        Some(x) => x,
        None => (
            Manifest {
                epoch: 0,
                wal_file: wal_file_name(0),
                tables: Vec::new(),
            },
            Catalog::new(),
            HashMap::new(),
        ),
    };
    report.manifest_epoch = manifest.epoch;

    // ---- WAL replay: apply whole commits up to the last publish marker.
    let wal_bytes = if backend.exists(&manifest.wal_file)? {
        backend.read_all(&manifest.wal_file)?
    } else {
        Vec::new()
    };
    let decoded = decode_stream(&wal_bytes);
    let (catalog, epoch, keep_len, commits, applied_records) =
        replay(&base_catalog, manifest.epoch, &decoded.records);
    report.recovered_epoch = epoch;
    report.replayed_commits = commits;
    report.truncated_bytes = wal_bytes.len() as u64 - keep_len;
    report.discarded_records = decoded.records.len() as u64 - applied_records;

    Ok(Recovered {
        catalog,
        epoch,
        report,
        wal_file: manifest.wal_file,
        wal_keep_len: keep_len,
        sealed,
    })
}

/// Read and fully validate one manifest: every referenced segment must
/// decode and every table chain must reassemble.
fn load_manifest(
    backend: &dyn StorageBackend,
    epoch: u64,
) -> TcuResult<(Manifest, Catalog, HashMap<String, SealedTable>)> {
    let manifest = Manifest::decode(&backend.read_all(&manifest_file_name(epoch))?)?;
    if manifest.epoch != epoch {
        return Err(TcuError::Io(format!(
            "manifest file for epoch {epoch} claims epoch {}",
            manifest.epoch
        )));
    }
    let mut catalog = Catalog::new();
    let mut sealed = HashMap::new();
    for mt in &manifest.tables {
        let mut chain: Option<segment::DecodedSegment> = None;
        for file in &mt.segments {
            let seg = decode_segment(&backend.read_all(file)?)?;
            match &mut chain {
                None => chain = Some(seg),
                Some(base) => segment::concat_segment(base, seg)?,
            }
        }
        let seg = chain
            .ok_or_else(|| TcuError::Io(format!("manifest table '{}' has no segments", mt.name)))?;
        if !seg.name.eq_ignore_ascii_case(&mt.name) {
            return Err(TcuError::Io(format!(
                "segment chain for '{}' holds table '{}'",
                mt.name, seg.name
            )));
        }
        let table = table_from_segment(seg)?;
        let rows = table.num_rows();
        catalog.register(table);
        let arc = catalog.table(&mt.name)?;
        sealed.insert(
            mt.name.to_ascii_lowercase(),
            SealedTable {
                table: arc,
                files: mt.segments.clone(),
                rows,
            },
        );
    }
    Ok((manifest, catalog, sealed))
}

/// Apply whole commits from `records` onto a clone of `base`.
///
/// Returns `(catalog, epoch, keep_len, commits, applied_records)`.
/// Operations are applied eagerly; if the stream ends inside an open
/// commit or an operation fails to apply, the replay restarts bounded to
/// the last good commit boundary — at most one extra pass, and the
/// returned state never contains a partial commit.
fn replay(
    base: &Catalog,
    base_epoch: u64,
    records: &[(WalRecord, u64)],
) -> (Catalog, u64, u64, u64, u64) {
    let mut limit = records.len();
    loop {
        let mut catalog = base.clone();
        // Tables touched this pass, cloned out of the base catalog once
        // and mutated in place (`None` = dropped); without the staging
        // map every append commit would re-clone the accumulated table
        // and replay cost would grow quadratically with log length.
        let mut staged: HashMap<String, Option<Table>> = HashMap::new();
        let mut epoch = base_epoch;
        let mut keep_len = 0u64;
        let mut commits = 0u64;
        let mut applied = 0u64;
        let mut commit_start = 0usize;
        let mut rerun_at: Option<usize> = None;
        for (i, (rec, end)) in records.iter().take(limit).enumerate() {
            match rec {
                WalRecord::EpochPublish { epoch: e } => {
                    if *e != epoch + 1 {
                        // Epoch discontinuity: damage that happened to
                        // pass the CRC.  Keep only the commits before it.
                        rerun_at = Some(commit_start);
                        break;
                    }
                    epoch = *e;
                    keep_len = *end;
                    commits += 1;
                    applied = (i + 1) as u64;
                    commit_start = i + 1;
                }
                op => {
                    if apply_record(&catalog, &mut staged, op).is_err() {
                        rerun_at = Some(commit_start);
                        break;
                    }
                }
            }
        }
        match rerun_at {
            Some(cut) => {
                // Partial commit was applied in place: rerun bounded to
                // the last good boundary.  `cut` always lands on a commit
                // boundary, so the next pass cannot fail again.
                limit = cut;
            }
            None if commit_start < limit => {
                // Clean decode but the stream ends inside an open commit
                // (its publish marker never hit the disk): those eagerly
                // applied operations must not leak into the result.
                limit = commit_start;
            }
            None => {
                for (name, slot) in staged {
                    match slot {
                        Some(table) => catalog.register(table),
                        None => {
                            catalog.drop_table(&name);
                        }
                    }
                }
                return (catalog, epoch, keep_len, commits, applied);
            }
        }
    }
}

/// Apply one non-publish WAL record to the staging map layered over the
/// (unmutated) base catalog.
fn apply_record(
    catalog: &Catalog,
    staged: &mut HashMap<String, Option<Table>>,
    rec: &WalRecord,
) -> TcuResult<()> {
    match rec {
        WalRecord::CreateTable { name, schema } => {
            staged.insert(
                name.to_ascii_lowercase(),
                Some(Table::new(name.clone(), schema.clone())),
            );
            Ok(())
        }
        WalRecord::DropTable { name } => {
            let key = name.to_ascii_lowercase();
            let exists = match staged.get(&key) {
                Some(slot) => slot.is_some(),
                None => catalog.table(name).is_ok(),
            };
            if !exists {
                return Err(TcuError::Io(format!("WAL drops unknown table '{name}'")));
            }
            staged.insert(key, None);
            Ok(())
        }
        WalRecord::AppendRows { name, rows } => {
            let slot = match staged.entry(name.to_ascii_lowercase()) {
                Entry::Occupied(e) => e.into_mut(),
                Entry::Vacant(v) => v.insert(Some((*catalog.table(name)?).clone())),
            };
            match slot {
                Some(table) => table.append_rows(rows.clone()),
                None => Err(TcuError::Io(format!(
                    "WAL appends to dropped table '{name}'"
                ))),
            }
        }
        WalRecord::EpochPublish { .. } => Err(TcuError::Io(
            "publish marker applied as an operation".into(),
        )),
    }
}

// ---------------------------------------------------------------------------
// Durable store
// ---------------------------------------------------------------------------

/// Tunables for the durability subsystem.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// When WAL commits are fsynced.
    pub flush_policy: FlushPolicy,
    /// Checkpoint when the WAL exceeds this many bytes (0 disables
    /// size-triggered checkpoints; explicit checkpoints still work).
    pub checkpoint_wal_bytes: u64,
    /// Run a background flusher thread that checkpoints when the WAL
    /// grows past the threshold.
    pub background_flusher: bool,
    /// How often the background flusher checks the WAL size.
    pub flusher_interval: Duration,
    /// Backoff policy for transient I/O faults on the write path (WAL
    /// appends/syncs and checkpoint file writes).  Permanent faults are
    /// never retried.
    pub retry: RetryPolicy,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            flush_policy: FlushPolicy::EveryCommit,
            checkpoint_wal_bytes: 4 * 1024 * 1024,
            background_flusher: true,
            flusher_interval: Duration::from_millis(200),
            retry: RetryPolicy::default(),
        }
    }
}

impl DurabilityOptions {
    /// Options for tests and oracles: every commit synced, no background
    /// thread (checkpoints only when asked), retries without sleeping so
    /// fault schedules stay deterministic in time.
    pub fn strict_manual() -> DurabilityOptions {
        DurabilityOptions {
            flush_policy: FlushPolicy::EveryCommit,
            checkpoint_wal_bytes: 0,
            background_flusher: false,
            flusher_interval: Duration::from_millis(200),
            retry: RetryPolicy::immediate(4),
        }
    }
}

#[derive(Debug)]
struct WalState {
    writer: WalWriter,
    file: String,
    sealed: HashMap<String, SealedTable>,
    last_checkpoint_epoch: u64,
}

/// The engine-facing durability object: owns the WAL writer and the
/// sealed-segment bookkeeping, and performs checkpoints.
///
/// Lock order: `SharedCatalog.writer` (taken by publishes and
/// checkpoints) → `DurableStore.wal` → the backend's own internals.
#[derive(Debug)]
pub struct DurableStore {
    backend: Arc<dyn StorageBackend>,
    options: DurabilityOptions,
    wal: Mutex<WalState>,
    checkpoint_errors: AtomicU64,
}

impl DurableStore {
    /// Recover the database behind `backend` and open it for writing:
    /// orphan files are removed, the torn WAL tail is truncated, and the
    /// log is reopened for appending.
    pub fn open(
        backend: Arc<dyn StorageBackend>,
        options: DurabilityOptions,
    ) -> TcuResult<(DurableStore, Recovered)> {
        let mut recovered = recover(backend.as_ref())?;

        // Remove everything the chosen manifest does not reference:
        // superseded checkpoints, torn newer manifests, orphan segments.
        let mut keep: HashSet<String> = HashSet::new();
        keep.insert(manifest_file_name(recovered.report.manifest_epoch));
        keep.insert(recovered.wal_file.clone());
        for s in recovered.sealed.values() {
            keep.extend(s.files.iter().cloned());
        }
        for file in backend.list()? {
            let known = is_wal_file(&file)
                || is_segment_file(&file)
                || parse_manifest_epoch(&file).is_some();
            if known && !keep.contains(&file) {
                // Best-effort: a failure here leaves an orphan for the
                // next open, never an inconsistency.
                if backend.remove(&file).is_ok() {
                    recovered.report.removed_files += 1;
                }
            }
        }

        // A database without any manifest gets its epoch-0 manifest now,
        // so every later open finds one.
        if recovered.report.manifest_epoch == 0 && !backend.exists(&manifest_file_name(0))? {
            let manifest = Manifest {
                epoch: 0,
                wal_file: recovered.wal_file.clone(),
                tables: Vec::new(),
            };
            backend.write_file(&manifest_file_name(0), &manifest.encode())?;
        }

        // Truncate the torn tail so the appender continues from the last
        // durable commit.
        if backend.exists(&recovered.wal_file)?
            && backend.file_len(&recovered.wal_file)? > recovered.wal_keep_len
        {
            backend.truncate(&recovered.wal_file, recovered.wal_keep_len)?;
        }
        let handle = backend.appender(&recovered.wal_file)?;
        let store = DurableStore {
            backend,
            wal: Mutex::new(WalState {
                writer: WalWriter::new(handle, options.flush_policy),
                file: recovered.wal_file.clone(),
                sealed: recovered.sealed.clone(),
                last_checkpoint_epoch: recovered.report.manifest_epoch,
            }),
            options,
            checkpoint_errors: AtomicU64::new(0),
        };
        Ok((store, recovered))
    }

    /// Append one commit (operations + publish marker for `epoch`) to
    /// the WAL, retrying transient backend faults per the configured
    /// [`RetryPolicy`].  Called from inside the catalog's pre-publish
    /// hook, so a failure here means the epoch is never published.
    pub fn log_commit(&self, ops: &[WalRecord], epoch: u64) -> TcuResult<()> {
        locked(&self.wal)
            .writer
            .commit_with_retry(ops, epoch, &self.options.retry)
    }

    /// fsync the WAL regardless of flush policy, retrying transient
    /// backend faults.
    pub fn sync(&self) -> TcuResult<()> {
        locked(&self.wal)
            .writer
            .sync_with_retry(&self.options.retry)
    }

    /// Current WAL length in bytes.
    pub fn wal_len(&self) -> u64 {
        locked(&self.wal).writer.len()
    }

    /// Epoch of the last completed checkpoint.
    pub fn last_checkpoint_epoch(&self) -> u64 {
        locked(&self.wal).last_checkpoint_epoch
    }

    /// True when the WAL has outgrown the configured checkpoint
    /// threshold.
    pub fn needs_checkpoint(&self) -> bool {
        self.options.checkpoint_wal_bytes > 0 && self.wal_len() >= self.options.checkpoint_wal_bytes
    }

    /// Checkpoint failures recorded by the background flusher.
    pub fn checkpoint_errors(&self) -> u64 {
        self.checkpoint_errors.load(Ordering::Relaxed)
    }

    fn note_checkpoint_error(&self) {
        self.checkpoint_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// The configured options.
    pub fn options(&self) -> &DurabilityOptions {
        &self.options
    }

    /// Seal the current snapshot of `shared` into segment files, write
    /// the manifest, and rotate to a fresh WAL.  Returns the sealed
    /// epoch, or `None` when the last checkpoint already covers the
    /// current epoch.
    ///
    /// Runs under the catalog's writer lock, so the sealed snapshot is
    /// exactly the current epoch and no commit can race the rotation.
    pub fn checkpoint(&self, shared: &SharedCatalog) -> TcuResult<Option<u64>> {
        shared.with_writer_locked(|| {
            let snap = shared.snapshot();
            let epoch = snap.epoch();
            let mut wal = locked(&self.wal);
            let new_wal_file = wal_file_name(epoch);
            if wal.file == new_wal_file {
                return Ok(None); // nothing published since the last seal
            }

            // 1. Segment files: reuse sealed chains, seal appended tails,
            //    rewrite tables whose history diverged.
            let mut seg_idx = 0u64;
            let mut new_sealed: HashMap<String, SealedTable> = HashMap::new();
            let mut manifest_tables = Vec::new();
            for name in snap.catalog().table_names() {
                let table = snap.catalog().table(&name)?;
                let files = self.seal_table(&name, &table, &wal.sealed, epoch, &mut seg_idx)?;
                new_sealed.insert(
                    name.clone(),
                    SealedTable {
                        table: Arc::clone(&table),
                        files: files.clone(),
                        rows: table.num_rows(),
                    },
                );
                manifest_tables.push(ManifestTable {
                    name: name.clone(),
                    segments: files,
                });
            }

            // 2. A durable empty successor WAL, then the manifest — the
            //    atomicity point.  A crash before the manifest write
            //    leaves the previous checkpoint fully intact.  Whole-file
            //    writes are idempotent, so transient faults retry safely.
            self.options
                .retry
                .run(|| self.backend.write_file(&new_wal_file, &[]))?;
            let manifest = Manifest {
                epoch,
                wal_file: new_wal_file.clone(),
                tables: manifest_tables,
            };
            let manifest_bytes = manifest.encode();
            self.options.retry.run(|| {
                self.backend
                    .write_file(&manifest_file_name(epoch), &manifest_bytes)
            })?;

            // 3. Swap the writer to the new log.
            let handle = self.backend.appender(&new_wal_file)?;
            let old_file = std::mem::replace(&mut wal.file, new_wal_file);
            wal.writer = WalWriter::new(handle, self.options.flush_policy);
            let old_sealed = std::mem::replace(&mut wal.sealed, new_sealed);
            let old_epoch = wal.last_checkpoint_epoch;
            wal.last_checkpoint_epoch = epoch;

            // 4. Best-effort cleanup of the superseded generation.
            let keep: HashSet<&String> = wal.sealed.values().flat_map(|s| s.files.iter()).collect();
            let _ = self.backend.remove(&old_file);
            if old_epoch != epoch {
                let _ = self.backend.remove(&manifest_file_name(old_epoch));
            }
            for s in old_sealed.values() {
                for f in &s.files {
                    if !keep.contains(f) {
                        let _ = self.backend.remove(f);
                    }
                }
            }
            Ok(Some(epoch))
        })
    }

    /// Compute the segment chain for one table at checkpoint time.
    fn seal_table(
        &self,
        name: &str,
        table: &Arc<Table>,
        sealed: &HashMap<String, SealedTable>,
        epoch: u64,
        seg_idx: &mut u64,
    ) -> TcuResult<Vec<String>> {
        if let Some(prev) = sealed.get(name) {
            if Arc::ptr_eq(&prev.table, table) || segment::is_prefix_of(&prev.table, table) {
                if table.num_rows() == prev.rows {
                    return Ok(prev.files.clone()); // unchanged: reuse verbatim
                }
                // Appended: seal only the tail rows.
                let bytes = encode_segment(table, prev.rows)?;
                let file = segment_file_name(epoch, *seg_idx);
                *seg_idx += 1;
                self.options
                    .retry
                    .run(|| self.backend.write_file(&file, &bytes))?;
                let mut files = prev.files.clone();
                files.push(file);
                return Ok(files);
            }
        }
        // New or rewritten table: one full segment.
        let bytes = encode_segment(table, 0)?;
        let file = segment_file_name(epoch, *seg_idx);
        *seg_idx += 1;
        self.options
            .retry
            .run(|| self.backend.write_file(&file, &bytes))?;
        Ok(vec![file])
    }
}

// ---------------------------------------------------------------------------
// Background flusher
// ---------------------------------------------------------------------------

/// Handle to the background flusher thread; dropping it stops and joins
/// the thread.
#[derive(Debug)]
pub struct Flusher {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Spawn the background flusher: every `interval` it checkpoints when
/// the WAL has outgrown the configured threshold.  Checkpoint errors are
/// counted on the store, never propagated (the next tick retries).
pub fn spawn_flusher(
    store: Arc<DurableStore>,
    shared: Arc<SharedCatalog>,
    interval: Duration,
) -> TcuResult<Flusher> {
    let stop = Arc::new((Mutex::new(false), Condvar::new()));
    let stop_worker = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("tcudb-flusher".into())
        .spawn(move || loop {
            let (pair_mutex, pair_cv) = &*stop_worker;
            let guard = locked(pair_mutex);
            if *guard {
                break;
            }
            let (guard, _timed_out) = wait_on_timeout(pair_cv, guard, interval);
            if *guard {
                break;
            }
            drop(guard);
            if store.needs_checkpoint() && store.checkpoint(&shared).is_err() {
                store.note_checkpoint_error();
            }
        })
        .map_err(|e| TcuError::Io(format!("spawn flusher thread: {e}")))?;
    Ok(Flusher {
        stop,
        handle: Some(handle),
    })
}

impl Drop for Flusher {
    fn drop(&mut self) {
        let (pair_mutex, pair_cv) = &*self.stop;
        *locked(pair_mutex) = true;
        pair_cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FaultSpec, MemBackend};
    use crate::schema::Schema;
    use tcudb_types::{DataType, Value};

    fn ops_create(name: &str) -> Vec<WalRecord> {
        vec![WalRecord::CreateTable {
            name: name.into(),
            schema: Schema::from_pairs(&[("id", DataType::Int64), ("tag", DataType::Text)]),
        }]
    }

    fn ops_append(name: &str, ids: &[i64]) -> Vec<WalRecord> {
        vec![WalRecord::AppendRows {
            name: name.into(),
            rows: ids
                .iter()
                .map(|&i| vec![Value::Int(i), Value::Text(format!("t{i}"))])
                .collect(),
        }]
    }

    fn open_mem(be: &MemBackend) -> (DurableStore, Recovered) {
        DurableStore::open(
            Arc::new(be.clone()) as Arc<dyn StorageBackend>,
            DurabilityOptions::strict_manual(),
        )
        .unwrap()
    }

    #[test]
    fn fresh_open_recovers_empty_at_epoch_zero() {
        let be = MemBackend::new();
        let (_store, rec) = open_mem(&be);
        assert_eq!(rec.epoch, 0);
        assert!(rec.catalog.is_empty());
        // The epoch-0 manifest was materialised.
        assert!(be.exists(&manifest_file_name(0)).unwrap());
    }

    #[test]
    fn logged_commits_replay_on_reopen() {
        let be = MemBackend::new();
        {
            let (store, _) = open_mem(&be);
            store.log_commit(&ops_create("t"), 1).unwrap();
            store.log_commit(&ops_append("t", &[1, 2, 3]), 2).unwrap();
        }
        let (_store, rec) = open_mem(&be);
        assert_eq!(rec.epoch, 2);
        assert_eq!(rec.report.replayed_commits, 2);
        let t = rec.catalog.table("t").unwrap();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.row(2), vec![Value::Int(3), Value::Text("t3".into())]);
    }

    #[test]
    fn transient_faults_during_commit_are_retried_without_duplication() {
        let be = MemBackend::new();
        {
            let (store, _) = open_mem(&be);
            store.log_commit(&ops_create("t"), 1).unwrap();
            // Two consecutive blips on the append are absorbed by the
            // retry budget; the commit lands exactly once.
            be.inject_transient_failures(2);
            store.log_commit(&ops_append("t", &[1, 2]), 2).unwrap();
            assert_eq!(be.transient_trips(), 2);
            // And a blip on a bare fsync retries through the sync path.
            be.inject_transient_failures(1);
            store.sync().unwrap();
            assert_eq!(be.transient_trips(), 3);
        }
        let (_store, rec) = open_mem(&be);
        assert_eq!(rec.epoch, 2);
        assert_eq!(
            rec.report.replayed_commits, 2,
            "the retried commit must appear exactly once"
        );
        assert_eq!(rec.catalog.table("t").unwrap().num_rows(), 2);
    }

    #[test]
    fn transient_faults_beyond_the_attempt_budget_surface_as_transient() {
        let be = MemBackend::new();
        let (store, _) = open_mem(&be);
        store.log_commit(&ops_create("t"), 1).unwrap();
        // strict_manual retries 4 attempts; 10 blips exhaust them.
        be.inject_transient_failures(10);
        let err = store.log_commit(&ops_append("t", &[1]), 2).unwrap_err();
        assert!(err.is_transient(), "expected transient error, got {err}");
        // The disk is still up: once the blips drain, commits succeed and
        // the failed commit left no partial frames behind.
        be.inject_transient_failures(0);
        store.log_commit(&ops_append("t", &[7]), 2).unwrap();
        drop(store);
        let (_store, rec) = open_mem(&be);
        assert_eq!(rec.epoch, 2);
        let t = rec.catalog.table("t").unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.row(0)[0], Value::Int(7));
    }

    #[test]
    fn permanent_faults_are_not_retried() {
        // A scripted crash is permanent: the first error must surface
        // without the retry loop hammering a downed disk.
        let be = MemBackend::with_faults(FaultSpec {
            crash_at_op: Some(4),
            torn_seed: 9,
            ..FaultSpec::default()
        });
        let (store, _) = open_mem(&be);
        // open writes the epoch-0 manifest (op 1); the first commit is
        // ops 2 (append) + 3 (sync); the second commit's append is op 4.
        store.log_commit(&ops_create("t"), 1).unwrap();
        let err = store.log_commit(&ops_append("t", &[1]), 2).unwrap_err();
        assert!(!err.is_transient());
        assert!(be.is_crashed());
    }

    #[test]
    fn checkpoint_survives_transient_faults() {
        let be = MemBackend::new();
        {
            let (store, _) = open_mem(&be);
            let shared = SharedCatalog::default();
            let mut t = Table::new(
                "t",
                Schema::from_pairs(&[("id", DataType::Int64), ("tag", DataType::Text)]),
            );
            t.push_row(vec![Value::Int(1), Value::Text("a".into())])
                .unwrap();
            store.log_commit(&ops_create("t"), 1).unwrap();
            shared.update(|c| c.register(t));
            // Blip the segment write, the successor WAL and the manifest.
            be.inject_transient_failures(3);
            assert_eq!(store.checkpoint(&shared).unwrap(), Some(1));
            assert_eq!(be.transient_trips(), 3);
        }
        let (_store, rec) = open_mem(&be);
        assert_eq!(rec.report.manifest_epoch, 1);
        assert_eq!(rec.report.replayed_commits, 0);
        assert_eq!(rec.catalog.table("t").unwrap().num_rows(), 1);
    }

    #[test]
    fn checkpoint_rotates_the_wal_and_reopen_skips_replay() {
        let be = MemBackend::new();
        {
            let (store, _) = open_mem(&be);
            let shared = SharedCatalog::default();
            let mut t = Table::new(
                "t",
                Schema::from_pairs(&[("id", DataType::Int64), ("tag", DataType::Text)]),
            );
            t.push_row(vec![Value::Int(1), Value::Text("a".into())])
                .unwrap();
            store.log_commit(&ops_create("t"), 1).unwrap();
            store.log_commit(&ops_append("t", &[1]), 2).unwrap();
            shared.update(|c| c.register(t));
            shared.update(|c| {
                let _ = c; // second publish to reach epoch 2
            });
            assert_eq!(store.checkpoint(&shared).unwrap(), Some(2));
            // Idempotent at the same epoch.
            assert_eq!(store.checkpoint(&shared).unwrap(), None);
        }
        let (_store, rec) = open_mem(&be);
        assert_eq!(rec.report.manifest_epoch, 2);
        assert_eq!(rec.report.replayed_commits, 0);
        assert_eq!(rec.epoch, 2);
        let t = rec.catalog.table("t").unwrap();
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn torn_wal_tail_is_truncated_to_last_commit() {
        let be = MemBackend::with_faults(FaultSpec {
            torn_seed: 21,
            ..FaultSpec::default()
        });
        {
            let (store, _) = open_mem(&be);
            store.log_commit(&ops_create("t"), 1).unwrap();
            store.log_commit(&ops_append("t", &[1, 2]), 2).unwrap();
        }
        // Simulate a torn append: extra unsynced bytes at the tail.
        {
            let mut h = be.appender(&wal_file_name(0)).unwrap();
            h.append(&[0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02]).unwrap();
            // no sync: reboot tears it
        }
        be.reboot();
        let (_store, rec) = open_mem(&be);
        assert_eq!(rec.epoch, 2);
        assert_eq!(rec.catalog.table("t").unwrap().num_rows(), 2);
        // And the file itself was truncated back to the valid prefix.
        let decoded = decode_stream(&be.read_all(&wal_file_name(0)).unwrap());
        assert!(!decoded.torn);
    }

    /// Byte length of one bare epoch-publish commit (a single
    /// `EpochPublish` frame) — the tail region the bit-flip sweep
    /// corrupts.
    fn publish_marker_len() -> usize {
        let be = MemBackend::new();
        let mut w = WalWriter::new(be.appender("w").unwrap(), FlushPolicy::EveryCommit);
        w.commit(&[], 7).unwrap();
        w.len() as usize
    }

    /// Flip EVERY bit of the last commit's epoch-publish marker frame,
    /// one at a time: the frame CRC (or length sanity check) must catch
    /// each flip, recovery must discard exactly that commit — the
    /// marker never decodes, so its operations never publish — and the
    /// preceding epoch must survive bit-identical.
    #[test]
    fn bit_flips_in_the_publish_marker_discard_exactly_that_commit() {
        let be = MemBackend::new();
        {
            let (store, _) = open_mem(&be);
            store.log_commit(&ops_create("t"), 1).unwrap();
            store.log_commit(&ops_append("t", &[1, 2]), 2).unwrap();
            store.log_commit(&ops_append("t", &[3]), 3).unwrap();
        }
        let wal_file = wal_file_name(0);
        let pristine: Vec<(String, Vec<u8>)> = be
            .list()
            .unwrap()
            .into_iter()
            .map(|f| {
                let bytes = be.read_all(&f).unwrap();
                (f, bytes)
            })
            .collect();
        let wal = be.read_all(&wal_file).unwrap();
        let mlen = publish_marker_len();
        assert!(wal.len() > mlen, "WAL too short to hold a marker");
        let marker_start = wal.len() - mlen;

        for bit in 0..mlen * 8 {
            // A fresh disk with the pristine image, then one flipped bit
            // inside epoch 3's publish marker.
            let nb = MemBackend::new();
            for (f, bytes) in &pristine {
                nb.write_file(f, bytes).unwrap();
            }
            let mut damaged = wal.clone();
            damaged[marker_start + bit / 8] ^= 1 << (bit % 8);
            nb.write_file(&wal_file, &damaged).unwrap();

            let (store, rec) = DurableStore::open(
                Arc::new(nb.clone()) as Arc<dyn StorageBackend>,
                DurabilityOptions::strict_manual(),
            )
            .expect("recovery never fails on damaged content");
            assert_eq!(
                rec.epoch, 2,
                "bit {bit}: epoch 3's marker was damaged, so exactly epoch 2 must survive"
            );
            let t = rec.catalog.table("t").unwrap();
            assert_eq!(t.num_rows(), 2, "bit {bit}: preceding epoch not intact");
            assert!(
                rec.report.truncated_bytes > 0 || rec.report.discarded_records > 0,
                "bit {bit}: damage went unreported: {:?}",
                rec.report
            );
            // The reopened log accepts the re-issued commit.
            store.log_commit(&ops_append("t", &[3]), 3).unwrap();
            drop(store);
            let (_s, rec) = open_mem(&nb);
            assert_eq!(rec.epoch, 3, "bit {bit}: re-issued commit lost");
            assert_eq!(rec.catalog.table("t").unwrap().num_rows(), 3);
        }
    }

    /// Same sweep one commit deeper: damage epoch 2's marker and the
    /// scan stops there — epoch 3's perfectly valid frames AFTER the
    /// damage must not resurrect (prefix-consistency, not salvage).
    #[test]
    fn bit_flip_in_an_interior_marker_truncates_everything_after_it() {
        let be = MemBackend::new();
        {
            let (store, _) = open_mem(&be);
            store.log_commit(&ops_create("t"), 1).unwrap();
            store.log_commit(&ops_append("t", &[1, 2]), 2).unwrap();
        }
        let wal_file = wal_file_name(0);
        let len_through_2 = be.read_all(&wal_file).unwrap().len();
        {
            let (store, _) = open_mem(&be);
            store.log_commit(&ops_append("t", &[3]), 3).unwrap();
        }
        let wal = be.read_all(&wal_file).unwrap();
        let mlen = publish_marker_len();
        let marker2_start = len_through_2 - mlen;

        // One representative flip per byte of epoch 2's marker.
        for byte in 0..mlen {
            let nb = MemBackend::new();
            for f in be.list().unwrap() {
                nb.write_file(&f, &be.read_all(&f).unwrap()).unwrap();
            }
            let mut damaged = wal.clone();
            damaged[marker2_start + byte] ^= 1 << (byte % 8);
            nb.write_file(&wal_file, &damaged).unwrap();

            let (_s, rec) = DurableStore::open(
                Arc::new(nb) as Arc<dyn StorageBackend>,
                DurabilityOptions::strict_manual(),
            )
            .expect("recovery never fails on damaged content");
            assert_eq!(
                rec.epoch, 1,
                "byte {byte}: scan must stop at the damaged marker, not salvage epoch 3"
            );
            assert_eq!(rec.catalog.table("t").unwrap().num_rows(), 0);
        }
    }

    #[test]
    fn unpublished_trailing_ops_are_discarded() {
        let be = MemBackend::new();
        {
            let (store, _) = open_mem(&be);
            store.log_commit(&ops_create("t"), 1).unwrap();
            // Write operation frames WITHOUT a publish marker by hand.
            let mut buf = Vec::new();
            for op in ops_append("t", &[7, 8, 9]) {
                crate::wal::encode_frame(&mut buf, &op).unwrap();
            }
            let mut h = be.appender(&wal_file_name(0)).unwrap();
            h.append(&buf).unwrap();
            h.sync().unwrap();
        }
        let (_store, rec) = open_mem(&be);
        assert_eq!(rec.epoch, 1, "open commit must not count");
        assert_eq!(rec.catalog.table("t").unwrap().num_rows(), 0);
        assert!(rec.report.discarded_records >= 1);
    }

    #[test]
    fn torn_manifest_falls_back_to_previous_checkpoint() {
        let be = MemBackend::new();
        let shared = SharedCatalog::default();
        {
            let (store, _) = open_mem(&be);
            store.log_commit(&ops_create("t"), 1).unwrap();
            shared.update(|c| {
                c.register(Table::new(
                    "t",
                    Schema::from_pairs(&[("id", DataType::Int64), ("tag", DataType::Text)]),
                ))
            });
            store.checkpoint(&shared).unwrap();
        }
        // A later, torn manifest (simulating a crash mid-checkpoint).
        let good = be.read_all(&manifest_file_name(1)).unwrap();
        let mut torn = good.clone();
        torn.truncate(torn.len() / 2);
        be.write_file(&manifest_file_name(9), &torn).unwrap();
        let (_store, rec) = open_mem(&be);
        assert_eq!(rec.report.manifest_epoch, 1);
        assert_eq!(rec.report.skipped_manifests, 1);
        assert!(rec.catalog.contains("t"));
        // The torn manifest was removed as an orphan.
        assert!(!be.exists(&manifest_file_name(9)).unwrap());
    }

    #[test]
    fn append_checkpoint_seals_only_the_tail() {
        let be = MemBackend::new();
        let shared = SharedCatalog::default();
        let (store, _) = open_mem(&be);
        let schema = Schema::from_pairs(&[("id", DataType::Int64), ("tag", DataType::Text)]);
        let mut t = Table::new("t", schema);
        t.push_row(vec![Value::Int(1), Value::Text("a".into())])
            .unwrap();
        store.log_commit(&ops_create("t"), 1).unwrap();
        store.log_commit(&ops_append("t", &[1]), 2).unwrap();
        shared.update(|c| c.register(t.clone()));
        shared.update(|_| ());
        store.checkpoint(&shared).unwrap();
        let first_gen: Vec<String> = be
            .list()
            .unwrap()
            .into_iter()
            .filter(|f| is_segment_file(f))
            .collect();
        assert_eq!(first_gen.len(), 1);

        // Append two rows and checkpoint again: the old segment must be
        // reused and exactly one tail segment added.
        t.push_row(vec![Value::Int(2), Value::Text("b".into())])
            .unwrap();
        t.push_row(vec![Value::Int(3), Value::Text("c".into())])
            .unwrap();
        store.log_commit(&ops_append("t", &[2, 3]), 3).unwrap();
        shared.update(|c| c.register(t));
        store.checkpoint(&shared).unwrap();
        let second_gen: Vec<String> = be
            .list()
            .unwrap()
            .into_iter()
            .filter(|f| is_segment_file(f))
            .collect();
        assert_eq!(second_gen.len(), 2, "files: {second_gen:?}");
        assert!(second_gen.contains(&first_gen[0]), "base segment reused");

        let (_store, rec) = open_mem(&be);
        assert_eq!(rec.catalog.table("t").unwrap().num_rows(), 3);
        assert_eq!(
            rec.catalog.table("t").unwrap().row(2),
            vec![Value::Int(3), Value::Text("c".into())]
        );
    }

    #[test]
    fn crash_during_checkpoint_preserves_previous_generation() {
        // Sweep the crash point across every mutating op of a checkpoint;
        // recovery must always land on one of the two valid states.
        for crash_at in 1..=12u64 {
            let be = MemBackend::new();
            let shared = SharedCatalog::default();
            let (store, _) = open_mem(&be);
            store.log_commit(&ops_create("t"), 1).unwrap();
            store.log_commit(&ops_append("t", &[1, 2]), 2).unwrap();
            let mut t = Table::new(
                "t",
                Schema::from_pairs(&[("id", DataType::Int64), ("tag", DataType::Text)]),
            );
            t.push_row(vec![Value::Int(1), Value::Text("t1".into())])
                .unwrap();
            t.push_row(vec![Value::Int(2), Value::Text("t2".into())])
                .unwrap();
            shared.update(|c| c.register(t));
            shared.update(|_| ());

            be.reboot_with(FaultSpec {
                crash_at_op: Some(crash_at),
                torn_seed: crash_at * 31 + 7,
                ..FaultSpec::default()
            });
            let _ = store.checkpoint(&shared); // may fail: that's the point
            be.reboot();
            let (_s2, rec) = open_mem(&be);
            assert_eq!(rec.epoch, 2, "crash_at={crash_at}");
            let t = rec.catalog.table("t").unwrap();
            assert_eq!(t.num_rows(), 2, "crash_at={crash_at}");
            assert_eq!(t.row(1), vec![Value::Int(2), Value::Text("t2".into())]);
        }
    }

    #[test]
    fn flusher_checkpoints_when_wal_grows() {
        let be = MemBackend::new();
        let shared = Arc::new(SharedCatalog::default());
        let (store, _) = DurableStore::open(
            Arc::new(be.clone()) as Arc<dyn StorageBackend>,
            DurabilityOptions {
                checkpoint_wal_bytes: 1, // any commit triggers
                flusher_interval: Duration::from_millis(5),
                ..DurabilityOptions::default()
            },
        )
        .unwrap();
        let store = Arc::new(store);
        let flusher = spawn_flusher(
            Arc::clone(&store),
            Arc::clone(&shared),
            Duration::from_millis(5),
        )
        .unwrap();
        store.log_commit(&ops_create("t"), 1).unwrap();
        shared.update(|c| {
            c.register(Table::new(
                "t",
                Schema::from_pairs(&[("id", DataType::Int64), ("tag", DataType::Text)]),
            ))
        });
        // Wait for the flusher to seal epoch 1.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while store.last_checkpoint_epoch() < 1 {
            assert!(std::time::Instant::now() < deadline, "flusher never sealed");
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(flusher); // stops and joins
        assert!(be.exists(&manifest_file_name(1)).unwrap());
        assert_eq!(store.checkpoint_errors(), 0);
    }
}
