//! Bounded-backoff retry for transient storage faults.
//!
//! The durability path distinguishes two failure classes via
//! [`tcudb_types::TcuError::is_transient`]:
//!
//! * **Transient** faults ([`tcudb_types::TcuError::IoTransient`], `Overloaded`) —
//!   EINTR-style blips where the operation had no effect and is safe to
//!   retry verbatim.  [`RetryPolicy::run`] retries these with doubling
//!   delays up to a bounded attempt count.
//! * **Permanent** faults (plain `Io`, corruption) — retrying cannot
//!   help; they surface to the caller on the first occurrence.
//!
//! Retry granularity matters: the WAL writer retries its *append* and
//! its *sync* as separate operations (see `WalWriter::commit_with_retry`)
//! so a sync-side blip never re-appends frames that already landed.

use std::time::Duration;

use tcudb_types::TcuResult;

/// Bounded exponential backoff for transient faults.
///
/// `attempts` counts total tries (first try included), so `attempts: 1`
/// disables retrying.  Delays double from `base_delay`, capped at
/// `max_delay`; a zero `base_delay` retries immediately (used by tests
/// and the deterministic chaos harness).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub attempts: u32,
    /// Sleep before the first retry; doubles each retry after that.
    pub base_delay: Duration,
    /// Upper bound on any single sleep.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(20),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: every error surfaces immediately.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// A policy for deterministic tests: `attempts` tries with no sleep.
    pub fn immediate(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            attempts,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// Run `op`, retrying transient failures with bounded exponential
    /// backoff.  Non-transient errors — and a transient error on the
    /// final attempt — are returned as-is.
    pub fn run<T>(&self, mut op: impl FnMut() -> TcuResult<T>) -> TcuResult<T> {
        let attempts = self.attempts.max(1);
        let mut delay = self.base_delay;
        let mut attempt = 1u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt < attempts => {
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    delay = (delay * 2).min(self.max_delay).max(self.base_delay);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcudb_types::TcuError;

    #[test]
    fn succeeds_after_transient_failures() {
        let mut failures = 2;
        let policy = RetryPolicy::immediate(4);
        let out = policy.run(|| {
            if failures > 0 {
                failures -= 1;
                Err(TcuError::IoTransient("blip".into()))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
    }

    #[test]
    fn exhausting_attempts_surfaces_the_transient_error() {
        let mut calls = 0u32;
        let policy = RetryPolicy::immediate(3);
        let out: TcuResult<()> = policy.run(|| {
            calls += 1;
            Err(TcuError::IoTransient("blip".into()))
        });
        assert!(matches!(out, Err(TcuError::IoTransient(_))));
        assert_eq!(calls, 3, "exactly `attempts` tries");
    }

    #[test]
    fn permanent_errors_are_never_retried() {
        let mut calls = 0u32;
        let policy = RetryPolicy::immediate(5);
        let out: TcuResult<()> = policy.run(|| {
            calls += 1;
            Err(TcuError::Io("disk on fire".into()))
        });
        assert!(matches!(out, Err(TcuError::Io(_))));
        assert_eq!(calls, 1);
    }

    #[test]
    fn none_policy_tries_exactly_once() {
        let mut calls = 0u32;
        let out: TcuResult<()> = RetryPolicy::none().run(|| {
            calls += 1;
            Err(TcuError::IoTransient("blip".into()))
        });
        assert!(out.is_err());
        assert_eq!(calls, 1);
    }
}
