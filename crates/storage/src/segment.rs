//! Immutable columnar segment files and the epoch manifest.
//!
//! A checkpoint seals the rows of each table into one or more *segment
//! files*: CRC-checksummed, dictionary-encoded (text columns, via
//! [`DictColumn`]) columnar images that are written once and never
//! modified.  A *manifest* maps one published catalog epoch to the
//! segment set that reproduces it plus the name of the WAL file that
//! continues from there — the on-disk counterpart of a
//! [`crate::CatalogSnapshot`].
//!
//! Because tables are append-only between checkpoints, a later
//! checkpoint usually reuses a table's existing segment files verbatim
//! and seals only the new tail rows into one additional segment;
//! recovery reassembles the table by concatenating its segments in
//! manifest order.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! segment:  "TSG1" | name | schema | row_count:u64 | col0 … colN | crc32:u32
//!   Int64/Float64 column: row_count × 8-byte LE values
//!   Text column:          dict_len:u64 | dict strings | row_count × u32 codes
//! manifest: "TMF1" | epoch:u64 | wal_file | n_tables:u64
//!           | (name | n_segments:u64 | segment file names)* | crc32:u32
//! ```
//!
//! Every decode error is a typed [`TcuError::Io`]; a file that fails its
//! CRC is treated by recovery as absent, never as a panic.

use tcudb_types::{DataType, TcuError, TcuResult, Value};

use crate::column::Column;
use crate::encoded::DictColumn;
use crate::schema::Schema;
use crate::table::Table;
use crate::wal::{crc32, put_str, put_u32, put_u64, Cursor};

const SEGMENT_MAGIC: &[u8; 4] = b"TSG1";
const MANIFEST_MAGIC: &[u8; 4] = b"TMF1";

// ---------------------------------------------------------------------------
// File naming
// ---------------------------------------------------------------------------

/// Manifest file name for an epoch (`manifest-000000000042`).
pub fn manifest_file_name(epoch: u64) -> String {
    format!("manifest-{epoch:012}")
}

/// WAL file name for the log that continues from `epoch`
/// (`wal-000000000042.log`).
pub fn wal_file_name(epoch: u64) -> String {
    format!("wal-{epoch:012}.log")
}

/// Segment file name: sealed at `epoch`, `idx`-th segment of that
/// checkpoint (`seg-000000000042-000007.tsg`).
pub fn segment_file_name(epoch: u64, idx: u64) -> String {
    format!("seg-{epoch:012}-{idx:06}.tsg")
}

/// The epoch of a manifest file name, if it is one.
pub fn parse_manifest_epoch(name: &str) -> Option<u64> {
    name.strip_prefix("manifest-")?.parse().ok()
}

/// True for WAL file names produced by [`wal_file_name`].
pub fn is_wal_file(name: &str) -> bool {
    name.starts_with("wal-") && name.ends_with(".log")
}

/// True for segment file names produced by [`segment_file_name`].
pub fn is_segment_file(name: &str) -> bool {
    name.starts_with("seg-") && name.ends_with(".tsg")
}

// ---------------------------------------------------------------------------
// Segment encode / decode
// ---------------------------------------------------------------------------

fn corrupt(what: &str) -> TcuError {
    TcuError::Io(format!("corrupt segment: {what}"))
}

/// Encode rows `start_row..` of `table` into a segment image.
///
/// `start_row == 0` seals the whole table; a positive `start_row` seals
/// only the tail a previous checkpoint has not yet covered.
pub fn encode_segment(table: &Table, start_row: usize) -> TcuResult<Vec<u8>> {
    let rows = table.num_rows();
    if start_row > rows {
        return Err(TcuError::InvalidArgument(format!(
            "segment start row {start_row} past end of table ({rows} rows)"
        )));
    }
    let count = rows - start_row;
    let mut out = Vec::new();
    out.extend_from_slice(SEGMENT_MAGIC);
    put_str(&mut out, table.name());
    crate::wal::put_schema(&mut out, table.schema());
    put_u64(&mut out, count as u64);
    for col in table.columns() {
        match col {
            Column::Int64(v) => {
                let tail = v.get(start_row..).unwrap_or(&[]);
                for &x in tail {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            Column::Float64(v) => {
                let tail = v.get(start_row..).unwrap_or(&[]);
                for &x in tail {
                    out.extend_from_slice(&x.to_bits().to_le_bytes());
                }
            }
            Column::Text(v) => {
                let tail = v.get(start_row..).unwrap_or(&[]);
                let values: Vec<Value> = tail.iter().map(|s| Value::Text(s.clone())).collect();
                let dict = DictColumn::from_values(&values);
                put_u64(&mut out, dict.dict_len() as u64);
                for value in dict.values() {
                    match value {
                        Value::Text(s) => put_str(&mut out, s),
                        other => {
                            return Err(TcuError::InvalidArgument(format!(
                                "text column dictionary holds non-text value {other:?}"
                            )))
                        }
                    }
                }
                for &code in dict.codes() {
                    put_u32(&mut out, code);
                }
            }
        }
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    Ok(out)
}

/// A decoded segment: one table's (partial) rows.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedSegment {
    /// Table name as sealed.
    pub name: String,
    /// The table's schema at seal time.
    pub schema: Schema,
    /// One column per schema entry, `rows` long.
    pub columns: Vec<Column>,
    /// Row count of this segment.
    pub rows: usize,
}

/// Decode and CRC-verify a segment image.
pub fn decode_segment(bytes: &[u8]) -> TcuResult<DecodedSegment> {
    let body = verify_crc_trailer(bytes, "segment")?;
    let mut c = Cursor::new(body);
    if c.take(4)? != SEGMENT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let name = c.str()?;
    let schema = c.schema()?;
    let rows = c.u64()?;
    if rows > body.len() as u64 {
        return Err(corrupt("row count exceeds file"));
    }
    let rows = rows as usize;
    let mut columns = Vec::with_capacity(schema.len());
    for def in schema.columns() {
        let col = match def.data_type {
            DataType::Int64 => {
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(c.i64()?);
                }
                Column::Int64(v)
            }
            DataType::Float64 => {
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(c.f64()?);
                }
                Column::Float64(v)
            }
            DataType::Text => {
                let dict_len = c.u64()?;
                if dict_len > body.len() as u64 {
                    return Err(corrupt("dictionary length exceeds file"));
                }
                let mut dict = Vec::with_capacity(dict_len as usize);
                for _ in 0..dict_len {
                    dict.push(c.str()?);
                }
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    let code = c.u32()? as usize;
                    let s = dict
                        .get(code)
                        .ok_or_else(|| corrupt("dictionary code out of range"))?;
                    v.push(s.clone());
                }
                Column::Text(v)
            }
        };
        columns.push(col);
    }
    if !c.is_done() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(DecodedSegment {
        name,
        schema,
        columns,
        rows,
    })
}

/// Append `tail`'s rows onto `base`'s columns (segment concatenation
/// during recovery).  Schemas must match.
pub fn concat_segment(base: &mut DecodedSegment, tail: DecodedSegment) -> TcuResult<()> {
    if base.schema != tail.schema || base.name != tail.name {
        return Err(corrupt("segment chain mismatch (schema or name differs)"));
    }
    for (dst, src) in base.columns.iter_mut().zip(tail.columns) {
        match (dst, src) {
            (Column::Int64(d), Column::Int64(s)) => d.extend(s),
            (Column::Float64(d), Column::Float64(s)) => d.extend(s),
            (Column::Text(d), Column::Text(s)) => d.extend(s),
            _ => return Err(corrupt("segment chain mismatch (column type differs)")),
        }
    }
    base.rows += tail.rows;
    Ok(())
}

/// Build the recovered [`Table`] from a decoded segment chain.
pub fn table_from_segment(seg: DecodedSegment) -> TcuResult<Table> {
    Table::from_columns(seg.name.clone(), seg.schema, seg.columns)
}

/// True when the first `rows` rows of `longer` equal `base`'s columns —
/// i.e. `longer` extends the sealed image and only its tail needs
/// sealing.  Schemas must already be known equal.
pub fn is_prefix_of(base: &Table, longer: &Table) -> bool {
    let rows = base.num_rows();
    if longer.num_rows() < rows || base.schema() != longer.schema() {
        return false;
    }
    base.columns()
        .iter()
        .zip(longer.columns())
        .all(|(b, l)| match (b, l) {
            (Column::Int64(bv), Column::Int64(lv)) => lv.get(..rows) == Some(&bv[..]),
            (Column::Float64(bv), Column::Float64(lv)) => {
                // Bit-exact comparison (NaN-safe): recovered floats must
                // reproduce the sealed image exactly.
                lv.get(..rows).is_some_and(|prefix| {
                    prefix
                        .iter()
                        .zip(bv)
                        .all(|(a, b)| a.to_bits() == b.to_bits())
                })
            }
            (Column::Text(bv), Column::Text(lv)) => lv.get(..rows) == Some(&bv[..]),
            _ => false,
        })
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// One table's segment chain inside a [`Manifest`].
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestTable {
    /// Lower-cased table name.
    pub name: String,
    /// Segment file names, in concatenation order.
    pub segments: Vec<String>,
}

/// The durable description of one published epoch: which segment files
/// reproduce the catalog and which WAL file continues from it.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// The catalog epoch this manifest seals.
    pub epoch: u64,
    /// The WAL file holding commits after this epoch.
    pub wal_file: String,
    /// Every table and its segment chain.
    pub tables: Vec<ManifestTable>,
}

impl Manifest {
    /// Encode with magic and CRC trailer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MANIFEST_MAGIC);
        put_u64(&mut out, self.epoch);
        put_str(&mut out, &self.wal_file);
        put_u64(&mut out, self.tables.len() as u64);
        for t in &self.tables {
            put_str(&mut out, &t.name);
            put_u64(&mut out, t.segments.len() as u64);
            for s in &t.segments {
                put_str(&mut out, s);
            }
        }
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Decode and CRC-verify a manifest image.
    pub fn decode(bytes: &[u8]) -> TcuResult<Manifest> {
        let body = verify_crc_trailer(bytes, "manifest")?;
        let mut c = Cursor::new(body);
        if c.take(4)? != MANIFEST_MAGIC {
            return Err(corrupt("bad manifest magic"));
        }
        let epoch = c.u64()?;
        let wal_file = c.str()?;
        let n_tables = c.u64()?;
        if n_tables > body.len() as u64 {
            return Err(corrupt("table count exceeds file"));
        }
        let mut tables = Vec::with_capacity(n_tables as usize);
        for _ in 0..n_tables {
            let name = c.str()?;
            let n_segments = c.u64()?;
            if n_segments > body.len() as u64 {
                return Err(corrupt("segment count exceeds file"));
            }
            let mut segments = Vec::with_capacity(n_segments as usize);
            for _ in 0..n_segments {
                segments.push(c.str()?);
            }
            tables.push(ManifestTable { name, segments });
        }
        if !c.is_done() {
            return Err(corrupt("trailing bytes after manifest"));
        }
        Ok(Manifest {
            epoch,
            wal_file,
            tables,
        })
    }

    /// Every segment file any table references.
    pub fn segment_files(&self) -> impl Iterator<Item = &str> {
        self.tables
            .iter()
            .flat_map(|t| t.segments.iter().map(|s| s.as_str()))
    }
}

/// Split `bytes` into body and CRC trailer, verifying the checksum.
fn verify_crc_trailer<'a>(bytes: &'a [u8], what: &str) -> TcuResult<&'a [u8]> {
    if bytes.len() < 4 {
        return Err(corrupt(&format!("{what} shorter than its CRC trailer")));
    }
    let split = bytes.len() - 4;
    let body = bytes.get(..split).unwrap_or(&[]);
    let trailer = bytes.get(split..).unwrap_or(&[]);
    let mut le = [0u8; 4];
    le.copy_from_slice(trailer);
    if crc32(body) != u32::from_le_bytes(le) {
        return Err(corrupt(&format!("{what} CRC mismatch")));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use tcudb_types::DataType;

    fn sample_table() -> Table {
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int64),
            ("score", DataType::Float64),
            ("tag", DataType::Text),
        ]);
        let mut t = Table::new("events", schema);
        for i in 0..10 {
            t.push_row(vec![
                Value::Int(i),
                Value::Float(i as f64 + 0.5),
                Value::Text(if i % 3 == 0 {
                    "fizz".into()
                } else {
                    "x".into()
                }),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn segment_round_trips_whole_table() {
        let t = sample_table();
        let bytes = encode_segment(&t, 0).unwrap();
        let seg = decode_segment(&bytes).unwrap();
        assert_eq!(seg.name, "events");
        assert_eq!(seg.rows, 10);
        let recovered = table_from_segment(seg).unwrap();
        assert_eq!(recovered.columns(), t.columns());
        assert_eq!(recovered.schema(), t.schema());
    }

    #[test]
    fn tail_segment_concatenates_back() {
        let t = sample_table();
        let head = decode_segment(&encode_segment(&t, 0).unwrap()).unwrap();
        // Pretend the first checkpoint sealed 6 rows; re-encode head over a
        // truncated copy and the tail from row 6.
        let mut short = Table::new("events", t.schema().clone());
        for row in t.rows_iter().take(6) {
            short.push_row(row).unwrap();
        }
        let mut base = decode_segment(&encode_segment(&short, 0).unwrap()).unwrap();
        let tail = decode_segment(&encode_segment(&t, 6).unwrap()).unwrap();
        assert_eq!(tail.rows, 4);
        concat_segment(&mut base, tail).unwrap();
        assert_eq!(base, head);
    }

    #[test]
    fn bit_flip_fails_the_crc() {
        let t = sample_table();
        let mut bytes = encode_segment(&t, 0).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        assert!(decode_segment(&bytes).is_err());
    }

    #[test]
    fn truncated_segment_is_an_error_not_a_panic() {
        let t = sample_table();
        let bytes = encode_segment(&t, 0).unwrap();
        for cut in [0, 3, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_segment(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn prefix_detection() {
        let t = sample_table();
        let mut short = Table::new("events", t.schema().clone());
        for row in t.rows_iter().take(6) {
            short.push_row(row).unwrap();
        }
        assert!(is_prefix_of(&short, &t));
        assert!(
            !is_prefix_of(&t, &short),
            "longer is not a prefix of shorter"
        );
        let mut diverged = Table::new("events", t.schema().clone());
        for (i, mut row) in t.rows_iter().take(6).enumerate() {
            if i == 3 {
                row[0] = Value::Int(999);
            }
            diverged.push_row(row).unwrap();
        }
        assert!(!is_prefix_of(&diverged, &t));
    }

    #[test]
    fn manifest_round_trips_and_rejects_damage() {
        let m = Manifest {
            epoch: 7,
            wal_file: wal_file_name(7),
            tables: vec![
                ManifestTable {
                    name: "a".into(),
                    segments: vec![segment_file_name(3, 0), segment_file_name(7, 0)],
                },
                ManifestTable {
                    name: "b".into(),
                    segments: vec![],
                },
            ],
        };
        let bytes = m.encode();
        assert_eq!(Manifest::decode(&bytes).unwrap(), m);
        assert_eq!(m.segment_files().count(), 2);
        let mut bad = bytes.clone();
        bad[10] ^= 0x80;
        assert!(Manifest::decode(&bad).is_err());
        assert!(Manifest::decode(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn file_names_parse_back() {
        assert_eq!(parse_manifest_epoch(&manifest_file_name(42)), Some(42));
        assert_eq!(parse_manifest_epoch("wal-000000000001.log"), None);
        assert!(is_wal_file(&wal_file_name(1)));
        assert!(is_segment_file(&segment_file_name(1, 2)));
        assert!(!is_segment_file(&manifest_file_name(1)));
    }

    #[test]
    fn empty_table_seals_and_recovers() {
        let t = Table::new(
            "empty",
            Schema::from_pairs(&[("x", DataType::Int64), ("s", DataType::Text)]),
        );
        let seg = decode_segment(&encode_segment(&t, 0).unwrap()).unwrap();
        let recovered = table_from_segment(seg).unwrap();
        assert_eq!(recovered.num_rows(), 0);
        assert_eq!(recovered.schema(), t.schema());
    }
}
