//! Typed columnar storage.

use tcudb_types::{DataType, TcuError, TcuResult, Value};

/// A single column of values, stored contiguously by type.
///
/// Text columns keep owned `String`s; the engines dictionary-encode join
/// keys on the fly when they build matrices, which mirrors how the paper's
/// code generator maps string domains onto matrix dimensions.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers.
    Int64(Vec<i64>),
    /// 64-bit floats.
    Float64(Vec<f64>),
    /// UTF-8 strings.
    Text(Vec<String>),
}

impl Column {
    /// Create an empty column of the given type.
    pub fn empty(data_type: DataType) -> Column {
        match data_type {
            DataType::Int64 => Column::Int64(Vec::new()),
            DataType::Float64 => Column::Float64(Vec::new()),
            DataType::Text => Column::Text(Vec::new()),
        }
    }

    /// Create an empty column with reserved capacity.
    pub fn with_capacity(data_type: DataType, capacity: usize) -> Column {
        match data_type {
            DataType::Int64 => Column::Int64(Vec::with_capacity(capacity)),
            DataType::Float64 => Column::Float64(Vec::with_capacity(capacity)),
            DataType::Text => Column::Text(Vec::with_capacity(capacity)),
        }
    }

    /// The logical data type of this column.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int64(_) => DataType::Int64,
            Column::Float64(_) => DataType::Float64,
            Column::Text(_) => DataType::Text,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64(v) => v.len(),
            Column::Float64(v) => v.len(),
            Column::Text(v) => v.len(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read one value.
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Int64(v) => Value::Int(v[row]),
            Column::Float64(v) => Value::Float(v[row]),
            Column::Text(v) => Value::Text(v[row].clone()),
        }
    }

    /// Append one value, coercing numerics where lossless.
    pub fn push(&mut self, value: Value) -> TcuResult<()> {
        match (self, value) {
            (Column::Int64(v), Value::Int(x)) => v.push(x),
            (Column::Int64(v), Value::Float(x)) if x.fract() == 0.0 => v.push(x as i64),
            (Column::Float64(v), Value::Float(x)) => v.push(x),
            (Column::Float64(v), Value::Int(x)) => v.push(x as f64),
            (Column::Text(v), Value::Text(x)) => v.push(x),
            (col, val) => {
                return Err(TcuError::InvalidArgument(format!(
                    "cannot push {val:?} into {:?} column",
                    col.data_type()
                )))
            }
        }
        Ok(())
    }

    /// True when [`Column::push`] would accept `value` — the same
    /// coercion rules, without mutating anything.  Batch ingest uses
    /// this to validate a whole batch before touching the column.
    pub fn can_push(&self, value: &Value) -> bool {
        matches!(
            (self, value),
            (Column::Int64(_), Value::Int(_))
                | (Column::Float64(_), Value::Float(_))
                | (Column::Float64(_), Value::Int(_))
                | (Column::Text(_), Value::Text(_))
        ) || matches!((self, value), (Column::Int64(_), Value::Float(x)) if x.fract() == 0.0)
    }

    /// View as an `i64` slice (errors for non-integer columns).
    pub fn as_i64(&self) -> TcuResult<&[i64]> {
        match self {
            Column::Int64(v) => Ok(v),
            other => Err(TcuError::InvalidArgument(format!(
                "expected INT column, found {:?}",
                other.data_type()
            ))),
        }
    }

    /// View as an `f64` slice (errors for non-float columns).
    pub fn as_f64(&self) -> TcuResult<&[f64]> {
        match self {
            Column::Float64(v) => Ok(v),
            other => Err(TcuError::InvalidArgument(format!(
                "expected FLOAT column, found {:?}",
                other.data_type()
            ))),
        }
    }

    /// View as a `String` slice (errors for non-text columns).
    pub fn as_text(&self) -> TcuResult<&[String]> {
        match self {
            Column::Text(v) => Ok(v),
            other => Err(TcuError::InvalidArgument(format!(
                "expected TEXT column, found {:?}",
                other.data_type()
            ))),
        }
    }

    /// The row's value as `f64` regardless of numeric storage type.
    /// Text rows return an error.
    pub fn numeric(&self, row: usize) -> TcuResult<f64> {
        match self {
            Column::Int64(v) => Ok(v[row] as f64),
            Column::Float64(v) => Ok(v[row]),
            Column::Text(_) => Err(TcuError::InvalidArgument(
                "text column has no numeric value".into(),
            )),
        }
    }

    /// Collect all values as `f64` (numeric columns only).
    pub fn to_f64_vec(&self) -> TcuResult<Vec<f64>> {
        match self {
            Column::Int64(v) => Ok(v.iter().map(|&x| x as f64).collect()),
            Column::Float64(v) => Ok(v.clone()),
            Column::Text(_) => Err(TcuError::InvalidArgument(
                "text column cannot be converted to f64".into(),
            )),
        }
    }

    /// Build a new column keeping only the rows whose indices are in
    /// `rows`, in that order (gather).
    pub fn gather(&self, rows: &[usize]) -> Column {
        match self {
            Column::Int64(v) => Column::Int64(rows.iter().map(|&i| v[i]).collect()),
            Column::Float64(v) => Column::Float64(rows.iter().map(|&i| v[i]).collect()),
            Column::Text(v) => Column::Text(rows.iter().map(|&i| v[i].clone()).collect()),
        }
    }

    /// [`Column::gather`] over `u32` row indices — the index width the
    /// executor's columnar tuple batches store.
    pub fn gather_u32(&self, rows: &[u32]) -> Column {
        match self {
            Column::Int64(v) => Column::Int64(rows.iter().map(|&i| v[i as usize]).collect()),
            Column::Float64(v) => Column::Float64(rows.iter().map(|&i| v[i as usize]).collect()),
            Column::Text(v) => Column::Text(rows.iter().map(|&i| v[i as usize].clone()).collect()),
        }
    }

    /// Approximate host-memory footprint in bytes (used by the
    /// data-movement cost model).
    pub fn byte_size(&self) -> usize {
        match self {
            Column::Int64(v) => v.len() * 8,
            Column::Float64(v) => v.len() * 8,
            Column::Text(v) => v.iter().map(|s| s.len() + 24).sum(),
        }
    }

    /// Construct from a vector of [`Value`]s, inferring the type from the
    /// first non-null value (NULLs are not stored; callers in this codebase
    /// never produce them for base tables).
    pub fn from_values(data_type: DataType, values: &[Value]) -> TcuResult<Column> {
        let mut col = Column::with_capacity(data_type, values.len());
        for v in values {
            col.push(v.clone())?;
        }
        Ok(col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_round_trip() {
        let mut c = Column::empty(DataType::Int64);
        c.push(Value::Int(1)).unwrap();
        c.push(Value::Float(2.0)).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.value(1), Value::Int(2));
        assert!(c.push(Value::Float(2.5)).is_err());
        assert!(c.push(Value::Text("x".into())).is_err());
    }

    #[test]
    fn can_push_mirrors_push_for_every_combination() {
        let values = [
            Value::Int(3),
            Value::Float(2.0),
            Value::Float(2.5),
            Value::Text("x".into()),
        ];
        for dt in [DataType::Int64, DataType::Float64, DataType::Text] {
            for v in &values {
                let mut c = Column::empty(dt);
                assert_eq!(c.can_push(v), c.push(v.clone()).is_ok(), "{dt:?} <- {v:?}");
            }
        }
    }

    #[test]
    fn float_column_accepts_ints() {
        let mut c = Column::empty(DataType::Float64);
        c.push(Value::Int(3)).unwrap();
        c.push(Value::Float(4.5)).unwrap();
        assert_eq!(c.as_f64().unwrap(), &[3.0, 4.5]);
    }

    #[test]
    fn text_column() {
        let mut c = Column::with_capacity(DataType::Text, 2);
        c.push(Value::from("a")).unwrap();
        c.push(Value::from("b")).unwrap();
        assert_eq!(c.as_text().unwrap(), &["a".to_string(), "b".to_string()]);
        assert!(c.as_i64().is_err());
        assert!(c.numeric(0).is_err());
    }

    #[test]
    fn gather_reorders_and_duplicates() {
        let c = Column::Int64(vec![10, 20, 30]);
        let g = c.gather(&[2, 0, 0]);
        assert_eq!(g, Column::Int64(vec![30, 10, 10]));
        assert_eq!(c.gather_u32(&[2, 0, 0]), g);
        let t = Column::Text(vec!["a".into(), "b".into()]);
        assert_eq!(t.gather_u32(&[1]), t.gather(&[1]));
    }

    #[test]
    fn numeric_and_to_f64() {
        let c = Column::Int64(vec![1, 2, 3]);
        assert_eq!(c.numeric(2).unwrap(), 3.0);
        assert_eq!(c.to_f64_vec().unwrap(), vec![1.0, 2.0, 3.0]);
        let t = Column::Text(vec!["x".into()]);
        assert!(t.to_f64_vec().is_err());
    }

    #[test]
    fn byte_size_estimates() {
        assert_eq!(Column::Int64(vec![0; 10]).byte_size(), 80);
        assert!(Column::Text(vec!["hello".into()]).byte_size() >= 5);
    }

    #[test]
    fn from_values_checks_types() {
        let vals = vec![Value::Int(1), Value::Int(2)];
        let col = Column::from_values(DataType::Int64, &vals).unwrap();
        assert_eq!(col.len(), 2);
        let bad = Column::from_values(DataType::Int64, &[Value::Text("x".into())]);
        assert!(bad.is_err());
    }
}
