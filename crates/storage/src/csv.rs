//! Minimal CSV import / export.
//!
//! Only what the examples and data generators need: comma-separated,
//! optional header row, no quoting of embedded commas (the synthetic
//! datasets never produce them).

use crate::column::Column;
use crate::schema::Schema;
use crate::table::Table;
use std::fs;
use std::path::Path;
use tcudb_types::{DataType, TcuError, TcuResult, Value};

/// Parse a CSV string into a table using the provided schema.
///
/// `has_header` skips the first line.  Numeric fields are parsed according
/// to the schema; parse failures are reported with the offending line
/// number.
pub fn parse_csv(name: &str, schema: &Schema, text: &str, has_header: bool) -> TcuResult<Table> {
    let mut table = Table::new(name, schema.clone());
    for (lineno, line) in text.lines().enumerate() {
        if has_header && lineno == 0 {
            continue;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != schema.len() {
            return Err(TcuError::Io(format!(
                "line {}: expected {} fields, found {}",
                lineno + 1,
                schema.len(),
                fields.len()
            )));
        }
        let mut row = Vec::with_capacity(fields.len());
        for (def, field) in schema.columns().iter().zip(fields) {
            let field = field.trim();
            let value = match def.data_type {
                DataType::Int64 => Value::Int(field.parse::<i64>().map_err(|e| {
                    TcuError::Io(format!("line {}: bad int '{field}': {e}", lineno + 1))
                })?),
                DataType::Float64 => Value::Float(field.parse::<f64>().map_err(|e| {
                    TcuError::Io(format!("line {}: bad float '{field}': {e}", lineno + 1))
                })?),
                DataType::Text => Value::Text(field.to_string()),
            };
            row.push(value);
        }
        table.push_row(row)?;
    }
    Ok(table)
}

/// Read a CSV file from disk.
pub fn read_csv(
    path: impl AsRef<Path>,
    name: &str,
    schema: &Schema,
    has_header: bool,
) -> TcuResult<Table> {
    let text = fs::read_to_string(path)?;
    parse_csv(name, schema, &text, has_header)
}

/// Serialise a table to CSV text (with a header row).
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    out.push_str(&table.schema().names().join(","));
    out.push('\n');
    for i in 0..table.num_rows() {
        let row: Vec<String> = table.row(i).iter().map(|v| v.to_string()).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Write a table to a CSV file.
pub fn write_csv(table: &Table, path: impl AsRef<Path>) -> TcuResult<()> {
    fs::write(path, to_csv(table))?;
    Ok(())
}

/// Infer a schema from a CSV header + first data line: integer-looking
/// fields become INT, float-looking fields FLOAT, everything else TEXT.
pub fn infer_schema(text: &str) -> TcuResult<Schema> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| TcuError::Io("empty CSV".into()))?;
    let first = lines
        .next()
        .ok_or_else(|| TcuError::Io("CSV has no data rows".into()))?;
    let names: Vec<&str> = header.split(',').map(|s| s.trim()).collect();
    let samples: Vec<&str> = first.split(',').map(|s| s.trim()).collect();
    if names.len() != samples.len() {
        return Err(TcuError::Io("header/data field count mismatch".into()));
    }
    let mut schema = Schema::default();
    for (name, sample) in names.iter().zip(samples) {
        let dt = if sample.parse::<i64>().is_ok() {
            DataType::Int64
        } else if sample.parse::<f64>().is_ok() {
            DataType::Float64
        } else {
            DataType::Text
        };
        schema.push(crate::schema::ColumnDef::new(*name, dt));
    }
    Ok(schema)
}

/// Re-export internal column type for doctests convenience.
pub use crate::column::Column as CsvColumn;

#[allow(unused_imports)]
use Column as _;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_serialise_round_trip() {
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int64),
            ("score", DataType::Float64),
            ("name", DataType::Text),
        ]);
        let text = "id,score,name\n1,0.5,alice\n2,1.5,bob\n";
        let t = parse_csv("people", &schema, text, true).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.row(1)[2], Value::from("bob"));
        let back = to_csv(&t);
        let t2 = parse_csv("people2", &schema, &back, true).unwrap();
        assert_eq!(t2.num_rows(), 2);
        assert_eq!(t2.row(0), t.row(0));
    }

    #[test]
    fn parse_reports_bad_fields() {
        let schema = Schema::from_pairs(&[("id", DataType::Int64)]);
        let err = parse_csv("t", &schema, "abc\n", false).unwrap_err();
        assert!(err.to_string().contains("bad int"));
        let err2 = parse_csv("t", &schema, "1,2\n", false).unwrap_err();
        assert!(err2.to_string().contains("expected 1 fields"));
    }

    #[test]
    fn parse_reports_bad_floats_with_line_numbers() {
        let schema = Schema::from_pairs(&[("v", DataType::Float64)]);
        // The bad field sits on (1-based) line 3: the message must name
        // that line, not just "a parse failed somewhere".
        let err = parse_csv("t", &schema, "1.0\n2.0\nnot-a-float\n", false).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("bad float"), "message: {msg}");
        assert!(msg.contains("line 3"), "message: {msg}");
        assert!(msg.contains("not-a-float"), "message: {msg}");
    }

    #[test]
    fn parse_reports_field_count_with_line_numbers() {
        let schema = Schema::from_pairs(&[("a", DataType::Int64), ("b", DataType::Int64)]);
        let err = parse_csv("t", &schema, "1,2\n3\n", false).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "message: {msg}");
        assert!(msg.contains("expected 2 fields, found 1"), "message: {msg}");
    }

    #[test]
    fn read_csv_missing_file_is_a_typed_error() {
        let schema = Schema::from_pairs(&[("id", DataType::Int64)]);
        let path = std::env::temp_dir().join("tcudb_csv_test_definitely_missing.csv");
        std::fs::remove_file(&path).ok();
        let err = read_csv(&path, "t", &schema, false).unwrap_err();
        // An I/O failure surfaces as a TcuError value, never a panic.
        assert!(matches!(err, TcuError::Io(_)), "got: {err:?}");
    }

    #[test]
    fn infer_schema_failure_modes_are_distinct() {
        let empty = infer_schema("").unwrap_err();
        assert!(empty.to_string().contains("empty CSV"));
        let headers_only = infer_schema("a,b\n").unwrap_err();
        assert!(headers_only.to_string().contains("no data rows"));
        let mismatch = infer_schema("a,b\n1\n").unwrap_err();
        assert!(mismatch.to_string().contains("field count mismatch"));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let schema = Schema::from_pairs(&[("id", DataType::Int64)]);
        let t = parse_csv("t", &schema, "1\n\n2\n\n", false).unwrap();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn schema_inference() {
        let text = "a,b,c\n1,2.5,hello\n";
        let s = infer_schema(text).unwrap();
        assert_eq!(s.column(0).data_type, DataType::Int64);
        assert_eq!(s.column(1).data_type, DataType::Float64);
        assert_eq!(s.column(2).data_type, DataType::Text);
        assert!(infer_schema("").is_err());
        assert!(infer_schema("a,b\n").is_err());
    }

    #[test]
    fn file_round_trip() {
        let schema = Schema::from_pairs(&[("id", DataType::Int64), ("v", DataType::Float64)]);
        let mut t = Table::new("disk", schema.clone());
        t.push_row(vec![Value::Int(1), Value::Float(2.0)]).unwrap();
        let dir = std::env::temp_dir().join("tcudb_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_csv(&t, &path).unwrap();
        let back = read_csv(&path, "disk", &schema, true).unwrap();
        assert_eq!(back.num_rows(), 1);
        std::fs::remove_file(path).ok();
    }
}
