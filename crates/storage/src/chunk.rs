//! Partitioned column chunks and per-chunk min/max **zone maps**.
//!
//! Every [`Table`](crate::Table) is logically partitioned into fixed-size
//! row chunks of [`DEFAULT_CHUNK_ROWS`] rows (the same granularity the
//! durability layer uses when it slices large appends into WAL records and
//! seals columnar segments, so a sealed segment maps 1:1 onto a chunk).
//! For each `(column, chunk)` pair the zone map records the minimum and
//! maximum value in that chunk; a scan constrained by a range predicate —
//! a `FilterAtom` in the executor, or a semi-join key range pushed down
//! from an already-filtered join partner — can skip every chunk whose
//! bounds cannot intersect the constraint.
//!
//! Zone maps are *derived* state, exactly like the dictionary encodings in
//! [`EncodingCache`](crate::EncodingCache): built lazily per column,
//! cached on the table behind a mutex, excluded from table equality, and
//! extended **incrementally** by `push_row`/`append_rows` so the mutable
//! tail of an ingesting table never forces a full rebuild.
//!
//! Bounds are stored as `f64`. To stay *sound* for pruning (a pruned
//! chunk must be provably empty under the constraint) a chunk's entry is
//! recorded as unprunable (`None`) whenever exact `f64` bounds cannot be
//! guaranteed: text columns, chunks containing a NaN, and integers outside
//! the ±2⁵² range where `i64 → f64` conversion rounds.

use crate::column::Column;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use tcudb_types::sync::locked;
use tcudb_types::Value;

/// Default rows per chunk (64Ki) — matches the durability layer's append
/// slicing so sealed segments and zone-map chunks share boundaries.
pub const DEFAULT_CHUNK_ROWS: usize = 65_536;

/// Largest magnitude an `i64` may have while converting to `f64` exactly.
const EXACT_I64: i64 = 1 << 52;

/// Number of chunks covering `rows` rows at `chunk_rows` rows per chunk.
pub fn chunk_count(rows: usize, chunk_rows: usize) -> usize {
    rows.div_ceil(chunk_rows.max(1))
}

/// Half-open row range `[start, end)` of chunk `k`.
pub fn chunk_span(rows: usize, chunk_rows: usize, k: usize) -> (usize, usize) {
    let cr = chunk_rows.max(1);
    let start = k * cr;
    (start.min(rows), ((k + 1) * cr).min(rows))
}

/// Inclusive min/max bounds of one chunk of one column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneEntry {
    /// Smallest value in the chunk.
    pub min: f64,
    /// Largest value in the chunk.
    pub max: f64,
}

impl ZoneEntry {
    /// True if the chunk may contain a value in the inclusive `[lo, hi]`
    /// range (i.e. the zone intersects the constraint interval).
    pub fn may_intersect(&self, lo: f64, hi: f64) -> bool {
        self.max >= lo && self.min <= hi
    }
}

/// The zone map of one column: per-chunk min/max bounds.
///
/// `None` entries are **unprunable** — the chunk must always be scanned.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnZones {
    chunk_rows: usize,
    rows: usize,
    zones: Vec<Option<ZoneEntry>>,
}

/// Fold `x` into an optional zone entry (NaN poisons the entry).
fn fold(entry: &mut Option<ZoneEntry>, first: bool, x: f64) {
    if x.is_nan() {
        *entry = None;
        return;
    }
    if first {
        *entry = Some(ZoneEntry { min: x, max: x });
    } else if let Some(z) = entry {
        z.min = z.min.min(x);
        z.max = z.max.max(x);
    }
}

/// Exact `f64` image of an integer value, or `None` when it would round.
/// Public because scan pruning must apply the same soundness rule when it
/// derives constraint intervals from integer keys and literals.
pub fn int_bound(v: i64) -> Option<f64> {
    if (-EXACT_I64..=EXACT_I64).contains(&v) {
        Some(v as f64)
    } else {
        None
    }
}

impl ColumnZones {
    /// Build the zone map of `col` at `chunk_rows` rows per chunk.
    pub fn build(col: &Column, chunk_rows: usize) -> ColumnZones {
        let cr = chunk_rows.max(1);
        let rows = col.len();
        let n = chunk_count(rows, cr);
        let mut zones = Vec::with_capacity(n);
        for k in 0..n {
            let (start, end) = chunk_span(rows, cr, k);
            let mut entry = None;
            match col {
                Column::Int64(data) => {
                    for (i, v) in data[start..end].iter().enumerate() {
                        match int_bound(*v) {
                            Some(x) => fold(&mut entry, i == 0, x),
                            None => {
                                entry = None;
                                break;
                            }
                        }
                        if entry.is_none() {
                            break;
                        }
                    }
                }
                Column::Float64(data) => {
                    for (i, v) in data[start..end].iter().enumerate() {
                        fold(&mut entry, i == 0, *v);
                        if entry.is_none() {
                            break;
                        }
                    }
                }
                // Text chunks carry no numeric bounds.
                Column::Text(_) => {}
            }
            zones.push(entry);
        }
        ColumnZones {
            chunk_rows: cr,
            rows,
            zones,
        }
    }

    /// Rows per chunk this map was built at.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Rows covered by the map.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.zones.len()
    }

    /// Bounds of chunk `k`; `None` means the chunk is unprunable.
    pub fn bounds(&self, k: usize) -> Option<ZoneEntry> {
        self.zones.get(k).copied().flatten()
    }

    /// True if chunk `k` may contain a value in inclusive `[lo, hi]`.
    /// Unprunable and out-of-range chunks conservatively return true.
    pub fn may_intersect(&self, k: usize, lo: f64, hi: f64) -> bool {
        match self.zones.get(k) {
            Some(Some(z)) => z.may_intersect(lo, hi),
            _ => true,
        }
    }

    /// Extend the map with one appended value — the incremental-tail path
    /// `push_row` uses to keep warm zone maps correct without a rebuild.
    fn push_value(&mut self, v: &Value) {
        let k = self.rows / self.chunk_rows;
        let first = self.rows.is_multiple_of(self.chunk_rows);
        if first {
            debug_assert_eq!(k, self.zones.len(), "zone map lost sync with rows");
            self.zones.push(None);
        }
        let entry = &mut self.zones[k];
        match v {
            Value::Int(i) => match int_bound(*i) {
                Some(x) => fold(entry, first, x),
                None => *entry = None,
            },
            Value::Float(x) => fold(entry, first, *x),
            // Text (and anything non-numeric) keeps the chunk unprunable.
            _ => *entry = None,
        }
        self.rows += 1;
    }
}

/// How many of `total` chunks a scan constrained by `(zones, lo, hi)`
/// pairs must still read. Used both by the executor's pruning pass and by
/// admission control's working-set pricing.
pub fn kept_chunks(total: usize, constraints: &[(&ColumnZones, f64, f64)]) -> usize {
    (0..total)
        .filter(|&k| {
            constraints
                .iter()
                .all(|(z, lo, hi)| z.may_intersect(k, *lo, *hi))
        })
        .count()
}

#[derive(Default)]
struct ZoneState {
    zones: HashMap<usize, Arc<ColumnZones>>,
    builds: u64,
}

/// Per-table cache of [`ColumnZones`], keyed by column index, plus the
/// table's chunking granularity. Mirrors [`EncodingCache`](crate::EncodingCache):
/// lazily built, copy-on-write extended on ingest, excluded from equality.
pub struct ZoneCache {
    chunk_rows: usize,
    // lint: leaf-lock held only to build or clone-extend the zone vectors
    // from plain column data; never calls out to code that takes locks
    inner: Mutex<ZoneState>,
}

impl ZoneCache {
    /// An empty cache at the given chunking granularity.
    pub fn new(chunk_rows: usize) -> ZoneCache {
        ZoneCache {
            chunk_rows: chunk_rows.max(1),
            inner: Mutex::new(ZoneState::default()),
        }
    }

    /// Rows per chunk.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Change the chunking granularity, discarding warm maps (they were
    /// built at the old boundaries).
    pub fn set_chunk_rows(&mut self, chunk_rows: usize) {
        self.chunk_rows = chunk_rows.max(1);
        let mut st = locked(&self.inner);
        st.zones.clear();
    }

    /// The zone map for column `idx`, building (and caching) on first use.
    pub fn get_or_build<F: FnOnce() -> ColumnZones>(
        &self,
        idx: usize,
        build: F,
    ) -> Arc<ColumnZones> {
        let mut st = locked(&self.inner);
        if let Some(z) = st.zones.get(&idx) {
            return Arc::clone(z);
        }
        let built = Arc::new(build());
        st.builds += 1;
        st.zones.insert(idx, Arc::clone(&built));
        built
    }

    /// Extend every *warm* zone map with the values of one appended row
    /// (copy-on-write: maps pinned by concurrent readers are unaffected).
    pub fn extend_with_row<F: Fn(usize) -> Value>(&self, value_at: F) {
        let mut st = locked(&self.inner);
        for (idx, z) in st.zones.iter_mut() {
            Arc::make_mut(z).push_value(&value_at(*idx));
        }
    }

    /// Number of warm (cached) column zone maps.
    pub fn len(&self) -> usize {
        // `.keys().count()` rather than a nested `.len()` call: the
        // lock-order lint resolves same-named method calls made while
        // `inner` is held as potential re-entry into this function.
        locked(&self.inner).zones.keys().count()
    }

    /// True if no zone map has been built yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many full builds the cache has performed — the regression hook
    /// proving ingest extends warm maps instead of rebuilding them.
    pub fn build_count(&self) -> u64 {
        locked(&self.inner).builds
    }
}

impl Clone for ZoneCache {
    fn clone(&self) -> Self {
        let st = locked(&self.inner);
        let zones = st.zones.iter().map(|(k, z)| (*k, Arc::clone(z))).collect();
        let builds = st.builds;
        drop(st);
        ZoneCache {
            chunk_rows: self.chunk_rows,
            inner: Mutex::new(ZoneState { zones, builds }),
        }
    }
}

impl PartialEq for ZoneCache {
    fn eq(&self, _other: &Self) -> bool {
        // Derived state: never affects table equality (chunking granularity
        // included — two tables with identical rows are equal regardless of
        // how they are partitioned).
        true
    }
}

impl fmt::Debug for ZoneCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ZoneCache({} rows/chunk, {} columns)",
            self.chunk_rows,
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zone_bounds_per_chunk() {
        let col = Column::Int64(vec![5, 1, 9, 100, 40, 60, 7]);
        let z = ColumnZones::build(&col, 3);
        assert_eq!(z.chunk_count(), 3);
        assert_eq!(z.bounds(0), Some(ZoneEntry { min: 1.0, max: 9.0 }));
        assert_eq!(
            z.bounds(1),
            Some(ZoneEntry {
                min: 40.0,
                max: 100.0
            })
        );
        assert_eq!(z.bounds(2), Some(ZoneEntry { min: 7.0, max: 7.0 }));
        assert!(z.may_intersect(0, 9.0, 20.0));
        assert!(!z.may_intersect(1, 0.0, 39.0));
        // Out-of-range chunks are conservatively scanned.
        assert!(z.may_intersect(99, 0.0, 0.0));
    }

    #[test]
    fn text_nan_and_huge_ints_are_unprunable() {
        let z = ColumnZones::build(&Column::Text(vec!["a".into(), "b".into()]), 8);
        assert_eq!(z.bounds(0), None);
        assert!(z.may_intersect(0, 1.0, 2.0));

        let z = ColumnZones::build(&Column::Float64(vec![1.0, f64::NAN, 3.0]), 8);
        assert_eq!(z.bounds(0), None);

        let z = ColumnZones::build(&Column::Int64(vec![1, i64::MAX]), 8);
        assert_eq!(z.bounds(0), None);
        // A clean chunk alongside a poisoned one still prunes.
        let z = ColumnZones::build(&Column::Int64(vec![i64::MAX, 5]), 1);
        assert_eq!(z.bounds(0), None);
        assert_eq!(z.bounds(1), Some(ZoneEntry { min: 5.0, max: 5.0 }));
    }

    #[test]
    fn incremental_push_matches_rebuild_across_boundaries() {
        let mut data = vec![3_i64, 8, 1];
        let col = Column::Int64(data.clone());
        let mut z = ColumnZones::build(&col, 2);
        for v in [9_i64, -4, 2, 7] {
            data.push(v);
            z.push_value(&Value::Int(v));
        }
        assert_eq!(z, ColumnZones::build(&Column::Int64(data), 2));
        assert_eq!(z.chunk_count(), 4);
    }

    #[test]
    fn kept_chunks_intersects_all_constraints() {
        let a = ColumnZones::build(&Column::Int64(vec![1, 2, 10, 20, 30, 40]), 2);
        let b = ColumnZones::build(&Column::Int64(vec![5, 5, 5, 5, 9, 9]), 2);
        // a-chunks: [1,2] [10,20] [30,40]; b-chunks: [5,5] [5,5] [9,9]
        assert_eq!(kept_chunks(3, &[(&a, 0.0, 15.0)]), 2);
        assert_eq!(kept_chunks(3, &[(&a, 0.0, 15.0), (&b, 9.0, 9.0)]), 0);
        assert_eq!(kept_chunks(3, &[]), 3);
    }

    #[test]
    fn cache_builds_once_and_extends_warm_maps() {
        let col = Column::Int64(vec![4, 6]);
        let cache = ZoneCache::new(2);
        let z = cache.get_or_build(0, || ColumnZones::build(&col, 2));
        assert_eq!(cache.build_count(), 1);
        let z2 = cache.get_or_build(0, || ColumnZones::build(&col, 2));
        assert!(Arc::ptr_eq(&z, &z2));
        cache.extend_with_row(|_| Value::Int(99));
        // Pinned map unaffected; warm map extended without a rebuild.
        assert_eq!(z.rows(), 2);
        let z3 = cache.get_or_build(0, || unreachable!("warm map must not rebuild"));
        assert_eq!(z3.rows(), 3);
        assert_eq!(
            z3.bounds(1),
            Some(ZoneEntry {
                min: 99.0,
                max: 99.0
            })
        );
        assert_eq!(cache.build_count(), 1);
    }
}
