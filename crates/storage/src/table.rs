//! Tables: a schema plus equal-length columns.

use crate::chunk::{self, ColumnZones, ZoneCache, DEFAULT_CHUNK_ROWS};
use crate::column::Column;
use crate::encoded::{DictColumn, EncodingCache};
use crate::schema::{ColumnDef, Schema};
use crate::stats::TableStats;
use std::sync::Arc;
use tcudb_types::{DataType, TcuError, TcuResult, Value};

/// An in-memory columnar table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
    /// Lazily built per-column dictionary encodings (derived state,
    /// excluded from equality).  Construction paths start cold; `clone`
    /// carries warm entries over, and `push_row` extends them in place
    /// (copy-on-write) so ingest never discards a warm dictionary.
    encodings: EncodingCache,
    /// Chunking granularity plus lazily built per-column zone maps
    /// (derived state, excluded from equality).  Maintained incrementally
    /// by `push_row` / `append_rows` the same way the encodings are.
    zones: ZoneCache,
}

impl Table {
    /// Create an empty table with the given schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Table {
        let columns = schema
            .columns()
            .iter()
            .map(|c| Column::empty(c.data_type))
            .collect();
        Table {
            name: name.into(),
            schema,
            columns,
            rows: 0,
            encodings: EncodingCache::default(),
            zones: ZoneCache::new(DEFAULT_CHUNK_ROWS),
        }
    }

    /// Create a table directly from columns (all must have equal length).
    pub fn from_columns(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<Column>,
    ) -> TcuResult<Table> {
        if schema.len() != columns.len() {
            return Err(TcuError::InvalidArgument(format!(
                "schema has {} columns but {} columns were provided",
                schema.len(),
                columns.len()
            )));
        }
        let rows = columns.first().map(|c| c.len()).unwrap_or(0);
        for (i, c) in columns.iter().enumerate() {
            if c.len() != rows {
                return Err(TcuError::InvalidArgument(format!(
                    "column {} has {} rows, expected {}",
                    schema.column(i).name,
                    c.len(),
                    rows
                )));
            }
            if c.data_type() != schema.column(i).data_type {
                return Err(TcuError::InvalidArgument(format!(
                    "column {} type mismatch",
                    schema.column(i).name
                )));
            }
        }
        Ok(Table {
            name: name.into(),
            schema,
            columns,
            rows,
            encodings: EncodingCache::default(),
            zones: ZoneCache::new(DEFAULT_CHUNK_ROWS),
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the table (used when registering intermediate results).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Column by index.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column by name (case-insensitive).
    pub fn column_by_name(&self, name: &str) -> TcuResult<&Column> {
        let idx = self.schema.require(name)?;
        Ok(&self.columns[idx])
    }

    /// All columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Append a row of values (one per column, in schema order).
    pub fn push_row(&mut self, row: Vec<Value>) -> TcuResult<()> {
        if row.len() != self.columns.len() {
            return Err(TcuError::InvalidArgument(format!(
                "row has {} values, table {} has {} columns",
                row.len(),
                self.name,
                self.columns.len()
            )));
        }
        // Validate every value before mutating anything: a mid-row type
        // error must not leave the columns at uneven lengths.
        for (i, (col, val)) in self.columns.iter().zip(&row).enumerate() {
            if !col.can_push(val) {
                return Err(TcuError::InvalidArgument(format!(
                    "cannot push {val:?} into {:?} column {} of table {}",
                    col.data_type(),
                    self.schema.column(i).name,
                    self.name
                )));
            }
        }
        for (col, val) in self.columns.iter_mut().zip(&row) {
            col.push(val.clone())?;
        }
        self.rows += 1;
        // Keep warm dictionary encodings valid by extending them with the
        // appended row (copy-on-write, so encodings pinned by concurrent
        // snapshots of the pre-ingest table are unaffected).  Before this,
        // every `push_row` discarded the whole cache and the next query
        // re-encoded every column from scratch.
        self.encodings.extend_with_row(|idx| row[idx].clone());
        self.zones.extend_with_row(|idx| row[idx].clone());
        Ok(())
    }

    /// Append a batch of rows atomically: the whole batch is validated
    /// (arity and value types) before any column is touched, so a
    /// rejected batch leaves the table — including its warm
    /// [`EncodingCache`] — exactly as it was.
    pub fn append_rows(&mut self, rows: Vec<Vec<Value>>) -> TcuResult<()> {
        for (r, row) in rows.iter().enumerate() {
            if row.len() != self.columns.len() {
                return Err(TcuError::InvalidArgument(format!(
                    "batch row {r} has {} values, table {} has {} columns",
                    row.len(),
                    self.name,
                    self.columns.len()
                )));
            }
            for (i, (col, val)) in self.columns.iter().zip(row).enumerate() {
                if !col.can_push(val) {
                    return Err(TcuError::InvalidArgument(format!(
                        "batch row {r}: cannot push {val:?} into {:?} column {} of table {}",
                        col.data_type(),
                        self.schema.column(i).name,
                        self.name
                    )));
                }
            }
        }
        for row in rows {
            for (col, val) in self.columns.iter_mut().zip(&row) {
                col.push(val.clone())?;
            }
            self.rows += 1;
            self.encodings.extend_with_row(|idx| row[idx].clone());
            self.zones.extend_with_row(|idx| row[idx].clone());
        }
        Ok(())
    }

    /// The dictionary encoding of column `idx`, built on first use and
    /// cached on the table — the "encode once per `(table, column)`" step
    /// of the encoded query data path.
    pub fn encoded_column(&self, idx: usize) -> Arc<DictColumn> {
        self.encodings
            .get_or_build(idx, || DictColumn::build(&self.columns[idx]))
    }

    /// Number of columns with a cached encoding (tests / telemetry).
    pub fn encoded_column_count(&self) -> usize {
        self.encodings.len()
    }

    /// Rows per chunk of this table's partitioning (zone-map and morsel
    /// granularity). Defaults to [`DEFAULT_CHUNK_ROWS`].
    pub fn chunk_rows(&self) -> usize {
        self.zones.chunk_rows()
    }

    /// Number of row chunks the table is partitioned into.
    pub fn chunk_count(&self) -> usize {
        chunk::chunk_count(self.rows, self.chunk_rows())
    }

    /// Override the chunking granularity (tests / benchmarks). Discards
    /// warm zone maps — they were built at the old boundaries.
    pub fn set_chunk_rows(&mut self, chunk_rows: usize) {
        self.zones.set_chunk_rows(chunk_rows);
    }

    /// The zone map of column `idx`, built on first use and cached on the
    /// table; ingest extends warm maps incrementally (no rebuild).
    pub fn zone_map(&self, idx: usize) -> Arc<ColumnZones> {
        let cr = self.chunk_rows();
        self.zones
            .get_or_build(idx, || ColumnZones::build(&self.columns[idx], cr))
    }

    /// How many full zone-map builds this table has performed (regression
    /// hook: appends must extend warm maps, not rebuild them).
    pub fn zone_map_build_count(&self) -> u64 {
        self.zones.build_count()
    }

    /// Read one full row.
    pub fn row(&self, idx: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(idx)).collect()
    }

    /// Iterate over all rows (materialising each as a `Vec<Value>`).
    pub fn rows_iter(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// Project to the named columns (in the given order).
    pub fn project(&self, names: &[&str]) -> TcuResult<Table> {
        let schema = self.schema.project(names)?;
        let mut cols = Vec::with_capacity(names.len());
        for n in names {
            let idx = self.schema.require(n)?;
            cols.push(self.columns[idx].clone());
        }
        Table::from_columns(format!("{}_proj", self.name), schema, cols)
    }

    /// Keep only the rows at the given indices (gather), preserving order.
    pub fn gather(&self, rows: &[usize]) -> Table {
        let cols = self.columns.iter().map(|c| c.gather(rows)).collect();
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns: cols,
            rows: rows.len(),
            encodings: EncodingCache::default(),
            zones: ZoneCache::new(self.zones.chunk_rows()),
        }
    }

    /// Filter rows with a predicate over the full row.
    pub fn filter<F: FnMut(&[Value]) -> bool>(&self, mut pred: F) -> Table {
        let mut keep = Vec::new();
        for i in 0..self.rows {
            let row = self.row(i);
            if pred(&row) {
                keep.push(i);
            }
        }
        self.gather(&keep)
    }

    /// Total host-memory footprint in bytes.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(|c| c.byte_size()).sum()
    }

    /// Bytes occupied by just the named columns — what a column store
    /// actually moves over PCIe for a query touching those columns.
    pub fn columns_byte_size(&self, names: &[&str]) -> TcuResult<usize> {
        let mut total = 0;
        for n in names {
            total += self.column_by_name(n)?.byte_size();
        }
        Ok(total)
    }

    /// Compute per-column statistics (min / max / distinct count), the
    /// metadata the TCUDB optimizer consults (§4.2.1).
    pub fn compute_stats(&self) -> TableStats {
        TableStats::compute(self)
    }

    /// Sort the table by a column (ascending or descending), returning a
    /// new table.  Used by ORDER BY and by the order-preserving matrix
    /// layout described in §3.4.
    pub fn sort_by_column(&self, column: &str, ascending: bool) -> TcuResult<Table> {
        let col = self.column_by_name(column)?;
        let mut idx: Vec<usize> = (0..self.rows).collect();
        idx.sort_by(|&a, &b| {
            let ord = col.value(a).sql_cmp(&col.value(b));
            if ascending {
                ord
            } else {
                ord.reverse()
            }
        });
        Ok(self.gather(&idx))
    }

    /// Pretty-print the first `limit` rows as an ASCII table (for examples
    /// and the benchmark harness).
    pub fn format_preview(&self, limit: usize) -> String {
        let mut out = String::new();
        let names: Vec<&str> = self.schema.names();
        out.push_str(&names.join(" | "));
        out.push('\n');
        out.push_str(&"-".repeat(names.join(" | ").len().max(8)));
        out.push('\n');
        for i in 0..self.rows.min(limit) {
            let row: Vec<String> = self.row(i).iter().map(|v| v.to_string()).collect();
            out.push_str(&row.join(" | "));
            out.push('\n');
        }
        if self.rows > limit {
            out.push_str(&format!("... ({} rows total)\n", self.rows));
        }
        out
    }

    /// Helper used by tests and generators: build a table from integer
    /// columns only.
    pub fn from_int_columns(name: &str, cols: &[(&str, Vec<i64>)]) -> TcuResult<Table> {
        let schema = Schema::new(
            cols.iter()
                .map(|(n, _)| ColumnDef::new(*n, DataType::Int64))
                .collect(),
        );
        let columns = cols.iter().map(|(_, v)| Column::Int64(v.clone())).collect();
        Table::from_columns(name, schema, columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int64),
            ("val", DataType::Float64),
            ("tag", DataType::Text),
        ]);
        let mut t = Table::new("sample", schema);
        t.push_row(vec![Value::Int(1), Value::Float(1.5), Value::from("a")])
            .unwrap();
        t.push_row(vec![Value::Int(2), Value::Float(2.5), Value::from("b")])
            .unwrap();
        t.push_row(vec![Value::Int(3), Value::Float(3.5), Value::from("c")])
            .unwrap();
        t
    }

    #[test]
    fn push_and_row_round_trip() {
        let t = sample();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 3);
        assert_eq!(
            t.row(1),
            vec![Value::Int(2), Value::Float(2.5), Value::from("b")]
        );
        assert!(!t.is_empty());
    }

    #[test]
    fn push_row_validates_arity() {
        let mut t = sample();
        assert!(t.push_row(vec![Value::Int(4)]).is_err());
        assert_eq!(t.num_rows(), 3);
    }

    #[test]
    fn from_columns_validates_lengths_and_types() {
        let schema = Schema::from_pairs(&[("a", DataType::Int64), ("b", DataType::Int64)]);
        let bad = Table::from_columns(
            "t",
            schema.clone(),
            vec![Column::Int64(vec![1]), Column::Int64(vec![1, 2])],
        );
        assert!(bad.is_err());
        let bad_type = Table::from_columns(
            "t",
            schema.clone(),
            vec![Column::Int64(vec![1]), Column::Float64(vec![1.0])],
        );
        assert!(bad_type.is_err());
        let bad_arity = Table::from_columns("t", schema, vec![Column::Int64(vec![1])]);
        assert!(bad_arity.is_err());
    }

    #[test]
    fn projection_and_gather() {
        let t = sample();
        let p = t.project(&["tag", "id"]).unwrap();
        assert_eq!(p.schema().names(), vec!["tag", "id"]);
        assert_eq!(p.row(0), vec![Value::from("a"), Value::Int(1)]);

        let g = t.gather(&[2, 0]);
        assert_eq!(g.num_rows(), 2);
        assert_eq!(g.row(0)[0], Value::Int(3));
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let t = sample();
        let f = t.filter(|row| row[0].as_i64().unwrap() >= 2);
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.row(0)[0], Value::Int(2));
    }

    #[test]
    fn sort_by_column_desc() {
        let t = sample();
        let s = t.sort_by_column("val", false).unwrap();
        assert_eq!(s.row(0)[0], Value::Int(3));
        let s2 = t.sort_by_column("tag", true).unwrap();
        assert_eq!(s2.row(0)[2], Value::from("a"));
    }

    #[test]
    fn byte_size_and_column_subset() {
        let t = sample();
        assert!(t.byte_size() > 0);
        let sub = t.columns_byte_size(&["id"]).unwrap();
        assert_eq!(sub, 3 * 8);
        assert!(t.columns_byte_size(&["ghost"]).is_err());
    }

    #[test]
    fn preview_formatting() {
        let t = sample();
        let p = t.format_preview(2);
        assert!(p.contains("id | val | tag"));
        assert!(p.contains("3 rows total"));
    }

    #[test]
    fn push_row_extends_warm_encodings_instead_of_wiping_them() {
        let mut t = sample();
        // Warm two of the three columns.
        let id_before = t.encoded_column(0);
        let _ = t.encoded_column(2);
        assert_eq!(t.encoded_column_count(), 2);

        t.push_row(vec![Value::Int(2), Value::Float(9.5), Value::from("d")])
            .unwrap();

        // The cache survived ingest (regression: push_row used to reset
        // the whole cache) and each warm entry now covers the new row.
        assert_eq!(t.encoded_column_count(), 2);
        let id_after = t.encoded_column(0);
        assert_eq!(id_after.len(), 4);
        assert_eq!(id_after.codes(), DictColumn::build(t.column(0)).codes());
        let tag_after = t.encoded_column(2);
        assert_eq!(tag_after.len(), 4);
        assert_eq!(tag_after.codes(), DictColumn::build(t.column(2)).codes());
        // A pinned pre-ingest encoding is untouched (copy-on-write).
        assert_eq!(id_before.len(), 3);
    }

    #[test]
    fn push_row_extension_matches_rebuild_for_new_distinct_values() {
        let mut t = Table::from_int_columns("t", &[("k", vec![5, 7, 5])]).unwrap();
        let warm = t.encoded_column(0);
        assert_eq!(warm.dict_len(), 2);
        t.push_row(vec![Value::Int(11)]).unwrap();
        t.push_row(vec![Value::Int(7)]).unwrap();
        let extended = t.encoded_column(0);
        let rebuilt = DictColumn::build(t.column(0));
        assert_eq!(extended.codes(), rebuilt.codes());
        assert_eq!(extended.values(), rebuilt.values());
        assert_eq!(extended.code_of(&Value::Int(11)), Some(2));
    }

    #[test]
    fn append_rows_appends_the_whole_batch() {
        let mut t = sample();
        t.append_rows(vec![
            vec![Value::Int(4), Value::Float(4.5), Value::from("d")],
            vec![Value::Int(5), Value::Float(5.5), Value::from("e")],
        ])
        .unwrap();
        assert_eq!(t.num_rows(), 5);
        assert_eq!(
            t.row(4),
            vec![Value::Int(5), Value::Float(5.5), Value::from("e")]
        );
    }

    #[test]
    fn rejected_batch_leaves_table_and_encodings_untouched() {
        let mut t = sample();
        // Warm the cache, then keep a full "before" image.
        let _ = t.encoded_column(0);
        let _ = t.encoded_column(2);
        let before = t.clone();
        let warm_before = t.encoded_column_count();

        // Row 0 is valid, row 1 has a type error in its LAST column: an
        // eager implementation would have pushed row 0 and two of row 1's
        // values before noticing.
        let err = t.append_rows(vec![
            vec![Value::Int(4), Value::Float(4.5), Value::from("d")],
            vec![Value::Int(5), Value::Float(5.5), Value::Int(99)],
        ]);
        assert!(err.is_err());
        assert_eq!(t, before, "table mutated by a rejected batch");
        assert_eq!(t.encoded_column_count(), warm_before);
        assert_eq!(t.encoded_column(0).len(), 3);

        // Arity errors are rejected just as atomically.
        let err = t.append_rows(vec![
            vec![Value::Int(4), Value::Float(4.5), Value::from("d")],
            vec![Value::Int(5)],
        ]);
        assert!(err.is_err());
        assert_eq!(t, before);
    }

    #[test]
    fn push_row_mid_row_type_error_keeps_columns_even() {
        let mut t = sample();
        // Type error in the LAST column: every column must stay length 3.
        let err = t.push_row(vec![Value::Int(4), Value::Float(4.5), Value::Int(99)]);
        assert!(err.is_err());
        assert_eq!(t.num_rows(), 3);
        for i in 0..t.num_columns() {
            assert_eq!(t.column(i).len(), 3, "column {i} partially mutated");
        }
    }

    #[test]
    fn append_extends_warm_zone_maps_without_rebuild() {
        let mut t = Table::from_int_columns("t", &[("k", (0..10).collect())]).unwrap();
        t.set_chunk_rows(4);
        let pinned = t.zone_map(0);
        assert_eq!(pinned.chunk_count(), 3);
        assert_eq!(t.zone_map_build_count(), 1);

        // Append across the mutable tail and several chunk boundaries: the
        // warm map must stay correct WITHOUT a rebuild.
        t.append_rows((10..26).map(|v| vec![Value::Int(v)]).collect())
            .unwrap();
        assert_eq!(t.zone_map_build_count(), 1, "append rebuilt the zone map");
        assert_eq!(*t.zone_map(0), ColumnZones::build(t.column(0), 4));
        // The pre-append map pinned by a concurrent reader is untouched.
        assert_eq!(pinned.rows(), 10);

        // push_row maintains the tail the same way.
        t.push_row(vec![Value::Int(-7)]).unwrap();
        assert_eq!(t.zone_map_build_count(), 1);
        assert_eq!(*t.zone_map(0), ColumnZones::build(t.column(0), 4));
        assert_eq!(t.chunk_count(), 7);

        // Changing granularity discards warm maps (old boundaries).
        t.set_chunk_rows(8);
        assert_eq!(t.zone_map(0).chunk_count(), 4);
        assert_eq!(t.zone_map_build_count(), 2);
    }

    #[test]
    fn from_int_columns_helper() {
        let t = Table::from_int_columns("t", &[("x", vec![1, 2]), ("y", vec![3, 4])]).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.column_by_name("y").unwrap().as_i64().unwrap(), &[3, 4]);
    }
}
