//! Column statistics: the metadata TCUDB's feasibility test and cost
//! estimator consult.
//!
//! §4.2.1 of the paper: *"TCUDB adds metadata to each database table to
//! contain three values for each column, including (1) the minimum value,
//! (2) the maximum value, and (3) the number of distinct values."*

use crate::column::Column;
use crate::table::Table;
use std::collections::HashMap;
use std::collections::HashSet;
use tcudb_types::value::ValueKey;

/// Statistics for a single column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Minimum numeric value (`None` for text columns or empty tables).
    pub min: Option<f64>,
    /// Maximum numeric value (`None` for text columns or empty tables).
    pub max: Option<f64>,
    /// Number of distinct values.
    pub distinct_count: usize,
    /// Number of rows.
    pub row_count: usize,
}

impl ColumnStats {
    /// Compute statistics for a column.
    pub fn compute(name: &str, column: &Column) -> ColumnStats {
        let row_count = column.len();
        let (min, max) = match column {
            Column::Int64(v) => (
                v.iter().min().map(|&m| m as f64),
                v.iter().max().map(|&m| m as f64),
            ),
            Column::Float64(v) => (
                v.iter().cloned().fold(None, |acc: Option<f64>, x| {
                    Some(acc.map_or(x, |a| a.min(x)))
                }),
                v.iter().cloned().fold(None, |acc: Option<f64>, x| {
                    Some(acc.map_or(x, |a| a.max(x)))
                }),
            ),
            Column::Text(_) => (None, None),
        };
        let mut distinct: HashSet<ValueKey> = HashSet::with_capacity(row_count.min(1 << 16));
        for i in 0..row_count {
            distinct.insert(column.value(i).group_key());
        }
        ColumnStats {
            name: name.to_string(),
            min,
            max,
            distinct_count: distinct.len(),
            row_count,
        }
    }

    /// Largest absolute value in the column (0 for text / empty columns).
    /// This is the `m` term of the feasibility test's conservative
    /// overflow estimate `m1 * m2 * n`.
    pub fn abs_max(&self) -> f64 {
        match (self.min, self.max) {
            (Some(lo), Some(hi)) => lo.abs().max(hi.abs()),
            _ => 0.0,
        }
    }

    /// Selectivity of an equality predicate against this column assuming a
    /// uniform distribution (classic System-R estimate 1/NDV).
    pub fn eq_selectivity(&self) -> f64 {
        if self.distinct_count == 0 {
            1.0
        } else {
            1.0 / self.distinct_count as f64
        }
    }

    /// Density of the one-hot matrix this column produces when used as a
    /// join key: each row contributes exactly one non-zero among
    /// `distinct_count` slots.
    pub fn one_hot_density(&self) -> f64 {
        if self.distinct_count == 0 {
            0.0
        } else {
            1.0 / self.distinct_count as f64
        }
    }
}

/// Statistics for all columns of a table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TableStats {
    /// Per-column statistics, keyed by lower-cased column name.
    pub columns: HashMap<String, ColumnStats>,
    /// Number of rows in the table.
    pub row_count: usize,
    /// Rows per chunk of the table's partitioning (zone-map granularity).
    pub chunk_rows: usize,
    /// Number of row chunks the table is partitioned into — the
    /// denominator of every "chunks pruned / chunks total" ratio the
    /// executor and admission control report.
    pub chunk_count: usize,
}

impl TableStats {
    /// Compute statistics for every column of `table`.
    pub fn compute(table: &Table) -> TableStats {
        let mut columns = HashMap::new();
        for (i, def) in table.schema().columns().iter().enumerate() {
            let stats = ColumnStats::compute(&def.name, table.column(i));
            columns.insert(def.name.to_ascii_lowercase(), stats);
        }
        TableStats {
            columns,
            row_count: table.num_rows(),
            chunk_rows: table.chunk_rows(),
            chunk_count: table.chunk_count(),
        }
    }

    /// Look up statistics for a column (case-insensitive).
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.get(&name.to_ascii_lowercase())
    }

    /// Number of distinct values of a column, falling back to the row
    /// count when the column is unknown.
    pub fn distinct_or_rows(&self, name: &str) -> usize {
        self.column(name)
            .map(|c| c.distinct_count)
            .unwrap_or(self.row_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use tcudb_types::{DataType, Value};

    fn table() -> Table {
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int64),
            ("val", DataType::Float64),
            ("tag", DataType::Text),
        ]);
        let mut t = Table::new("t", schema);
        for (id, val, tag) in [
            (1, -2.5, "x"),
            (2, 7.25, "y"),
            (2, 7.25, "y"),
            (3, 0.0, "x"),
        ] {
            t.push_row(vec![Value::Int(id), Value::Float(val), Value::from(tag)])
                .unwrap();
        }
        t
    }

    #[test]
    fn column_stats_min_max_distinct() {
        let t = table();
        let stats = t.compute_stats();
        let id = stats.column("ID").unwrap();
        assert_eq!(id.min, Some(1.0));
        assert_eq!(id.max, Some(3.0));
        assert_eq!(id.distinct_count, 3);
        assert_eq!(id.row_count, 4);

        let val = stats.column("val").unwrap();
        assert_eq!(val.min, Some(-2.5));
        assert_eq!(val.max, Some(7.25));
        assert_eq!(val.distinct_count, 3);
        assert_eq!(val.abs_max(), 7.25);

        let tag = stats.column("tag").unwrap();
        assert_eq!(tag.min, None);
        assert_eq!(tag.distinct_count, 2);
        assert_eq!(tag.abs_max(), 0.0);
    }

    #[test]
    fn selectivity_and_density() {
        let t = table();
        let stats = t.compute_stats();
        let id = stats.column("id").unwrap();
        assert!((id.eq_selectivity() - 1.0 / 3.0).abs() < 1e-12);
        assert!((id.one_hot_density() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_column_stats() {
        let empty = Column::Int64(vec![]);
        let s = ColumnStats::compute("e", &empty);
        assert_eq!(s.min, None);
        assert_eq!(s.distinct_count, 0);
        assert_eq!(s.eq_selectivity(), 1.0);
        assert_eq!(s.one_hot_density(), 0.0);
    }

    #[test]
    fn stats_record_chunk_partitioning() {
        let mut t = table();
        assert_eq!(t.compute_stats().chunk_count, 1);
        t.set_chunk_rows(3);
        let s = t.compute_stats();
        assert_eq!(s.chunk_rows, 3);
        assert_eq!(s.chunk_count, 2);
    }

    #[test]
    fn distinct_or_rows_fallback() {
        let t = table();
        let stats = t.compute_stats();
        assert_eq!(stats.distinct_or_rows("id"), 3);
        assert_eq!(stats.distinct_or_rows("nonexistent"), 4);
    }
}
