//! Named-table registry shared by the query engines.

use crate::stats::TableStats;
use crate::table::Table;
use std::collections::HashMap;
use std::sync::Arc;
use tcudb_types::{TcuError, TcuResult};

/// A catalog of registered tables plus their (lazily computed) statistics.
///
/// Every engine in the workspace (TCUDB, the YDB baseline, the CPU
/// baseline) executes queries against a `Catalog`, so the same data is
/// guaranteed to be visible to every engine in a comparison experiment.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: HashMap<String, Arc<Table>>,
    stats: HashMap<String, Arc<TableStats>>,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a table under its own name, computing its statistics.
    /// Re-registering a name replaces the previous table.
    pub fn register(&mut self, table: Table) {
        let key = table.name().to_ascii_lowercase();
        let stats = Arc::new(table.compute_stats());
        self.tables.insert(key.clone(), Arc::new(table));
        self.stats.insert(key, stats);
    }

    /// Register a table under an explicit name.
    pub fn register_as(&mut self, name: &str, mut table: Table) {
        table.set_name(name);
        self.register(table);
    }

    /// Look up a table by name (case-insensitive).
    pub fn table(&self, name: &str) -> TcuResult<Arc<Table>> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| {
                TcuError::Analysis(format!(
                    "table '{name}' not found (registered: {})",
                    self.table_names().join(", ")
                ))
            })
    }

    /// Look up the statistics of a table by name.
    pub fn stats(&self, name: &str) -> TcuResult<Arc<TableStats>> {
        self.stats
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| TcuError::Analysis(format!("statistics for '{name}' not found")))
    }

    /// True if a table with this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Remove a table, returning whether it existed.
    pub fn drop_table(&mut self, name: &str) -> bool {
        let key = name.to_ascii_lowercase();
        self.stats.remove(&key);
        self.tables.remove(&key).is_some()
    }

    /// Names of all registered tables (sorted for deterministic output).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total host-memory footprint of all registered tables.
    pub fn total_bytes(&self) -> usize {
        self.tables.values().map(|t| t.byte_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(name: &str) -> Table {
        Table::from_int_columns(name, &[("id", vec![1, 2, 3]), ("v", vec![7, 8, 9])]).unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut cat = Catalog::new();
        cat.register(small("A"));
        assert!(cat.contains("a"));
        assert!(cat.contains("A"));
        let t = cat.table("a").unwrap();
        assert_eq!(t.num_rows(), 3);
        assert!(cat.table("missing").is_err());
        assert_eq!(cat.len(), 1);
        assert!(!cat.is_empty());
    }

    #[test]
    fn stats_are_computed_on_registration() {
        let mut cat = Catalog::new();
        cat.register(small("A"));
        let s = cat.stats("a").unwrap();
        assert_eq!(s.row_count, 3);
        assert_eq!(s.column("id").unwrap().distinct_count, 3);
        assert!(cat.stats("missing").is_err());
    }

    #[test]
    fn register_as_renames() {
        let mut cat = Catalog::new();
        cat.register_as("renamed", small("orig"));
        assert!(cat.contains("renamed"));
        assert!(!cat.contains("orig"));
        assert_eq!(cat.table("renamed").unwrap().name(), "renamed");
    }

    #[test]
    fn drop_and_names() {
        let mut cat = Catalog::new();
        cat.register(small("b"));
        cat.register(small("a"));
        assert_eq!(cat.table_names(), vec!["a".to_string(), "b".to_string()]);
        assert!(cat.total_bytes() > 0);
        assert!(cat.drop_table("A"));
        assert!(!cat.drop_table("A"));
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn reregistration_replaces() {
        let mut cat = Catalog::new();
        cat.register(small("t"));
        let bigger =
            Table::from_int_columns("t", &[("id", vec![1, 2, 3, 4]), ("v", vec![1, 2, 3, 4])])
                .unwrap();
        cat.register(bigger);
        assert_eq!(cat.table("t").unwrap().num_rows(), 4);
        assert_eq!(cat.len(), 1);
    }
}
