//! Dictionary encoding for key columns.
//!
//! The query-side data path (domain build, matrix scatter, hash joins)
//! used to re-hash a boxed [`Value`] per row on every query.  A
//! [`DictColumn`] is built **once** per `(table, column)` and cached on the
//! [`crate::Table`], after which every query over that column works on flat
//! `u32` codes: domains are unioned by remapping dictionary codes (hashing
//! only the distinct values, not the rows) and matrices are scattered by
//! array indexing with no `Value` materialisation at all.
//!
//! Codes are assigned in **first-row-seen order**, and two values share a
//! code exactly when their [`Value::group_key`]s are equal — the same
//! normalisation the `Value`-based path uses — so the encoded path
//! reproduces the `Value`-based domains (and therefore result ordering)
//! bit for bit.

use crate::column::Column;
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;
use tcudb_types::sync::locked;
use tcudb_types::value::ValueKey;
use tcudb_types::Value;

/// A dictionary-encoded view of one column: per-row `u32` codes plus the
/// distinct values (and their normalised keys) in first-seen order.
#[derive(Debug, Clone, PartialEq)]
pub struct DictColumn {
    codes: Vec<u32>,
    keys: Vec<ValueKey>,
    values: Vec<Value>,
    /// Key → code, kept from the build so [`DictColumn::code_of`] is a
    /// hash lookup rather than a scan over the distinct values.
    index: HashMap<ValueKey, u32>,
}

impl DictColumn {
    /// Encode a column.  One hash lookup per row here buys zero hash
    /// lookups per row on every subsequent query over the column.
    pub fn build(col: &Column) -> DictColumn {
        match col {
            // Integer keys hash as plain `i64` (group_key of an Int is
            // always `ValueKey::Int`).
            Column::Int64(v) => {
                let mut seen: HashMap<i64, u32> = HashMap::new();
                let mut keys = Vec::new();
                let mut values = Vec::new();
                let codes = v
                    .iter()
                    .map(|&x| {
                        *seen.entry(x).or_insert_with(|| {
                            keys.push(ValueKey::Int(x));
                            values.push(Value::Int(x));
                            (keys.len() - 1) as u32
                        })
                    })
                    .collect();
                DictColumn::with_index(codes, keys, values)
            }
            // Strings hash by `&str` and are cloned once per distinct
            // value, never per row.
            Column::Text(v) => {
                let mut seen: HashMap<&str, u32> = HashMap::new();
                let mut keys = Vec::new();
                let mut values = Vec::new();
                let codes = v
                    .iter()
                    .map(|s| {
                        *seen.entry(s.as_str()).or_insert_with(|| {
                            keys.push(ValueKey::Text(s.clone()));
                            values.push(Value::Text(s.clone()));
                            (keys.len() - 1) as u32
                        })
                    })
                    .collect();
                DictColumn::with_index(codes, keys, values)
            }
            // Floats key by their group_key normalisation (integral floats
            // unify with Ints so INT⋈FLOAT joins keep working).
            Column::Float64(v) => {
                Self::from_value_iter(v.len(), v.iter().map(|&x| Value::Float(x)))
            }
        }
    }

    /// Encode an arbitrary value sequence (used for gathered intermediate
    /// key vectors and by tests; unlike base columns this may contain
    /// [`Value::Null`], which keys as [`ValueKey::Null`]).
    pub fn from_values(values: &[Value]) -> DictColumn {
        Self::from_value_iter(values.len(), values.iter().cloned())
    }

    fn from_value_iter(len: usize, iter: impl Iterator<Item = Value>) -> DictColumn {
        let mut index: HashMap<ValueKey, u32> = HashMap::new();
        let mut keys = Vec::new();
        let mut dict_values = Vec::new();
        let mut codes = Vec::with_capacity(len);
        for v in iter {
            let key = v.group_key();
            let code = *index.entry(key.clone()).or_insert_with(|| {
                keys.push(key);
                dict_values.push(v);
                (keys.len() - 1) as u32
            });
            codes.push(code);
        }
        DictColumn {
            codes,
            keys,
            values: dict_values,
            index,
        }
    }

    /// Assemble a dictionary, deriving the key→code index from `keys`
    /// (one hash insert per *distinct* value).
    fn with_index(codes: Vec<u32>, keys: Vec<ValueKey>, values: Vec<Value>) -> DictColumn {
        let index = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i as u32))
            .collect();
        DictColumn {
            codes,
            keys,
            values,
            index,
        }
    }

    /// Per-row dictionary codes (one per source row).
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Number of source rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if the source column had no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Number of distinct values.
    pub fn dict_len(&self) -> usize {
        self.values.len()
    }

    /// The representative (first-seen) value of a code.
    pub fn value(&self, code: u32) -> &Value {
        &self.values[code as usize]
    }

    /// The normalised key of a code.
    pub fn key(&self, code: u32) -> &ValueKey {
        &self.keys[code as usize]
    }

    /// All distinct values in code order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The code of a value, if it occurs in the column.
    pub fn code_of(&self, value: &Value) -> Option<u32> {
        self.index.get(&value.group_key()).copied()
    }

    /// Append one more row's value, extending the dictionary if the value
    /// is new.  Keys exactly like the build paths (`group_key`
    /// normalisation), so an incrementally extended dictionary is
    /// indistinguishable from one rebuilt from scratch over the longer
    /// column — `Table::push_row` uses this to keep warm encodings valid
    /// through ingest instead of discarding them.
    pub fn push_value(&mut self, value: &Value) {
        let key = value.group_key();
        let code = *self.index.entry(key.clone()).or_insert_with(|| {
            self.keys.push(key);
            self.values.push(value.clone());
            (self.keys.len() - 1) as u32
        });
        self.codes.push(code);
    }

    /// Rank of each code in the dictionary's **sorted value order**
    /// (`ranks[code] = position of value(code) in ascending `sql_cmp`
    /// order`).  Lets MIN/MAX over a text column run as a segmented
    /// integer min/max over ranks — one string comparison per *distinct*
    /// value instead of one per row.
    pub fn ordered_ranks(&self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.values.len() as u32).collect();
        order.sort_by(|&a, &b| self.values[a as usize].sql_cmp(&self.values[b as usize]));
        let mut ranks = vec![0u32; self.values.len()];
        for (rank, &code) in order.iter().enumerate() {
            ranks[code as usize] = rank as u32;
        }
        ranks
    }
}

/// Lazy per-table cache of column encodings, keyed by column index.
///
/// Lives inside [`crate::Table`] behind a `Mutex` so a `&Table` (tables are
/// shared as `Arc<Table>` once registered in a catalog) can encode on first
/// use and hit the cache on every later query.  The cache is ignored by
/// `PartialEq` — two tables with the same data are equal regardless of
/// which columns happen to be encoded — and `Clone` carries the warm
/// entries over (they are `Arc`s, so this is cheap).
#[derive(Default)]
pub struct EncodingCache {
    inner: Mutex<HashMap<usize, std::sync::Arc<DictColumn>>>,
}

impl EncodingCache {
    /// The cached encoding of column `idx`, building it with `make` on the
    /// first request.
    pub fn get_or_build(
        &self,
        idx: usize,
        make: impl FnOnce() -> DictColumn,
    ) -> std::sync::Arc<DictColumn> {
        let mut map = locked(&self.inner);
        map.entry(idx)
            .or_insert_with(|| std::sync::Arc::new(make()))
            .clone()
    }

    /// Extend every warm entry with one appended row, keeping the cache
    /// valid through `Table::push_row` instead of invalidating it.
    ///
    /// `value_of` maps a column index to the appended row's value for that
    /// column.  Entries are copy-on-write: if a pinned snapshot still
    /// holds an `Arc` to the old encoding (covering the shorter column),
    /// that encoding is left untouched and this table gets an extended
    /// copy — [`std::sync::Arc::make_mut`] semantics.
    pub fn extend_with_row(&self, value_of: impl Fn(usize) -> Value) {
        let mut map = locked(&self.inner);
        for (&idx, dict) in map.iter_mut() {
            std::sync::Arc::make_mut(dict).push_value(&value_of(idx));
        }
    }

    /// Number of cached column encodings (telemetry / tests).
    pub fn len(&self) -> usize {
        locked(&self.inner).len()
    }

    /// True if no column has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Clone for EncodingCache {
    fn clone(&self) -> Self {
        EncodingCache {
            inner: Mutex::new(locked(&self.inner).clone()),
        }
    }
}

impl PartialEq for EncodingCache {
    fn eq(&self, _other: &Self) -> bool {
        // The cache is derived state; it never affects table equality.
        true
    }
}

impl fmt::Debug for EncodingCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EncodingCache({} columns)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcudb_types::DataType;

    #[test]
    fn int_encoding_first_seen_order() {
        let col = Column::Int64(vec![10, 20, 10, 30, 20]);
        let d = DictColumn::build(&col);
        assert_eq!(d.codes(), &[0, 1, 0, 2, 1]);
        assert_eq!(d.dict_len(), 3);
        assert_eq!(d.value(0), &Value::Int(10));
        assert_eq!(d.value(2), &Value::Int(30));
        assert_eq!(d.len(), 5);
        assert!(!d.is_empty());
        assert_eq!(d.code_of(&Value::Int(20)), Some(1));
        assert_eq!(d.code_of(&Value::Int(99)), None);
    }

    #[test]
    fn text_encoding_clones_once_per_distinct() {
        let col = Column::Text(vec!["x".into(), "y".into(), "x".into()]);
        let d = DictColumn::build(&col);
        assert_eq!(d.codes(), &[0, 1, 0]);
        assert_eq!(d.key(1), &ValueKey::Text("y".into()));
        assert_eq!(d.values().len(), 2);
    }

    #[test]
    fn float_encoding_normalises_integral_values() {
        let col = Column::Float64(vec![5.0, 5.5, 5.0]);
        let d = DictColumn::build(&col);
        assert_eq!(d.codes(), &[0, 1, 0]);
        // Integral floats unify with Int keys, matching Value::group_key.
        assert_eq!(d.key(0), &ValueKey::Int(5));
        assert_eq!(d.code_of(&Value::Int(5)), Some(0));
    }

    #[test]
    fn from_values_supports_null() {
        let d = DictColumn::from_values(&[Value::Int(1), Value::Null, Value::Null]);
        assert_eq!(d.codes(), &[0, 1, 1]);
        assert_eq!(d.key(1), &ValueKey::Null);
    }

    #[test]
    fn empty_column_encodes_empty() {
        let d = DictColumn::build(&Column::empty(DataType::Text));
        assert!(d.is_empty());
        assert_eq!(d.dict_len(), 0);
    }

    #[test]
    fn ordered_ranks_follow_sorted_value_order() {
        let col = Column::Text(vec!["b".into(), "a".into(), "c".into(), "a".into()]);
        let d = DictColumn::build(&col);
        // codes: b=0, a=1, c=2; ascending value order a < b < c.
        assert_eq!(d.ordered_ranks(), vec![1, 0, 2]);
        let ints = DictColumn::build(&Column::Int64(vec![30, 10, 20]));
        assert_eq!(ints.ordered_ranks(), vec![2, 0, 1]);
    }

    #[test]
    fn cache_builds_once_and_clones_warm() {
        let cache = EncodingCache::default();
        assert!(cache.is_empty());
        let col = Column::Int64(vec![1, 2, 1]);
        let mut built = 0;
        let a = cache.get_or_build(0, || {
            built += 1;
            DictColumn::build(&col)
        });
        let b = cache.get_or_build(0, || {
            built += 1;
            DictColumn::build(&col)
        });
        assert_eq!(built, 1);
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        let cloned = cache.clone();
        assert_eq!(cloned.len(), 1);
    }
}
