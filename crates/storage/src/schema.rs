//! Table schemas.

use tcudb_types::{DataType, TcuError, TcuResult};

/// Definition of one column: a name and a logical data type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (case-insensitive lookups, stored as given).
    pub name: String,
    /// Logical data type.
    pub data_type: DataType,
}

impl ColumnDef {
    /// Create a new column definition.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered collection of column definitions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        Schema { columns }
    }

    /// Convenience constructor from name/type tuples.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Schema {
            columns: pairs.iter().map(|(n, t)| ColumnDef::new(*n, *t)).collect(),
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// All column definitions in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// The definition at `idx`.
    pub fn column(&self, idx: usize) -> &ColumnDef {
        &self.columns[idx]
    }

    /// Case-insensitive lookup of a column index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Like [`Schema::index_of`] but returns an error mentioning the name.
    pub fn require(&self, name: &str) -> TcuResult<usize> {
        self.index_of(name).ok_or_else(|| {
            TcuError::Analysis(format!(
                "column '{name}' not found (available: {})",
                self.columns
                    .iter()
                    .map(|c| c.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })
    }

    /// Append a column definition, returning the new index.
    pub fn push(&mut self, def: ColumnDef) -> usize {
        self.columns.push(def);
        self.columns.len() - 1
    }

    /// Projected schema containing only the named columns, in the given
    /// order.
    pub fn project(&self, names: &[&str]) -> TcuResult<Schema> {
        let mut cols = Vec::with_capacity(names.len());
        for n in names {
            let idx = self.require(n)?;
            cols.push(self.columns[idx].clone());
        }
        Ok(Schema::new(cols))
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::from_pairs(&[
            ("id", DataType::Int64),
            ("val", DataType::Float64),
            ("name", DataType::Text),
        ])
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.index_of("ID"), Some(0));
        assert_eq!(s.index_of("Val"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn require_reports_available_columns() {
        let s = sample();
        let err = s.require("nope").unwrap_err();
        assert!(err.to_string().contains("id"));
    }

    #[test]
    fn project_reorders_columns() {
        let s = sample();
        let p = s.project(&["name", "id"]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.column(0).name, "name");
        assert_eq!(p.column(1).data_type, DataType::Int64);
        assert!(s.project(&["ghost"]).is_err());
    }

    #[test]
    fn push_appends() {
        let mut s = sample();
        let idx = s.push(ColumnDef::new("extra", DataType::Int64));
        assert_eq!(idx, 3);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.names(), vec!["id", "val", "name", "extra"]);
    }
}
