//! Star Schema Benchmark generator and queries (§5.3, Figure 9).
//!
//! The schema follows O'Neil et al.'s SSB: one fact table (`lineorder`)
//! and four dimension tables (`date`, `customer`, `supplier`, `part`)
//! joined by foreign keys, with the standard 13 queries in 4 flights.
//!
//! **Scale note.**  The paper runs SF 1–8 (0.7–5.6 GB).  This generator
//! supports both the paper's *full* scale ([`SsbScale::full`], six
//! million `lineorder` rows per SF) and a proportionally shaped *mini*
//! scale ([`SsbScale::mini`], `60 000 × SF` rows) so the full 13-query ×
//! 4-scale-factor × 3-engine sweep completes in seconds on a laptop while
//! preserving the fact:dimension cardinality ratios that determine the
//! relative engine behaviour.  Monetary values are also scaled into the
//! fp16-representable range so TCU plans stay feasible (DESIGN.md §2).
//! Two query texts replace `BETWEEN` over strings with explicit `>=`/`<=`
//! comparisons, which our SQL dialect supports.

use crate::Xorshift;
use tcudb_storage::{Catalog, Column, ColumnDef, Schema, Table};
use tcudb_types::DataType;

/// The five SSB regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// Month names used for `d_yearmonth`.
const MONTHS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

fn nation_name(region: usize, idx: usize) -> String {
    format!("{}_NATION{}", REGIONS[region], idx)
}

fn city_name(nation: &str, idx: usize) -> String {
    format!("{nation}_CITY{idx}")
}

/// Row counts of a mini-scale SSB instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsbScale {
    /// Scale factor (the paper uses 1, 2, 4, 8).
    pub sf: usize,
    /// Rows of `lineorder`.
    pub lineorder: usize,
    /// Rows of `customer`.
    pub customer: usize,
    /// Rows of `supplier`.
    pub supplier: usize,
    /// Rows of `part`.
    pub part: usize,
    /// Rows of `date` (always 7 years of days).
    pub date: usize,
}

impl SsbScale {
    /// Mini-scale row counts for a scale factor.
    pub fn mini(sf: usize) -> SsbScale {
        let sf = sf.max(1);
        SsbScale {
            sf,
            lineorder: 60_000 * sf,
            customer: 300 * sf,
            supplier: 20 * sf,
            part: 1_000 + 200 * sf,
            date: 2_556,
        }
    }

    /// Full-scale row counts matching O'Neil et al.'s dbgen: six million
    /// `lineorder` rows per scale factor, with the standard dimension
    /// cardinalities (`part` grows logarithmically, as in the spec).
    pub fn full(sf: usize) -> SsbScale {
        let sf = sf.max(1);
        SsbScale {
            sf,
            lineorder: 6_000_000 * sf,
            customer: 30_000 * sf,
            supplier: 2_000 * sf,
            part: 200_000 * (1 + sf.ilog2() as usize),
            date: 2_556,
        }
    }
}

/// Generate the `date` dimension.
pub fn gen_date() -> Table {
    let mut datekey = Vec::new();
    let mut year = Vec::new();
    let mut yearmonthnum = Vec::new();
    let mut yearmonth = Vec::new();
    let mut weeknum = Vec::new();
    let days_in_month = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];
    for y in 1992..=1998i64 {
        let mut day_of_year = 0i64;
        for (m, &dim) in days_in_month.iter().enumerate() {
            for d in 1..=dim as i64 {
                day_of_year += 1;
                datekey.push(y * 10_000 + (m as i64 + 1) * 100 + d);
                year.push(y);
                yearmonthnum.push(y * 100 + m as i64 + 1);
                yearmonth.push(format!("{}{}", MONTHS[m], y));
                weeknum.push(day_of_year / 7 + 1);
            }
        }
    }
    let schema = Schema::new(vec![
        ColumnDef::new("d_datekey", DataType::Int64),
        ColumnDef::new("d_year", DataType::Int64),
        ColumnDef::new("d_yearmonthnum", DataType::Int64),
        ColumnDef::new("d_yearmonth", DataType::Text),
        ColumnDef::new("d_weeknuminyear", DataType::Int64),
    ]);
    Table::from_columns(
        "date",
        schema,
        vec![
            Column::Int64(datekey),
            Column::Int64(year),
            Column::Int64(yearmonthnum),
            Column::Text(yearmonth),
            Column::Int64(weeknum),
        ],
    )
    .expect("date columns are consistent")
}

/// Generate the `customer` dimension.
pub fn gen_customer(rows: usize, rng: &mut Xorshift) -> Table {
    let mut key = Vec::with_capacity(rows);
    let mut city = Vec::with_capacity(rows);
    let mut nation = Vec::with_capacity(rows);
    let mut region = Vec::with_capacity(rows);
    for i in 0..rows {
        let r = rng.below(5) as usize;
        let n = nation_name(r, rng.below(5) as usize);
        key.push(i as i64 + 1);
        city.push(city_name(&n, rng.below(10) as usize));
        nation.push(n);
        region.push(REGIONS[r].to_string());
    }
    let schema = Schema::new(vec![
        ColumnDef::new("c_custkey", DataType::Int64),
        ColumnDef::new("c_city", DataType::Text),
        ColumnDef::new("c_nation", DataType::Text),
        ColumnDef::new("c_region", DataType::Text),
    ]);
    Table::from_columns(
        "customer",
        schema,
        vec![
            Column::Int64(key),
            Column::Text(city),
            Column::Text(nation),
            Column::Text(region),
        ],
    )
    .expect("customer columns are consistent")
}

/// Generate the `supplier` dimension.
pub fn gen_supplier(rows: usize, rng: &mut Xorshift) -> Table {
    let mut key = Vec::with_capacity(rows);
    let mut city = Vec::with_capacity(rows);
    let mut nation = Vec::with_capacity(rows);
    let mut region = Vec::with_capacity(rows);
    for i in 0..rows {
        let r = rng.below(5) as usize;
        let n = nation_name(r, rng.below(5) as usize);
        key.push(i as i64 + 1);
        city.push(city_name(&n, rng.below(10) as usize));
        nation.push(n);
        region.push(REGIONS[r].to_string());
    }
    let schema = Schema::new(vec![
        ColumnDef::new("s_suppkey", DataType::Int64),
        ColumnDef::new("s_city", DataType::Text),
        ColumnDef::new("s_nation", DataType::Text),
        ColumnDef::new("s_region", DataType::Text),
    ]);
    Table::from_columns(
        "supplier",
        schema,
        vec![
            Column::Int64(key),
            Column::Text(city),
            Column::Text(nation),
            Column::Text(region),
        ],
    )
    .expect("supplier columns are consistent")
}

/// Generate the `part` dimension.
pub fn gen_part(rows: usize, rng: &mut Xorshift) -> Table {
    let mut key = Vec::with_capacity(rows);
    let mut mfgr = Vec::with_capacity(rows);
    let mut category = Vec::with_capacity(rows);
    let mut brand = Vec::with_capacity(rows);
    for i in 0..rows {
        let m = rng.below(5) + 1;
        let c = rng.below(5) + 1;
        let b = rng.below(40) + 1;
        key.push(i as i64 + 1);
        mfgr.push(format!("MFGR#{m}"));
        category.push(format!("MFGR#{m}{c}"));
        brand.push(format!("MFGR#{m}{c}{b:02}"));
    }
    let schema = Schema::new(vec![
        ColumnDef::new("p_partkey", DataType::Int64),
        ColumnDef::new("p_mfgr", DataType::Text),
        ColumnDef::new("p_category", DataType::Text),
        ColumnDef::new("p_brand1", DataType::Text),
    ]);
    Table::from_columns(
        "part",
        schema,
        vec![
            Column::Int64(key),
            Column::Text(mfgr),
            Column::Text(category),
            Column::Text(brand),
        ],
    )
    .expect("part columns are consistent")
}

/// Generate the `lineorder` fact table referencing the dimensions.
pub fn gen_lineorder(scale: &SsbScale, date: &Table, rng: &mut Xorshift) -> Table {
    let rows = scale.lineorder;
    let datekeys = date
        .column_by_name("d_datekey")
        .expect("date table has datekey")
        .as_i64()
        .expect("datekey is int")
        .to_vec();
    let mut orderkey = Vec::with_capacity(rows);
    let mut custkey = Vec::with_capacity(rows);
    let mut partkey = Vec::with_capacity(rows);
    let mut suppkey = Vec::with_capacity(rows);
    let mut orderdate = Vec::with_capacity(rows);
    let mut quantity = Vec::with_capacity(rows);
    let mut extendedprice = Vec::with_capacity(rows);
    let mut discount = Vec::with_capacity(rows);
    let mut revenue = Vec::with_capacity(rows);
    let mut supplycost = Vec::with_capacity(rows);
    for i in 0..rows {
        orderkey.push(i as i64 + 1);
        custkey.push(rng.range_i64(1, scale.customer as i64));
        partkey.push(rng.range_i64(1, scale.part as i64));
        suppkey.push(rng.range_i64(1, scale.supplier as i64));
        // Orders arrive in rough date order (real fact tables are
        // append-mostly by time), with a few days of jitter.  The
        // correlation is what lets per-chunk zone maps on `lo_orderdate`
        // prune date-restricted queries; a uniform pick would leave every
        // chunk spanning all seven years.
        let base = (i * datekeys.len()) / rows;
        let jitter = rng.below(7) as i64 - 3;
        let idx = (base as i64 + jitter).clamp(0, datekeys.len() as i64 - 1) as usize;
        orderdate.push(datekeys[idx]);
        quantity.push(rng.range_i64(1, 50));
        // Monetary values kept within the fp16-representable range.
        let price = rng.range_i64(100, 10_000);
        extendedprice.push(price);
        let disc = rng.range_i64(0, 10);
        discount.push(disc);
        revenue.push((price * (100 - disc) / 100).max(1));
        supplycost.push(rng.range_i64(50, 1_000));
    }
    let schema = Schema::new(vec![
        ColumnDef::new("lo_orderkey", DataType::Int64),
        ColumnDef::new("lo_custkey", DataType::Int64),
        ColumnDef::new("lo_partkey", DataType::Int64),
        ColumnDef::new("lo_suppkey", DataType::Int64),
        ColumnDef::new("lo_orderdate", DataType::Int64),
        ColumnDef::new("lo_quantity", DataType::Int64),
        ColumnDef::new("lo_extendedprice", DataType::Int64),
        ColumnDef::new("lo_discount", DataType::Int64),
        ColumnDef::new("lo_revenue", DataType::Int64),
        ColumnDef::new("lo_supplycost", DataType::Int64),
    ]);
    Table::from_columns(
        "lineorder",
        schema,
        vec![
            Column::Int64(orderkey),
            Column::Int64(custkey),
            Column::Int64(partkey),
            Column::Int64(suppkey),
            Column::Int64(orderdate),
            Column::Int64(quantity),
            Column::Int64(extendedprice),
            Column::Int64(discount),
            Column::Int64(revenue),
            Column::Int64(supplycost),
        ],
    )
    .expect("lineorder columns are consistent")
}

/// Generate a full mini-scale SSB catalog for a scale factor.
pub fn gen_catalog(sf: usize, seed: u64) -> Catalog {
    gen_catalog_scaled(&SsbScale::mini(sf), seed)
}

/// Generate an SSB catalog for explicit row counts (use
/// [`SsbScale::mini`] for CI-sized sweeps, [`SsbScale::full`] for the
/// paper's SF 1–8 instances).
pub fn gen_catalog_scaled(scale: &SsbScale, seed: u64) -> Catalog {
    let scale = *scale;
    let mut rng = Xorshift::new(seed);
    let date = gen_date();
    let customer = gen_customer(scale.customer, &mut rng);
    let supplier = gen_supplier(scale.supplier, &mut rng);
    let part = gen_part(scale.part, &mut rng);
    let lineorder = gen_lineorder(&scale, &date, &mut rng);
    let mut cat = Catalog::new();
    cat.register(date);
    cat.register(customer);
    cat.register(supplier);
    cat.register(part);
    cat.register(lineorder);
    cat
}

/// The 13 SSB queries as `(name, SQL)` pairs.
pub fn queries() -> Vec<(&'static str, String)> {
    vec![
        ("Q1.1", "SELECT SUM(lo_extendedprice * lo_discount) AS revenue FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_year = 1993 AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25".to_string()),
        ("Q1.2", "SELECT SUM(lo_extendedprice * lo_discount) AS revenue FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_yearmonthnum = 199401 AND lo_discount BETWEEN 4 AND 6 AND lo_quantity BETWEEN 26 AND 35".to_string()),
        ("Q1.3", "SELECT SUM(lo_extendedprice * lo_discount) AS revenue FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_weeknuminyear = 6 AND d_year = 1994 AND lo_discount BETWEEN 5 AND 7 AND lo_quantity BETWEEN 26 AND 35".to_string()),
        ("Q2.1", "SELECT SUM(lo_revenue), d_year, p_brand1 FROM lineorder, date, part, supplier WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey AND lo_suppkey = s_suppkey AND p_category = 'MFGR#12' AND s_region = 'AMERICA' GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1".to_string()),
        ("Q2.2", "SELECT SUM(lo_revenue), d_year, p_brand1 FROM lineorder, date, part, supplier WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey AND lo_suppkey = s_suppkey AND p_brand1 >= 'MFGR#2221' AND p_brand1 <= 'MFGR#2228' AND s_region = 'ASIA' GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1".to_string()),
        ("Q2.3", "SELECT SUM(lo_revenue), d_year, p_brand1 FROM lineorder, date, part, supplier WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey AND lo_suppkey = s_suppkey AND p_brand1 = 'MFGR#2239' AND s_region = 'EUROPE' GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1".to_string()),
        ("Q3.1", "SELECT c_nation, s_nation, d_year, SUM(lo_revenue) AS revenue FROM customer, lineorder, supplier, date WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey AND lo_orderdate = d_datekey AND c_region = 'ASIA' AND s_region = 'ASIA' AND d_year >= 1992 AND d_year <= 1997 GROUP BY c_nation, s_nation, d_year ORDER BY d_year ASC, revenue DESC".to_string()),
        ("Q3.2", "SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue FROM customer, lineorder, supplier, date WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey AND lo_orderdate = d_datekey AND c_nation = 'AMERICA_NATION1' AND s_nation = 'AMERICA_NATION1' AND d_year >= 1992 AND d_year <= 1997 GROUP BY c_city, s_city, d_year ORDER BY d_year ASC, revenue DESC".to_string()),
        ("Q3.3", "SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue FROM customer, lineorder, supplier, date WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey AND lo_orderdate = d_datekey AND (c_city = 'ASIA_NATION1_CITY1' OR c_city = 'ASIA_NATION1_CITY2') AND (s_city = 'ASIA_NATION1_CITY1' OR s_city = 'ASIA_NATION1_CITY2') AND d_year >= 1992 AND d_year <= 1997 GROUP BY c_city, s_city, d_year ORDER BY d_year ASC, revenue DESC".to_string()),
        ("Q3.4", "SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue FROM customer, lineorder, supplier, date WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey AND lo_orderdate = d_datekey AND (c_city = 'ASIA_NATION1_CITY1' OR c_city = 'ASIA_NATION1_CITY2') AND (s_city = 'ASIA_NATION1_CITY1' OR s_city = 'ASIA_NATION1_CITY2') AND d_yearmonth = 'Dec1997' GROUP BY c_city, s_city, d_year ORDER BY d_year ASC, revenue DESC".to_string()),
        ("Q4.1", "SELECT d_year, c_nation, SUM(lo_revenue - lo_supplycost) AS profit FROM date, customer, supplier, part, lineorder WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey AND lo_partkey = p_partkey AND lo_orderdate = d_datekey AND c_region = 'AMERICA' AND s_region = 'AMERICA' AND (p_mfgr = 'MFGR#1' OR p_mfgr = 'MFGR#2') GROUP BY d_year, c_nation ORDER BY d_year, c_nation".to_string()),
        ("Q4.2", "SELECT d_year, s_nation, p_category, SUM(lo_revenue - lo_supplycost) AS profit FROM date, customer, supplier, part, lineorder WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey AND lo_partkey = p_partkey AND lo_orderdate = d_datekey AND c_region = 'AMERICA' AND s_region = 'AMERICA' AND (d_year = 1997 OR d_year = 1998) AND (p_mfgr = 'MFGR#1' OR p_mfgr = 'MFGR#2') GROUP BY d_year, s_nation, p_category ORDER BY d_year, s_nation, p_category".to_string()),
        ("Q4.3", "SELECT d_year, s_city, p_brand1, SUM(lo_revenue - lo_supplycost) AS profit FROM date, customer, supplier, part, lineorder WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey AND lo_partkey = p_partkey AND lo_orderdate = d_datekey AND s_nation = 'AMERICA_NATION1' AND (d_year = 1997 OR d_year = 1998) GROUP BY d_year, s_city, p_brand1 ORDER BY d_year, s_city, p_brand1".to_string()),
    ]
}

/// The representative queries plotted in Figure 9 (one per flight).
pub fn figure9_queries() -> Vec<(&'static str, String)> {
    queries()
        .into_iter()
        .filter(|(name, _)| matches!(*name, "Q1.1" | "Q2.1" | "Q3.1" | "Q4.1"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_ratios_are_preserved() {
        let s1 = SsbScale::mini(1);
        let s8 = SsbScale::mini(8);
        assert_eq!(s1.lineorder, 60_000);
        assert_eq!(s8.lineorder, 480_000);
        assert_eq!(s8.customer, 8 * s1.customer);
        assert_eq!(s1.date, 2_556);
        assert_eq!(SsbScale::mini(0).sf, 1);
    }

    #[test]
    fn full_scale_matches_dbgen_cardinalities() {
        let s1 = SsbScale::full(1);
        assert_eq!(s1.lineorder, 6_000_000);
        assert_eq!(s1.customer, 30_000);
        assert_eq!(s1.supplier, 2_000);
        assert_eq!(s1.part, 200_000);
        let s4 = SsbScale::full(4);
        assert_eq!(s4.lineorder, 24_000_000);
        assert_eq!(s4.part, 600_000);
        assert_eq!(SsbScale::full(0).sf, 1);
    }

    #[test]
    fn orderdates_are_time_correlated() {
        // Rows should land near their proportional position in the date
        // range: a chunk of early rows must not span late years.  This is
        // the property zone-map pruning of date-filtered queries relies on.
        let scale = SsbScale::mini(1);
        let mut rng = Xorshift::new(11);
        let date = gen_date();
        let lo = gen_lineorder(&scale, &date, &mut rng);
        let od = lo.column_by_name("lo_orderdate").unwrap().as_i64().unwrap();
        let first_decile = &od[..od.len() / 10];
        let last_decile = &od[od.len() - od.len() / 10..];
        assert!(first_decile.iter().all(|&d| d < 19930000));
        assert!(last_decile.iter().all(|&d| d > 19980000));
    }

    #[test]
    fn date_dimension_has_seven_years() {
        let d = gen_date();
        assert_eq!(d.num_rows(), 7 * 365);
        let stats = d.compute_stats();
        assert_eq!(stats.column("d_year").unwrap().distinct_count, 7);
        assert_eq!(stats.column("d_year").unwrap().min, Some(1992.0));
        assert_eq!(stats.column("d_year").unwrap().max, Some(1998.0));
    }

    #[test]
    fn catalog_contains_all_five_tables_with_valid_fks() {
        let cat = gen_catalog(1, 7);
        for t in ["lineorder", "date", "customer", "supplier", "part"] {
            assert!(cat.contains(t), "missing {t}");
        }
        let lo = cat.table("lineorder").unwrap();
        let cust_rows = cat.table("customer").unwrap().num_rows() as f64;
        let ck = cat.stats("lineorder").unwrap();
        assert!(ck.column("lo_custkey").unwrap().max.unwrap() <= cust_rows);
        assert!(ck.column("lo_custkey").unwrap().min.unwrap() >= 1.0);
        assert_eq!(lo.num_rows(), 60_000);
        // Monetary values stay in the fp16-representable range.
        assert!(ck.column("lo_extendedprice").unwrap().max.unwrap() <= 10_000.0);
    }

    #[test]
    fn all_thirteen_queries_parse() {
        assert_eq!(queries().len(), 13);
        for (name, sql) in queries() {
            assert!(
                tcudb_sql::parse(&sql).is_ok(),
                "query {name} failed to parse"
            );
        }
        assert_eq!(figure9_queries().len(), 4);
    }

    #[test]
    fn dimension_attribute_domains() {
        let mut rng = Xorshift::new(3);
        let part = gen_part(2000, &mut rng);
        let stats = part.compute_stats();
        assert!(stats.column("p_mfgr").unwrap().distinct_count <= 5);
        assert!(stats.column("p_category").unwrap().distinct_count <= 25);
        let supplier = gen_supplier(100, &mut rng);
        let sstats = supplier.compute_stats();
        assert!(sstats.column("s_region").unwrap().distinct_count <= 5);
        let customer = gen_customer(100, &mut rng);
        assert_eq!(customer.num_rows(), 100);
    }
}
