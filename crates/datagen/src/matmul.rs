//! Coordinate-form matrix tables for the matrix-multiplication query
//! (§5.4.1, Figure 10 and Table 1).
//!
//! The paper stores each matrix as a relational table with attributes
//! `(row_num, col_num, val)` and multiplies two such tables with the
//! Figure 5 query.  The generators below produce dense or sparse matrices
//! of a given dimension with values drawn from a configurable range — the
//! value ranges of Table 1 ({0, 1}, ±2⁷, ±2¹⁵, ±2³¹) are provided as
//! presets for the accuracy experiment.

use crate::Xorshift;
use tcudb_storage::{Catalog, Column, ColumnDef, Schema, Table};
use tcudb_types::DataType;

/// Value-range presets of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueRange {
    /// Values in {0, 1} (the join encoding) — always exact on TCUs.
    Binary,
    /// Values in (−2⁷, 2⁷).
    Int7,
    /// Values in (−2¹⁵, 2¹⁵).
    Int15,
    /// Values in (−2³¹, 2³¹).
    Int31,
}

impl ValueRange {
    /// The inclusive magnitude bound of the range.
    pub fn magnitude(self) -> i64 {
        match self {
            ValueRange::Binary => 1,
            ValueRange::Int7 => (1 << 7) - 1,
            ValueRange::Int15 => (1 << 15) - 1,
            ValueRange::Int31 => (1 << 31) - 1,
        }
    }

    /// Sample one value from the range.
    pub fn sample(self, rng: &mut Xorshift) -> i64 {
        match self {
            ValueRange::Binary => rng.below(2) as i64,
            other => {
                let m = other.magnitude();
                rng.range_i64(-m, m)
            }
        }
    }

    /// Label used when printing Table 1.
    pub fn label(self) -> &'static str {
        match self {
            ValueRange::Binary => "x = 0, 1",
            ValueRange::Int7 => "-2^7 <= x < 2^7",
            ValueRange::Int15 => "-2^15 <= x < 2^15",
            ValueRange::Int31 => "-2^31 <= x < 2^31",
        }
    }

    /// All presets in Table 1 order.
    pub fn all() -> [ValueRange; 4] {
        [
            ValueRange::Binary,
            ValueRange::Int7,
            ValueRange::Int15,
            ValueRange::Int31,
        ]
    }
}

/// Generate a `(row_num, col_num, val)` table holding a `dim × dim` matrix
/// with the given fill `density` (1.0 = fully dense, as in Figure 10).
pub fn gen_matrix_table(
    name: &str,
    dim: usize,
    density: f64,
    range: ValueRange,
    seed: u64,
) -> Table {
    let mut rng = Xorshift::new(seed);
    let mut rows = Vec::new();
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for i in 0..dim {
        for j in 0..dim {
            if density >= 1.0 || rng.unit_f64() < density {
                rows.push(i as i64);
                cols.push(j as i64);
                vals.push(range.sample(&mut rng));
            }
        }
    }
    let schema = Schema::new(vec![
        ColumnDef::new("row_num", DataType::Int64),
        ColumnDef::new("col_num", DataType::Int64),
        ColumnDef::new("val", DataType::Int64),
    ]);
    Table::from_columns(
        name,
        schema,
        vec![
            Column::Int64(rows),
            Column::Int64(cols),
            Column::Int64(vals),
        ],
    )
    .expect("matrix columns are consistent")
}

/// Build a catalog with matrices `A` and `B` of the given dimension.
pub fn gen_catalog(dim: usize, density: f64, range: ValueRange, seed: u64) -> Catalog {
    let mut cat = Catalog::new();
    cat.register(gen_matrix_table("A", dim, density, range, seed));
    cat.register(gen_matrix_table(
        "B",
        dim,
        density,
        range,
        seed.wrapping_add(1),
    ));
    cat
}

/// The Figure 5 matrix-multiplication query.
pub const MATMUL_QUERY: &str = "SELECT A.col_num, B.row_num, SUM(A.val * B.val) AS res \
                                FROM A, B WHERE A.row_num = B.col_num \
                                GROUP BY A.col_num, B.row_num";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_matrix_table_has_dim_squared_rows() {
        let t = gen_matrix_table("A", 16, 1.0, ValueRange::Int7, 3);
        assert_eq!(t.num_rows(), 256);
        let stats = t.compute_stats();
        assert_eq!(stats.column("row_num").unwrap().distinct_count, 16);
        assert!(stats.column("val").unwrap().abs_max() <= 127.0);
    }

    #[test]
    fn sparse_matrix_respects_density() {
        let t = gen_matrix_table("A", 64, 0.1, ValueRange::Binary, 5);
        let expected = (64.0f64 * 64.0 * 0.1) as usize;
        assert!(t.num_rows() > expected / 3);
        assert!(t.num_rows() < expected * 3);
    }

    #[test]
    fn value_ranges_match_table1() {
        assert_eq!(ValueRange::Binary.magnitude(), 1);
        assert_eq!(ValueRange::Int7.magnitude(), 127);
        assert_eq!(ValueRange::Int15.magnitude(), 32767);
        assert_eq!(ValueRange::Int31.magnitude(), i64::from(i32::MAX));
        assert_eq!(ValueRange::all().len(), 4);
        let mut rng = Xorshift::new(1);
        for range in ValueRange::all() {
            for _ in 0..100 {
                let v = range.sample(&mut rng);
                assert!(v.abs() <= range.magnitude());
            }
            assert!(!range.label().is_empty());
        }
    }

    #[test]
    fn catalog_and_query() {
        let cat = gen_catalog(8, 1.0, ValueRange::Binary, 9);
        assert!(cat.contains("A"));
        assert!(cat.contains("B"));
        assert!(tcudb_sql::parse(MATMUL_QUERY).is_ok());
    }
}
