#![forbid(unsafe_code)]
//! # tcudb-datagen
//!
//! Workload generators for every experiment in the paper's evaluation
//! (§5): the microbenchmark tables of Figures 7/8/14, the Star Schema
//! Benchmark of Figure 9, the coordinate-form matrix tables of Figure 10 /
//! Table 1, the entity-matching datasets of Figure 11 / Tables 2–3, and
//! the road-network graphs of Figures 12/13 / Table 4.
//!
//! Real datasets the paper uses (Deepmatcher's BeerAdvo-RateBeer and
//! iTunes-Amazon, the SNAP Pennsylvania road network) are replaced by
//! synthetic generators that reproduce the published row counts and
//! per-attribute distinct-value counts — the quantities that determine
//! join/blocking cost (see DESIGN.md §2).

pub mod em;
pub mod graph;
pub mod matmul;
pub mod micro;
pub mod ssb;

/// A tiny deterministic PRNG (xorshift*) so generators are reproducible
/// without threading `rand` generics through every signature.
#[derive(Debug, Clone)]
pub struct Xorshift {
    state: u64,
}

impl Xorshift {
    /// Create a generator from a seed (0 is remapped to a fixed constant).
    pub fn new(seed: u64) -> Xorshift {
        Xorshift {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform integer in `[lo, hi]`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        let span = (hi - lo + 1).max(1) as u64;
        lo + self.below(span) as i64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_bounded() {
        let mut a = Xorshift::new(7);
        let mut b = Xorshift::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = Xorshift::new(3);
        for _ in 0..1000 {
            let v = r.below(17);
            assert!(v < 17);
            let x = r.range_i64(-5, 5);
            assert!((-5..=5).contains(&x));
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(Xorshift::new(0).state, 0x9E3779B97F4A7C15);
        assert_eq!(Xorshift::new(1).below(0), 0);
    }
}
