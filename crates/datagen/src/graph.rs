//! Road-network graphs and PageRank queries (§5.4.3, Figures 12/13,
//! Table 4).
//!
//! The paper sub-samples the SNAP Pennsylvania road network (1.08 M nodes,
//! 1.54 M edges) to graphs of 1 K – 32 K nodes with the edge counts listed
//! in Table 4 (≈2 edges per node, preserving connectivity).  The generator
//! below produces synthetic road-network-like graphs — a connected ring
//! backbone plus short-range chords, giving the same node/edge counts and
//! low, near-uniform degree distribution — and the relational NODE / EDGE /
//! OUTDEGREE / PAGERANK tables the three PageRank queries run over.

use crate::Xorshift;
use tcudb_storage::{Catalog, Column, ColumnDef, Schema, Table};
use tcudb_types::DataType;

/// The graph sizes of Table 4: `(nodes, edges)`.
pub const TABLE4_SIZES: [(usize, usize); 7] = [
    (1_024, 2_058),
    (2_048, 4_152),
    (3_072, 6_280),
    (4_096, 8_450),
    (8_192, 17_444),
    (16_384, 37_106),
    (32_768, 82_070),
];

/// A generated graph: node count and directed edge list.
#[derive(Debug, Clone)]
pub struct RoadGraph {
    /// Number of nodes (IDs are `0..nodes`).
    pub nodes: usize,
    /// Directed edges `(src, dst)`.
    pub edges: Vec<(usize, usize)>,
}

impl RoadGraph {
    /// Out-degree of every node.
    pub fn out_degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.nodes];
        for &(s, _) in &self.edges {
            d[s] += 1;
        }
        d
    }

    /// Density of the adjacency matrix.
    pub fn density(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.edges.len() as f64 / (self.nodes as f64 * self.nodes as f64)
        }
    }
}

/// Generate a road-network-like graph with the requested node and edge
/// counts: a connected ring backbone plus uniformly random short-range
/// chords (road networks have short edges and bounded degree).
pub fn gen_road_graph(nodes: usize, edges: usize, seed: u64) -> RoadGraph {
    let mut rng = Xorshift::new(seed);
    let mut edge_set = std::collections::HashSet::new();
    let mut list = Vec::with_capacity(edges);
    // Ring backbone keeps the graph connected (as the paper's sub-sampling
    // preserves connectivity).
    for i in 0..nodes {
        let e = (i, (i + 1) % nodes);
        edge_set.insert(e);
        list.push(e);
    }
    // Short-range chords until the edge budget is reached.
    while list.len() < edges {
        let src = rng.below(nodes as u64) as usize;
        let span = 2 + rng.below(63) as usize; // neighbours within ~64 hops
        let dst = (src + span) % nodes;
        if src != dst && edge_set.insert((src, dst)) {
            list.push((src, dst));
        }
    }
    RoadGraph { nodes, edges: list }
}

/// Generate the graph whose size matches row `idx` of Table 4.
pub fn gen_table4_graph(idx: usize, seed: u64) -> RoadGraph {
    let (n, e) = TABLE4_SIZES[idx];
    gen_road_graph(n, e, seed)
}

/// Build the relational NODE / EDGE tables for a graph.
pub fn gen_catalog(graph: &RoadGraph) -> Catalog {
    let node_schema = Schema::new(vec![ColumnDef::new("id", DataType::Int64)]);
    let node = Table::from_columns(
        "node",
        node_schema,
        vec![Column::Int64((0..graph.nodes as i64).collect())],
    )
    .expect("node column is consistent");

    let edge_schema = Schema::new(vec![
        ColumnDef::new("src", DataType::Int64),
        ColumnDef::new("dst", DataType::Int64),
    ]);
    let edge = Table::from_columns(
        "edge",
        edge_schema,
        vec![
            Column::Int64(graph.edges.iter().map(|&(s, _)| s as i64).collect()),
            Column::Int64(graph.edges.iter().map(|&(_, d)| d as i64).collect()),
        ],
    )
    .expect("edge columns are consistent");

    let mut cat = Catalog::new();
    cat.register(node);
    cat.register(edge);
    cat
}

/// Register the OUTDEGREE and PAGERANK tables needed by PR Q2 / PR Q3,
/// derived from the graph (the PageRank driver refreshes PAGERANK between
/// iterations).
pub fn register_pagerank_state(catalog: &mut Catalog, graph: &RoadGraph, ranks: &[f64]) {
    let degrees = graph.out_degrees();
    let out_schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("degree", DataType::Int64),
    ]);
    let outdegree = Table::from_columns(
        "outdegree",
        out_schema,
        vec![
            Column::Int64((0..graph.nodes as i64).collect()),
            Column::Int64(degrees.iter().map(|&d| d as i64).collect()),
        ],
    )
    .expect("outdegree columns are consistent");

    let pr_schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("rank", DataType::Float64),
    ]);
    let pagerank = Table::from_columns(
        "pagerank",
        pr_schema,
        vec![
            Column::Int64((0..graph.nodes as i64).collect()),
            Column::Float64(ranks.to_vec()),
        ],
    )
    .expect("pagerank columns are consistent");

    catalog.register(outdegree);
    catalog.register(pagerank);
}

/// PR Q1: compute the out-degree of each node.
pub const PR_Q1: &str = "SELECT NODE.ID, COUNT(EDGE.SRC) FROM NODE, EDGE \
                         WHERE NODE.ID = EDGE.SRC GROUP BY NODE.ID";

/// PR Q2: initialise each node's rank to `(1 − α)/N` (α = 0.85).
pub fn pr_q2(num_nodes: usize) -> String {
    format!(
        "SELECT NODE.ID, (1 - 0.85) / {num_nodes} AS rank FROM NODE, OUTDEGREE \
         WHERE NODE.ID = OUTDEGREE.ID"
    )
}

/// PR Q3: one PageRank update step (α = 0.85).
pub fn pr_q3(num_nodes: usize) -> String {
    format!(
        "SELECT SUM(0.85 * PAGERANK.RANK / OUTDEGREE.DEGREE) + (1 - 0.85) / {num_nodes} \
         FROM PAGERANK, OUTDEGREE WHERE PAGERANK.ID = OUTDEGREE.ID"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_matches_requested_sizes() {
        for (idx, &(n, e)) in TABLE4_SIZES.iter().enumerate().take(4) {
            let g = gen_table4_graph(idx, 5);
            assert_eq!(g.nodes, n);
            assert_eq!(g.edges.len(), e);
            // Road networks are very sparse.
            assert!(g.density() < 0.01);
        }
    }

    #[test]
    fn every_node_has_an_outgoing_edge() {
        let g = gen_road_graph(512, 1_100, 3);
        let degrees = g.out_degrees();
        assert!(degrees.iter().all(|&d| d >= 1));
        let avg: f64 = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        assert!(avg > 1.5 && avg < 3.5, "avg degree {avg}");
    }

    #[test]
    fn catalog_contains_node_edge_and_state_tables() {
        let g = gen_road_graph(128, 260, 1);
        let mut cat = gen_catalog(&g);
        assert_eq!(cat.table("node").unwrap().num_rows(), 128);
        assert_eq!(cat.table("edge").unwrap().num_rows(), 260);
        register_pagerank_state(&mut cat, &g, &vec![1.0 / 128.0; 128]);
        assert_eq!(cat.table("outdegree").unwrap().num_rows(), 128);
        assert_eq!(cat.table("pagerank").unwrap().num_rows(), 128);
    }

    #[test]
    fn pagerank_queries_parse() {
        assert!(tcudb_sql::parse(PR_Q1).is_ok());
        assert!(tcudb_sql::parse(&pr_q2(1024)).is_ok());
        assert!(tcudb_sql::parse(&pr_q3(1024)).is_ok());
    }

    #[test]
    fn edges_are_unique() {
        let g = gen_road_graph(256, 520, 9);
        let set: std::collections::HashSet<_> = g.edges.iter().collect();
        assert_eq!(set.len(), g.edges.len());
    }
}
