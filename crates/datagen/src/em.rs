//! Entity-matching blocking workloads (§5.4.2, Figure 11, Tables 2–3).
//!
//! The paper evaluates blocking queries on two Deepmatcher datasets.  We do
//! not redistribute those datasets; instead the generators below produce
//! synthetic tables with the **published row counts and per-attribute
//! distinct-value counts** (Tables 2 and 3), which are the only properties
//! the blocking join's cost depends on.

use crate::Xorshift;
use tcudb_storage::{Catalog, Column, ColumnDef, Schema, Table};
use tcudb_types::DataType;

/// Description of one EM dataset: two tables sharing a schema whose
/// attributes have specified distinct-value counts.
#[derive(Debug, Clone)]
pub struct EmDataset {
    /// Dataset name.
    pub name: &'static str,
    /// Rows of TABLE_A.
    pub rows_a: usize,
    /// Rows of TABLE_B.
    pub rows_b: usize,
    /// `(attribute name, number of distinct values)` pairs, matching the
    /// paper's Tables 2 and 3.
    pub attributes: Vec<(&'static str, usize)>,
}

/// The BeerAdvo-RateBeer dataset (Table 2): 3 777 + 2 671 rows.
pub fn beer_advo_ratebeer() -> EmDataset {
    EmDataset {
        name: "BeerAdvo-RateBeer",
        rows_a: 3_777,
        rows_b: 2_671,
        attributes: vec![
            ("ABV", 20),
            ("STYLE", 71),
            ("FACTORY", 3_678),
            ("BEER_NAME", 6_228),
        ],
    }
}

/// The iTunes-Amazon dataset (Table 3): 6 907 + 55 923 rows.
pub fn itunes_amazon() -> EmDataset {
    EmDataset {
        name: "iTunes-Amazon",
        rows_a: 6_907,
        rows_b: 55_923,
        attributes: vec![
            ("PRICE", 12),
            ("GENRE", 813),
            ("TIME", 908),
            ("ARTIST", 2_418),
            ("COPYRIGHT", 3_197),
            ("ALBUM", 6_004),
        ],
    }
}

/// The synthetically scaled iTunes-Amazon dataset of §5.4.2 ("Scaling up"):
/// 13 814 + 111 846 rows with the scaled distinct counts of Table 3.
pub fn itunes_amazon_scaled() -> EmDataset {
    EmDataset {
        name: "iTunes-Amazon (scaled)",
        rows_a: 13_814,
        rows_b: 111_846,
        attributes: vec![
            ("PRICE", 25),
            ("GENRE", 1_614),
            ("TIME", 1_208),
            ("ARTIST", 6_420),
            ("COPYRIGHT", 8_199),
            ("ALBUM", 11_005),
        ],
    }
}

/// Generate one table of an EM dataset.
///
/// Attribute values are integer codes drawn uniformly from the attribute's
/// domain, which reproduces the distinct-value counts and (approximately
/// uniform) match probabilities of the blocking join.
pub fn gen_table(name: &str, rows: usize, dataset: &EmDataset, rng: &mut Xorshift) -> Table {
    let mut defs = vec![ColumnDef::new("ID", DataType::Int64)];
    let mut cols: Vec<Column> = vec![Column::Int64((1..=rows as i64).collect())];
    for (attr, distinct) in &dataset.attributes {
        defs.push(ColumnDef::new(*attr, DataType::Int64));
        let mut vals = Vec::with_capacity(rows);
        for _ in 0..rows {
            vals.push(rng.below((*distinct).max(1) as u64) as i64);
        }
        cols.push(Column::Int64(vals));
    }
    Table::from_columns(name, Schema::new(defs), cols).expect("EM columns are consistent")
}

/// Build a catalog with `TABLE_A` and `TABLE_B` for a dataset.
pub fn gen_catalog(dataset: &EmDataset, seed: u64) -> Catalog {
    let mut rng = Xorshift::new(seed);
    let a = gen_table("TABLE_A", dataset.rows_a, dataset, &mut rng);
    let b = gen_table("TABLE_B", dataset.rows_b, dataset, &mut rng);
    let mut cat = Catalog::new();
    cat.register(a);
    cat.register(b);
    cat
}

/// The blocking query over one attribute (the Figure 11 workload).
pub fn blocking_query(attribute: &str) -> String {
    format!(
        "SELECT TABLE_A.ID, TABLE_B.ID FROM TABLE_A, TABLE_B \
         WHERE TABLE_A.{attribute} = TABLE_B.{attribute}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_descriptions_match_paper_tables() {
        let beer = beer_advo_ratebeer();
        assert_eq!(beer.rows_a, 3_777);
        assert_eq!(beer.rows_b, 2_671);
        assert_eq!(beer.attributes.len(), 4);
        assert_eq!(beer.attributes[0], ("ABV", 20));

        let itunes = itunes_amazon();
        assert_eq!(itunes.rows_b, 55_923);
        assert_eq!(itunes.attributes[0], ("PRICE", 12));

        let scaled = itunes_amazon_scaled();
        assert_eq!(scaled.rows_a, 13_814);
        assert_eq!(scaled.attributes.last().unwrap().1, 11_005);
    }

    #[test]
    fn generated_tables_respect_distinct_counts() {
        let beer = beer_advo_ratebeer();
        let cat = gen_catalog(&beer, 11);
        let a = cat.stats("TABLE_A").unwrap();
        assert_eq!(a.row_count, 3_777);
        let abv = a.column("ABV").unwrap();
        assert!(abv.distinct_count <= 20);
        assert!(abv.distinct_count >= 15);
        // High-cardinality attributes cannot exceed their domain.
        let name = a.column("BEER_NAME").unwrap();
        assert!(name.distinct_count <= 6_228);
    }

    #[test]
    fn blocking_queries_parse() {
        for attr in ["ABV", "STYLE", "FACTORY", "BEER_NAME"] {
            assert!(tcudb_sql::parse(&blocking_query(attr)).is_ok());
        }
    }
}
