//! Microbenchmark tables and queries (§5.2, Figures 7, 8 and 14).
//!
//! Each experiment joins two tables `A(ID, Val)` and `B(ID, Val)` with a
//! configurable number of records and a configurable number of distinct
//! join-key values, running Q1 (join), Q3 (group-by aggregate over join)
//! and Q4 (aggregate over join).

use crate::Xorshift;
use tcudb_storage::{Catalog, Column, ColumnDef, Schema, Table};
use tcudb_types::DataType;

/// Parameters of one microbenchmark configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroConfig {
    /// Number of records in each of A and B (the paper's `M = N`).
    pub records: usize,
    /// Number of distinct join-key values (the paper's `K`).
    pub distinct: usize,
    /// Maximum absolute payload value stored in `Val`.
    pub value_range: i64,
    /// PRNG seed.
    pub seed: u64,
}

impl MicroConfig {
    /// The paper's default configuration shape: `records` rows, 32 distinct
    /// values, payloads small enough to be exact in fp16.
    pub fn new(records: usize, distinct: usize) -> MicroConfig {
        MicroConfig {
            records,
            distinct,
            value_range: 100,
            seed: 42,
        }
    }
}

/// Generate one `(ID, Val)` table.
pub fn gen_table(name: &str, config: &MicroConfig) -> Table {
    let mut rng = Xorshift::new(config.seed ^ name.len() as u64 ^ 0xABCD);
    let mut ids = Vec::with_capacity(config.records);
    let mut vals = Vec::with_capacity(config.records);
    for _ in 0..config.records {
        ids.push(rng.below(config.distinct.max(1) as u64) as i64);
        vals.push(rng.range_i64(1, config.value_range.max(1)));
    }
    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("val", DataType::Int64),
    ]);
    Table::from_columns(name, schema, vec![Column::Int64(ids), Column::Int64(vals)])
        .expect("generated columns are consistent")
}

/// Build a catalog containing tables `A` and `B` for a configuration.
pub fn gen_catalog(config: &MicroConfig) -> Catalog {
    let mut cat = Catalog::new();
    let mut cfg_a = *config;
    cfg_a.seed = config.seed.wrapping_mul(31).wrapping_add(1);
    let mut cfg_b = *config;
    cfg_b.seed = config.seed.wrapping_mul(37).wrapping_add(2);
    cat.register(gen_table("A", &cfg_a));
    cat.register(gen_table("B", &cfg_b));
    cat
}

/// Q1: the two-way natural join of §3.1.
pub const Q1: &str = "SELECT A.Val, B.Val FROM A, B WHERE A.ID = B.ID";

/// Q3: group-by SUM aggregate over the join (§3.3).
pub const Q3: &str = "SELECT SUM(A.Val), B.Val FROM A, B WHERE A.ID = B.ID GROUP BY B.Val";

/// Q4: global SUM-of-products aggregate over the join (§3.3).
pub const Q4: &str = "SELECT SUM(A.Val * B.Val) FROM A, B WHERE A.ID = B.ID";

/// Q5: the non-equi join of §3.4.
pub const Q5: &str = "SELECT A.Val, B.Val FROM A, B WHERE A.ID < B.ID";

/// The `(name, SQL)` pairs of the microbenchmark query set.
pub fn queries() -> Vec<(&'static str, &'static str)> {
    vec![("Q1", Q1), ("Q3", Q3), ("Q4", Q4)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_tables_match_configuration() {
        let cfg = MicroConfig::new(1000, 32);
        let t = gen_table("A", &cfg);
        assert_eq!(t.num_rows(), 1000);
        let stats = t.compute_stats();
        let id = stats.column("id").unwrap();
        assert!(id.distinct_count <= 32);
        assert!(
            id.distinct_count >= 28,
            "want ≈32, got {}",
            id.distinct_count
        );
        let val = stats.column("val").unwrap();
        assert!(val.max.unwrap() <= 100.0);
        assert!(val.min.unwrap() >= 1.0);
    }

    #[test]
    fn catalog_has_distinct_a_and_b() {
        let cat = gen_catalog(&MicroConfig::new(128, 8));
        let a = cat.table("A").unwrap();
        let b = cat.table("B").unwrap();
        assert_eq!(a.num_rows(), 128);
        assert_eq!(b.num_rows(), 128);
        // Different seeds → different contents.
        assert_ne!(a.row(0), b.row(0));
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = MicroConfig::new(64, 4);
        assert_eq!(gen_table("A", &cfg), gen_table("A", &cfg));
    }

    #[test]
    fn queries_parse() {
        for (_, sql) in queries() {
            assert!(tcudb_sql::parse(sql).is_ok());
        }
        assert!(tcudb_sql::parse(Q5).is_ok());
    }
}
